//! The frequency-synthesizer clocking plan of the interscatter IC (§3).
//!
//! The IC derives everything from one 143 MHz PLL output:
//!
//! * divide by 13 → the 11 MHz 802.11b baseband/chip clock;
//! * a Johnson counter → four phases of 35.75 MHz (143/4), 90° apart, which
//!   drive the square-wave cosine/sine of the single-sideband modulator.
//!
//! Because both clocks come from the same PLL they are phase-locked, so the
//! baseband chip boundaries never glitch relative to the impedance-switch
//! transitions.

/// The clocking plan derived from one reference PLL frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockPlan {
    /// PLL output frequency, Hz.
    pub pll_hz: f64,
    /// Divider applied to obtain the baseband clock.
    pub baseband_divider: u32,
    /// Divider applied (via the Johnson counter) to obtain the shift clock;
    /// a Johnson counter with 2 stages divides by 4 and provides 4 phases.
    pub shift_divider: u32,
}

impl ClockPlan {
    /// The prototype plan: 143 MHz, ÷13 baseband, ÷4 shift.
    pub fn prototype() -> Self {
        ClockPlan {
            pll_hz: 143e6,
            baseband_divider: 13,
            shift_divider: 4,
        }
    }

    /// Baseband (chip) clock frequency, Hz.
    pub fn baseband_hz(&self) -> f64 {
        self.pll_hz / f64::from(self.baseband_divider)
    }

    /// Shift (subcarrier) clock frequency, Hz.
    pub fn shift_hz(&self) -> f64 {
        self.pll_hz / f64::from(self.shift_divider)
    }

    /// Number of quadrature phases available from the Johnson counter.
    pub fn num_phases(&self) -> u32 {
        self.shift_divider
    }

    /// Whether the two derived clocks are commensurate (their ratio is
    /// rational with the dividers chosen), i.e. phase-locked with a
    /// repeating pattern — the property the paper uses to "avoid glitches".
    pub fn clocks_are_locked(&self) -> bool {
        self.baseband_divider > 0 && self.shift_divider > 0
    }

    /// The phase offset (in radians of the shift clock) of phase `k` of the
    /// Johnson counter output.
    pub fn phase_offset_rad(&self, k: u32) -> f64 {
        2.0 * std::f64::consts::PI * f64::from(k % self.num_phases()) / f64::from(self.num_phases())
    }

    /// Chooses a PLL frequency and dividers to hit a desired shift frequency
    /// while keeping an 11 MHz baseband clock: pll = 4 × shift, baseband
    /// divider = round(pll / 11 MHz).
    pub fn for_shift(shift_hz: f64) -> Self {
        let pll_hz = 4.0 * shift_hz;
        let baseband_divider = (pll_hz / 11e6).round().max(1.0) as u32;
        ClockPlan {
            pll_hz,
            baseband_divider,
            shift_divider: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_frequencies() {
        let plan = ClockPlan::prototype();
        assert!((plan.baseband_hz() - 11e6).abs() < 1.0);
        assert!((plan.shift_hz() - 35.75e6).abs() < 1.0);
        assert_eq!(plan.num_phases(), 4);
        assert!(plan.clocks_are_locked());
    }

    #[test]
    fn phase_offsets_are_quadrature() {
        let plan = ClockPlan::prototype();
        assert_eq!(plan.phase_offset_rad(0), 0.0);
        assert!((plan.phase_offset_rad(1) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((plan.phase_offset_rad(2) - std::f64::consts::PI).abs() < 1e-12);
        assert!((plan.phase_offset_rad(5) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn derived_plan_hits_requested_shift() {
        let plan = ClockPlan::for_shift(35.75e6);
        assert_eq!(plan, ClockPlan::prototype());
        let plan = ClockPlan::for_shift(22e6);
        assert!((plan.shift_hz() - 22e6).abs() < 1.0);
        assert!((plan.baseband_hz() - 11e6).abs() < 1.5e6);
    }
}
