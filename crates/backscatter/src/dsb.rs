//! Double-sideband backscatter — the prior-work baseline.
//!
//! Earlier subcarrier-modulation backscatter systems shift the carrier by
//! toggling a single real-valued switching waveform at Δf. Multiplying the
//! carrier by a real cos(2πΔf·t) (or a ±1 square wave) necessarily produces
//! *both* sidebands at f ± Δf, wasting half the power and — crucial for the
//! coexistence experiment of Fig. 12 — dumping a mirror copy of the packet
//! into a different Wi-Fi channel. This module provides that baseline so the
//! evaluation can compare it against the single-sideband design.

use crate::BackscatterError;
use interscatter_dsp::Cplx;

/// Configuration of the double-sideband modulator.
#[derive(Debug, Clone, Copy)]
pub struct DsbConfig {
    /// Simulation sample rate in Hz.
    pub sample_rate: f64,
    /// Subcarrier (shift) frequency Δf in Hz.
    pub shift_hz: f64,
}

impl DsbConfig {
    /// Creates a configuration.
    pub fn new(sample_rate: f64, shift_hz: f64) -> Self {
        DsbConfig {
            sample_rate,
            shift_hz,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), BackscatterError> {
        if self.shift_hz == 0.0 {
            return Err(BackscatterError::InvalidConfig(
                "shift frequency must be non-zero",
            ));
        }
        if self.sample_rate < 2.0 * self.shift_hz.abs() {
            return Err(BackscatterError::InvalidConfig(
                "sample rate must be at least 2x the shift frequency",
            ));
        }
        Ok(())
    }
}

/// The real ±1 square-wave switching waveform at Δf.
pub fn switching_waveform(config: &DsbConfig, len: usize) -> Result<Vec<f64>, BackscatterError> {
    config.validate()?;
    let period = config.sample_rate / config.shift_hz.abs();
    Ok((0..len)
        .map(|n| {
            let frac = (n as f64 / period).fract();
            if frac < 0.5 {
                1.0
            } else {
                -1.0
            }
        })
        .collect())
}

/// Builds the reflection-coefficient sequence: the real switching waveform
/// multiplied by the (phase-only) baseband symbols. With a real switching
/// waveform the modulation is inherently double-sideband.
pub fn reflection_sequence(
    config: &DsbConfig,
    baseband: &[Cplx],
) -> Result<Vec<Cplx>, BackscatterError> {
    let sw = switching_waveform(config, baseband.len())?;
    Ok(sw.iter().zip(baseband).map(|(&s, &b)| b * s).collect())
}

/// Applies the reflection sequence to an incident carrier (identical contract
/// to [`crate::ssb::backscatter`]).
pub fn backscatter(carrier: &[Cplx], reflection: &[Cplx]) -> Result<Vec<Cplx>, BackscatterError> {
    crate::ssb::backscatter(carrier, reflection)
}

/// Convenience: shift a carrier with no data modulation.
pub fn shift_tone(config: &DsbConfig, carrier: &[Cplx]) -> Result<Vec<Cplx>, BackscatterError> {
    let sw = switching_waveform(config, carrier.len())?;
    Ok(sw.iter().zip(carrier).map(|(&s, &c)| c * s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::iq::tone;
    use interscatter_dsp::spectrum::{band_power_db, welch_psd, WelchConfig};

    const FS: f64 = 176e6;

    #[test]
    fn config_validation() {
        assert!(DsbConfig::new(176e6, 35.75e6).validate().is_ok());
        assert!(DsbConfig::new(60e6, 35.75e6).validate().is_err());
        assert!(DsbConfig::new(176e6, 0.0).validate().is_err());
    }

    #[test]
    fn dsb_produces_both_sidebands_equally() {
        let shift = 22e6;
        let config = DsbConfig::new(FS, shift);
        let carrier = tone(0.0, FS, 1 << 16, 0.0);
        let scattered = shift_tone(&config, &carrier).unwrap();
        let psd = welch_psd(&scattered, FS, &WelchConfig::default()).unwrap();
        let upper = band_power_db(&psd, shift - 1e6, shift + 1e6);
        let lower = band_power_db(&psd, -shift - 1e6, -shift + 1e6);
        assert!(
            (upper - lower).abs() < 1.0,
            "double sideband should be symmetric: upper {upper} dB, lower {lower} dB"
        );
    }

    #[test]
    fn each_dsb_sideband_is_weaker_than_the_ssb_sideband() {
        // Spectral-efficiency argument: SSB puts (nearly) all the switched
        // power in one sideband; DSB splits it.
        let shift = 22e6;
        let carrier = tone(0.0, FS, 1 << 16, 0.0);
        let dsb = shift_tone(&DsbConfig::new(FS, shift), &carrier).unwrap();
        let ssb = crate::ssb::shift_tone(&crate::ssb::SsbConfig::new(FS, shift), &carrier).unwrap();
        let psd_dsb = welch_psd(&dsb, FS, &WelchConfig::default()).unwrap();
        let psd_ssb = welch_psd(&ssb, FS, &WelchConfig::default()).unwrap();
        let dsb_upper = band_power_db(&psd_dsb, shift - 1e6, shift + 1e6);
        let ssb_upper = band_power_db(&psd_ssb, shift - 1e6, shift + 1e6);
        assert!(
            ssb_upper > dsb_upper + 2.0,
            "SSB sideband should be ~3 dB stronger (ssb {ssb_upper}, dsb {dsb_upper})"
        );
    }

    #[test]
    fn reflection_magnitude_never_exceeds_one() {
        let config = DsbConfig::new(FS, 30e6);
        let baseband: Vec<Cplx> = (0..500).map(|i| Cplx::expj(i as f64)).collect();
        let refl = reflection_sequence(&config, &baseband).unwrap();
        for g in &refl {
            assert!(g.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn switching_waveform_alternates() {
        let config = DsbConfig::new(100.0, 10.0);
        let w = switching_waveform(&config, 20).unwrap();
        assert_eq!(
            &w[..10],
            &[1.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0, -1.0]
        );
        assert_eq!(&w[..10], &w[10..]);
    }
}
