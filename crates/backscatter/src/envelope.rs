//! The passive envelope-detector receiver.
//!
//! The tag's only receiver is an analog envelope detector followed by a
//! comparator (paper §2.2 and §2.4): passive components rectify the RF
//! signal into its amplitude envelope, an RC network smooths it, and a
//! comparator slices it against an adaptive threshold. The same circuit
//! serves two purposes:
//!
//! * detecting the *presence* of a Bluetooth packet so the tag knows when to
//!   start backscattering (energy detection with a range cap of 8–10 feet to
//!   avoid false triggers), and
//! * decoding the OFDM AM downlink at 125 kbps (§2.4), with a measured
//!   sensitivity of about −32 dBm at 160 kbps (§4.4).

use crate::BackscatterError;
use interscatter_dsp::units::{db_to_amplitude, dbm_to_watts};
use interscatter_dsp::Cplx;

/// Configuration of the envelope detector.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeDetector {
    /// Sample rate of the incoming waveform, Hz.
    pub sample_rate: f64,
    /// RC low-pass time constant of the detector, seconds. The prototype's
    /// detector must follow 4 µs OFDM symbols, so the default is 0.5 µs.
    pub time_constant_s: f64,
    /// Sensitivity in dBm: envelopes below this level are indistinguishable
    /// from the detector's own noise (−32 dBm measured in §4.4).
    pub sensitivity_dbm: f64,
}

impl EnvelopeDetector {
    /// Creates a detector with the prototype's parameters at the given
    /// sample rate.
    pub fn new(sample_rate: f64) -> Self {
        EnvelopeDetector {
            sample_rate,
            time_constant_s: 0.1e-6,
            sensitivity_dbm: -32.0,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), BackscatterError> {
        if self.sample_rate <= 0.0 || self.time_constant_s <= 0.0 {
            return Err(BackscatterError::InvalidConfig(
                "sample rate and time constant must be positive",
            ));
        }
        Ok(())
    }

    /// Produces the smoothed envelope (the voltage after the RC filter) of a
    /// received waveform. Uses a single-pole IIR low-pass, which is the
    /// discrete-time equivalent of the analog RC detector.
    pub fn envelope(&self, samples: &[Cplx]) -> Result<Vec<f64>, BackscatterError> {
        self.validate()?;
        let alpha = 1.0 - (-1.0 / (self.time_constant_s * self.sample_rate)).exp();
        let mut state = 0.0f64;
        Ok(samples
            .iter()
            .map(|s| {
                state += alpha * (s.abs() - state);
                state
            })
            .collect())
    }

    /// The minimum envelope amplitude (workspace convention: unit amplitude
    /// is 0 dBm) the detector can distinguish from noise.
    pub fn sensitivity_amplitude(&self) -> f64 {
        db_to_amplitude(self.sensitivity_dbm)
    }

    /// Energy-based packet detection: returns the index of the first sample
    /// at which the smoothed envelope exceeds the detection threshold for at
    /// least `hold_s` seconds, or an error if no packet is present. The
    /// threshold is the larger of the sensitivity floor and
    /// `threshold_over_noise_db` above the median envelope (the adaptive
    /// comparator reference).
    pub fn detect_packet_start(
        &self,
        samples: &[Cplx],
        hold_s: f64,
        threshold_over_noise_db: f64,
    ) -> Result<usize, BackscatterError> {
        let env = self.envelope(samples)?;
        if env.is_empty() {
            return Err(BackscatterError::NoPacketDetected);
        }
        // The noise floor is estimated from a low percentile of the envelope
        // so that a packet occupying most of the observation window does not
        // inflate its own detection threshold; as a backstop the relative
        // threshold is capped at half the peak envelope (a packet that fills
        // the whole window is still "detected" at its first strong sample).
        let mut sorted = env.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let noise_floor = sorted[sorted.len() / 20];
        let peak = sorted[sorted.len() - 1];
        let relative = (noise_floor * db_to_amplitude(threshold_over_noise_db)).min(peak / 2.0);
        let threshold = relative.max(self.sensitivity_amplitude());
        let hold_samples = ((hold_s * self.sample_rate).ceil() as usize).max(1);
        let mut run = 0usize;
        for (i, &e) in env.iter().enumerate() {
            if e > threshold {
                run += 1;
                if run >= hold_samples {
                    return Ok(i + 1 - run);
                }
            } else {
                run = 0;
            }
        }
        Err(BackscatterError::NoPacketDetected)
    }

    /// Decodes the OFDM AM downlink from a received waveform that starts at
    /// an OFDM symbol boundary: computes the per-symbol sustained envelope
    /// and applies the pairwise decision of
    /// [`interscatter_wifi::ofdm::am::decode_downlink_bits`], returning the
    /// decoded bits. If the strongest symbol envelope is below the detector
    /// sensitivity the frame is reported as undetectable.
    pub fn decode_am_downlink(
        &self,
        samples: &[Cplx],
        samples_per_symbol: usize,
    ) -> Result<Vec<u8>, BackscatterError> {
        self.validate()?;
        if samples_per_symbol == 0 {
            return Err(BackscatterError::InvalidConfig(
                "samples_per_symbol must be positive",
            ));
        }
        let env = self.envelope(samples)?;
        // Per-symbol sustained envelope = median of the smoothed envelope
        // over the *middle* of each symbol. A "constant" symbol carries its
        // residual energy (head impulse, cyclic prefix, and the Dirichlet
        // sidelobes of the unused band-edge subcarriers, which are large at
        // both ends of the IFFT window) near its edges; the middle of the
        // symbol is where the sustained level is cleanest, and that is what
        // the comparator samples. This mirrors the paper's observation that
        // the peak detector sees a false peak at the head of a constant
        // symbol (Fig. 7) and must not base its decision on it.
        let mut per_symbol: Vec<f64> = Vec::new();
        for chunk in env.chunks(samples_per_symbol) {
            if chunk.len() < samples_per_symbol {
                break;
            }
            let mid = &chunk[(samples_per_symbol * 3) / 10..(samples_per_symbol * 7) / 10];
            let mut sorted = mid.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            per_symbol.push(sorted[sorted.len() / 2]);
        }
        let peak = per_symbol.iter().cloned().fold(0.0f64, f64::max);
        // The comparator keeps working a few dB below the specified
        // sensitivity before the AM contrast disappears entirely; treat
        // 6 dB below the -32 dBm spec as the hard cutoff.
        if peak < self.sensitivity_amplitude() * 0.5 {
            return Err(BackscatterError::NoPacketDetected);
        }
        Ok(per_symbol
            .chunks(2)
            .filter(|c| c.len() == 2)
            .map(|pair| {
                let reference = pair[0].max(1e-30);
                u8::from(pair[1] / reference < interscatter_wifi::ofdm::am::PAIRWISE_DECISION_RATIO)
            })
            .collect())
    }

    /// The detector's noise-equivalent power in watts (useful for link-budget
    /// sanity checks).
    pub fn noise_equivalent_power_w(&self) -> f64 {
        dbm_to_watts(self.sensitivity_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::iq::{delay, scale, tone};
    use interscatter_wifi::ofdm::am::build_am_frame;
    use interscatter_wifi::ofdm::ppdu::{OfdmRate, OfdmTransmitter};
    use interscatter_wifi::ofdm::symbol::SYMBOL_LEN;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        let mut d = EnvelopeDetector::new(20e6);
        assert!(d.validate().is_ok());
        d.time_constant_s = 0.0;
        assert!(d.validate().is_err());
        let d = EnvelopeDetector {
            sample_rate: 0.0,
            ..EnvelopeDetector::new(20e6)
        };
        assert!(d.validate().is_err());
    }

    #[test]
    fn envelope_tracks_amplitude_steps() {
        let detector = EnvelopeDetector::new(8e6);
        let mut signal = vec![Cplx::ZERO; 400];
        signal.extend(scale(&tone(1e6, 8e6, 800, 0.0), 0.5));
        signal.extend(vec![Cplx::ZERO; 400]);
        let env = detector.envelope(&signal).unwrap();
        // Middle of the burst: envelope near 0.5; before/after: near 0.
        assert!(env[100] < 0.05);
        assert!((env[900] - 0.5).abs() < 0.1, "envelope {}", env[900]);
        assert!(env[1500] < 0.1);
    }

    #[test]
    fn packet_detection_finds_burst_start() {
        let detector = EnvelopeDetector::new(8e6);
        let burst = scale(&tone(0.25e6, 8e6, 2000, 0.0), 0.3);
        let signal = {
            let mut s = vec![Cplx::new(1e-4, 0.0); 1000];
            s.extend(burst);
            s.extend(vec![Cplx::new(1e-4, 0.0); 500]);
            s
        };
        let start = detector.detect_packet_start(&signal, 2e-6, 10.0).unwrap();
        assert!(
            (1000..1100).contains(&start),
            "detected start {start}, expected shortly after 1000"
        );
    }

    #[test]
    fn no_detection_below_sensitivity_or_in_noise() {
        let detector = EnvelopeDetector::new(8e6);
        // A burst at -60 dBm (amplitude 1e-3) is below the -32 dBm floor.
        let weak = delay(&scale(&tone(0.25e6, 8e6, 2000, 0.0), 1e-3), 500);
        assert!(matches!(
            detector.detect_packet_start(&weak, 2e-6, 10.0),
            Err(BackscatterError::NoPacketDetected)
        ));
        assert!(matches!(
            detector.detect_packet_start(&[], 2e-6, 10.0),
            Err(BackscatterError::NoPacketDetected)
        ));
    }

    #[test]
    fn range_cap_by_detection_threshold() {
        // §2.2: the energy detector is tuned so only nearby (strong)
        // Bluetooth transmitters trigger it. A strong burst triggers, the
        // same burst 20 dB weaker (farther away) does not because it falls
        // below the absolute sensitivity.
        let detector = EnvelopeDetector {
            sensitivity_dbm: -30.0,
            ..EnvelopeDetector::new(8e6)
        };
        let near = delay(&scale(&tone(0.25e6, 8e6, 1500, 0.0), 0.05), 300); // -26 dBm
        assert!(detector.detect_packet_start(&near, 2e-6, 10.0).is_ok());
        let far = delay(&scale(&tone(0.25e6, 8e6, 1500, 0.0), 0.005), 300); // -46 dBm
        assert!(detector.detect_packet_start(&far, 2e-6, 10.0).is_err());
    }

    #[test]
    fn am_downlink_decoding_through_the_detector() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x35);
        let bits: Vec<u8> = (0..40).map(|i| ((i * 11) % 5 < 2) as u8).collect();
        let am = build_am_frame(&tx, &bits, &mut rng).unwrap();
        // Received at -20 dBm (amplitude 0.1): above the -32 dBm sensitivity.
        let received = scale(&am.frame.samples, 0.1);
        let detector = EnvelopeDetector::new(20e6);
        let decoded = detector.decode_am_downlink(&received, SYMBOL_LEN).unwrap();
        assert_eq!(decoded, bits);
    }

    #[test]
    fn am_downlink_below_sensitivity_fails() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x35);
        let am = build_am_frame(&tx, &[1, 0, 1], &mut rng).unwrap();
        let received = scale(&am.frame.samples, 1e-3); // -60 dBm
        let detector = EnvelopeDetector::new(20e6);
        assert!(matches!(
            detector.decode_am_downlink(&received, SYMBOL_LEN),
            Err(BackscatterError::NoPacketDetected)
        ));
        assert!(detector.decode_am_downlink(&received, 0).is_err());
    }

    #[test]
    fn noise_equivalent_power() {
        let detector = EnvelopeDetector::new(20e6);
        // -32 dBm ≈ 0.63 µW.
        let nep = detector.noise_equivalent_power_w();
        assert!((nep - 6.3e-7).abs() < 1e-7, "NEP {nep} W");
    }
}
