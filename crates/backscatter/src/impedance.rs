//! The complex-impedance reflection model of the backscatter switch network.
//!
//! An antenna terminated by a circuit of impedance `Zc` reflects a fraction
//! Γ = (Za − Zc)/(Za + Zc) of the incident wave, where `Za` is the antenna
//! impedance (50 Ω for the standard antennas, different for the contact-lens
//! and implant loop antennas). Traditional backscatter toggles between
//! "match" (Γ ≈ 0) and "reflect" (|Γ| ≈ 1). Interscatter instead switches
//! among four terminations whose reflection coefficients point in four
//! quadrature directions, which is what lets the tag realise the complex
//! values needed for single-sideband modulation (paper §2.3.1, step 2).
//!
//! The prototype used a 3 pF capacitor, an open circuit, a 1 pF capacitor
//! and a 2 nH inductor; this module computes their impedances at 2.4 GHz and
//! the resulting reflection coefficients, and also exposes an idealised
//! four-state constellation for the parts of the pipeline that only care
//! about the quadrature structure.

use interscatter_dsp::Cplx;

/// Carrier frequency used for component impedance evaluation (2.45 GHz ISM
/// centre).
pub const DEFAULT_FREQ_HZ: f64 = 2.45e9;

/// A circuit termination the backscatter switch can select.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// A capacitor of the given capacitance (farads).
    Capacitor(f64),
    /// An inductor of the given inductance (henries).
    Inductor(f64),
    /// An open circuit (infinite impedance).
    Open,
    /// A short circuit (zero impedance).
    Short,
    /// A resistive load (ohms) — used for the matched/absorbing state of
    /// conventional on-off backscatter.
    Resistor(f64),
}

impl Termination {
    /// The complex impedance of the termination at frequency `freq_hz`.
    /// `Open` returns a very large but finite impedance so the arithmetic
    /// stays well-conditioned.
    pub fn impedance(self, freq_hz: f64) -> Cplx {
        let w = 2.0 * std::f64::consts::PI * freq_hz;
        match self {
            Termination::Capacitor(c) => Cplx::new(0.0, -1.0 / (w * c)),
            Termination::Inductor(l) => Cplx::new(0.0, w * l),
            Termination::Open => Cplx::new(1e12, 0.0),
            Termination::Short => Cplx::ZERO,
            Termination::Resistor(r) => Cplx::new(r, 0.0),
        }
    }
}

/// Reflection coefficient Γ = (Za − Zc)/(Za + Zc) of an antenna of impedance
/// `antenna` terminated by `circuit`.
pub fn reflection_coefficient(antenna: Cplx, circuit: Cplx) -> Cplx {
    (antenna - circuit) / (antenna + circuit)
}

/// The four logical quadrature states of the interscatter switch network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuadratureState {
    /// Reflection toward 1 + j.
    PlusPlus,
    /// Reflection toward 1 − j.
    PlusMinus,
    /// Reflection toward −1 + j.
    MinusPlus,
    /// Reflection toward −1 − j.
    MinusMinus,
}

impl QuadratureState {
    /// All four states.
    pub const ALL: [QuadratureState; 4] = [
        QuadratureState::PlusPlus,
        QuadratureState::PlusMinus,
        QuadratureState::MinusPlus,
        QuadratureState::MinusMinus,
    ];

    /// The idealised (unit-magnitude-per-axis) reflection value the state
    /// represents, normalised so |Γ| = 1: (±1 ± j)/√2.
    pub fn ideal_reflection(self) -> Cplx {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        match self {
            QuadratureState::PlusPlus => Cplx::new(s, s),
            QuadratureState::PlusMinus => Cplx::new(s, -s),
            QuadratureState::MinusPlus => Cplx::new(-s, s),
            QuadratureState::MinusMinus => Cplx::new(-s, -s),
        }
    }

    /// Picks the state whose ideal reflection is closest to an arbitrary
    /// complex value — how the digital baseband quantises the desired
    /// `I + jQ` product onto the switch.
    pub fn nearest(value: Cplx) -> Self {
        match (value.re >= 0.0, value.im >= 0.0) {
            (true, true) => QuadratureState::PlusPlus,
            (true, false) => QuadratureState::PlusMinus,
            (false, true) => QuadratureState::MinusPlus,
            (false, false) => QuadratureState::MinusMinus,
        }
    }
}

/// The physical four-termination switch network of the prototype.
#[derive(Debug, Clone, Copy)]
pub struct SwitchNetwork {
    /// Antenna impedance (50 Ω for standard antennas).
    pub antenna: Cplx,
    /// Termination selected for each quadrature state, in
    /// [`QuadratureState::ALL`] order.
    pub terminations: [Termination; 4],
    /// Operating frequency.
    pub freq_hz: f64,
}

impl SwitchNetwork {
    /// The prototype network from §2.3.1: 3 pF, open, 1 pF, 2 nH against a
    /// 50 Ω antenna.
    pub fn prototype() -> Self {
        SwitchNetwork {
            antenna: Cplx::real(50.0),
            terminations: [
                Termination::Capacitor(3e-12),
                Termination::Open,
                Termination::Capacitor(1e-12),
                Termination::Inductor(2e-9),
            ],
            freq_hz: DEFAULT_FREQ_HZ,
        }
    }

    /// A network re-tuned for a non-50 Ω antenna (the contact-lens and
    /// implant loop antennas in §5 have non-standard impedances; the paper
    /// re-optimises the terminations, which the simulation represents by
    /// keeping the same quadrature structure around the new `Za`).
    pub fn tuned_for_antenna(antenna: Cplx) -> Self {
        SwitchNetwork {
            antenna,
            ..Self::prototype()
        }
    }

    /// Reflection coefficient produced by selecting `state`.
    pub fn reflection(&self, state: QuadratureState) -> Cplx {
        let idx = QuadratureState::ALL
            .iter()
            .position(|s| *s == state)
            .expect("state in ALL");
        reflection_coefficient(self.antenna, self.terminations[idx].impedance(self.freq_hz))
    }

    /// The four reflection coefficients in [`QuadratureState::ALL`] order.
    pub fn constellation(&self) -> [Cplx; 4] {
        [
            self.reflection(QuadratureState::PlusPlus),
            self.reflection(QuadratureState::PlusMinus),
            self.reflection(QuadratureState::MinusPlus),
            self.reflection(QuadratureState::MinusMinus),
        ]
    }

    /// A scalar figure of merit in [0, 1]: how closely the physical
    /// constellation matches an ideal quadrature constellation (1 = four
    /// unit-magnitude points exactly 90° apart). Computed as the product of
    /// a magnitude-balance term and a phase-spacing term.
    pub fn quadrature_quality(&self) -> f64 {
        let points = self.constellation();
        let mags: Vec<f64> = points.iter().map(|p| p.abs()).collect();
        let mean_mag = mags.iter().sum::<f64>() / 4.0;
        if mean_mag <= 0.0 {
            return 0.0;
        }
        let mag_spread = mags
            .iter()
            .map(|m| (m - mean_mag).abs())
            .fold(0.0f64, f64::max)
            / mean_mag;
        let mag_term = (1.0 - mag_spread).max(0.0);

        // Sort phases and measure deviation from 90° spacing.
        let mut phases: Vec<f64> = points.iter().map(|p| p.arg()).collect();
        phases.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut worst = 0.0f64;
        for i in 0..4 {
            let next = if i == 3 {
                phases[0] + 2.0 * std::f64::consts::PI
            } else {
                phases[i + 1]
            };
            let gap = next - phases[i];
            worst = worst.max((gap - std::f64::consts::FRAC_PI_2).abs());
        }
        let phase_term = (1.0 - worst / std::f64::consts::FRAC_PI_2).max(0.0);
        mag_term * phase_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_impedances_at_2_4ghz() {
        // 1 pF at 2.45 GHz: |Z| = 1/(ωC) ≈ 65 Ω, capacitive (negative imag).
        let z = Termination::Capacitor(1e-12).impedance(DEFAULT_FREQ_HZ);
        assert!(z.re.abs() < 1e-9);
        assert!((z.im + 64.96).abs() < 1.0, "1 pF impedance {z}");
        // 2 nH: |Z| = ωL ≈ 31 Ω, inductive (positive imag).
        let z = Termination::Inductor(2e-9).impedance(DEFAULT_FREQ_HZ);
        assert!((z.im - 30.79).abs() < 1.0, "2 nH impedance {z}");
        // Open / short / resistor.
        assert!(Termination::Open.impedance(DEFAULT_FREQ_HZ).re > 1e9);
        assert_eq!(Termination::Short.impedance(DEFAULT_FREQ_HZ), Cplx::ZERO);
        assert_eq!(
            Termination::Resistor(50.0).impedance(DEFAULT_FREQ_HZ),
            Cplx::real(50.0)
        );
    }

    #[test]
    fn matched_load_absorbs_and_extremes_reflect() {
        let za = Cplx::real(50.0);
        assert!(reflection_coefficient(za, Cplx::real(50.0)).abs() < 1e-12);
        assert!((reflection_coefficient(za, Cplx::ZERO).abs() - 1.0).abs() < 1e-12);
        assert!((reflection_coefficient(za, Cplx::real(1e12)).abs() - 1.0).abs() < 1e-6);
        // Short and open reflect with opposite signs.
        let short = reflection_coefficient(za, Cplx::ZERO);
        let open = reflection_coefficient(za, Cplx::real(1e12));
        assert!((short + open).abs() < 1e-6);
    }

    #[test]
    fn purely_reactive_loads_give_full_magnitude_reflection() {
        // A lossless termination reflects all power: |Γ| = 1 for any
        // capacitor or inductor against a real antenna impedance.
        let za = Cplx::real(50.0);
        for termination in [
            Termination::Capacitor(3e-12),
            Termination::Capacitor(1e-12),
            Termination::Inductor(2e-9),
        ] {
            let gamma = reflection_coefficient(za, termination.impedance(DEFAULT_FREQ_HZ));
            assert!(
                (gamma.abs() - 1.0).abs() < 1e-9,
                "{termination:?} -> |Γ| = {}",
                gamma.abs()
            );
        }
    }

    #[test]
    fn prototype_constellation_is_roughly_quadrature() {
        let network = SwitchNetwork::prototype();
        let constellation = network.constellation();
        // All four points have near-unit magnitude (reactive/open loads).
        for p in &constellation {
            assert!(p.abs() > 0.9, "reflection magnitude {}", p.abs());
        }
        // Phases span all four quadrants of the plane... the physical parts
        // give an approximately uniform angular spread; require the largest
        // gap below 180° and a reasonable quality score.
        let quality = network.quadrature_quality();
        assert!(quality > 0.3, "prototype quadrature quality {quality}");
        // The four phases must be pairwise distinct by at least 30°.
        for i in 0..4 {
            for j in (i + 1)..4 {
                let d = (constellation[i].arg() - constellation[j].arg()).abs();
                let d = d.min(2.0 * std::f64::consts::PI - d);
                assert!(d > 0.5, "states {i},{j} only {d} rad apart");
            }
        }
    }

    #[test]
    fn ideal_states_are_exact_quadrature() {
        let pts: Vec<Cplx> = QuadratureState::ALL
            .iter()
            .map(|s| s.ideal_reflection())
            .collect();
        for p in &pts {
            assert!((p.abs() - 1.0).abs() < 1e-12);
        }
        // 90° apart.
        assert!((pts[0] * pts[1].conj()).arg().abs() - std::f64::consts::FRAC_PI_2 < 1e-12);
    }

    #[test]
    fn nearest_state_quantisation() {
        assert_eq!(
            QuadratureState::nearest(Cplx::new(0.3, 0.9)),
            QuadratureState::PlusPlus
        );
        assert_eq!(
            QuadratureState::nearest(Cplx::new(0.3, -0.9)),
            QuadratureState::PlusMinus
        );
        assert_eq!(
            QuadratureState::nearest(Cplx::new(-0.3, 0.9)),
            QuadratureState::MinusPlus
        );
        assert_eq!(
            QuadratureState::nearest(Cplx::new(-0.3, -0.1)),
            QuadratureState::MinusMinus
        );
    }

    #[test]
    fn tuned_network_uses_new_antenna_impedance() {
        // A small loop antenna: low radiation resistance, inductive reactance.
        let lens_antenna = Cplx::new(10.0, 40.0);
        let network = SwitchNetwork::tuned_for_antenna(lens_antenna);
        assert_eq!(network.antenna, lens_antenna);
        // Constellation still has four distinct points.
        let c = network.constellation();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!((c[i] - c[j]).abs() > 1e-3);
            }
        }
    }

    #[test]
    fn ideal_quality_is_one() {
        // A fictitious network whose reflections are exactly the ideal
        // constellation scores 1.0.
        struct Ideal;
        let pts: Vec<Cplx> = QuadratureState::ALL
            .iter()
            .map(|s| s.ideal_reflection())
            .collect();
        let mags: Vec<f64> = pts.iter().map(|p| p.abs()).collect();
        assert!(mags.iter().all(|m| (m - 1.0).abs() < 1e-12));
        let _ = Ideal;
        // quadrature_quality of the prototype is < 1 but > 0; the ideal
        // points by construction would give 1. (Check the math directly.)
        let mut phases: Vec<f64> = pts.iter().map(|p| p.arg()).collect();
        phases.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in phases.windows(2) {
            assert!((w[1] - w[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        }
    }
}
