//! # interscatter-backscatter
//!
//! The backscatter tag model — the primary contribution of the Interscatter
//! paper (SIGCOMM 2016) — plus its baselines and supporting hardware models.
//!
//! A backscatter tag does not generate RF; it modulates how much of an
//! incident carrier its antenna reflects by switching the impedance
//! terminating the antenna. The paper's three hardware-level ideas live
//! here:
//!
//! * [`impedance`] — the reflection-coefficient model
//!   Γ = (Za − Zc)/(Za + Zc) and the four complex impedance states
//!   (3 pF, open, 1 pF, 2 nH at 2.4 GHz) that realise the values
//!   {1+j, 1−j, −1+j, −1−j} needed for single-sideband modulation.
//! * [`ssb`] — the single-sideband backscatter modulator: square-wave
//!   approximations of cos/sin at the shift frequency Δf drive the complex
//!   reflection coefficient so the incident tone is shifted to `f + Δf`
//!   *without* the mirror image at `f − Δf` (§2.3.1), and the baseband
//!   802.11b/ZigBee symbols are multiplied in on top (§2.3.2).
//! * [`dsb`] — the conventional double-sideband modulator used as the
//!   baseline in Figures 6 and 12.
//! * [`tag`] — the tag state machine: envelope-detect the Bluetooth packet,
//!   wait out the header plus a guard interval, backscatter the synthesized
//!   packet, stop before the Bluetooth CRC (§2.2/§2.3.3).
//! * [`envelope`] — the passive envelope-detector receiver used both for
//!   packet detection and for the OFDM AM downlink (§2.4), with the −32 dBm
//!   sensitivity measured in §4.4.
//! * [`power`] — the 65 nm IC power model reproducing the 28 µW budget of
//!   §3 and the comparison against active radios.
//! * [`clocks`] — the frequency-synthesizer plan (143 MHz PLL divided to
//!   11 MHz baseband and four phases of 35.75 MHz).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clocks;
pub mod dsb;
pub mod envelope;
pub mod impedance;
pub mod power;
pub mod ssb;
pub mod tag;

/// Errors produced by the backscatter layer.
#[derive(Debug, Clone, PartialEq)]
pub enum BackscatterError {
    /// The requested configuration is inconsistent (sample rates, shift
    /// frequency, window sizes...).
    InvalidConfig(&'static str),
    /// The incident carrier waveform is too short for the requested
    /// backscatter operation.
    CarrierTooShort {
        /// Samples available.
        have: usize,
        /// Samples needed.
        need: usize,
    },
    /// No Bluetooth packet was detected by the envelope detector.
    NoPacketDetected,
    /// An error bubbled up from the Wi-Fi PHY used to synthesize the packet.
    Wifi(interscatter_wifi::WifiError),
    /// An error bubbled up from the ZigBee PHY used to synthesize the packet.
    Zigbee(interscatter_zigbee::ZigbeeError),
    /// An underlying DSP error.
    Dsp(interscatter_dsp::DspError),
}

impl core::fmt::Display for BackscatterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BackscatterError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            BackscatterError::CarrierTooShort { have, need } => {
                write!(
                    f,
                    "incident carrier too short: have {have} samples, need {need}"
                )
            }
            BackscatterError::NoPacketDetected => write!(f, "no Bluetooth packet detected"),
            BackscatterError::Wifi(e) => write!(f, "Wi-Fi PHY error: {e}"),
            BackscatterError::Zigbee(e) => write!(f, "ZigBee PHY error: {e}"),
            BackscatterError::Dsp(e) => write!(f, "DSP error: {e}"),
        }
    }
}

impl std::error::Error for BackscatterError {}

impl From<interscatter_dsp::DspError> for BackscatterError {
    fn from(e: interscatter_dsp::DspError) -> Self {
        BackscatterError::Dsp(e)
    }
}

impl From<interscatter_wifi::WifiError> for BackscatterError {
    fn from(e: interscatter_wifi::WifiError) -> Self {
        BackscatterError::Wifi(e)
    }
}

impl From<interscatter_zigbee::ZigbeeError> for BackscatterError {
    fn from(e: interscatter_zigbee::ZigbeeError) -> Self {
        BackscatterError::Zigbee(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(BackscatterError::InvalidConfig("shift")
            .to_string()
            .contains("shift"));
        assert!(BackscatterError::CarrierTooShort { have: 1, need: 2 }
            .to_string()
            .contains('2'));
        assert!(BackscatterError::NoPacketDetected
            .to_string()
            .contains("Bluetooth"));
        let e: BackscatterError = interscatter_dsp::DspError::EmptyInput("x").into();
        assert!(e.to_string().contains("DSP"));
        let e: BackscatterError = interscatter_wifi::WifiError::PreambleNotFound.into();
        assert!(e.to_string().contains("Wi-Fi"));
        let e: BackscatterError = interscatter_zigbee::ZigbeeError::SfdNotFound.into();
        assert!(e.to_string().contains("ZigBee"));
    }
}
