//! The 65 nm IC power model (§3 of the paper).
//!
//! The FPGA prototype demonstrates functionality; the power argument rests
//! on an IC implementation in TSMC 65 nm low-power CMOS. The paper reports
//! three blocks for 2 Mbps Wi-Fi generation:
//!
//! | block                  | power    |
//! |------------------------|----------|
//! | frequency synthesizer  | 9.69 µW  |
//! | baseband processor     | 8.51 µW  |
//! | backscatter modulator  | 9.79 µW  |
//! | **total**              | **28 µW** (≈27.99 µW) |
//!
//! This module reproduces that budget from a simple switched-capacitance
//! model (P = C·V²·f per block plus leakage) calibrated so the 2 Mbps
//! operating point matches the paper, and extrapolates to the other bit
//! rates and to duty-cycled operation. It also carries the comparison
//! numbers against active radios that motivate backscatter in the first
//! place.

/// Power consumption of one interscatter IC block, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPower {
    /// Dynamic (switching) power, watts.
    pub dynamic_w: f64,
    /// Leakage power, watts.
    pub leakage_w: f64,
}

impl BlockPower {
    /// Total power of the block.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w + self.leakage_w
    }
}

/// The paper's reported block powers at the 2 Mbps operating point, watts.
pub mod paper {
    /// Frequency synthesizer (integer-N PLL + Johnson counter): 9.69 µW.
    pub const FREQUENCY_SYNTHESIZER_W: f64 = 9.69e-6;
    /// Baseband processor (802.11b scrambler, DSSS/CCK, CRC): 8.51 µW.
    pub const BASEBAND_PROCESSOR_W: f64 = 8.51e-6;
    /// Single-sideband backscatter modulator (mux + switch drivers): 9.79 µW.
    pub const BACKSCATTER_MODULATOR_W: f64 = 9.79e-6;
    /// Total power for 2 Mbps Wi-Fi packet generation: ≈28 µW.
    pub const TOTAL_2MBPS_W: f64 =
        FREQUENCY_SYNTHESIZER_W + BASEBAND_PROCESSOR_W + BACKSCATTER_MODULATOR_W;

    /// Typical power of an active Wi-Fi transmitter on a mobile SoC, watts —
    /// the "orders of magnitude" comparison point.
    pub const ACTIVE_WIFI_TX_W: f64 = 300e-3;
    /// Typical power of an active ZigBee transmitter (tens of milliwatts,
    /// §4.5).
    pub const ACTIVE_ZIGBEE_TX_W: f64 = 30e-3;
    /// Typical power of an active BLE transmitter.
    pub const ACTIVE_BLE_TX_W: f64 = 10e-3;
}

/// The interscatter IC power model.
#[derive(Debug, Clone, Copy)]
pub struct IcPowerModel {
    /// Supply voltage, volts (0.7 V low-power 65 nm logic).
    pub supply_v: f64,
    /// Effective switched capacitance of the frequency synthesizer per clock
    /// edge, farads.
    pub synth_cap_f: f64,
    /// Effective switched capacitance of the baseband processor per
    /// processed data bit, farads.
    pub baseband_cap_per_bit_f: f64,
    /// Effective switched capacitance of the modulator per chip transition,
    /// farads.
    pub modulator_cap_per_chip_f: f64,
    /// Per-block leakage, watts.
    pub leakage_per_block_w: f64,
}

impl IcPowerModel {
    /// The calibration used throughout the workspace: block powers match the
    /// paper's 65 nm numbers at the 2 Mbps operating point (143 MHz synth
    /// clock, 2 Mbit/s baseband, 11 Mchip/s × 4-phase modulator).
    pub fn tsmc65nm() -> Self {
        let supply_v = 0.7;
        let v2 = supply_v * supply_v;
        let leakage_per_block_w = 0.4e-6;
        // Solve C from P = C V^2 f with the paper's P at the known f.
        let synth_cap_f = (paper::FREQUENCY_SYNTHESIZER_W - leakage_per_block_w) / (v2 * 143e6);
        let baseband_cap_per_bit_f =
            (paper::BASEBAND_PROCESSOR_W - leakage_per_block_w) / (v2 * 2e6);
        // The modulator toggles at the chip rate times the four clock phases.
        let modulator_cap_per_chip_f =
            (paper::BACKSCATTER_MODULATOR_W - leakage_per_block_w) / (v2 * 11e6 * 4.0);
        IcPowerModel {
            supply_v,
            synth_cap_f,
            baseband_cap_per_bit_f,
            modulator_cap_per_chip_f,
            leakage_per_block_w,
        }
    }

    /// Frequency-synthesizer power (independent of bit rate: the PLL always
    /// runs at 143 MHz).
    pub fn synthesizer(&self) -> BlockPower {
        BlockPower {
            dynamic_w: self.synth_cap_f * self.supply_v * self.supply_v * 143e6,
            leakage_w: self.leakage_per_block_w,
        }
    }

    /// Baseband-processor power at a given data bit rate.
    pub fn baseband(&self, bit_rate: f64) -> BlockPower {
        BlockPower {
            dynamic_w: self.baseband_cap_per_bit_f * self.supply_v * self.supply_v * bit_rate,
            leakage_w: self.leakage_per_block_w,
        }
    }

    /// Backscatter-modulator power at a given chip rate (11 MHz for 802.11b,
    /// 2 MHz for ZigBee).
    pub fn modulator(&self, chip_rate: f64) -> BlockPower {
        BlockPower {
            dynamic_w: self.modulator_cap_per_chip_f
                * self.supply_v
                * self.supply_v
                * chip_rate
                * 4.0,
            leakage_w: self.leakage_per_block_w,
        }
    }

    /// Total active power while backscattering a packet at `bit_rate` with
    /// chips at `chip_rate`.
    pub fn total_active_w(&self, bit_rate: f64, chip_rate: f64) -> f64 {
        self.synthesizer().total_w()
            + self.baseband(bit_rate).total_w()
            + self.modulator(chip_rate).total_w()
    }

    /// Average power when the tag is duty-cycled: active for `active_s`
    /// every `period_s`, sleeping (leakage only, 3 blocks) otherwise.
    pub fn duty_cycled_w(
        &self,
        bit_rate: f64,
        chip_rate: f64,
        active_s: f64,
        period_s: f64,
    ) -> f64 {
        let duty = (active_s / period_s).clamp(0.0, 1.0);
        let active = self.total_active_w(bit_rate, chip_rate);
        let sleep = 3.0 * self.leakage_per_block_w;
        duty * active + (1.0 - duty) * sleep
    }

    /// Energy per transmitted bit, joules.
    pub fn energy_per_bit_j(&self, bit_rate: f64, chip_rate: f64) -> f64 {
        self.total_active_w(bit_rate, chip_rate) / bit_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals() {
        let total = paper::TOTAL_2MBPS_W;
        assert!((total - 27.99e-6).abs() < 0.05e-6, "total {total}");
    }

    #[test]
    fn calibrated_model_reproduces_the_paper_budget() {
        let model = IcPowerModel::tsmc65nm();
        let synth = model.synthesizer().total_w();
        let baseband = model.baseband(2e6).total_w();
        let modulator = model.modulator(11e6).total_w();
        assert!(
            (synth - paper::FREQUENCY_SYNTHESIZER_W).abs() < 1e-9,
            "synth {synth}"
        );
        assert!(
            (baseband - paper::BASEBAND_PROCESSOR_W).abs() < 1e-9,
            "baseband {baseband}"
        );
        assert!(
            (modulator - paper::BACKSCATTER_MODULATOR_W).abs() < 1e-9,
            "modulator {modulator}"
        );
        let total = model.total_active_w(2e6, 11e6);
        assert!((total - paper::TOTAL_2MBPS_W).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn higher_rates_cost_more_baseband_but_not_more_synth() {
        let model = IcPowerModel::tsmc65nm();
        let p2 = model.total_active_w(2e6, 11e6);
        let p11 = model.total_active_w(11e6, 11e6);
        assert!(p11 > p2);
        // Synthesizer power is rate-independent.
        assert_eq!(model.synthesizer().total_w(), model.synthesizer().total_w());
        // But 11 Mbps still stays well under 100 µW.
        assert!(p11 < 100e-6, "11 Mbps total {p11}");
        // Energy per bit *improves* at the higher rate.
        assert!(model.energy_per_bit_j(11e6, 11e6) < model.energy_per_bit_j(2e6, 11e6));
    }

    #[test]
    fn zigbee_operating_point_is_cheaper_than_wifi() {
        let model = IcPowerModel::tsmc65nm();
        let zigbee = model.total_active_w(250e3, 2e6);
        let wifi = model.total_active_w(2e6, 11e6);
        assert!(zigbee < wifi);
        assert!(
            zigbee > model.synthesizer().total_w(),
            "must include all blocks"
        );
    }

    #[test]
    fn orders_of_magnitude_below_active_radios() {
        let model = IcPowerModel::tsmc65nm();
        let backscatter = model.total_active_w(2e6, 11e6);
        assert!(paper::ACTIVE_WIFI_TX_W / backscatter > 1_000.0);
        assert!(paper::ACTIVE_ZIGBEE_TX_W / backscatter > 100.0);
        assert!(paper::ACTIVE_BLE_TX_W / backscatter > 100.0);
    }

    #[test]
    fn duty_cycling_reduces_average_power() {
        let model = IcPowerModel::tsmc65nm();
        // One 248 µs backscatter window every 20 ms advertising interval.
        let avg = model.duty_cycled_w(2e6, 11e6, 248e-6, 20e-3);
        assert!(avg < model.total_active_w(2e6, 11e6) / 10.0);
        assert!(avg > 3.0 * model.leakage_per_block_w);
        // Degenerate cases clamp.
        let always_on = model.duty_cycled_w(2e6, 11e6, 1.0, 0.5);
        assert!((always_on - model.total_active_w(2e6, 11e6)).abs() < 1e-12);
    }

    #[test]
    fn energy_per_bit_is_picojoules() {
        let model = IcPowerModel::tsmc65nm();
        let epb = model.energy_per_bit_j(2e6, 11e6);
        // 28 µW / 2 Mbps = 14 pJ/bit.
        assert!((epb - 14e-12).abs() < 0.5e-12, "energy/bit {epb}");
    }
}
