//! Single-sideband backscatter modulation (§2.3.1–§2.3.2).
//!
//! The tag must move the incident Bluetooth tone by tens of MHz to land in
//! the target Wi-Fi/ZigBee channel. A real-valued (on/off or ±1) switching
//! waveform at Δf multiplies the carrier by cos(2πΔf·t), producing *two*
//! sidebands at f ± Δf. The interscatter insight is that a *complex*
//! reflection coefficient approximating e^{j2πΔf·t} produces only the +Δf
//! sideband. The tag cannot generate smooth sinusoids, so it approximates
//! cos and sin with square waves 90° apart and quantises the resulting
//! complex value onto its four impedance states; the odd harmonics of the
//! square wave are 9.5 dB (3rd) and 14 dB (5th) down, which every 802.11b
//! rate tolerates.
//!
//! On top of the shift, the tag multiplies in the baseband 802.11b or ZigBee
//! symbol stream. Because both PHYs are pure phase modulations, the product
//! still lands on the four achievable states.

use crate::impedance::QuadratureState;
use crate::BackscatterError;
use interscatter_dsp::Cplx;

/// The frequency shift used by the prototype: 35.75 MHz, chosen so the
/// backscattered Wi-Fi packet sits in channel 11 while the Bluetooth RF
/// source on BLE channel 38 stays far from the Wi-Fi receiver's passband
/// (§3, FPGA design).
pub const PROTOTYPE_SHIFT_HZ: f64 = 35.75e6;

/// Configuration of the single-sideband modulator.
#[derive(Debug, Clone, Copy)]
pub struct SsbConfig {
    /// Simulation sample rate in Hz (must be at least 4× the shift so the
    /// quadrature square waves are representable).
    pub sample_rate: f64,
    /// Frequency shift Δf in Hz (positive = up-shift, negative = down-shift;
    /// the ZigBee experiment shifts down by 6 MHz).
    pub shift_hz: f64,
    /// When true the complex product is quantised onto the four impedance
    /// states (the physical tag); when false the ideal complex exponential is
    /// used (for ablation benchmarks).
    pub quantize_to_states: bool,
}

impl SsbConfig {
    /// Creates a configuration with quantisation enabled.
    pub fn new(sample_rate: f64, shift_hz: f64) -> Self {
        SsbConfig {
            sample_rate,
            shift_hz,
            quantize_to_states: true,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), BackscatterError> {
        if self.shift_hz == 0.0 {
            return Err(BackscatterError::InvalidConfig(
                "shift frequency must be non-zero",
            ));
        }
        if self.sample_rate < 4.0 * self.shift_hz.abs() {
            return Err(BackscatterError::InvalidConfig(
                "sample rate must be at least 4x the shift frequency",
            ));
        }
        Ok(())
    }
}

/// A ±1 square wave of frequency `freq_hz` evaluated at sample `n`, with an
/// optional quarter-period delay (used to derive the "sine" wave from the
/// "cosine" wave).
fn square_wave(n: usize, freq_hz: f64, sample_rate: f64, quarter_delay: bool) -> f64 {
    let period_samples = sample_rate / freq_hz.abs();
    let mut t = n as f64 / period_samples;
    if quarter_delay {
        t -= 0.25;
    }
    let frac = t - t.floor();
    if frac < 0.5 {
        1.0
    } else {
        -1.0
    }
}

/// Generates the tag's complex switching waveform approximating
/// `e^{j·2π·shift·t}`: square-wave cosine on I, square-wave sine on Q,
/// optionally quantised to the four impedance states. For a negative shift
/// the quadrature component is negated (conjugate), moving energy to the
/// lower sideband instead.
pub fn switching_waveform(config: &SsbConfig, len: usize) -> Result<Vec<Cplx>, BackscatterError> {
    config.validate()?;
    let sign = config.shift_hz.signum();
    let out = (0..len)
        .map(|n| {
            let i = square_wave(n, config.shift_hz, config.sample_rate, false);
            let q = sign * square_wave(n, config.shift_hz, config.sample_rate, true);
            let value = Cplx::new(i, q);
            if config.quantize_to_states {
                QuadratureState::nearest(value).ideal_reflection()
            } else {
                // Ideal complex exponential for the ablation baseline.
                Cplx::expj(
                    2.0 * std::f64::consts::PI * config.shift_hz * n as f64 / config.sample_rate,
                )
            }
        })
        .collect();
    Ok(out)
}

/// Combines the frequency-shifting waveform with a baseband symbol stream
/// (one complex value per output sample, typically a sample-and-hold
/// upsampled 802.11b chip stream) to produce the reflection-coefficient
/// sequence Γ\[n\] the tag applies. Each product is re-quantised onto the four
/// achievable states when `quantize_to_states` is set.
pub fn reflection_sequence(
    config: &SsbConfig,
    baseband: &[Cplx],
) -> Result<Vec<Cplx>, BackscatterError> {
    let shift = switching_waveform(config, baseband.len())?;
    Ok(shift
        .iter()
        .zip(baseband)
        .map(|(&s, &b)| {
            let product = s * b;
            if config.quantize_to_states {
                QuadratureState::nearest(product).ideal_reflection()
            } else {
                product
            }
        })
        .collect())
}

/// Applies a reflection-coefficient sequence to an incident carrier: the
/// scattered field is `Γ[n] · carrier[n]` (the tag re-radiates a copy of the
/// incident wave weighted by its instantaneous reflection coefficient).
///
/// The incident carrier must be at least as long as the reflection sequence.
pub fn backscatter(carrier: &[Cplx], reflection: &[Cplx]) -> Result<Vec<Cplx>, BackscatterError> {
    if carrier.len() < reflection.len() {
        return Err(BackscatterError::CarrierTooShort {
            have: carrier.len(),
            need: reflection.len(),
        });
    }
    Ok(reflection
        .iter()
        .zip(carrier)
        .map(|(&g, &c)| g * c)
        .collect())
}

/// Convenience: shift an incident carrier by Δf with single-sideband
/// backscatter and no data modulation (a pure tone shift), returning the
/// scattered waveform. Used by the spectral-efficiency experiments (Fig. 6).
pub fn shift_tone(config: &SsbConfig, carrier: &[Cplx]) -> Result<Vec<Cplx>, BackscatterError> {
    let reflection = switching_waveform(config, carrier.len())?;
    backscatter(carrier, &reflection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::iq::tone;
    use interscatter_dsp::spectrum::{band_power_db, welch_psd, WelchConfig};

    const FS: f64 = 176e6;

    fn psd_of(signal: &[Cplx]) -> Vec<interscatter_dsp::spectrum::SpectrumPoint> {
        welch_psd(signal, FS, &WelchConfig::default()).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(SsbConfig::new(176e6, 35.75e6).validate().is_ok());
        assert!(SsbConfig::new(100e6, 35.75e6).validate().is_err());
        assert!(SsbConfig::new(176e6, 0.0).validate().is_err());
    }

    #[test]
    fn square_wave_has_correct_period_and_quadrature() {
        let fs = 100.0;
        let f = 10.0; // 10-sample period
        let w: Vec<f64> = (0..40).map(|n| square_wave(n, f, fs, false)).collect();
        assert_eq!(
            &w[..10],
            &[1.0, 1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0, -1.0]
        );
        assert_eq!(&w[..10], &w[10..20]);
        // Quarter delay shifts by 2.5 samples.
        let d: Vec<f64> = (0..10).map(|n| square_wave(n, f, fs, true)).collect();
        assert_ne!(d, w[..10].to_vec());
    }

    #[test]
    fn ssb_shifts_a_tone_to_one_side_only() {
        // The Fig. 6 property: energy appears at +Δf and the mirror at −Δf is
        // suppressed by a large factor.
        let shift = 22e6;
        let config = SsbConfig::new(FS, shift);
        let carrier = tone(0.0, FS, 1 << 16, 0.0);
        let scattered = shift_tone(&config, &carrier).unwrap();
        let psd = psd_of(&scattered);
        let upper = band_power_db(&psd, shift - 1e6, shift + 1e6);
        let lower = band_power_db(&psd, -shift - 1e6, -shift + 1e6);
        assert!(
            upper - lower > 15.0,
            "mirror suppression only {} dB (upper {upper}, lower {lower})",
            upper - lower
        );
    }

    #[test]
    fn negative_shift_moves_energy_down() {
        // The ZigBee case: BLE 38 (2426 MHz) down to ZigBee 14 (2420 MHz).
        let config = SsbConfig::new(FS, -6e6);
        let carrier = tone(0.0, FS, 1 << 15, 0.0);
        let scattered = shift_tone(&config, &carrier).unwrap();
        let psd = psd_of(&scattered);
        let lower = band_power_db(&psd, -7e6, -5e6);
        let upper = band_power_db(&psd, 5e6, 7e6);
        assert!(
            lower - upper > 15.0,
            "down-shift suppression {}",
            lower - upper
        );
    }

    #[test]
    fn third_and_fifth_harmonics_match_square_wave_analysis() {
        // §2.3.1 step 1: the square-wave approximation leaves odd harmonics
        // whose power falls as 1/n² — 9.5 dB down for n = 3 and 14 dB down
        // for n = 5. For the complex (quadrature) square-wave pair the 3rd
        // harmonic lands at −3Δf and the 5th at +5Δf.
        let shift = 11e6;
        let config = SsbConfig::new(FS, shift);
        let carrier = tone(0.0, FS, 1 << 16, 0.0);
        let scattered = shift_tone(&config, &carrier).unwrap();
        let psd = psd_of(&scattered);
        let fundamental = band_power_db(&psd, shift - 0.5e6, shift + 0.5e6);
        let third = band_power_db(&psd, -3.0 * shift - 0.5e6, -3.0 * shift + 0.5e6);
        let fifth = band_power_db(&psd, 5.0 * shift - 0.5e6, 5.0 * shift + 0.5e6);
        let d3 = fundamental - third;
        let d5 = fundamental - fifth;
        assert!((d3 - 9.5).abs() < 2.0, "3rd harmonic at {d3} dB");
        assert!((d5 - 14.0).abs() < 2.0, "5th harmonic at {d5} dB");
    }

    #[test]
    fn ideal_exponential_has_no_harmonics() {
        let shift = 11e6;
        let config = SsbConfig {
            quantize_to_states: false,
            ..SsbConfig::new(FS, shift)
        };
        let carrier = tone(0.0, FS, 1 << 15, 0.0);
        let scattered = shift_tone(&config, &carrier).unwrap();
        let psd = psd_of(&scattered);
        let fundamental = band_power_db(&psd, shift - 0.5e6, shift + 0.5e6);
        let third = band_power_db(&psd, -3.0 * shift - 0.5e6, -3.0 * shift + 0.5e6);
        assert!(
            fundamental - third > 30.0,
            "ideal shift should have clean spectrum"
        );
    }

    #[test]
    fn reflection_sequence_stays_on_achievable_states() {
        let config = SsbConfig::new(FS, PROTOTYPE_SHIFT_HZ);
        let baseband: Vec<Cplx> = (0..1000).map(|i| Cplx::expj(i as f64 * 0.37)).collect();
        let refl = reflection_sequence(&config, &baseband).unwrap();
        let states: Vec<Cplx> = QuadratureState::ALL
            .iter()
            .map(|s| s.ideal_reflection())
            .collect();
        for g in &refl {
            assert!(
                states.iter().any(|s| (*s - *g).abs() < 1e-12),
                "reflection {g} is not one of the four achievable states"
            );
            assert!(g.abs() <= 1.0 + 1e-12, "passive tag cannot amplify");
        }
    }

    #[test]
    fn backscatter_requires_long_enough_carrier() {
        let carrier = tone(0.0, FS, 10, 0.0);
        let reflection = vec![Cplx::ONE; 20];
        assert!(matches!(
            backscatter(&carrier, &reflection),
            Err(BackscatterError::CarrierTooShort { have: 10, need: 20 })
        ));
        let ok = backscatter(&tone(0.0, FS, 30, 0.0), &reflection).unwrap();
        assert_eq!(ok.len(), 20);
    }

    #[test]
    fn data_modulation_appears_around_the_shifted_carrier() {
        // Modulate a BPSK-like ±1 pattern at ~1 MHz on top of the shift: the
        // energy should sit around +Δf, not around 0 or −Δf.
        let shift = 20e6;
        let config = SsbConfig::new(FS, shift);
        let symbols: Vec<Cplx> = (0..(1 << 15))
            .map(|n| {
                if (n / 88) % 2 == 0 {
                    Cplx::ONE
                } else {
                    -Cplx::ONE
                }
            })
            .collect();
        let carrier = tone(0.0, FS, symbols.len(), 0.0);
        let refl = reflection_sequence(&config, &symbols).unwrap();
        let scattered = backscatter(&carrier, &refl).unwrap();
        let psd = psd_of(&scattered);
        let around_shift = band_power_db(&psd, shift - 3e6, shift + 3e6);
        let around_mirror = band_power_db(&psd, -shift - 3e6, -shift + 3e6);
        let around_dc = band_power_db(&psd, -3e6, 3e6);
        assert!(around_shift > around_mirror + 10.0);
        assert!(around_shift > around_dc + 10.0);
    }
}
