//! The interscatter tag: the device that sits between the Bluetooth source
//! and the Wi-Fi/ZigBee receiver and performs the on-air translation.
//!
//! The tag's uplink pipeline (paper §2.2–§2.3):
//!
//! 1. the envelope detector notices the Bluetooth packet's energy;
//! 2. the tag waits out the non-controllable header fields plus a 4 µs guard
//!    interval so backscatter only overlaps the single-tone payload;
//! 3. the baseband processor synthesizes a complete 802.11b (or ZigBee)
//!    packet as a chip stream;
//! 4. the single-sideband modulator combines the chips with the ±Δf shift
//!    and maps the result onto the four impedance states, producing the
//!    reflection-coefficient sequence applied to the antenna;
//! 5. the scattered signal — the incident tone times the reflection sequence
//!    — radiates toward the receiver.
//!
//! The tag here works on discrete-time complex baseband referenced to the
//! Bluetooth carrier; the `sim` crate positions it in space and applies path
//! losses on both hops.

use crate::envelope::EnvelopeDetector;
use crate::ssb::{reflection_sequence, SsbConfig};
use crate::{dsb, BackscatterError};
use interscatter_dsp::filter::upsample_hold;
use interscatter_dsp::Cplx;
use interscatter_wifi::dot11b::{Dot11bTransmitter, DsssRate};
use interscatter_zigbee::ZigbeeTransmitter;

/// Which sideband architecture the tag uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SidebandMode {
    /// The paper's single-sideband design.
    Single,
    /// The prior-work double-sideband baseline.
    Double,
}

/// Which packet format the tag synthesizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetPhy {
    /// 802.11b at the given DSSS rate.
    Wifi(DsssRate),
    /// IEEE 802.15.4 (ZigBee).
    Zigbee,
}

/// Interscatter tag configuration.
#[derive(Debug, Clone, Copy)]
pub struct TagConfig {
    /// Simulation sample rate of the incident/scattered waveforms, Hz.
    pub sample_rate: f64,
    /// Frequency shift from the Bluetooth tone to the target channel, Hz.
    pub shift_hz: f64,
    /// Target packet format.
    pub target: TargetPhy,
    /// Sideband architecture.
    pub sideband: SidebandMode,
    /// Guard interval added after the detected payload start (§2.2).
    pub guard_interval_s: f64,
}

impl TagConfig {
    /// The prototype configuration: 2 Mbps Wi-Fi, single sideband,
    /// +35.75 MHz shift, 4 µs guard.
    pub fn prototype_wifi(sample_rate: f64) -> Self {
        TagConfig {
            sample_rate,
            shift_hz: crate::ssb::PROTOTYPE_SHIFT_HZ,
            target: TargetPhy::Wifi(DsssRate::Mbps2),
            sideband: SidebandMode::Single,
            guard_interval_s: 4e-6,
        }
    }

    /// The ZigBee configuration of §4.5: −6 MHz shift (BLE 38 → ZigBee 14).
    pub fn prototype_zigbee(sample_rate: f64) -> Self {
        TagConfig {
            sample_rate,
            shift_hz: -6e6,
            target: TargetPhy::Zigbee,
            sideband: SidebandMode::Single,
            guard_interval_s: 4e-6,
        }
    }

    fn chip_rate(&self) -> f64 {
        match self.target {
            TargetPhy::Wifi(_) => interscatter_wifi::dot11b::CHIP_RATE,
            TargetPhy::Zigbee => interscatter_zigbee::oqpsk::CHIP_RATE,
        }
    }

    /// Samples per chip at the simulation rate.
    pub fn samples_per_chip(&self) -> usize {
        (self.sample_rate / self.chip_rate()).round() as usize
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), BackscatterError> {
        let spc = self.sample_rate / self.chip_rate();
        if spc < 1.0 || (spc - spc.round()).abs() > 1e-6 {
            return Err(BackscatterError::InvalidConfig(
                "sample rate must be an integer multiple of the target chip rate",
            ));
        }
        if self.guard_interval_s < 0.0 {
            return Err(BackscatterError::InvalidConfig(
                "guard interval must be non-negative",
            ));
        }
        Ok(())
    }
}

/// The result of one backscatter operation.
#[derive(Debug, Clone)]
pub struct BackscatterResult {
    /// The scattered waveform, time-aligned with the incident waveform (zero
    /// before the tag starts reflecting and after it stops).
    pub scattered: Vec<Cplx>,
    /// Sample index at which backscatter began.
    pub start_sample: usize,
    /// Number of samples of active backscatter.
    pub active_samples: usize,
    /// The synthesized payload chips (before the frequency shift), useful
    /// for debugging and for the IC power accounting.
    pub baseband_chips: usize,
}

/// The interscatter tag.
#[derive(Debug, Clone, Copy)]
pub struct InterscatterTag {
    /// Tag configuration.
    pub config: TagConfig,
    /// The envelope detector used for packet detection.
    pub detector: EnvelopeDetector,
}

impl InterscatterTag {
    /// Creates a tag with a detector matched to the configuration's sample
    /// rate.
    pub fn new(config: TagConfig) -> Result<Self, BackscatterError> {
        config.validate()?;
        Ok(InterscatterTag {
            config,
            detector: EnvelopeDetector::new(config.sample_rate),
        })
    }

    /// Synthesizes the baseband chip stream of the target packet, upsampled
    /// (sample-and-hold, matching the digital switch drive) to the
    /// simulation rate.
    pub fn synthesize_baseband(&self, payload: &[u8]) -> Result<Vec<Cplx>, BackscatterError> {
        let spc = self.config.samples_per_chip();
        let chips: Vec<Cplx> = match self.config.target {
            TargetPhy::Wifi(rate) => {
                let tx = Dot11bTransmitter::new(rate);
                tx.transmit(payload)?.chips
            }
            TargetPhy::Zigbee => {
                let tx = ZigbeeTransmitter::new(self.config.sample_rate);
                // The ZigBee transmitter already produces samples at the
                // simulation rate; return them directly (no further
                // upsampling below).
                return Ok(tx.transmit(payload)?.samples);
            }
        };
        Ok(upsample_hold(&chips, spc)?)
    }

    /// Builds the reflection-coefficient sequence for a payload (shift +
    /// data, quantised to the impedance states for the single-sideband mode,
    /// real switching waveform for the double-sideband baseline).
    pub fn reflection_for_payload(&self, payload: &[u8]) -> Result<Vec<Cplx>, BackscatterError> {
        let baseband = self.synthesize_baseband(payload)?;
        match self.config.sideband {
            SidebandMode::Single => {
                let ssb = SsbConfig::new(self.config.sample_rate, self.config.shift_hz);
                reflection_sequence(&ssb, &baseband)
            }
            SidebandMode::Double => {
                let cfg = dsb::DsbConfig::new(self.config.sample_rate, self.config.shift_hz);
                dsb::reflection_sequence(&cfg, &baseband)
            }
        }
    }

    /// Full uplink operation against an incident waveform: detect the
    /// Bluetooth packet with the envelope detector, wait
    /// `payload_offset_s + guard`, then backscatter the synthesized packet.
    ///
    /// `payload_offset_s` is the time from the start of the Bluetooth packet
    /// to the start of its controllable payload (104 µs for a standard
    /// advertising PDU); the tag cannot decode the packet, so this constant
    /// is configured, not measured.
    pub fn backscatter_packet(
        &self,
        incident: &[Cplx],
        payload: &[u8],
        payload_offset_s: f64,
    ) -> Result<BackscatterResult, BackscatterError> {
        let detect_start = self.detector.detect_packet_start(incident, 8e-6, 6.0)?;
        let offset_samples = ((payload_offset_s + self.config.guard_interval_s)
            * self.config.sample_rate)
            .round() as usize;
        let start_sample = detect_start + offset_samples;
        let reflection = self.reflection_for_payload(payload)?;
        if start_sample + reflection.len() > incident.len() {
            return Err(BackscatterError::CarrierTooShort {
                have: incident.len(),
                need: start_sample + reflection.len(),
            });
        }
        let carrier_window = &incident[start_sample..start_sample + reflection.len()];
        let scattered_active = crate::ssb::backscatter(carrier_window, &reflection)?;
        let mut scattered = vec![Cplx::ZERO; incident.len()];
        scattered[start_sample..start_sample + scattered_active.len()]
            .copy_from_slice(&scattered_active);
        Ok(BackscatterResult {
            scattered,
            start_sample,
            active_samples: reflection.len(),
            baseband_chips: reflection.len() / self.config.samples_per_chip().max(1),
        })
    }

    /// Maximum payload bytes (before FCS) that fit in a backscatter window of
    /// `window_s` seconds at the configured target rate — the §2.3.3 packing
    /// rule the tag firmware must respect.
    pub fn max_payload_bytes(&self, window_s: f64) -> usize {
        match self.config.target {
            TargetPhy::Wifi(rate) => {
                interscatter_wifi::dot11b::rates::payload_fit_in_ble_window(rate, window_s)
                    .unwrap_or(0)
                    .saturating_sub(4)
            }
            TargetPhy::Zigbee => {
                // ZigBee PPDU overhead: 6 bytes header + 2 FCS at 250 kbps.
                let bytes = (window_s * interscatter_zigbee::phy::BIT_RATE / 8.0).floor() as usize;
                bytes.saturating_sub(8)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::iq::{delay, scale, tone};

    /// 88 MS/s: an integer multiple of both 11 Mchip/s and 2 Mchip/s and
    /// comfortably above 2×35.75 MHz... (the SSB modulator requires ≥4×Δf,
    /// so Wi-Fi tests use 176 MS/s; ZigBee's 6 MHz shift is fine at 88 MS/s).
    const FS_WIFI: f64 = 176e6;
    const FS_ZIGBEE: f64 = 88e6;

    fn incident_tone(fs: f64, duration_s: f64, amplitude: f64) -> Vec<Cplx> {
        scale(&tone(0.0, fs, (duration_s * fs) as usize, 0.0), amplitude)
    }

    #[test]
    fn config_validation() {
        assert!(TagConfig::prototype_wifi(FS_WIFI).validate().is_ok());
        assert!(TagConfig::prototype_zigbee(FS_ZIGBEE).validate().is_ok());
        let bad = TagConfig {
            sample_rate: 10e6,
            ..TagConfig::prototype_wifi(FS_WIFI)
        };
        assert!(bad.validate().is_err());
        let bad = TagConfig {
            guard_interval_s: -1e-6,
            ..TagConfig::prototype_wifi(FS_WIFI)
        };
        assert!(bad.validate().is_err());
        assert_eq!(TagConfig::prototype_wifi(FS_WIFI).samples_per_chip(), 16);
    }

    #[test]
    fn synthesized_wifi_baseband_has_unit_envelope() {
        let tag = InterscatterTag::new(TagConfig::prototype_wifi(FS_WIFI)).unwrap();
        let baseband = tag.synthesize_baseband(&[0xAB; 20]).unwrap();
        for s in baseband.iter().step_by(97) {
            assert!((s.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reflection_is_passive_for_both_modes_and_targets() {
        for (config, payload) in [
            (TagConfig::prototype_wifi(FS_WIFI), vec![0x42u8; 10]),
            (TagConfig::prototype_zigbee(FS_ZIGBEE), vec![0x42u8; 10]),
            (
                TagConfig {
                    sideband: SidebandMode::Double,
                    ..TagConfig::prototype_wifi(FS_WIFI)
                },
                vec![0x42u8; 10],
            ),
        ] {
            let tag = InterscatterTag::new(config).unwrap();
            let reflection = tag.reflection_for_payload(&payload).unwrap();
            for g in reflection.iter().step_by(173) {
                assert!(
                    g.abs() <= 1.0 + 1e-9,
                    "passive constraint violated: {}",
                    g.abs()
                );
            }
        }
    }

    #[test]
    fn backscatter_packet_waits_for_detection_plus_guard() {
        let tag = InterscatterTag::new(TagConfig::prototype_wifi(FS_WIFI)).unwrap();
        // Incident: 50 µs of silence, then a strong tone for 400 µs.
        let silence = vec![Cplx::new(1e-6, 0.0); (50e-6 * FS_WIFI) as usize];
        let burst = incident_tone(FS_WIFI, 400e-6, 0.1);
        let incident = {
            let mut v = silence.clone();
            v.extend(burst);
            v
        };
        let result = tag
            .backscatter_packet(&incident, &[0x11; 20], 104e-6)
            .unwrap();
        let detect_expected = silence.len();
        let offset_expected = ((104e-6 + 4e-6) * FS_WIFI) as usize;
        assert!(
            result.start_sample >= detect_expected + offset_expected
                && result.start_sample
                    <= detect_expected + offset_expected + (5e-6 * FS_WIFI) as usize,
            "start sample {} not within the expected window",
            result.start_sample
        );
        assert_eq!(result.scattered.len(), incident.len());
        // Before the start the scattered waveform is silent.
        assert!(result.scattered[..result.start_sample]
            .iter()
            .all(|s| s.abs() == 0.0));
        // During the active window it is not.
        let active =
            &result.scattered[result.start_sample..result.start_sample + result.active_samples];
        assert!(interscatter_dsp::iq::mean_power(active) > 0.0);
    }

    #[test]
    fn scattered_power_scales_with_incident_power() {
        let tag = InterscatterTag::new(TagConfig::prototype_wifi(FS_WIFI)).unwrap();
        // Both levels stay above the tag's -32 dBm detection floor; the
        // leading silence keeps the adaptive threshold meaningful.
        let make_incident = |amp: f64| {
            delay(
                &incident_tone(FS_WIFI, 400e-6, amp),
                (20e-6 * FS_WIFI) as usize,
            )
        };
        let strong = tag
            .backscatter_packet(&make_incident(0.5), &[0x11; 10], 104e-6)
            .unwrap();
        let weak = tag
            .backscatter_packet(&make_incident(0.05), &[0x11; 10], 104e-6)
            .unwrap();
        let p_strong = interscatter_dsp::iq::mean_power(
            &strong.scattered[strong.start_sample..strong.start_sample + strong.active_samples],
        );
        let p_weak = interscatter_dsp::iq::mean_power(
            &weak.scattered[weak.start_sample..weak.start_sample + weak.active_samples],
        );
        let ratio_db = interscatter_dsp::units::ratio_to_db(p_strong / p_weak);
        assert!(
            (ratio_db - 20.0).abs() < 0.5,
            "scattered power ratio {ratio_db} dB"
        );
    }

    #[test]
    fn no_detection_means_no_backscatter() {
        let tag = InterscatterTag::new(TagConfig::prototype_wifi(FS_WIFI)).unwrap();
        let incident = vec![Cplx::new(1e-6, 0.0); (200e-6 * FS_WIFI) as usize];
        assert!(matches!(
            tag.backscatter_packet(&incident, &[1, 2, 3], 104e-6),
            Err(BackscatterError::NoPacketDetected)
        ));
    }

    #[test]
    fn carrier_too_short_for_the_payload() {
        let tag = InterscatterTag::new(TagConfig::prototype_wifi(FS_WIFI)).unwrap();
        // Burst long enough to detect but far too short for a whole packet.
        let incident = delay(
            &incident_tone(FS_WIFI, 150e-6, 0.1),
            (10e-6 * FS_WIFI) as usize,
        );
        assert!(matches!(
            tag.backscatter_packet(&incident, &[0u8; 200], 104e-6),
            Err(BackscatterError::CarrierTooShort { .. })
        ));
    }

    #[test]
    fn zigbee_target_produces_a_packet() {
        let tag = InterscatterTag::new(TagConfig::prototype_zigbee(FS_ZIGBEE)).unwrap();
        let incident = delay(
            &incident_tone(FS_ZIGBEE, 2000e-6, 0.1),
            (20e-6 * FS_ZIGBEE) as usize,
        );
        let result = tag
            .backscatter_packet(&incident, &[0x5A; 20], 104e-6)
            .unwrap();
        assert!(result.active_samples > 0);
    }

    #[test]
    fn payload_packing_rule() {
        let tag_wifi = InterscatterTag::new(TagConfig::prototype_wifi(FS_WIFI)).unwrap();
        // In a 248 µs window at 2 Mbps: ~38-byte PSDU minus 4-byte FCS.
        let b = tag_wifi.max_payload_bytes(248e-6);
        assert!((32..=36).contains(&b), "2 Mbps payload fit {b}");
        let tag_11 = InterscatterTag::new(TagConfig {
            target: TargetPhy::Wifi(DsssRate::Mbps11),
            ..TagConfig::prototype_wifi(FS_WIFI)
        })
        .unwrap();
        assert!(tag_11.max_payload_bytes(248e-6) > 3 * b);
        // 1 Mbps does not fit at all.
        let tag_1 = InterscatterTag::new(TagConfig {
            target: TargetPhy::Wifi(DsssRate::Mbps1),
            ..TagConfig::prototype_wifi(FS_WIFI)
        })
        .unwrap();
        assert_eq!(tag_1.max_payload_bytes(248e-6), 0);
        let tag_z = InterscatterTag::new(TagConfig::prototype_zigbee(FS_ZIGBEE)).unwrap();
        assert!(tag_z.max_payload_bytes(1e-3) > 0);
    }
}
