//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! square-wave SSB vs ideal quadrature, the guard interval, the shift
//! frequency, and the two-symbol downlink encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use interscatter_bench::ReportOnce;
use interscatter_sim::experiments::ablations;
use interscatter_wifi::ofdm::am::{build_am_frame, decode_downlink_bits, SymbolClass};
use interscatter_wifi::ofdm::ppdu::{OfdmRate, OfdmTransmitter};
use rand::SeedableRng;

fn ablation_squarewave(c: &mut Criterion) {
    let report = ReportOnce::new();
    let square = ablations::square_wave_ablation().unwrap();
    let guards = ablations::guard_interval_ablation(&[0.0, 4e-6, 20e-6, 100e-6, 200e-6]);
    let shifts = ablations::shift_ablation(&[22e6, 35.75e6, 36e6, 60e6]);
    report.print(&ablations::report(&square, &guards, &shifts));
    c.bench_function("ablation_squarewave", |b| {
        b.iter(|| ablations::square_wave_ablation().unwrap())
    });
}

fn ablation_guard_interval(c: &mut Criterion) {
    c.bench_function("ablation_guard_interval", |b| {
        b.iter(|| {
            ablations::guard_interval_ablation(&[
                0.0, 2e-6, 4e-6, 8e-6, 16e-6, 32e-6, 64e-6, 128e-6,
            ])
        })
    });
}

fn ablation_shift(c: &mut Criterion) {
    c.bench_function("ablation_shift", |b| {
        b.iter(|| ablations::shift_ablation(&[10e6, 20e6, 30e6, 35.75e6, 40e6, 50e6, 60e6]))
    });
}

fn ablation_downlink_encoding(c: &mut Criterion) {
    // One-symbol-per-bit versus the paper's two-symbol encoding: measure the
    // decode accuracy of each under clean conditions. The two-symbol pairing
    // gives every bit a reference symbol; the one-symbol variant has to use a
    // global threshold and mis-decodes runs of identical bits.
    let report = ReportOnce::new();
    let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x2D);
    let bits: Vec<u8> = (0..48).map(|i| ((i / 5) % 2) as u8).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xAB);
    let am = build_am_frame(&tx, &bits, &mut rng).unwrap();
    let two_symbol_errors = decode_downlink_bits(&am.frame.samples)
        .iter()
        .zip(&bits)
        .filter(|(a, b)| a != b)
        .count();

    // One-symbol variant: build a schedule with exactly one symbol per bit.
    let schedule: Vec<SymbolClass> = bits
        .iter()
        .map(|&b| {
            if b == 1 {
                SymbolClass::Constant
            } else {
                SymbolClass::Random
            }
        })
        .collect();
    let data =
        interscatter_wifi::ofdm::am::craft_data_bits(OfdmRate::Mbps36, 0x2D, &schedule, &mut rng);
    let frame = tx.transmit_raw_bits(&data).unwrap();
    let classes = interscatter_wifi::ofdm::am::classify_symbols(&frame.samples);
    let one_symbol_errors = classes
        .iter()
        .zip(&schedule)
        .filter(|(a, b)| a != b)
        .count();
    report.print(&format!(
        "Ablation: downlink bit encoding (48 bits)\n  two-symbol pairing errors: {two_symbol_errors}\n  one-symbol-per-bit class errors: {one_symbol_errors}\n"
    ));

    c.bench_function("ablation_downlink_encoding", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xAB);
            let am = build_am_frame(&tx, &bits, &mut rng).unwrap();
            decode_downlink_bits(&am.frame.samples)
        })
    });
}

criterion_group! {
    name = ablation_benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_squarewave, ablation_guard_interval, ablation_shift, ablation_downlink_encoding
}
criterion_main!(ablation_benches);
