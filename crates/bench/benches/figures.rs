//! Benchmark harness regenerating every figure and table of the paper's
//! evaluation section.
//!
//! Each bench group prints the reproduced table once (so `cargo bench`
//! output doubles as the data behind EXPERIMENTS.md) and then times the
//! experiment runner at a reduced-but-representative setting so pipeline
//! regressions are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use interscatter_bench::ReportOnce;
use interscatter_sim::experiments as exp;

fn fig06_ssb_spectrum(c: &mut Criterion) {
    let report = ReportOnce::new();
    let params = exp::fig06::Fig06Params {
        num_samples: 1 << 14,
        ..Default::default()
    };
    let full = exp::fig06::run(&exp::fig06::Fig06Params::default()).unwrap();
    report.print(&exp::fig06::report(&full));
    c.bench_function("fig06_ssb_spectrum", |b| {
        b.iter(|| exp::fig06::run(&params).unwrap())
    });
}

fn fig09_single_tone(c: &mut Criterion) {
    let report = ReportOnce::new();
    let rows = exp::fig09::run(0x5EED).unwrap();
    report.print(&exp::fig09::report(&rows));
    c.bench_function("fig09_single_tone", |b| {
        b.iter(|| exp::fig09::run(0x5EED).unwrap())
    });
}

fn packet_fit_table(c: &mut Criterion) {
    let report = ReportOnce::new();
    let rows = exp::packet_fit::run();
    report.print(&exp::packet_fit::report(&rows));
    c.bench_function("packet_fit_table", |b| b.iter(exp::packet_fit::run));
}

fn fig10_rssi(c: &mut Criterion) {
    let report = ReportOnce::new();
    let rows = exp::fig10::run(&exp::fig10::Fig10Params::default()).unwrap();
    report.print(&exp::fig10::report(&rows));
    c.bench_function("fig10_rssi", |b| {
        b.iter(|| exp::fig10::run(&exp::fig10::Fig10Params::default()).unwrap())
    });
}

fn fig11_per(c: &mut Criterion) {
    let report = ReportOnce::new();
    let full = exp::fig11::Fig11Params::default();
    let rows = exp::fig11::run(&full).unwrap();
    report.print(&exp::fig11::report(&rows));
    let reduced = exp::fig11::Fig11Params {
        locations: 4,
        packets_per_location: 5,
        ..full
    };
    let mut group = c.benchmark_group("fig11_per");
    group.sample_size(10);
    group.bench_function("per_cdf", |b| b.iter(|| exp::fig11::run(&reduced).unwrap()));
    group.finish();
}

fn fig12_iperf(c: &mut Criterion) {
    let report = ReportOnce::new();
    let rows = exp::fig12::run(&exp::fig12::Fig12Params::default()).unwrap();
    report.print(&exp::fig12::report(&rows));
    let reduced = exp::fig12::Fig12Params {
        duration_s: 0.5,
        ..Default::default()
    };
    c.bench_function("fig12_iperf", |b| {
        b.iter(|| exp::fig12::run(&reduced).unwrap())
    });
}

fn fig13_downlink_ber(c: &mut Criterion) {
    let report = ReportOnce::new();
    let rows = exp::fig13::run(&exp::fig13::Fig13Params::default()).unwrap();
    report.print(&exp::fig13::report(&rows));
    let reduced = exp::fig13::Fig13Params {
        distances_ft: vec![5.0, 15.0, 40.0],
        frames: 1,
        bits_per_frame: 16,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig13_downlink_ber");
    group.sample_size(10);
    group.bench_function("ber_sweep", |b| {
        b.iter(|| exp::fig13::run(&reduced).unwrap())
    });
    group.finish();
}

fn fig14_zigbee(c: &mut Criterion) {
    let report = ReportOnce::new();
    let (rows, cdf) = exp::fig14::run(&exp::fig14::Fig14Params::default()).unwrap();
    report.print(&exp::fig14::report(&rows, &cdf));
    let reduced = exp::fig14::Fig14Params {
        packets_per_location: 1,
        rssi_samples: 5,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig14_zigbee");
    group.sample_size(10);
    group.bench_function("rssi_cdf", |b| {
        b.iter(|| exp::fig14::run(&reduced).unwrap())
    });
    group.finish();
}

fn fig15_lens(c: &mut Criterion) {
    let report = ReportOnce::new();
    let rows = exp::fig15::run(&exp::fig15::Fig15Params::default()).unwrap();
    report.print(&exp::fig15::report(&rows));
    c.bench_function("fig15_lens", |b| {
        b.iter(|| exp::fig15::run(&exp::fig15::Fig15Params::default()).unwrap())
    });
}

fn fig16_implant(c: &mut Criterion) {
    let report = ReportOnce::new();
    let rows = exp::fig16::run(&exp::fig16::Fig16Params::default()).unwrap();
    report.print(&exp::fig16::report(&rows));
    c.bench_function("fig16_implant", |b| {
        b.iter(|| exp::fig16::run(&exp::fig16::Fig16Params::default()).unwrap())
    });
}

fn fig17_cards(c: &mut Criterion) {
    let report = ReportOnce::new();
    let rows = exp::fig17::run(&exp::fig17::Fig17Params::default()).unwrap();
    report.print(&exp::fig17::report(&rows));
    let reduced = exp::fig17::Fig17Params {
        payloads_per_distance: 2,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig17_cards");
    group.sample_size(10);
    group.bench_function("ber_sweep", |b| {
        b.iter(|| exp::fig17::run(&reduced).unwrap())
    });
    group.finish();
}

fn power_budget(c: &mut Criterion) {
    let report = ReportOnce::new();
    let (rows, points) = exp::power::run();
    report.print(&exp::power::report(&rows, &points));
    c.bench_function("power_budget", |b| b.iter(exp::power::run));
}

fn scrambler_seed(c: &mut Criterion) {
    let report = ReportOnce::new();
    let rows = exp::scrambler_seed::run(1000);
    report.print(&exp::scrambler_seed::report(&rows));
    c.bench_function("scrambler_seed", |b| {
        b.iter(|| exp::scrambler_seed::run(200))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
    fig06_ssb_spectrum,
    fig09_single_tone,
    packet_fit_table,
    fig10_rssi,
    fig11_per,
    fig12_iperf,
    fig13_downlink_ber,
    fig14_zigbee,
    fig15_lens,
    fig16_implant,
    fig17_cards,
    power_budget,
    scrambler_seed
}
criterion_main!(figures);
