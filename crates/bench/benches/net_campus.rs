//! Event throughput of the engine at city scale: the `campus` closed-loop
//! preset (shared striped helpers, coex load, streaming metrics) at 10k
//! and 100k tags. This is the scale target of the engine-core work — the
//! timing-wheel event queue, the band-indexed medium and the SoA link
//! tables — and the quick tier tracks its events/sec in `BENCH_net.json`.
//!
//! The sharded variants run the same 10k-tag campus through the sharded
//! executor at 1 and 4 shards: `bench_trend.sh` tracks their ratio as the
//! core-scaling signal (on a multi-core host 4 shards should approach the
//! smaller of 4× and the cell count; on a single-core host the ratio
//! stays ≈1 — the digest is identical either way).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use interscatter_net::engine::NetworkSim;
use interscatter_net::prelude::ExecutionSection;
use interscatter_net::scenario::Scenario;

fn bench_campus_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_campus");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let scenario = Scenario::campus(n);
        // One calibration run supplies the exact engine event count, so
        // the reported throughput is events/sec, not an approximation.
        let events = NetworkSim::new(&scenario, 42)
            .with_trace(false)
            .run()
            .unwrap()
            .telemetry
            .events;
        group.throughput(Throughput::Elements(events));
        group.bench_function(format!("campus_{}k_tags", n / 1000), |b| {
            b.iter(|| {
                NetworkSim::new(&scenario, 42)
                    .with_trace(false)
                    .run()
                    .unwrap()
            })
        });
    }
    for shards in [1usize, 4] {
        let scenario = Scenario::campus(10_000)
            .builder()
            .execution(ExecutionSection::new().shards(shards).trace(false))
            .build()
            .unwrap();
        let events = interscatter_net::run(&scenario, 42)
            .unwrap()
            .telemetry
            .events;
        group.throughput(Throughput::Elements(events));
        group.bench_function(format!("campus_10k_tags_{shards}shard"), |b| {
            b.iter(|| interscatter_net::run(&scenario, 42).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = campus;
    config = Criterion::default().sample_size(10);
    targets = bench_campus_scaling
}
criterion_main!(campus);
