//! Coexistence engine throughput: events per second with external traffic
//! generators on the medium, and the cost of the adaptive re-striping
//! machinery. Three points per fleet size:
//!
//! * `legacy` — the ward with no coex config (the scalar fold): the
//!   baseline the coex refactor must not slow down;
//! * `congested` — the hidden Wi-Fi hammer injecting ~600 bursts/s of
//!   real emissions (collision arbitration against external traffic);
//! * `adaptive` — the same plus per-slot occupancy sensing and the
//!   `ReStripe` decision cadence (including the mid-run re-tune itself).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use interscatter_net::coex::ReStripe;
use interscatter_net::engine::NetworkSim;
use interscatter_net::scenario::Scenario;

/// Shortens a ward's horizon so the 100-tag points stay benchable, and
/// pulls every coex source's activity window to t = 0 so the clipped run
/// actually contains the external traffic being measured (the preset's
/// hammer only switches on at t = 3 s, past the short horizons here).
fn clipped(mut scenario: Scenario, duration_s: f64) -> Scenario {
    scenario.duration_s = duration_s;
    if let Some(cfg) = scenario.coex.as_mut() {
        for source in &mut cfg.sources {
            source.start_s = 0.0;
        }
    }
    scenario
}

fn bench_coex(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_coex");
    group.sample_size(10);
    for n in [12usize, 100] {
        let duration_s = if n >= 100 { 2.0 } else { 5.0 };
        let cases = [
            (
                "legacy",
                clipped(
                    Scenario::hospital_ward(n).with_subband_striping(),
                    duration_s,
                ),
            ),
            (
                "congested",
                clipped(Scenario::congested_ward(n), duration_s),
            ),
            (
                "adaptive",
                clipped(
                    Scenario::congested_ward(n).with_restripe(ReStripe::default()),
                    duration_s,
                ),
            ),
        ];
        for (label, scenario) in cases {
            // One pre-run pins the workload size (deterministic per seed):
            // fleet attempts plus external emissions are the events whose
            // rate matters.
            let m = NetworkSim::new(&scenario, 42)
                .with_trace(false)
                .run()
                .unwrap()
                .metrics;
            assert!(
                label == "legacy" || m.external_emissions() > 0,
                "{label}_{n}: the congested workload must actually congest"
            );
            let events = m.attempts() + m.external_emissions();
            group.throughput(Throughput::Elements(events.max(1) as u64));
            group.bench_function(format!("{label}_{n}_tags"), |b| {
                b.iter(|| {
                    NetworkSim::new(&scenario, 42)
                        .with_trace(false)
                        .run()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = coex;
    config = Criterion::default().sample_size(10);
    targets = bench_coex
}
criterion_main!(coex);
