//! Throughput of the closed-loop poll/ack MAC vs. fleet size: how many
//! complete poll → backscatter → ack transactions per second the engine
//! sustains with 1, 10 and 100 tags, and what the downlink leg costs over
//! the open-loop schedule. This anchors the closed loop's performance
//! trajectory the way `net_engine` anchors the uplink-only engine's.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use interscatter_net::engine::NetworkSim;
use interscatter_net::scenario::Scenario;

/// A 1-second closed-loop ward sized to `n` tags, traces off.
fn ward(n: usize) -> Scenario {
    let mut scenario = Scenario::hospital_ward(n).closed_loop();
    scenario.duration_s = 1.0;
    scenario
}

fn bench_transaction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_downlink");
    group.sample_size(20);
    for n in [1usize, 10, 100] {
        let scenario = ward(n);
        // Annotate with the completed-transaction count of the measured
        // run so criterion reports transactions per wall-clock second.
        let transactions = NetworkSim::new(&scenario, 42)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics
            .completed_transactions();
        group.throughput(Throughput::Elements(transactions.max(1) as u64));
        group.bench_function(format!("ward_{n}_tags"), |b| {
            b.iter(|| {
                NetworkSim::new(&scenario, 42)
                    .with_trace(false)
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_loop_overhead(c: &mut Criterion) {
    // The closed loop trades three on-air frames per delivery for
    // feedback; this pair quantifies the simulation cost of that choice.
    let mut group = c.benchmark_group("net_mac_mode");
    group.sample_size(20);
    let mut open = Scenario::hospital_ward(20);
    open.duration_s = 1.0;
    group.bench_function("open_loop_ward_20", |b| {
        b.iter(|| NetworkSim::new(&open, 42).with_trace(false).run().unwrap())
    });
    let closed = ward(20);
    group.bench_function("closed_loop_ward_20", |b| {
        b.iter(|| {
            NetworkSim::new(&closed, 42)
                .with_trace(false)
                .run()
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = downlink;
    config = Criterion::default().sample_size(20);
    targets = bench_transaction_scaling, bench_loop_overhead
}
criterion_main!(downlink);
