//! Event throughput of the `interscatter-net` engine vs. fleet size: how
//! many simulation events per second the scheduler, medium and link layer
//! sustain with 1, 10 and 100 tags, plus the parallel Monte-Carlo runner.
//! This anchors the performance trajectory as the engine grows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use interscatter_net::engine::NetworkSim;
use interscatter_net::runner::MonteCarlo;
use interscatter_net::scenario::Scenario;

/// A 1-second ward scenario sized to `n` tags, traces off.
fn ward(n: usize) -> Scenario {
    let mut scenario = Scenario::hospital_ward(n);
    scenario.duration_s = 1.0;
    scenario
}

/// Events processed by one run: arrivals + slots + tx ends, approximated
/// by attempts + offered + slot cadence. Used for the throughput
/// annotation only.
fn approx_events(scenario: &Scenario) -> u64 {
    let slots: f64 = scenario
        .carriers
        .iter()
        .map(|c| scenario.duration_s / c.slot_interval_s)
        .sum();
    let arrivals: f64 = scenario
        .tags
        .iter()
        .map(|t| t.arrival_rate_pps * scenario.duration_s)
        .sum();
    (slots + 2.0 * arrivals) as u64
}

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_engine");
    group.sample_size(20);
    for n in [1usize, 10, 100] {
        let scenario = ward(n);
        group.throughput(Throughput::Elements(approx_events(&scenario)));
        group.bench_function(format!("ward_{n}_tags"), |b| {
            b.iter(|| {
                NetworkSim::new(&scenario, 42)
                    .with_trace(false)
                    .run()
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    let scenario = ward(10);
    let mut group = c.benchmark_group("net_trace");
    group.sample_size(20);
    group.bench_function("traced", |b| {
        b.iter(|| NetworkSim::new(&scenario, 42).run().unwrap())
    });
    group.bench_function("untraced", |b| {
        b.iter(|| {
            NetworkSim::new(&scenario, 42)
                .with_trace(false)
                .run()
                .unwrap()
        })
    });
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let scenario = ward(20);
    let mut group = c.benchmark_group("net_monte_carlo");
    group.sample_size(10);
    group.bench_function("8_trials_parallel", |b| {
        b.iter(|| MonteCarlo::new(scenario.clone(), 8, 7).run().unwrap())
    });
    group.finish();
}

criterion_group! {
    name = net;
    config = Criterion::default().sample_size(20);
    targets = bench_engine_scaling, bench_trace_overhead, bench_monte_carlo
}
criterion_main!(net);
