//! Cost of keeping link budgets current under motion: a 100-tag mobility
//! tick through the `LinkMatrix`'s row-level invalidation path versus a
//! full rebuild of every table, plus the end-to-end event rate of the
//! ambulatory ward. The acceptance bar for the mobility subsystem is the
//! first pair: moving all 100 tags and flushing only the affected rows
//! must be at least an order of magnitude cheaper than `LinkMatrix::build`
//! — the cached position-independent terms (antenna gains, tissue
//! attenuations, conversion losses, per-frequency path-loss models) are
//! what buys that gap.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use interscatter_net::engine::NetworkSim;
use interscatter_net::entities::Position;
use interscatter_net::links::{EntityId, LinkMatrix};
use interscatter_net::scenario::Scenario;

/// The 100-patient closed-loop ambulatory ward: the heaviest matrix the
/// engine builds (uplink rows plus every poll/ack and emitter × listener
/// table).
fn ward_100() -> Scenario {
    Scenario::ambulatory_ward(100).closed_loop()
}

fn bench_tick_vs_rebuild(c: &mut Criterion) {
    let scenario = ward_100();
    let matrix = LinkMatrix::build(&scenario).unwrap();
    let n = scenario.tags.len();

    let mut group = c.benchmark_group("net_mobility");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));

    // One mobility tick: every tag moves a few centimetres (oscillating so
    // the geometry stays representative across iterations) and the matrix
    // flushes only the dirty rows.
    group.bench_function("tick_100_tags_row_invalidation", |b| {
        let mut live = matrix.clone();
        let mut flip = 1.0f64;
        b.iter(|| {
            for t in 0..n {
                let p = live.position(EntityId::Tag(t));
                live.set_position(
                    EntityId::Tag(t),
                    Position::new(p.x + 0.05 * flip, p.y - 0.03 * flip, p.z),
                );
            }
            flip = -flip;
            black_box(live.flush(&scenario))
        })
    });

    // The alternative a naive engine would take every tick.
    group.bench_function("full_rebuild_100_tags", |b| {
        b.iter(|| black_box(LinkMatrix::build(&scenario).unwrap()))
    });
    group.finish();
}

fn bench_mobile_run(c: &mut Criterion) {
    // End to end: the walking ward with ticks, row refreshes and the
    // poll/ack loop interleaved, 1 simulated second.
    let mut scenario = Scenario::ambulatory_ward(20).closed_loop();
    scenario.duration_s = 1.0;
    let mut frozen = scenario.clone();
    frozen.mobility = None;

    let mut group = c.benchmark_group("net_mobile_run");
    group.sample_size(20);
    group.bench_function("ambulatory_ward_20", |b| {
        b.iter(|| {
            NetworkSim::new(&scenario, 42)
                .with_trace(false)
                .run()
                .unwrap()
        })
    });
    group.bench_function("frozen_ward_20", |b| {
        b.iter(|| {
            NetworkSim::new(&frozen, 42)
                .with_trace(false)
                .run()
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = mobility;
    config = Criterion::default().sample_size(20);
    targets = bench_tick_vs_rebuild, bench_mobile_run
}
criterion_main!(mobility);
