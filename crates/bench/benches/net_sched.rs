//! Arbitration throughput: how many scheduler grants per second the
//! engine sustains under each [`SchedPolicy`] at 10, 100 and 1000 tags.
//! Round-robin and margin-aware are cursor scans, proportional-fair and
//! deadline-aware walk the whole member list per slot — this bench keeps
//! the extraction of the scheduler out of the engine's hot path honest,
//! and anchors the cost of the smarter policies.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use interscatter_net::engine::NetworkSim;
use interscatter_net::scenario::Scenario;
use interscatter_net::sched::SchedPolicy;

/// A ward sized to `n` tags with traces off and the horizon shortened so
/// the 1000-tag point stays benchable.
fn ward(n: usize, policy: SchedPolicy) -> Scenario {
    let mut scenario = Scenario::hospital_ward(n).with_scheduler(policy);
    scenario.duration_s = if n >= 1000 { 0.25 } else { 1.0 };
    scenario
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_sched");
    group.sample_size(10);
    for n in [10usize, 100, 1000] {
        for policy in [
            SchedPolicy::RoundRobin,
            SchedPolicy::proportional_fair(),
            SchedPolicy::deadline_aware(),
            SchedPolicy::margin_aware(),
        ] {
            let scenario = ward(n, policy);
            // One pre-run pins the grant count (deterministic per seed),
            // so the reported rate is true grants per second.
            let grants = NetworkSim::new(&scenario, 42)
                .with_trace(false)
                .run()
                .unwrap()
                .metrics
                .grants();
            group.throughput(Throughput::Elements(grants.max(1) as u64));
            group.bench_function(format!("{}_{n}_tags", policy.slug()), |b| {
                b.iter(|| {
                    NetworkSim::new(&scenario, 42)
                        .with_trace(false)
                        .run()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = sched;
    config = Criterion::default().sample_size(10);
    targets = bench_policies
}
criterion_main!(sched);
