//! Telemetry overhead: engine events per second with 0, 1 and 8 active
//! subscriptions at two fleet sizes. The zero-subscription case anchors
//! the dispatch-mask contract — every emit site collapses to one dead
//! branch, so an unobserved run must sit within bench noise of the
//! pre-telemetry engine (`net_engine/ward_*` tracks the same scenarios).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use interscatter_net::engine::NetworkSim;
use interscatter_net::scenario::Scenario;
use interscatter_net::telemetry::{Dataset, Filter, SinkSpec, Subscription, TelemetryKind};

/// A ward sized to `n` tags, short enough that the 1000-tag case stays in
/// the quick tier, traces off so telemetry is the only observer.
fn ward(n: usize) -> Scenario {
    let mut scenario = Scenario::hospital_ward(n);
    scenario.duration_s = if n >= 1000 { 0.2 } else { 1.0 };
    scenario
}

/// `count` distinct subscriptions spanning every sink kind and filter axis.
fn subscriptions(count: usize, n_tags: usize) -> Vec<Subscription> {
    let pool = [
        Subscription::new(
            "lat",
            Filter::all(),
            SinkSpec::Quantiles(Dataset::DeliveryLatencyMs),
        ),
        Subscription::new(
            "poll",
            Filter::all(),
            SinkSpec::Quantiles(Dataset::PollLatencyMs),
        ),
        Subscription::new(
            "prr",
            Filter::all(),
            SinkSpec::WindowedPrr { window_s: 0.5 },
        ),
        Subscription::new("count", Filter::all(), SinkSpec::Counters),
        Subscription::new(
            "front",
            Filter::all().tags(0..n_tags.min(4)),
            SinkSpec::Counters,
        ),
        Subscription::new(
            "early",
            Filter::all().window(0.0, 0.5),
            SinkSpec::Quantiles(Dataset::DeliveryLatencyMs),
        ),
        Subscription::new(
            "losses",
            Filter::all().kinds([TelemetryKind::Loss, TelemetryKind::Dropped]),
            SinkSpec::Counters,
        ),
        Subscription::new(
            "occ",
            Filter::all(),
            SinkSpec::WindowedOccupancy { window_s: 1.0 },
        ),
    ];
    pool.into_iter().take(count).collect()
}

fn bench_subscription_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_telemetry");
    group.sample_size(10);
    for n_tags in [100usize, 1000] {
        let base = ward(n_tags);
        // Events per run, measured once so the throughput annotation is
        // events/sec rather than runs/sec.
        let events = NetworkSim::new(&base, 42)
            .with_trace(false)
            .run()
            .unwrap()
            .telemetry
            .events;
        group.throughput(Throughput::Elements(events));
        for n_subs in [0usize, 1, 8] {
            let mut scenario = base.clone();
            for sub in subscriptions(n_subs, n_tags) {
                scenario = scenario.subscribe(sub);
            }
            group.bench_function(format!("{n_tags}_tags_{n_subs}_subs"), |b| {
                b.iter(|| {
                    NetworkSim::new(&scenario, 42)
                        .with_trace(false)
                        .run()
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = telemetry;
    config = Criterion::default().sample_size(10);
    targets = bench_subscription_overhead
}
criterion_main!(telemetry);
