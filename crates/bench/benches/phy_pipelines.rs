//! Throughput benchmarks of the individual PHY pipelines the experiments are
//! built from: how fast the simulator generates and decodes 802.11b frames,
//! OFDM frames, ZigBee frames, GFSK advertisements and backscatter
//! reflection sequences. These are the inner loops of every figure bench.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use interscatter_backscatter::ssb::{reflection_sequence, SsbConfig};
use interscatter_ble::channels::BleChannel;
use interscatter_ble::gfsk::{GfskConfig, GfskModulator};
use interscatter_ble::single_tone::{single_tone_packet, TonePolarity};
use interscatter_dsp::fft::Fft;
use interscatter_dsp::Cplx;
use interscatter_wifi::dot11b::{Dot11bReceiver, Dot11bTransmitter, DsssRate};
use interscatter_wifi::ofdm::ppdu::{OfdmRate, OfdmReceiver, OfdmTransmitter};
use interscatter_zigbee::{ZigbeeReceiver, ZigbeeTransmitter};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp_fft");
    for &n in &[64usize, 1024, 4096] {
        let plan = Fft::new(n).unwrap();
        let data: Vec<Cplx> = (0..n).map(|i| Cplx::expj(i as f64 * 0.01)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("fft_{n}"), |b| {
            b.iter(|| plan.forward_vec(&data).unwrap())
        });
    }
    group.finish();
}

fn bench_ble_single_tone(c: &mut Criterion) {
    let cfg = GfskConfig::default();
    let modulator = GfskModulator::new(cfg).unwrap();
    let packet = single_tone_packet(
        BleChannel::ADV_38,
        [1, 2, 3, 4, 5, 6],
        31,
        TonePolarity::High,
    )
    .unwrap();
    let bits = packet.to_air_bits(BleChannel::ADV_38).unwrap();
    c.bench_function("ble_single_tone_modulate", |b| {
        b.iter(|| modulator.modulate(&bits, 0.0))
    });
}

fn bench_dot11b(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot11b");
    group.sample_size(20);
    for (rate, payload) in [(DsssRate::Mbps2, 31usize), (DsssRate::Mbps11, 77usize)] {
        let tx = Dot11bTransmitter::new(rate);
        let data = vec![0xA5u8; payload];
        let frame = tx.transmit(&data).unwrap();
        let rx = Dot11bReceiver::default();
        group.bench_function(format!("tx_{rate:?}"), |b| {
            b.iter(|| tx.transmit(&data).unwrap())
        });
        group.bench_function(format!("rx_{rate:?}"), |b| {
            b.iter(|| rx.receive(&frame.chips).unwrap())
        });
    }
    group.finish();
}

fn bench_ofdm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ofdm");
    group.sample_size(20);
    let tx = OfdmTransmitter::new(OfdmRate::Mbps36, 0x2F);
    let psdu = vec![0x3Cu8; 100];
    let frame = tx.transmit(&psdu).unwrap();
    let rx = OfdmReceiver::new(OfdmRate::Mbps36, 0x2F);
    group.bench_function("tx_36mbps", |b| b.iter(|| tx.transmit(&psdu).unwrap()));
    group.bench_function("rx_36mbps", |b| {
        b.iter(|| rx.receive_psdu(&frame.samples, psdu.len()).unwrap())
    });
    group.finish();
}

fn bench_zigbee(c: &mut Criterion) {
    let mut group = c.benchmark_group("zigbee");
    group.sample_size(20);
    let tx = ZigbeeTransmitter::default();
    let payload = vec![0x42u8; 60];
    let wave = tx.transmit(&payload).unwrap();
    let rx = ZigbeeReceiver::default();
    group.bench_function("tx_250kbps", |b| b.iter(|| tx.transmit(&payload).unwrap()));
    group.bench_function("rx_250kbps", |b| {
        b.iter(|| rx.receive(&wave.samples).unwrap())
    });
    group.finish();
}

fn bench_backscatter_ssb(c: &mut Criterion) {
    let config = SsbConfig::new(176e6, 35.75e6);
    let baseband: Vec<Cplx> = (0..50_000).map(|i| Cplx::expj(i as f64 * 0.2)).collect();
    let mut group = c.benchmark_group("backscatter");
    group.sample_size(20);
    group.throughput(Throughput::Elements(baseband.len() as u64));
    group.bench_function("ssb_reflection_sequence", |b| {
        b.iter(|| reflection_sequence(&config, &baseband).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = phy;
    config = Criterion::default();
    targets = bench_fft, bench_ble_single_tone, bench_dot11b, bench_ofdm, bench_zigbee, bench_backscatter_ssb
}
criterion_main!(phy);
