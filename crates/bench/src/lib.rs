//! # interscatter-bench
//!
//! The Criterion benchmark harness regenerating every table and figure of
//! the Interscatter paper's evaluation. The benches live under `benches/`;
//! this library only provides small shared helpers so each bench file stays
//! focused on the experiment it regenerates.
//!
//! Run the full harness with `cargo bench --workspace`. Each bench prints
//! the same rows/series the paper reports (via the experiment runners in
//! `interscatter-sim`) and then times the runner so regressions in the
//! simulation pipelines show up as benchmark regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints an experiment report exactly once per bench invocation.
///
/// Criterion calls the measured closure many times; the textual table that
/// reproduces the paper's figure only needs to be emitted once.
pub struct ReportOnce {
    printed: std::sync::Once,
}

impl ReportOnce {
    /// Creates a new one-shot printer.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        ReportOnce {
            printed: std::sync::Once::new(),
        }
    }

    /// Prints `text` the first time it is called; subsequent calls are
    /// no-ops.
    pub fn print(&self, text: &str) {
        self.printed.call_once(|| {
            println!("\n{text}");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_once_prints_only_once() {
        let once = ReportOnce::new();
        once.print("first");
        once.print("second");
        // No panic and no way to print twice; the Once guarantees it.
    }
}
