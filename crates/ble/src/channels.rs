//! The BLE 2.4 GHz channel map and its relationship to Wi-Fi channels.
//!
//! BLE divides the 2400–2483.5 MHz ISM band into 40 RF channels of 2 MHz.
//! The three *advertising* channels are deliberately placed to dodge the
//! centres of Wi-Fi channels 1, 6 and 11 (paper Fig. 3):
//!
//! * channel 37 at 2402 MHz (below Wi-Fi channel 1),
//! * channel 38 at 2426 MHz (between Wi-Fi channels 1 and 6),
//! * channel 39 at 2480 MHz (above Wi-Fi channel 11).
//!
//! Interscatter backscatters advertisements on channel 38 and shifts them by
//! tens of MHz to land inside Wi-Fi channel 11 (2462 MHz) or ZigBee channel
//! 14 (2420 MHz).

use crate::BleError;

/// A BLE RF channel index (0–39), newtype-wrapped so channel numbers cannot
/// be confused with Wi-Fi channel numbers in the simulation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BleChannel(u8);

/// The three BLE advertising channels.
pub const ADVERTISING_CHANNELS: [BleChannel; 3] = [BleChannel(37), BleChannel(38), BleChannel(39)];

impl BleChannel {
    /// Creates a channel, validating the index.
    pub fn new(index: u8) -> Result<Self, BleError> {
        if index > 39 {
            Err(BleError::InvalidChannel(index))
        } else {
            Ok(BleChannel(index))
        }
    }

    /// Advertising channel 37 (2402 MHz).
    pub const ADV_37: BleChannel = BleChannel(37);
    /// Advertising channel 38 (2426 MHz).
    pub const ADV_38: BleChannel = BleChannel(38);
    /// Advertising channel 39 (2480 MHz).
    pub const ADV_39: BleChannel = BleChannel(39);

    /// The channel index (0–39).
    pub fn index(self) -> u8 {
        self.0
    }

    /// True for the three advertising channels.
    pub fn is_advertising(self) -> bool {
        matches!(self.0, 37..=39)
    }

    /// Centre frequency in Hz.
    ///
    /// Per the Bluetooth Core specification the advertising channels sit at
    /// 2402, 2426 and 2480 MHz; the 37 data channels fill the remaining 2 MHz
    /// slots from 2404 to 2478 MHz.
    pub fn center_freq_hz(self) -> f64 {
        let mhz = match self.0 {
            37 => 2402.0,
            38 => 2426.0,
            39 => 2480.0,
            // Data channels 0..=10 occupy 2404..=2424 MHz,
            // data channels 11..=36 occupy 2428..=2478 MHz.
            d if d <= 10 => 2404.0 + 2.0 * f64::from(d),
            d => 2428.0 + 2.0 * f64::from(d - 11),
        };
        mhz * 1e6
    }

    /// Ensures this channel is an advertising channel.
    pub fn require_advertising(self) -> Result<Self, BleError> {
        if self.is_advertising() {
            Ok(self)
        } else {
            Err(BleError::NotAdvertisingChannel(self.0))
        }
    }
}

/// Channel bandwidth of a BLE channel in Hz (2 MHz grid, ~1 MHz occupied for
/// 1 Mbit/s GFSK).
pub const BLE_CHANNEL_BANDWIDTH_HZ: f64 = 2e6;

/// Frequency deviation of the BLE GFSK modulation: a `1` bit is ~+250 kHz,
/// a `0` bit is ~−250 kHz from the carrier.
pub const BLE_FREQ_DEVIATION_HZ: f64 = 250e3;

/// BLE LE 1M PHY symbol (bit) rate in bits per second.
pub const BLE_BIT_RATE: f64 = 1e6;

/// Centre frequency in Hz of an IEEE 802.11b/g channel (1–13).
pub fn wifi_channel_freq_hz(channel: u8) -> f64 {
    assert!((1..=13).contains(&channel), "Wi-Fi channel must be 1..=13");
    (2407.0 + 5.0 * f64::from(channel)) * 1e6
}

/// Centre frequency in Hz of an IEEE 802.15.4 (ZigBee) 2.4 GHz channel
/// (11–26).
pub fn zigbee_channel_freq_hz(channel: u8) -> f64 {
    assert!(
        (11..=26).contains(&channel),
        "ZigBee channel must be 11..=26"
    );
    (2405.0 + 5.0 * f64::from(channel - 11)) * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertising_channel_frequencies_match_the_spec() {
        assert_eq!(BleChannel::ADV_37.center_freq_hz(), 2402e6);
        assert_eq!(BleChannel::ADV_38.center_freq_hz(), 2426e6);
        assert_eq!(BleChannel::ADV_39.center_freq_hz(), 2480e6);
        for ch in ADVERTISING_CHANNELS {
            assert!(ch.is_advertising());
            assert!(ch.require_advertising().is_ok());
        }
    }

    #[test]
    fn data_channel_frequencies_fill_the_band() {
        assert_eq!(BleChannel::new(0).unwrap().center_freq_hz(), 2404e6);
        assert_eq!(BleChannel::new(10).unwrap().center_freq_hz(), 2424e6);
        assert_eq!(BleChannel::new(11).unwrap().center_freq_hz(), 2428e6);
        assert_eq!(BleChannel::new(36).unwrap().center_freq_hz(), 2478e6);
        assert!(!BleChannel::new(5).unwrap().is_advertising());
        assert!(BleChannel::new(5).unwrap().require_advertising().is_err());
    }

    #[test]
    fn all_channels_are_distinct_frequencies() {
        let mut freqs: Vec<f64> = (0..=39)
            .map(|i| BleChannel::new(i).unwrap().center_freq_hz())
            .collect();
        freqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in freqs.windows(2) {
            assert!(
                w[1] - w[0] >= 2e6 - 1.0,
                "channels closer than 2 MHz: {w:?}"
            );
        }
    }

    #[test]
    fn invalid_channel_is_rejected() {
        assert_eq!(
            BleChannel::new(40).unwrap_err(),
            BleError::InvalidChannel(40)
        );
    }

    #[test]
    fn wifi_channel_frequencies() {
        assert_eq!(wifi_channel_freq_hz(1), 2412e6);
        assert_eq!(wifi_channel_freq_hz(6), 2437e6);
        assert_eq!(wifi_channel_freq_hz(11), 2462e6);
    }

    #[test]
    fn zigbee_channel_frequencies() {
        assert_eq!(zigbee_channel_freq_hz(11), 2405e6);
        // The paper's ZigBee experiment uses channel 14 at 2.420 GHz.
        assert_eq!(zigbee_channel_freq_hz(14), 2420e6);
        assert_eq!(zigbee_channel_freq_hz(26), 2480e6);
    }

    #[test]
    fn paper_fig3_geometry_offsets() {
        // The offsets the paper exploits: BLE 38 -> Wi-Fi 11 is +36 MHz,
        // BLE 38 -> ZigBee 14 is -6 MHz; the prototype uses a 35.75 MHz shift
        // to sit just inside Wi-Fi channel 11's 22 MHz bandwidth.
        let d_wifi = wifi_channel_freq_hz(11) - BleChannel::ADV_38.center_freq_hz();
        assert_eq!(d_wifi, 36e6);
        let d_zig = zigbee_channel_freq_hz(14) - BleChannel::ADV_38.center_freq_hz();
        assert_eq!(d_zig, -6e6);
    }

    #[test]
    #[should_panic(expected = "Wi-Fi channel")]
    fn wifi_channel_out_of_range_panics() {
        let _ = wifi_channel_freq_hz(14);
    }

    #[test]
    #[should_panic(expected = "ZigBee channel")]
    fn zigbee_channel_out_of_range_panics() {
        let _ = zigbee_channel_freq_hz(27);
    }
}
