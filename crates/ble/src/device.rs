//! Impairment profiles for the commodity BLE transmitters evaluated in the
//! paper (§4.1, Fig. 9): the TI CC2650 development kit, the Samsung Galaxy
//! S5 smartphone, and the Moto 360 (2nd gen) smartwatch.
//!
//! The single-tone trick works on all three, but real radios are not ideal:
//! they have a carrier-frequency offset (crystal tolerance), phase noise, and
//! different maximum transmit powers. The profiles here are synthetic but
//! chosen to exercise the same degradations the measurement campaign saw —
//! in particular, the phone/watch antennas could only be measured over the
//! air, and class-1 devices can transmit at up to +20 dBm (Fig. 10 sweeps
//! 0/4/10/20 dBm).

use crate::gfsk::{GfskConfig, GfskModulator};
use crate::BleError;
use interscatter_dsp::iq::frequency_shift;
use interscatter_dsp::Cplx;
use rand::Rng;

/// The BLE transmit-power settings swept in Fig. 10 of the paper.
pub const FIG10_TX_POWERS_DBM: [f64; 4] = [0.0, 4.0, 10.0, 20.0];

/// A named BLE transmitter model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BleDeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Default transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Carrier-frequency offset in Hz (crystal error; ±40 ppm allowed by the
    /// spec is ±96 kHz at 2.4 GHz).
    pub carrier_offset_hz: f64,
    /// RMS phase noise in radians applied as a random-walk process.
    pub phase_noise_rms_rad: f64,
    /// Advertising interval in seconds.
    pub advertising_interval_s: f64,
    /// Whether the device exposes an antenna connector (the TI kit does; the
    /// Android devices were measured over the air, which adds the antenna
    /// gain uncertainty to the link budget).
    pub has_antenna_connector: bool,
}

impl BleDeviceProfile {
    /// TI CC2650 LaunchPad — the reference device with an antenna connector.
    pub fn ti_cc2650() -> Self {
        BleDeviceProfile {
            name: "TI CC2650",
            tx_power_dbm: 0.0,
            carrier_offset_hz: 5e3,
            phase_noise_rms_rad: 0.01,
            advertising_interval_s: 0.020,
            has_antenna_connector: true,
        }
    }

    /// Samsung Galaxy S5 smartphone.
    pub fn galaxy_s5() -> Self {
        BleDeviceProfile {
            name: "Samsung Galaxy S5",
            tx_power_dbm: 0.0,
            carrier_offset_hz: 22e3,
            phase_noise_rms_rad: 0.03,
            advertising_interval_s: 0.040,
            has_antenna_connector: false,
        }
    }

    /// Moto 360 (2nd generation) smartwatch.
    pub fn moto360() -> Self {
        BleDeviceProfile {
            name: "Moto 360 (2nd gen)",
            tx_power_dbm: 0.0,
            carrier_offset_hz: -35e3,
            phase_noise_rms_rad: 0.05,
            advertising_interval_s: 0.040,
            has_antenna_connector: false,
        }
    }

    /// The three devices used in Fig. 9, in the paper's order.
    pub fn fig9_devices() -> [BleDeviceProfile; 3] {
        [Self::ti_cc2650(), Self::galaxy_s5(), Self::moto360()]
    }

    /// Returns a copy of this profile with a different transmit power (the
    /// Fig. 10 sweep raises the TI device to 4/10/20 dBm).
    pub fn with_tx_power(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = dbm;
        self
    }

    /// Modulates a bit stream through this device: ideal GFSK plus the
    /// device's carrier offset and phase noise, scaled to the transmit power
    /// under the workspace convention that unit amplitude is 0 dBm.
    pub fn transmit<R: Rng>(
        &self,
        bits: &[u8],
        config: GfskConfig,
        rng: &mut R,
    ) -> Result<Vec<Cplx>, BleError> {
        let modulator = GfskModulator::new(config)?;
        let clean = modulator.modulate(bits, rng.gen_range(0.0..std::f64::consts::TAU));
        let offset = frequency_shift(&clean, self.carrier_offset_hz, config.sample_rate, 0.0);
        let amplitude = interscatter_dsp::units::db_to_amplitude(self.tx_power_dbm);
        // Apply a random-walk phase noise process.
        let mut phase_error = 0.0f64;
        let step = self.phase_noise_rms_rad / 8.0;
        Ok(offset
            .into_iter()
            .map(|s| {
                phase_error += rng.gen_range(-step..=step);
                s * Cplx::expj(phase_error) * amplitude
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::iq::{instantaneous_frequency, rssi_dbm};
    use rand::SeedableRng;

    #[test]
    fn profiles_are_distinct_and_named() {
        let devs = BleDeviceProfile::fig9_devices();
        assert_eq!(devs.len(), 3);
        assert_ne!(devs[0].name, devs[1].name);
        assert_ne!(devs[1].name, devs[2].name);
        assert!(devs[0].has_antenna_connector);
        assert!(!devs[1].has_antenna_connector);
        assert!(!devs[2].has_antenna_connector);
    }

    #[test]
    fn with_tx_power_overrides_only_power() {
        let base = BleDeviceProfile::ti_cc2650();
        let boosted = base.with_tx_power(20.0);
        assert_eq!(boosted.tx_power_dbm, 20.0);
        assert_eq!(boosted.carrier_offset_hz, base.carrier_offset_hz);
        assert_eq!(FIG10_TX_POWERS_DBM, [0.0, 4.0, 10.0, 20.0]);
    }

    #[test]
    fn transmit_power_sets_rssi_at_reference_plane() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = GfskConfig::default();
        let bits = vec![1u8; 200];
        let dev = BleDeviceProfile::ti_cc2650().with_tx_power(10.0);
        let wave = dev.transmit(&bits, cfg, &mut rng).unwrap();
        let rssi = rssi_dbm(&wave);
        assert!((rssi - 10.0).abs() < 0.5, "RSSI at antenna {rssi} dBm");
    }

    #[test]
    fn carrier_offset_shows_up_in_the_tone() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = GfskConfig::default();
        let bits = vec![1u8; 400];
        let dev = BleDeviceProfile::moto360();
        let wave = dev.transmit(&bits, cfg, &mut rng).unwrap();
        let inst = instantaneous_frequency(&wave, cfg.sample_rate);
        let mid = &inst[500..inst.len() - 500];
        let mean: f64 = mid.iter().sum::<f64>() / mid.len() as f64;
        // Expected: +250 kHz deviation plus the device's -35 kHz offset.
        assert!((mean - (250e3 - 35e3)).abs() < 20e3, "tone at {mean} Hz");
    }

    #[test]
    fn noisier_devices_have_less_pure_tones() {
        let cfg = GfskConfig::default();
        let bits = vec![1u8; 400];
        let measure = |dev: &BleDeviceProfile, seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let wave = dev.transmit(&bits, cfg, &mut rng).unwrap();
            crate::single_tone::tone_quality(&wave, cfg.sample_rate).frequency_std_hz
        };
        let ti = measure(&BleDeviceProfile::ti_cc2650(), 3);
        let watch = measure(&BleDeviceProfile::moto360(), 3);
        assert!(
            watch > ti,
            "watch ({watch} Hz std) should be noisier than the TI kit ({ti} Hz std)"
        );
    }
}
