//! GFSK modulation and demodulation for BLE LE 1M.
//!
//! The modulator follows the standard chain: NRZ-encode the bit stream,
//! sample-and-hold upsample to the simulation rate, smooth with the Gaussian
//! filter (BT = 0.5), then frequency-modulate with a ±250 kHz deviation. The
//! output is a constant-envelope complex-baseband waveform centred on the
//! BLE channel.
//!
//! The demodulator is a simple FM discriminator (phase differencing) with
//! symbol-centre sampling — enough fidelity to validate packet round trips
//! and to measure the spectra of Fig. 9.

use crate::channels::{BLE_BIT_RATE, BLE_FREQ_DEVIATION_HZ};
use crate::BleError;
use interscatter_dsp::gaussian::GaussianPulse;
use interscatter_dsp::iq::instantaneous_frequency;
use interscatter_dsp::Cplx;

/// GFSK modulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GfskConfig {
    /// Output sample rate in Hz. Must be an integer multiple of the bit rate.
    pub sample_rate: f64,
    /// Gaussian filter bandwidth–time product (0.5 for BLE).
    pub bt: f64,
    /// Peak frequency deviation in Hz (≈250 kHz for BLE).
    pub deviation_hz: f64,
    /// Bit rate in bits per second (1 Mbit/s for LE 1M).
    pub bit_rate: f64,
}

impl Default for GfskConfig {
    fn default() -> Self {
        GfskConfig {
            sample_rate: 8e6,
            bt: 0.5,
            deviation_hz: BLE_FREQ_DEVIATION_HZ,
            bit_rate: BLE_BIT_RATE,
        }
    }
}

impl GfskConfig {
    /// Samples per bit implied by the configuration.
    pub fn samples_per_bit(&self) -> usize {
        (self.sample_rate / self.bit_rate).round() as usize
    }

    /// Validates that the configuration is internally consistent.
    pub fn validate(&self) -> Result<(), BleError> {
        let spb = self.sample_rate / self.bit_rate;
        if spb < 2.0 || (spb - spb.round()).abs() > 1e-9 {
            return Err(BleError::Dsp(
                interscatter_dsp::DspError::InvalidFilterSpec(
                    "sample_rate must be an integer multiple (>=2) of bit_rate",
                ),
            ));
        }
        if self.bt <= 0.0 || self.deviation_hz <= 0.0 {
            return Err(BleError::Dsp(
                interscatter_dsp::DspError::InvalidFilterSpec("BT and deviation must be positive"),
            ));
        }
        Ok(())
    }
}

/// A GFSK modulator.
#[derive(Debug, Clone)]
pub struct GfskModulator {
    config: GfskConfig,
    pulse: GaussianPulse,
}

impl GfskModulator {
    /// Creates a modulator for the given configuration.
    pub fn new(config: GfskConfig) -> Result<Self, BleError> {
        config.validate()?;
        let pulse = GaussianPulse::new(config.bt, config.samples_per_bit(), 3)?;
        Ok(GfskModulator { config, pulse })
    }

    /// The configuration in use.
    pub fn config(&self) -> &GfskConfig {
        &self.config
    }

    /// Modulates a bit stream into complex baseband samples at the
    /// configured sample rate. `phase0` is the initial oscillator phase.
    pub fn modulate(&self, bits: &[u8], phase0: f64) -> Vec<Cplx> {
        let spb = self.config.samples_per_bit();
        // NRZ encode and sample-and-hold upsample.
        let mut nrz = Vec::with_capacity(bits.len() * spb);
        for &b in bits {
            let level = if b & 1 == 1 { 1.0 } else { -1.0 };
            nrz.extend(std::iter::repeat_n(level, spb));
        }
        // Gaussian-smooth the frequency command.
        let freq_cmd = self.pulse.filter(&nrz);
        // Integrate frequency into phase: φ[n+1] = φ[n] + 2π·Δf·cmd/fs.
        let k = 2.0 * std::f64::consts::PI * self.config.deviation_hz / self.config.sample_rate;
        let mut phase = phase0;
        freq_cmd
            .iter()
            .map(|&f| {
                let sample = Cplx::expj(phase);
                phase += k * f;
                sample
            })
            .collect()
    }
}

/// A GFSK demodulator (FM discriminator + symbol-centre slicer).
#[derive(Debug, Clone)]
pub struct GfskDemodulator {
    config: GfskConfig,
}

impl GfskDemodulator {
    /// Creates a demodulator with the same configuration as the modulator.
    pub fn new(config: GfskConfig) -> Result<Self, BleError> {
        config.validate()?;
        Ok(GfskDemodulator { config })
    }

    /// Demodulates a waveform into hard bit decisions. The waveform is
    /// assumed to start at a bit boundary (packet detection/timing recovery
    /// is handled by the receivers in the `sim` crate).
    pub fn demodulate(&self, samples: &[Cplx]) -> Vec<u8> {
        let spb = self.config.samples_per_bit();
        if samples.len() < spb {
            return Vec::new();
        }
        let inst = instantaneous_frequency(samples, self.config.sample_rate);
        let n_bits = samples.len() / spb;
        let mut bits = Vec::with_capacity(n_bits);
        for b in 0..n_bits {
            // Average the instantaneous frequency over the central half of
            // the bit period to dodge the Gaussian-smoothed transitions.
            let start = b * spb + spb / 4;
            let end = (b * spb + 3 * spb / 4).min(inst.len());
            if start >= end {
                break;
            }
            let avg: f64 = inst[start..end].iter().sum::<f64>() / (end - start) as f64;
            bits.push(u8::from(avg >= 0.0));
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::iq::mean_power;
    use rand::{Rng, SeedableRng};

    fn config() -> GfskConfig {
        GfskConfig::default()
    }

    #[test]
    fn config_validation() {
        assert!(config().validate().is_ok());
        let bad = GfskConfig {
            sample_rate: 1.5e6,
            ..config()
        };
        assert!(bad.validate().is_err());
        let bad = GfskConfig {
            bt: 0.0,
            ..config()
        };
        assert!(bad.validate().is_err());
        let bad = GfskConfig {
            sample_rate: 1e6,
            ..config()
        };
        assert!(bad.validate().is_err(), "1 sample per bit is too few");
        assert_eq!(config().samples_per_bit(), 8);
    }

    #[test]
    fn constant_envelope() {
        let modulator = GfskModulator::new(config()).unwrap();
        let bits: Vec<u8> = (0..64).map(|i| (i % 3 == 0) as u8).collect();
        let wave = modulator.modulate(&bits, 0.2);
        for s in &wave {
            assert!(
                (s.abs() - 1.0).abs() < 1e-12,
                "GFSK must be constant envelope"
            );
        }
        assert!((mean_power(&wave) - 1.0).abs() < 1e-12);
        assert_eq!(wave.len(), bits.len() * 8);
    }

    #[test]
    fn random_bits_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let bits: Vec<u8> = (0..256).map(|_| rng.gen_range(0..=1u8)).collect();
        let modulator = GfskModulator::new(config()).unwrap();
        let demodulator = GfskDemodulator::new(config()).unwrap();
        let wave = modulator.modulate(&bits, 0.0);
        let decoded = demodulator.demodulate(&wave);
        assert_eq!(decoded.len(), bits.len());
        let errors: usize = decoded.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert_eq!(errors, 0, "noiseless GFSK round trip must be error-free");
    }

    #[test]
    fn all_ones_is_a_positive_tone_and_all_zeros_negative() {
        let modulator = GfskModulator::new(config()).unwrap();
        let ones = modulator.modulate(&[1u8; 100], 0.0);
        let inst = instantaneous_frequency(&ones, config().sample_rate);
        // Skip the filter edges and check the steady state.
        for &f in &inst[40..inst.len() - 40] {
            assert!(
                (f - BLE_FREQ_DEVIATION_HZ).abs() < 1e3,
                "expected +250 kHz tone, got {f}"
            );
        }
        let zeros = modulator.modulate(&[0u8; 100], 0.0);
        let inst = instantaneous_frequency(&zeros, config().sample_rate);
        for &f in &inst[40..inst.len() - 40] {
            assert!(
                (f + BLE_FREQ_DEVIATION_HZ).abs() < 1e3,
                "expected -250 kHz tone, got {f}"
            );
        }
    }

    #[test]
    fn alternating_bits_have_reduced_deviation() {
        // The Gaussian filter (BT=0.5) prevents the frequency from reaching
        // full deviation on a 0101... pattern — the classic GFSK eye closure.
        let modulator = GfskModulator::new(config()).unwrap();
        let alternating: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let wave = modulator.modulate(&alternating, 0.0);
        let inst = instantaneous_frequency(&wave, config().sample_rate);
        let peak = inst[50..inst.len() - 50]
            .iter()
            .cloned()
            .fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(
            peak < BLE_FREQ_DEVIATION_HZ * 0.99,
            "alternating pattern should not reach full deviation (peak {peak})"
        );
        assert!(peak > BLE_FREQ_DEVIATION_HZ * 0.3);
    }

    #[test]
    fn demodulate_short_input() {
        let demodulator = GfskDemodulator::new(config()).unwrap();
        assert!(demodulator.demodulate(&[]).is_empty());
        assert!(demodulator.demodulate(&[Cplx::ONE; 3]).is_empty());
    }

    #[test]
    fn higher_sample_rates_work() {
        let cfg = GfskConfig {
            sample_rate: 88e6,
            ..config()
        };
        let modulator = GfskModulator::new(cfg).unwrap();
        let demodulator = GfskDemodulator::new(cfg).unwrap();
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1];
        let wave = modulator.modulate(&bits, 0.0);
        assert_eq!(wave.len(), bits.len() * 88);
        assert_eq!(demodulator.demodulate(&wave), bits);
    }
}
