//! # interscatter-ble
//!
//! A Bluetooth Low Energy transmitter/receiver model for the Interscatter
//! (SIGCOMM 2016) reproduction. Interscatter uses a commodity BLE device as
//! the RF *source* for backscatter: by choosing the advertising payload bits
//! carefully, the whitened on-air bit stream becomes constant, and the GFSK
//! modulator then emits a single frequency tone (§2.2 of the paper). The tag
//! backscatters that tone into an 802.11b or ZigBee packet.
//!
//! This crate models the pieces of BLE that matter for that trick:
//!
//! * [`channels`] — the 2.4 GHz channel map and the three advertising
//!   channels (37/38/39) straddling the Wi-Fi channels (paper Fig. 3).
//! * [`packet`] — advertising-PDU framing: preamble, access address, header,
//!   advertiser address, payload and CRC-24, with BLE data whitening.
//! * [`gfsk`] — the GFSK modulator (1 Mbit/s, BT = 0.5, ±250 kHz deviation)
//!   and an FM-discriminator demodulator used to validate round trips.
//! * [`single_tone`] — computing the payload bytes that turn the whitened
//!   payload section into a run of identical bits, plus verification helpers.
//! * [`device`] — impairment profiles for the three devices evaluated in the
//!   paper (TI CC2650, Samsung Galaxy S5, Moto 360 2nd gen): transmit power,
//!   carrier-frequency offset and phase-noise level.
//! * [`timing`] — advertising-packet timing used by the tag's state machine
//!   (56 µs of preamble+address+header, up to 248 µs of payload, the 4 µs
//!   guard interval).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channels;
pub mod device;
pub mod gfsk;
pub mod packet;
pub mod single_tone;
pub mod timing;

/// Errors produced by the BLE layer.
#[derive(Debug, Clone, PartialEq)]
pub enum BleError {
    /// Payload longer than the 31 bytes an advertising PDU can carry.
    PayloadTooLong {
        /// Bytes requested.
        requested: usize,
        /// Maximum allowed (31).
        max: usize,
    },
    /// The requested channel index is not a valid BLE RF channel (0–39).
    InvalidChannel(u8),
    /// The requested channel is not one of the three advertising channels.
    NotAdvertisingChannel(u8),
    /// A received packet failed CRC validation.
    CrcMismatch,
    /// A received waveform was too short to contain the requested structure.
    TruncatedWaveform {
        /// Samples available.
        have: usize,
        /// Samples needed.
        need: usize,
    },
    /// An underlying DSP error (filter/FFT misconfiguration).
    Dsp(interscatter_dsp::DspError),
}

impl core::fmt::Display for BleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BleError::PayloadTooLong { requested, max } => {
                write!(
                    f,
                    "advertising payload of {requested} bytes exceeds the {max}-byte limit"
                )
            }
            BleError::InvalidChannel(c) => write!(f, "invalid BLE RF channel {c}"),
            BleError::NotAdvertisingChannel(c) => {
                write!(
                    f,
                    "BLE channel {c} is not an advertising channel (37/38/39)"
                )
            }
            BleError::CrcMismatch => write!(f, "BLE CRC-24 mismatch"),
            BleError::TruncatedWaveform { have, need } => {
                write!(f, "waveform truncated: have {have} samples, need {need}")
            }
            BleError::Dsp(e) => write!(f, "DSP error: {e}"),
        }
    }
}

impl std::error::Error for BleError {}

impl From<interscatter_dsp::DspError> for BleError {
    fn from(e: interscatter_dsp::DspError) -> Self {
        BleError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_mention_key_fields() {
        let e = BleError::PayloadTooLong {
            requested: 40,
            max: 31,
        };
        assert!(e.to_string().contains("40") && e.to_string().contains("31"));
        assert!(BleError::InvalidChannel(99).to_string().contains("99"));
        assert!(BleError::NotAdvertisingChannel(12)
            .to_string()
            .contains("12"));
        assert!(BleError::CrcMismatch.to_string().contains("CRC"));
        let e = BleError::TruncatedWaveform { have: 1, need: 2 };
        assert!(e.to_string().contains('1') && e.to_string().contains('2'));
        let e: BleError = interscatter_dsp::DspError::EmptyInput("x").into();
        assert!(e.to_string().contains("DSP"));
    }
}
