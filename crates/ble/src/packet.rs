//! BLE advertising-packet framing and whitening.
//!
//! The over-the-air structure (paper Fig. 5) is:
//!
//! ```text
//! | Preamble | Access Address | PDU header | AdvA     | AdvData   | CRC    |
//! |  1 byte  |    4 bytes     |  2 bytes   | 6 bytes  | 0–31 B    | 3 bytes|
//! ```
//!
//! Only `AdvData` can be set freely by an application (and on Android only 24
//! of the 31 bytes, which the single-tone planner accounts for). The PDU
//! (header + AdvA + AdvData) and CRC are whitened with the x^7+x^4+1 LFSR
//! seeded from the RF channel index; the preamble and access address are
//! transmitted unwhitened.

use crate::channels::BleChannel;
use crate::BleError;
use interscatter_dsp::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};
use interscatter_dsp::crc::{ble_crc24, BLE_ADV_CRC_INIT};
use interscatter_dsp::lfsr::Lfsr7;

/// The fixed advertising-channel access address.
pub const ADV_ACCESS_ADDRESS: u32 = 0x8E89_BED6;

/// The BLE preamble byte for advertising packets (alternating 0/1 pattern;
/// 0xAA when the first access-address bit is 0).
pub const ADV_PREAMBLE: u8 = 0xAA;

/// Maximum number of AdvData bytes in a legacy advertising PDU.
pub const MAX_ADV_DATA_LEN: usize = 31;

/// Number of AdvData bytes an unprivileged Android application can control
/// (the OS claims some AD structure overhead — paper §2.2 footnote 3).
pub const ANDROID_CONTROLLABLE_BYTES: usize = 24;

/// Advertising PDU types (the 4-bit `PDU Type` field of the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvPduType {
    /// Connectable undirected advertising (ADV_IND).
    AdvInd,
    /// Non-connectable undirected advertising (ADV_NONCONN_IND) — what a
    /// broadcast-only interscatter source uses.
    AdvNonconnInd,
    /// Scannable undirected advertising (ADV_SCAN_IND).
    AdvScanInd,
}

impl AdvPduType {
    fn code(self) -> u8 {
        match self {
            AdvPduType::AdvInd => 0b0000,
            AdvPduType::AdvNonconnInd => 0b0010,
            AdvPduType::AdvScanInd => 0b0110,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code & 0x0F {
            0b0000 => Some(AdvPduType::AdvInd),
            0b0010 => Some(AdvPduType::AdvNonconnInd),
            0b0110 => Some(AdvPduType::AdvScanInd),
            _ => None,
        }
    }
}

/// A BLE advertising packet with all fields the interscatter source needs to
/// control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvertisingPacket {
    /// PDU type.
    pub pdu_type: AdvPduType,
    /// 6-byte advertiser (MAC) address, little-endian on air.
    pub advertiser_address: [u8; 6],
    /// Application-controlled advertising data (0–31 bytes).
    pub adv_data: Vec<u8>,
}

impl AdvertisingPacket {
    /// Creates a non-connectable advertising packet with the given payload.
    pub fn new(advertiser_address: [u8; 6], adv_data: &[u8]) -> Result<Self, BleError> {
        if adv_data.len() > MAX_ADV_DATA_LEN {
            return Err(BleError::PayloadTooLong {
                requested: adv_data.len(),
                max: MAX_ADV_DATA_LEN,
            });
        }
        Ok(AdvertisingPacket {
            pdu_type: AdvPduType::AdvNonconnInd,
            advertiser_address,
            adv_data: adv_data.to_vec(),
        })
    }

    /// The 2-byte PDU header: PDU type, TxAdd/RxAdd flags (zero here), and
    /// the payload length (AdvA + AdvData).
    pub fn header(&self) -> [u8; 2] {
        let length = (6 + self.adv_data.len()) as u8;
        [self.pdu_type.code(), length]
    }

    /// The unwhitened PDU bytes: header, advertiser address, advertising
    /// data.
    pub fn pdu_bytes(&self) -> Vec<u8> {
        let mut pdu = Vec::with_capacity(2 + 6 + self.adv_data.len());
        pdu.extend_from_slice(&self.header());
        pdu.extend_from_slice(&self.advertiser_address);
        pdu.extend_from_slice(&self.adv_data);
        pdu
    }

    /// The CRC-24 over the unwhitened PDU, in transmission order.
    pub fn crc(&self) -> [u8; 3] {
        ble_crc24(&self.pdu_bytes(), BLE_ADV_CRC_INIT)
    }

    /// Serialises the packet to its on-air bit stream (LSB-first per byte)
    /// for transmission on `channel`: preamble and access address are sent
    /// in the clear, then the whitened PDU and CRC.
    pub fn to_air_bits(&self, channel: BleChannel) -> Result<Vec<u8>, BleError> {
        let channel = channel.require_advertising()?;
        let mut bits = Vec::new();
        bits.extend(bytes_to_bits_lsb(&[ADV_PREAMBLE]));
        bits.extend(bytes_to_bits_lsb(&ADV_ACCESS_ADDRESS.to_le_bytes()));

        let mut unwhitened = bytes_to_bits_lsb(&self.pdu_bytes());
        unwhitened.extend(bytes_to_bits_lsb(&self.crc()));
        let mut whitener = Lfsr7::ble_whitening_for_channel(channel.index());
        bits.extend(whitener.whiten(&unwhitened));
        Ok(bits)
    }

    /// Number of on-air bits of the packet (1 µs per bit at LE 1M).
    pub fn air_bits_len(&self) -> usize {
        8 * (1 + 4 + 2 + 6 + self.adv_data.len() + 3)
    }

    /// Parses a packet back from on-air bits (the output of
    /// [`AdvertisingPacket::to_air_bits`] or a demodulated stream), verifying
    /// the CRC.
    pub fn from_air_bits(bits: &[u8], channel: BleChannel) -> Result<Self, BleError> {
        let channel = channel.require_advertising()?;
        // Minimum: preamble + AA + header + AdvA + CRC = 1+4+2+6+3 = 16 bytes.
        if bits.len() < 16 * 8 {
            return Err(BleError::TruncatedWaveform {
                have: bits.len(),
                need: 16 * 8,
            });
        }
        let after_aa = &bits[(1 + 4) * 8..];
        let mut whitener = Lfsr7::ble_whitening_for_channel(channel.index());
        let dewhitened = whitener.whiten(after_aa);
        let bytes = bits_to_bytes_lsb(&dewhitened);
        let pdu_type = AdvPduType::from_code(bytes[0]).ok_or(BleError::CrcMismatch)?;
        let length = bytes[1] as usize;
        if !(6..=6 + MAX_ADV_DATA_LEN).contains(&length) || bytes.len() < 2 + length + 3 {
            return Err(BleError::TruncatedWaveform {
                have: bytes.len(),
                need: 2 + length.max(6) + 3,
            });
        }
        let mut advertiser_address = [0u8; 6];
        advertiser_address.copy_from_slice(&bytes[2..8]);
        let adv_data = bytes[8..2 + length].to_vec();
        let packet = AdvertisingPacket {
            pdu_type,
            advertiser_address,
            adv_data,
        };
        let expected_crc = packet.crc();
        let got_crc = &bytes[2 + length..2 + length + 3];
        if got_crc != expected_crc {
            return Err(BleError::CrcMismatch);
        }
        Ok(packet)
    }

    /// The bit offset (from the start of the packet) at which the AdvData
    /// payload begins on air. This is the instant from which the tag can
    /// start backscattering: everything before it — preamble, access
    /// address, header and advertiser address — is fixed by the standard.
    pub fn payload_bit_offset() -> usize {
        (1 + 4 + 2 + 6) * 8
    }

    /// The bit offset at which the CRC begins, i.e. the end of the
    /// controllable payload window.
    pub fn crc_bit_offset(&self) -> usize {
        Self::payload_bit_offset() + self.adv_data.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet(len: usize) -> AdvertisingPacket {
        let data: Vec<u8> = (0..len as u8).collect();
        AdvertisingPacket::new([0x10, 0x32, 0x54, 0x76, 0x98, 0xBA], &data).unwrap()
    }

    #[test]
    fn payload_length_limit_is_enforced() {
        assert!(AdvertisingPacket::new([0; 6], &[0u8; 31]).is_ok());
        let err = AdvertisingPacket::new([0; 6], &[0u8; 32]).unwrap_err();
        assert_eq!(
            err,
            BleError::PayloadTooLong {
                requested: 32,
                max: 31
            }
        );
    }

    #[test]
    fn header_encodes_type_and_length() {
        let p = sample_packet(10);
        let h = p.header();
        assert_eq!(h[0], 0b0010); // ADV_NONCONN_IND
        assert_eq!(h[1], 16); // 6-byte AdvA + 10-byte AdvData
    }

    #[test]
    fn air_bits_length_matches_field_sum() {
        let p = sample_packet(31);
        let bits = p.to_air_bits(BleChannel::ADV_38).unwrap();
        assert_eq!(bits.len(), p.air_bits_len());
        // 1+4+2+6+31+3 = 47 bytes = 376 bits = 376 µs at 1 Mbit/s.
        assert_eq!(bits.len(), 376);
    }

    #[test]
    fn round_trip_on_every_advertising_channel() {
        for ch in crate::channels::ADVERTISING_CHANNELS {
            let p = sample_packet(24);
            let bits = p.to_air_bits(ch).unwrap();
            let back = AdvertisingPacket::from_air_bits(&bits, ch).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn wrong_channel_dewhitening_fails_crc() {
        let p = sample_packet(20);
        let bits = p.to_air_bits(BleChannel::ADV_38).unwrap();
        let result = AdvertisingPacket::from_air_bits(&bits, BleChannel::ADV_37);
        assert!(
            result.is_err(),
            "dewhitening with the wrong channel must not validate"
        );
    }

    #[test]
    fn corrupted_bit_fails_crc() {
        let p = sample_packet(16);
        let mut bits = p.to_air_bits(BleChannel::ADV_39).unwrap();
        let idx = AdvertisingPacket::payload_bit_offset() + 5;
        bits[idx] ^= 1;
        assert_eq!(
            AdvertisingPacket::from_air_bits(&bits, BleChannel::ADV_39).unwrap_err(),
            BleError::CrcMismatch
        );
    }

    #[test]
    fn data_channel_is_rejected_for_advertising() {
        let p = sample_packet(4);
        assert!(p.to_air_bits(BleChannel::new(10).unwrap()).is_err());
    }

    #[test]
    fn truncated_bits_are_rejected() {
        let p = sample_packet(4);
        let bits = p.to_air_bits(BleChannel::ADV_38).unwrap();
        let err = AdvertisingPacket::from_air_bits(&bits[..100], BleChannel::ADV_38).unwrap_err();
        assert!(matches!(err, BleError::TruncatedWaveform { .. }));
    }

    #[test]
    fn preamble_and_access_address_are_unwhitened() {
        let p = sample_packet(0);
        let bits = p.to_air_bits(BleChannel::ADV_37).unwrap();
        assert_eq!(bits_to_bytes_lsb(&bits[..8]), vec![ADV_PREAMBLE]);
        assert_eq!(
            bits_to_bytes_lsb(&bits[8..40]),
            ADV_ACCESS_ADDRESS.to_le_bytes().to_vec()
        );
    }

    #[test]
    fn payload_offset_is_56_bits_after_preamble_and_aa_plus_header_and_adva() {
        // Paper §2.2: the tag uses preamble + access address + header
        // (56 µs) for detection; the payload then starts after AdvA. With the
        // 6-byte AdvA included the controllable region begins at 104 µs.
        assert_eq!(AdvertisingPacket::payload_bit_offset(), 104);
        let p = sample_packet(31);
        assert_eq!(p.crc_bit_offset(), 104 + 31 * 8);
    }

    #[test]
    fn different_payloads_produce_different_crcs() {
        let a = sample_packet(8);
        let mut b = a.clone();
        b.adv_data[3] ^= 0xFF;
        assert_ne!(a.crc(), b.crc());
    }
}
