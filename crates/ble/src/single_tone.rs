//! Turning a commodity BLE transmitter into a single-tone RF source (§2.2).
//!
//! BLE GFSK encodes a `1` as +250 kHz and a `0` as −250 kHz from the channel
//! centre. A long run of identical on-air bits therefore produces a constant
//! frequency — a single tone the backscatter tag can use as its carrier. The
//! obstacle is data whitening: the link layer XORs the PDU with the output of
//! the x^7+x^4+1 LFSR precisely so that long runs do not appear on air.
//!
//! Because the whitening sequence is fully determined by the advertising
//! channel number, we can invert it: setting each payload bit to the
//! corresponding whitening bit makes the *whitened* bit `0` (a −250 kHz
//! tone); setting it to the complement makes it `1` (+250 kHz). This module
//! computes those payload bytes for a given channel and payload length, and
//! provides a verifier that measures how pure the resulting tone is.

use crate::channels::BleChannel;
use crate::gfsk::{GfskConfig, GfskModulator};
use crate::packet::{AdvertisingPacket, MAX_ADV_DATA_LEN};
use crate::BleError;
use interscatter_dsp::bits::bits_to_bytes_lsb;
use interscatter_dsp::iq::instantaneous_frequency;
use interscatter_dsp::lfsr::Lfsr7;
use interscatter_dsp::Cplx;

/// Which of the two GFSK tones the crafted payload produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TonePolarity {
    /// All whitened payload bits are `1`: the carrier sits ≈ +250 kHz above
    /// the channel centre.
    High,
    /// All whitened payload bits are `0`: the carrier sits ≈ −250 kHz below
    /// the channel centre.
    Low,
}

impl TonePolarity {
    /// The frequency offset from the channel centre this polarity produces.
    pub fn frequency_offset_hz(self) -> f64 {
        match self {
            TonePolarity::High => crate::channels::BLE_FREQ_DEVIATION_HZ,
            TonePolarity::Low => -crate::channels::BLE_FREQ_DEVIATION_HZ,
        }
    }
}

/// Computes the AdvData payload bytes that produce a constant on-air bit
/// stream during the payload section of an advertising packet transmitted on
/// `channel`.
///
/// The whitening register is seeded from the channel index and clocked over
/// the header (2 bytes) and advertiser address (6 bytes) before reaching the
/// payload, so the returned bytes depend on the channel but not on the
/// header/address *values* (whitening consumes one bit per transmitted bit
/// regardless of value).
pub fn single_tone_payload(
    channel: BleChannel,
    payload_len: usize,
    polarity: TonePolarity,
) -> Result<Vec<u8>, BleError> {
    let channel = channel.require_advertising()?;
    if payload_len > MAX_ADV_DATA_LEN {
        return Err(BleError::PayloadTooLong {
            requested: payload_len,
            max: MAX_ADV_DATA_LEN,
        });
    }
    let mut whitener = Lfsr7::ble_whitening_for_channel(channel.index());
    // Skip the whitening bits consumed by the header and advertiser address
    // (8 bytes = 64 bits) so we align with the payload section.
    let _ = whitener.sequence((2 + 6) * 8);
    let wseq = whitener.sequence(payload_len * 8);
    let payload_bits: Vec<u8> = wseq
        .iter()
        .map(|&w| match polarity {
            // data ^ whitening = 0  =>  data = whitening
            TonePolarity::Low => w,
            // data ^ whitening = 1  =>  data = !whitening
            TonePolarity::High => w ^ 1,
        })
        .collect();
    Ok(bits_to_bytes_lsb(&payload_bits))
}

/// Builds a complete advertising packet whose payload section is a single
/// tone on the given channel.
pub fn single_tone_packet(
    channel: BleChannel,
    advertiser_address: [u8; 6],
    payload_len: usize,
    polarity: TonePolarity,
) -> Result<AdvertisingPacket, BleError> {
    let payload = single_tone_payload(channel, payload_len, polarity)?;
    AdvertisingPacket::new(advertiser_address, &payload)
}

/// The result of analysing how tone-like the payload section of a modulated
/// packet is.
#[derive(Debug, Clone, Copy)]
pub struct ToneQuality {
    /// Mean instantaneous frequency over the payload window, Hz from the
    /// channel centre.
    pub mean_frequency_hz: f64,
    /// Standard deviation of the instantaneous frequency over the window, Hz.
    /// A pure tone has (near-)zero deviation; a random payload has hundreds
    /// of kilohertz.
    pub frequency_std_hz: f64,
    /// Fraction of payload samples whose instantaneous frequency is within
    /// 50 kHz of the mean — a simple "tone purity" score in [0, 1].
    pub purity: f64,
}

/// Modulates the packet with the given GFSK configuration and measures the
/// tone quality over its payload window.
pub fn analyze_payload_tone(
    packet: &AdvertisingPacket,
    channel: BleChannel,
    config: GfskConfig,
) -> Result<ToneQuality, BleError> {
    let bits = packet.to_air_bits(channel)?;
    let modulator = GfskModulator::new(config)?;
    let wave = modulator.modulate(&bits, 0.0);
    let spb = config.samples_per_bit();
    let start = AdvertisingPacket::payload_bit_offset() * spb;
    let end = packet.crc_bit_offset() * spb;
    if wave.len() < end || end <= start {
        return Err(BleError::TruncatedWaveform {
            have: wave.len(),
            need: end,
        });
    }
    Ok(tone_quality(&wave[start..end], config.sample_rate))
}

/// Measures tone quality over an arbitrary IQ window.
pub fn tone_quality(window: &[Cplx], sample_rate: f64) -> ToneQuality {
    let inst = instantaneous_frequency(window, sample_rate);
    if inst.is_empty() {
        return ToneQuality {
            mean_frequency_hz: 0.0,
            frequency_std_hz: 0.0,
            purity: 0.0,
        };
    }
    let mean = inst.iter().sum::<f64>() / inst.len() as f64;
    let var = inst.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / inst.len() as f64;
    let within = inst.iter().filter(|f| (**f - mean).abs() < 50e3).count();
    ToneQuality {
        mean_frequency_hz: mean,
        frequency_std_hz: var.sqrt(),
        purity: within as f64 / inst.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::ADVERTISING_CHANNELS;
    use interscatter_dsp::lfsr::Lfsr7;
    use rand::{Rng, SeedableRng};

    const ADDR: [u8; 6] = [0xC0, 0xFF, 0xEE, 0x12, 0x34, 0x56];

    #[test]
    fn payload_produces_constant_whitened_bits() {
        for ch in ADVERTISING_CHANNELS {
            for (polarity, expected) in [(TonePolarity::Low, 0u8), (TonePolarity::High, 1u8)] {
                let packet = single_tone_packet(ch, ADDR, 24, polarity).unwrap();
                let bits = packet.to_air_bits(ch).unwrap();
                let start = AdvertisingPacket::payload_bit_offset();
                let end = packet.crc_bit_offset();
                for (i, &b) in bits[start..end].iter().enumerate() {
                    assert_eq!(
                        b,
                        expected,
                        "channel {} polarity {:?} bit {} not constant",
                        ch.index(),
                        polarity,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn payload_differs_per_channel() {
        let p37 = single_tone_payload(BleChannel::ADV_37, 24, TonePolarity::Low).unwrap();
        let p38 = single_tone_payload(BleChannel::ADV_38, 24, TonePolarity::Low).unwrap();
        let p39 = single_tone_payload(BleChannel::ADV_39, 24, TonePolarity::Low).unwrap();
        assert_ne!(p37, p38);
        assert_ne!(p38, p39);
    }

    #[test]
    fn high_and_low_polarities_are_bit_complements() {
        let lo = single_tone_payload(BleChannel::ADV_38, 16, TonePolarity::Low).unwrap();
        let hi = single_tone_payload(BleChannel::ADV_38, 16, TonePolarity::High).unwrap();
        for (a, b) in lo.iter().zip(&hi) {
            assert_eq!(a ^ b, 0xFF);
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        assert!(single_tone_payload(BleChannel::ADV_38, 32, TonePolarity::Low).is_err());
        assert!(single_tone_payload(BleChannel::new(3).unwrap(), 10, TonePolarity::Low).is_err());
    }

    #[test]
    fn crafted_packet_round_trips_through_framing() {
        // The crafted payload is an ordinary valid packet: it must survive
        // serialisation and CRC validation like any other.
        let packet = single_tone_packet(BleChannel::ADV_38, ADDR, 31, TonePolarity::High).unwrap();
        let bits = packet.to_air_bits(BleChannel::ADV_38).unwrap();
        let back = AdvertisingPacket::from_air_bits(&bits, BleChannel::ADV_38).unwrap();
        assert_eq!(back, packet);
    }

    #[test]
    fn tone_purity_beats_random_payload() {
        // This is the Fig. 9 comparison in miniature: the crafted payload
        // must produce a far purer tone than a random advertisement.
        let cfg = GfskConfig::default();
        let crafted = single_tone_packet(BleChannel::ADV_38, ADDR, 31, TonePolarity::High).unwrap();
        let crafted_q = analyze_payload_tone(&crafted, BleChannel::ADV_38, cfg).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let random_payload: Vec<u8> = (0..31).map(|_| rng.gen()).collect();
        let random = AdvertisingPacket::new(ADDR, &random_payload).unwrap();
        let random_q = analyze_payload_tone(&random, BleChannel::ADV_38, cfg).unwrap();

        assert!(
            crafted_q.purity > 0.98,
            "crafted purity {}",
            crafted_q.purity
        );
        assert!(
            crafted_q.frequency_std_hz < 20e3,
            "crafted std {}",
            crafted_q.frequency_std_hz
        );
        assert!(
            (crafted_q.mean_frequency_hz - 250e3).abs() < 20e3,
            "crafted tone at {}",
            crafted_q.mean_frequency_hz
        );
        assert!(
            random_q.frequency_std_hz > 5.0 * crafted_q.frequency_std_hz.max(1.0),
            "random payload should spread energy (std {})",
            random_q.frequency_std_hz
        );
    }

    #[test]
    fn low_polarity_tone_sits_below_the_carrier() {
        let cfg = GfskConfig::default();
        let packet = single_tone_packet(BleChannel::ADV_37, ADDR, 31, TonePolarity::Low).unwrap();
        let q = analyze_payload_tone(&packet, BleChannel::ADV_37, cfg).unwrap();
        assert!(
            (q.mean_frequency_hz + 250e3).abs() < 20e3,
            "tone at {}",
            q.mean_frequency_hz
        );
        assert_eq!(TonePolarity::Low.frequency_offset_hz(), -250e3);
        assert_eq!(TonePolarity::High.frequency_offset_hz(), 250e3);
    }

    #[test]
    fn whitening_skip_matches_packet_layout() {
        // Cross-check the 64-bit skip against the actual packet: whiten a
        // zero payload and confirm the payload section of the air bits equals
        // the whitening sequence at that offset.
        let packet = AdvertisingPacket::new(ADDR, &[0u8; 10]).unwrap();
        let bits = packet.to_air_bits(BleChannel::ADV_39).unwrap();
        let mut w = Lfsr7::ble_whitening_for_channel(39);
        let _ = w.sequence(64);
        let expected = w.sequence(80);
        let start = AdvertisingPacket::payload_bit_offset();
        assert_eq!(&bits[start..start + 80], expected.as_slice());
    }

    #[test]
    fn tone_quality_of_empty_window() {
        let q = tone_quality(&[], 1e6);
        assert_eq!(q.purity, 0.0);
    }
}
