//! Advertising-packet timing used by the backscatter tag (§2.2, §2.3.3).
//!
//! The tag cannot decode Bluetooth; it only detects packet energy with an
//! envelope detector. The timing budget is therefore derived from the fixed
//! structure of an advertising packet at 1 µs per bit:
//!
//! * 8 µs preamble + 32 µs access address + 16 µs header = 56 µs that the
//!   paper uses for detection (the advertiser address adds another 48 µs
//!   before the controllable payload starts),
//! * up to 31 bytes = 248 µs of controllable payload — the window in which
//!   the synthesized Wi-Fi/ZigBee packet must fit,
//! * 24 µs of CRC that the tag must not overlap,
//! * a 4 µs guard interval to absorb the error of energy-based detection.

use crate::packet::AdvertisingPacket;

/// Duration of one BLE LE 1M bit in seconds (1 µs).
pub const BIT_DURATION_S: f64 = 1e-6;

/// Duration of the preamble + access address + PDU header in seconds
/// (56 µs) — the detection window mentioned in §2.2 of the paper.
pub const DETECTION_HEADER_S: f64 = 56e-6;

/// Guard interval the tag adds to its payload-start estimate (§2.2).
pub const GUARD_INTERVAL_S: f64 = 4e-6;

/// Separation between successive advertising-channel transmissions of the
/// same advertising event for TI chipsets (§2.3.3, optimisation 2).
pub const INTER_CHANNEL_GAP_S: f64 = 400e-6;

/// Maximum payload duration (31 bytes × 8 µs) = 248 µs.
pub const MAX_PAYLOAD_DURATION_S: f64 = 248e-6;

/// Timing breakdown of a specific advertising packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvTiming {
    /// Time from the start of the packet to the first payload bit.
    pub payload_start_s: f64,
    /// Duration of the payload (backscatter window).
    pub payload_duration_s: f64,
    /// Time from the start of the packet to the first CRC bit.
    pub crc_start_s: f64,
    /// Total on-air duration of the packet.
    pub total_duration_s: f64,
}

impl AdvTiming {
    /// Computes the timing of the given packet.
    pub fn of(packet: &AdvertisingPacket) -> Self {
        let payload_start_s = AdvertisingPacket::payload_bit_offset() as f64 * BIT_DURATION_S;
        let payload_duration_s = packet.adv_data.len() as f64 * 8.0 * BIT_DURATION_S;
        let crc_start_s = packet.crc_bit_offset() as f64 * BIT_DURATION_S;
        let total_duration_s = packet.air_bits_len() as f64 * BIT_DURATION_S;
        AdvTiming {
            payload_start_s,
            payload_duration_s,
            crc_start_s,
            total_duration_s,
        }
    }

    /// The window available for backscatter after applying the guard
    /// interval at the start (the tag starts `GUARD_INTERVAL_S` late to be
    /// sure the payload has begun, and must stop before the CRC).
    pub fn backscatter_window_s(&self) -> f64 {
        (self.payload_duration_s - GUARD_INTERVAL_S).max(0.0)
    }
}

/// Duration in seconds that the RTS/CTS-style reservation of §2.3.3
/// (optimisation 2) buys: two inter-channel gaps plus one more packet.
pub fn reservation_window_s(packet_duration_s: f64) -> f64 {
    2.0 * INTER_CHANNEL_GAP_S + packet_duration_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AdvertisingPacket;

    #[test]
    fn full_packet_timing() {
        let p = AdvertisingPacket::new([0; 6], &[0u8; 31]).unwrap();
        let t = AdvTiming::of(&p);
        assert!((t.payload_start_s - 104e-6).abs() < 1e-12);
        assert!((t.payload_duration_s - MAX_PAYLOAD_DURATION_S).abs() < 1e-12);
        assert!((t.crc_start_s - 352e-6).abs() < 1e-12);
        assert!((t.total_duration_s - 376e-6).abs() < 1e-12);
        assert!((t.backscatter_window_s() - 244e-6).abs() < 1e-12);
    }

    #[test]
    fn empty_payload_has_zero_backscatter_window() {
        let p = AdvertisingPacket::new([0; 6], &[]).unwrap();
        let t = AdvTiming::of(&p);
        assert_eq!(t.payload_duration_s, 0.0);
        assert_eq!(t.backscatter_window_s(), 0.0);
        assert!((t.total_duration_s - 128e-6).abs() < 1e-12);
    }

    #[test]
    fn detection_header_is_56_microseconds() {
        // Preamble (8) + access address (32) + header (16) = 56 bits = 56 µs.
        assert!((DETECTION_HEADER_S - 56e-6).abs() < 1e-15);
    }

    #[test]
    fn reservation_window_matches_paper_formula() {
        // 2ΔT + T_bluetooth with ΔT = 400 µs.
        let t = reservation_window_s(376e-6);
        assert!((t - (800e-6 + 376e-6)).abs() < 1e-12);
    }
}
