//! Antenna models.
//!
//! Three antenna classes appear in the paper's experiments:
//!
//! * the 2 dBi monopole/dipole antennas used on the bench prototype and on
//!   the Bluetooth/Wi-Fi devices,
//! * a 1 cm-diameter loop antenna built into a contact-lens form factor
//!   (§5.1) — electrically small, low radiation resistance, poor efficiency,
//!   further detuned when immersed in saline,
//! * a 4 cm full-wavelength loop antenna for the neural-recording implant
//!   (§5.2), encapsulated in PDMS and implanted under tissue.
//!
//! The simulation folds an antenna into the link budget as a gain (dBi)
//! minus an efficiency/detuning penalty (dB), and exposes the small-loop
//! physics used to justify those numbers.

use crate::ChannelError;
use interscatter_dsp::units::{ratio_to_db, wavelength};
use interscatter_dsp::Cplx;

/// An antenna as seen by the link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Antenna {
    /// Descriptive name.
    pub name: &'static str,
    /// Peak gain in dBi for a 100 %-efficient, matched antenna.
    pub gain_dbi: f64,
    /// Radiation efficiency in (0, 1].
    pub efficiency: f64,
    /// Additional mismatch/detuning loss in dB (≥ 0), e.g. from immersion in
    /// a high-permittivity medium.
    pub mismatch_loss_db: f64,
    /// Feed-point impedance (used to re-tune the backscatter switch
    /// network).
    pub impedance: Cplx,
}

impl Antenna {
    /// The 2 dBi monopole used on the interscatter bench prototype and the
    /// measurement devices.
    pub fn monopole_2dbi() -> Self {
        Antenna {
            name: "2 dBi monopole",
            gain_dbi: 2.0,
            efficiency: 0.9,
            mismatch_loss_db: 0.0,
            impedance: Cplx::real(50.0),
        }
    }

    /// The 1 cm contact-lens loop antenna immersed in saline (§5.1).
    pub fn contact_lens_loop() -> Self {
        Antenna {
            name: "contact-lens loop (1 cm, in saline)",
            gain_dbi: 0.0,
            efficiency: small_loop_efficiency(0.005, 2.45e9, 1.0),
            mismatch_loss_db: 10.0,
            impedance: Cplx::new(12.0, 60.0),
        }
    }

    /// The 4 cm implant loop antenna encapsulated in PDMS (§5.2).
    pub fn implant_loop() -> Self {
        Antenna {
            name: "neural-implant loop (4 cm, in PDMS)",
            gain_dbi: 1.0,
            efficiency: 0.5,
            mismatch_loss_db: 3.0,
            impedance: Cplx::new(35.0, 20.0),
        }
    }

    /// Validates the model.
    pub fn validate(&self) -> Result<(), ChannelError> {
        if !(self.efficiency > 0.0 && self.efficiency <= 1.0) {
            return Err(ChannelError::InvalidParameter(
                "efficiency must be in (0, 1]",
            ));
        }
        if self.mismatch_loss_db < 0.0 {
            return Err(ChannelError::InvalidParameter(
                "mismatch loss must be non-negative",
            ));
        }
        Ok(())
    }

    /// Effective gain in dBi including efficiency and mismatch.
    pub fn effective_gain_dbi(&self) -> f64 {
        self.gain_dbi + ratio_to_db(self.efficiency) - self.mismatch_loss_db
    }
}

/// Radiation efficiency of an electrically small loop antenna of radius
/// `radius_m` at `freq_hz` with ohmic resistance `ohmic_resistance` (ohms):
/// η = R_rad / (R_rad + R_ohmic), with the standard small-loop radiation
/// resistance R_rad = 20 π² (C/λ)⁴ where C is the loop circumference.
pub fn small_loop_efficiency(radius_m: f64, freq_hz: f64, ohmic_resistance: f64) -> f64 {
    let circumference = 2.0 * std::f64::consts::PI * radius_m;
    let c_over_lambda = circumference / wavelength(freq_hz);
    let r_rad = 20.0 * std::f64::consts::PI.powi(2) * c_over_lambda.powi(4);
    (r_rad / (r_rad + ohmic_resistance)).clamp(1e-6, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_antennas_validate() {
        for a in [
            Antenna::monopole_2dbi(),
            Antenna::contact_lens_loop(),
            Antenna::implant_loop(),
        ] {
            assert!(a.validate().is_ok(), "{}", a.name);
        }
    }

    #[test]
    fn effective_gain_ordering_matches_the_paper() {
        // Monopole > implant loop > contact-lens loop: the reason Fig. 15's
        // range (tens of inches) is much shorter than Fig. 10's (tens of
        // feet) and somewhat shorter than Fig. 16's.
        let monopole = Antenna::monopole_2dbi().effective_gain_dbi();
        let implant = Antenna::implant_loop().effective_gain_dbi();
        let lens = Antenna::contact_lens_loop().effective_gain_dbi();
        assert!(
            monopole > implant,
            "monopole {monopole} vs implant {implant}"
        );
        assert!(implant > lens, "implant {implant} vs lens {lens}");
        // The lens antenna pays a double-digit dB penalty relative to the
        // monopole.
        assert!(monopole - lens > 10.0, "lens penalty {}", monopole - lens);
    }

    #[test]
    fn small_loop_efficiency_scales_with_radius() {
        // A 0.5 cm-radius loop at 2.45 GHz is inefficient; a 2 cm-radius loop
        // (circumference ~λ) is much better.
        let tiny = small_loop_efficiency(0.005, 2.45e9, 1.0);
        let big = small_loop_efficiency(0.02, 2.45e9, 1.0);
        assert!(tiny < 0.6, "tiny loop efficiency {tiny}");
        assert!(tiny < big, "efficiency must grow with loop size");
        assert!(big > 0.9, "big loop efficiency {big}");
        assert!(small_loop_efficiency(0.0001, 2.45e9, 1.0) >= 1e-6);
    }

    #[test]
    fn validation_rejects_bad_models() {
        let mut a = Antenna::monopole_2dbi();
        a.efficiency = 0.0;
        assert!(a.validate().is_err());
        let mut a = Antenna::monopole_2dbi();
        a.efficiency = 1.5;
        assert!(a.validate().is_err());
        let mut a = Antenna::monopole_2dbi();
        a.mismatch_loss_db = -2.0;
        assert!(a.validate().is_err());
    }

    #[test]
    fn monopole_effective_gain_close_to_nominal() {
        let a = Antenna::monopole_2dbi();
        assert!((a.effective_gain_dbi() - (2.0 + ratio_to_db(0.9))).abs() < 1e-12);
        assert!(a.effective_gain_dbi() > 1.0 && a.effective_gain_dbi() < 2.0);
    }
}
