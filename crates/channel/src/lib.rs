//! # interscatter-channel
//!
//! RF propagation substrate for the Interscatter reproduction.
//!
//! The paper's evaluation is a set of over-the-air range experiments:
//! Wi-Fi RSSI versus distance (Fig. 10), packet error rate across the
//! observed RSSI range (Fig. 11), ZigBee RSSI at several locations
//! (Fig. 14), and the in-vitro contact-lens / neural-implant / card-to-card
//! experiments (Figs. 15–17). Reproducing the *shape* of those results needs
//! an explicit link-budget model, which this crate provides:
//!
//! * [`pathloss`] — free-space (Friis) and log-distance path-loss models
//!   with shadowing, parameterised per environment.
//! * [`noise`] — thermal noise, receiver noise figure, and AWGN injection.
//! * [`tissue`] — attenuation of 2.4 GHz signals in biological tissue and
//!   saline, used by the implant and contact-lens scenarios.
//! * [`antenna`] — antenna models: the 2 dBi monopoles of the bench
//!   experiments and the electrically small loop antennas of the lens and
//!   implant prototypes (with efficiency and detuning penalties).
//! * [`link`] — the backscatter link budget: transmitter → tag → receiver,
//!   combining both hops, the tag's conversion loss, and the resulting RSSI
//!   and SNR at the receiver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna;
pub mod link;
pub mod noise;
pub mod pathloss;
pub mod tissue;

/// Errors produced by the channel layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A geometric or model parameter was out of range.
    InvalidParameter(&'static str),
}

impl core::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChannelError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for ChannelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ChannelError::InvalidParameter("distance")
            .to_string()
            .contains("distance"));
    }
}
