//! The backscatter link budget.
//!
//! A backscatter link has two hops: the RF source (Bluetooth device)
//! illuminates the tag, and the tag re-radiates a modulated copy toward the
//! receiver. The received power is therefore
//!
//! ```text
//! P_rx = P_tx + G_tx + G_tag − L(d_tx→tag) − L_tissue(tx→tag)
//!              + G_tag + G_rx − L(d_tag→rx) − L_tissue(tag→rx)
//!              − L_conversion
//! ```
//!
//! where `L_conversion` captures the tag's modulation loss: the reflection
//! coefficient magnitude (≤ 1), the fraction of scattered power placed in
//! the wanted sideband (the single-sideband design roughly doubles this
//! fraction relative to double-sideband), and the square-wave harmonic loss.
//! This multiplicative two-hop structure is why backscatter RSSI falls off
//! much faster with either distance than a conventional one-hop link, which
//! is the dominant shape of Figures 10, 15 and 16.

use crate::antenna::Antenna;
use crate::noise::NoiseModel;
use crate::pathloss::LogDistanceModel;
use crate::tissue::TissuePath;
use crate::ChannelError;
use rand::Rng;

/// Conversion losses of the tag's modulation process, in dB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionLoss {
    /// Loss from the reflection coefficient and switch network (dB).
    pub reflection_db: f64,
    /// Loss from the fraction of power placed in the wanted sideband (dB):
    /// ≈ 0.9 dB for single-sideband (square-wave fundamental), ≈ 3.9 dB for
    /// double-sideband (half the power in the unwanted mirror).
    pub sideband_db: f64,
}

impl ConversionLoss {
    /// Conversion loss of the single-sideband interscatter tag.
    pub fn single_sideband() -> Self {
        ConversionLoss {
            reflection_db: 1.0,
            sideband_db: 0.9,
        }
    }

    /// Conversion loss of the double-sideband baseline (per sideband).
    pub fn double_sideband() -> Self {
        ConversionLoss {
            reflection_db: 1.0,
            sideband_db: 3.9,
        }
    }

    /// Total conversion loss in dB.
    pub fn total_db(&self) -> f64 {
        self.reflection_db + self.sideband_db
    }
}

/// A complete backscatter link description.
#[derive(Debug, Clone)]
pub struct BackscatterLink {
    /// Transmit power of the RF source (Bluetooth device), dBm.
    pub tx_power_dbm: f64,
    /// Antenna of the RF source.
    pub tx_antenna: Antenna,
    /// Antenna of the backscatter tag.
    pub tag_antenna: Antenna,
    /// Antenna of the receiver.
    pub rx_antenna: Antenna,
    /// Propagation model for the source→tag hop.
    pub source_to_tag: LogDistanceModel,
    /// Propagation model for the tag→receiver hop.
    pub tag_to_rx: LogDistanceModel,
    /// Tissue on the source→tag path (traversed once each way through the
    /// tag's covering medium).
    pub tissue_source_to_tag: TissuePath,
    /// Tissue on the tag→receiver path.
    pub tissue_tag_to_rx: TissuePath,
    /// Tag conversion loss.
    pub conversion: ConversionLoss,
}

impl BackscatterLink {
    /// A bench link: monopole antennas, indoor line-of-sight propagation, no
    /// tissue, single-sideband tag — the Fig. 10 setup.
    pub fn bench(tx_power_dbm: f64, freq_hz: f64) -> Self {
        BackscatterLink {
            tx_power_dbm,
            tx_antenna: Antenna::monopole_2dbi(),
            tag_antenna: Antenna::monopole_2dbi(),
            rx_antenna: Antenna::monopole_2dbi(),
            source_to_tag: LogDistanceModel::indoor_los(freq_hz),
            tag_to_rx: LogDistanceModel::indoor_los(freq_hz),
            tissue_source_to_tag: TissuePath::new(),
            tissue_tag_to_rx: TissuePath::new(),
            conversion: ConversionLoss::single_sideband(),
        }
    }

    /// Validates the constituent models.
    pub fn validate(&self) -> Result<(), ChannelError> {
        self.tx_antenna.validate()?;
        self.tag_antenna.validate()?;
        self.rx_antenna.validate()?;
        self.source_to_tag.validate()?;
        self.tag_to_rx.validate()?;
        Ok(())
    }

    /// Power arriving at the tag antenna terminals, dBm.
    pub fn power_at_tag_dbm(&self, source_to_tag_m: f64) -> f64 {
        self.tx_power_dbm
            + self.tx_antenna.effective_gain_dbi()
            + self.tag_antenna.effective_gain_dbi()
            - self.source_to_tag.path_loss_db(source_to_tag_m)
            - self
                .tissue_source_to_tag
                .attenuation_db(self.source_to_tag.freq_hz)
    }

    /// Median received power at the receiver, dBm, for the given geometry.
    pub fn received_power_dbm(&self, source_to_tag_m: f64, tag_to_rx_m: f64) -> f64 {
        self.power_at_tag_dbm(source_to_tag_m) - self.conversion.total_db()
            + self.tag_antenna.effective_gain_dbi()
            + self.rx_antenna.effective_gain_dbi()
            - self.tag_to_rx.path_loss_db(tag_to_rx_m)
            - self.tissue_tag_to_rx.attenuation_db(self.tag_to_rx.freq_hz)
    }

    /// Received power with shadowing drawn on both hops.
    pub fn received_power_shadowed_dbm<R: Rng>(
        &self,
        source_to_tag_m: f64,
        tag_to_rx_m: f64,
        rng: &mut R,
    ) -> f64 {
        let median = self.received_power_dbm(source_to_tag_m, tag_to_rx_m);
        let extra1 = self
            .source_to_tag
            .path_loss_shadowed_db(source_to_tag_m, rng)
            - self.source_to_tag.path_loss_db(source_to_tag_m);
        let extra2 = self.tag_to_rx.path_loss_shadowed_db(tag_to_rx_m, rng)
            - self.tag_to_rx.path_loss_db(tag_to_rx_m);
        median - extra1 - extra2
    }

    /// SNR at a receiver with the given noise model, dB.
    pub fn snr_db(&self, source_to_tag_m: f64, tag_to_rx_m: f64, noise: &NoiseModel) -> f64 {
        noise.snr_db(self.received_power_dbm(source_to_tag_m, tag_to_rx_m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::units::feet_to_meters;
    use rand::SeedableRng;

    const FREQ: f64 = 2.462e9; // Wi-Fi channel 11

    #[test]
    fn conversion_losses() {
        assert!(
            ConversionLoss::single_sideband().total_db()
                < ConversionLoss::double_sideband().total_db()
        );
        let delta = ConversionLoss::double_sideband().total_db()
            - ConversionLoss::single_sideband().total_db();
        assert!((delta - 3.0).abs() < 0.2, "SSB advantage {delta} dB");
    }

    #[test]
    fn bench_link_validates_and_orders_with_power() {
        let link = BackscatterLink::bench(0.0, FREQ);
        assert!(link.validate().is_ok());
        let d_tag = feet_to_meters(1.0);
        let d_rx = feet_to_meters(30.0);
        let p0 = link.received_power_dbm(d_tag, d_rx);
        let link20 = BackscatterLink::bench(20.0, FREQ);
        let p20 = link20.received_power_dbm(d_tag, d_rx);
        assert!(
            (p20 - p0 - 20.0).abs() < 1e-9,
            "TX power should shift RSSI one-for-one"
        );
    }

    #[test]
    fn rssi_decreases_with_either_distance() {
        let link = BackscatterLink::bench(4.0, FREQ);
        let mut prev = f64::INFINITY;
        for feet in [5.0, 10.0, 20.0, 40.0, 80.0] {
            let p = link.received_power_dbm(feet_to_meters(1.0), feet_to_meters(feet));
            assert!(p < prev);
            prev = p;
        }
        // Moving the tag from 1 ft to 3 ft from the source costs ~10 dB
        // (paper Fig. 10a vs 10b show a similar drop).
        let near = link.received_power_dbm(feet_to_meters(1.0), feet_to_meters(30.0));
        let far = link.received_power_dbm(feet_to_meters(3.0), feet_to_meters(30.0));
        assert!(
            (near - far) > 8.0 && (near - far) < 14.0,
            "1ft->3ft drop {}",
            near - far
        );
    }

    #[test]
    fn fig10_magnitudes_are_plausible() {
        // Sanity-check the absolute numbers against Fig. 10a: with a 0 dBm
        // source 1 ft from the tag, the Wi-Fi RSSI at ~10 ft should be in the
        // -45..-75 dBm range, and still above -95 dBm at 90 ft with 20 dBm.
        let link0 = BackscatterLink::bench(0.0, FREQ);
        let rssi_10ft = link0.received_power_dbm(feet_to_meters(1.0), feet_to_meters(10.0));
        assert!(
            (-80.0..=-40.0).contains(&rssi_10ft),
            "0 dBm @ 10 ft: {rssi_10ft} dBm"
        );
        let link20 = BackscatterLink::bench(20.0, FREQ);
        let rssi_90ft = link20.received_power_dbm(feet_to_meters(1.0), feet_to_meters(90.0));
        assert!(rssi_90ft > -95.0, "20 dBm @ 90 ft: {rssi_90ft} dBm");
        assert!(rssi_90ft < -60.0, "20 dBm @ 90 ft: {rssi_90ft} dBm");
    }

    #[test]
    fn snr_uses_receiver_noise_model() {
        let link = BackscatterLink::bench(10.0, FREQ);
        let noise = NoiseModel::wifi_dsss();
        let snr = link.snr_db(feet_to_meters(1.0), feet_to_meters(20.0), &noise);
        let rssi = link.received_power_dbm(feet_to_meters(1.0), feet_to_meters(20.0));
        assert!((snr - (rssi - noise.noise_floor_dbm())).abs() < 1e-12);
    }

    #[test]
    fn shadowing_spreads_around_the_median() {
        let link = BackscatterLink::bench(4.0, FREQ);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let median = link.received_power_dbm(feet_to_meters(1.0), feet_to_meters(20.0));
        let draws: Vec<f64> = (0..500)
            .map(|_| {
                link.received_power_shadowed_dbm(
                    feet_to_meters(1.0),
                    feet_to_meters(20.0),
                    &mut rng,
                )
            })
            .collect();
        let mean: f64 = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - median).abs() < 0.6);
        assert!(draws.iter().any(|&d| d > median + 1.0));
        assert!(draws.iter().any(|&d| d < median - 1.0));
    }

    #[test]
    fn tissue_on_the_tag_hurts_both_hops() {
        let mut implant = BackscatterLink::bench(10.0, FREQ);
        implant.tissue_source_to_tag = TissuePath::neural_implant();
        implant.tissue_tag_to_rx = TissuePath::neural_implant();
        implant.tag_antenna = Antenna::implant_loop();
        let bench = BackscatterLink::bench(10.0, FREQ);
        let d1 = feet_to_meters(0.25);
        let d2 = feet_to_meters(3.0);
        let loss = bench.received_power_dbm(d1, d2) - implant.received_power_dbm(d1, d2);
        assert!(loss > 4.0, "implant penalty {loss} dB");
    }
}
