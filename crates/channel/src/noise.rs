//! Thermal noise, receiver noise figure and AWGN injection.
//!
//! Every receiver in the evaluation ultimately makes decisions at some SNR;
//! this module computes the noise power a given receiver sees (kTB plus its
//! noise figure) and adds complex white Gaussian noise of that level to IQ
//! streams under the workspace convention that a unit-amplitude sample is
//! 0 dBm at the antenna reference plane.

use crate::pathloss::gaussian;
use interscatter_dsp::units::{db_to_amplitude, thermal_noise_dbm};
use interscatter_dsp::Cplx;
use rand::Rng;

/// Standard noise temperature used throughout the workspace, kelvin.
pub const NOISE_TEMPERATURE_K: f64 = 290.0;

/// A receiver noise model.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Receiver noise bandwidth, Hz (22 MHz for 802.11b, 2 MHz for ZigBee
    /// and BLE, 20 MHz for OFDM).
    pub bandwidth_hz: f64,
    /// Receiver noise figure, dB (commodity 2.4 GHz radios sit around
    /// 6–10 dB).
    pub noise_figure_db: f64,
}

impl NoiseModel {
    /// Noise model for an 802.11b receiver (Intel 5300-class card).
    pub fn wifi_dsss() -> Self {
        NoiseModel {
            bandwidth_hz: 22e6,
            noise_figure_db: 7.0,
        }
    }

    /// Noise model for an 802.11g OFDM receiver.
    pub fn wifi_ofdm() -> Self {
        NoiseModel {
            bandwidth_hz: 20e6,
            noise_figure_db: 7.0,
        }
    }

    /// Noise model for a ZigBee (CC2531-class) receiver — narrower bandwidth
    /// means a lower noise floor, which is why §4.5 notes ZigBee has better
    /// sensitivity than Wi-Fi.
    pub fn zigbee() -> Self {
        NoiseModel {
            bandwidth_hz: 2e6,
            noise_figure_db: 8.0,
        }
    }

    /// Noise model for the tag's envelope detector (wideband, poor noise
    /// figure — it is a passive diode detector).
    pub fn envelope_detector() -> Self {
        NoiseModel {
            bandwidth_hz: 20e6,
            noise_figure_db: 25.0,
        }
    }

    /// Total noise power referred to the receiver input, dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        thermal_noise_dbm(self.bandwidth_hz, NOISE_TEMPERATURE_K) + self.noise_figure_db
    }

    /// Noise amplitude per complex sample under the unit-amplitude = 0 dBm
    /// convention (the standard deviation of each of I and Q is this value
    /// divided by √2).
    pub fn noise_amplitude(&self) -> f64 {
        db_to_amplitude(self.noise_floor_dbm())
    }

    /// Adds AWGN of this model's level to an IQ stream.
    pub fn add_noise<R: Rng>(&self, samples: &[Cplx], rng: &mut R) -> Vec<Cplx> {
        let sigma = self.noise_amplitude() / 2f64.sqrt();
        samples
            .iter()
            .map(|&s| s + Cplx::new(gaussian(rng) * sigma, gaussian(rng) * sigma))
            .collect()
    }

    /// SNR in dB of a signal at `signal_dbm` seen by this receiver.
    pub fn snr_db(&self, signal_dbm: f64) -> f64 {
        signal_dbm - self.noise_floor_dbm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interscatter_dsp::iq::{mean_power, rssi_dbm, tone};
    use rand::SeedableRng;

    #[test]
    fn noise_floors_are_physically_sensible() {
        // kTB over 22 MHz ≈ -100.5 dBm; +7 dB NF ≈ -93.5 dBm.
        let wifi = NoiseModel::wifi_dsss().noise_floor_dbm();
        assert!((wifi + 93.5).abs() < 1.0, "Wi-Fi noise floor {wifi}");
        // ZigBee floor is ~10 dB lower thanks to the 2 MHz bandwidth.
        let zigbee = NoiseModel::zigbee().noise_floor_dbm();
        assert!(wifi - zigbee > 8.0, "ZigBee floor {zigbee} vs Wi-Fi {wifi}");
        // Envelope detector is far worse than either radio.
        assert!(NoiseModel::envelope_detector().noise_floor_dbm() > wifi + 10.0);
    }

    #[test]
    fn added_noise_has_the_requested_power() {
        let model = NoiseModel::wifi_dsss();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let silence = vec![Cplx::ZERO; 50_000];
        let noisy = model.add_noise(&silence, &mut rng);
        let measured_dbm = rssi_dbm(&noisy);
        assert!(
            (measured_dbm - model.noise_floor_dbm()).abs() < 0.5,
            "measured noise {measured_dbm} dBm, expected {}",
            model.noise_floor_dbm()
        );
    }

    #[test]
    fn snr_matches_construction() {
        let model = NoiseModel::wifi_dsss();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // A -80 dBm tone in -93.5 dBm noise: SNR ~13.5 dB.
        let amplitude = db_to_amplitude(-80.0);
        let signal: Vec<Cplx> = tone(1e6, 44e6, 50_000, 0.0)
            .iter()
            .map(|&s| s * amplitude)
            .collect();
        let noisy = model.add_noise(&signal, &mut rng);
        let total = mean_power(&noisy);
        let noise = mean_power(&noisy) - mean_power(&signal);
        let snr_measured = 10.0 * ((total - noise) / noise).log10();
        assert!(
            (snr_measured - model.snr_db(-80.0)).abs() < 1.5,
            "measured SNR {snr_measured}"
        );
    }

    #[test]
    fn snr_formula() {
        let model = NoiseModel::zigbee();
        assert!((model.snr_db(model.noise_floor_dbm()) - 0.0).abs() < 1e-12);
        assert!((model.snr_db(model.noise_floor_dbm() + 10.0) - 10.0).abs() < 1e-12);
    }
}
