//! Path-loss models.
//!
//! The bench experiments of the paper (Figs. 10–14) happen indoors at ranges
//! of a few feet to ~90 feet. The simulation uses a log-distance path-loss
//! model with a free-space (Friis) reference at 1 m and a configurable
//! exponent: 2.0 reproduces free space, ~2.2–2.6 reproduces typical
//! line-of-sight indoor links, and lognormal shadowing adds the
//! location-to-location variation visible in the paper's scatter of RSSI
//! points.

use crate::ChannelError;
use interscatter_dsp::units::{ratio_to_db, wavelength, SPEED_OF_LIGHT};
use rand::Rng;

/// Free-space (Friis) path loss in dB at `distance_m` metres and carrier
/// frequency `freq_hz`. Distances below 1 cm are clamped to 1 cm so the
/// near-field singularity cannot produce gains.
pub fn friis_db(distance_m: f64, freq_hz: f64) -> f64 {
    let d = distance_m.max(0.01);
    let lambda = wavelength(freq_hz);
    ratio_to_db((4.0 * std::f64::consts::PI * d / lambda).powi(2))
}

/// A log-distance path-loss model with optional lognormal shadowing.
#[derive(Debug, Clone, Copy)]
pub struct LogDistanceModel {
    /// Carrier frequency, Hz.
    pub freq_hz: f64,
    /// Path-loss exponent (2.0 = free space, 2.2–2.6 indoor line of sight,
    /// 3+ through obstructions).
    pub exponent: f64,
    /// Reference distance, metres (the Friis model is used up to this
    /// distance).
    pub reference_m: f64,
    /// Standard deviation of the lognormal shadowing term, dB.
    pub shadowing_sigma_db: f64,
}

impl LogDistanceModel {
    /// Free-space propagation at the given frequency.
    pub fn free_space(freq_hz: f64) -> Self {
        LogDistanceModel {
            freq_hz,
            exponent: 2.0,
            reference_m: 1.0,
            shadowing_sigma_db: 0.0,
        }
    }

    /// A line-of-sight indoor model at the given frequency (exponent 2.3,
    /// 2 dB shadowing), matching the office/lab settings of the paper's
    /// experiments.
    pub fn indoor_los(freq_hz: f64) -> Self {
        LogDistanceModel {
            freq_hz,
            exponent: 2.3,
            reference_m: 1.0,
            shadowing_sigma_db: 2.0,
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), ChannelError> {
        if self.freq_hz <= 0.0 {
            return Err(ChannelError::InvalidParameter("frequency must be positive"));
        }
        if self.exponent < 1.0 || self.exponent > 6.0 {
            return Err(ChannelError::InvalidParameter(
                "path-loss exponent must be in [1, 6]",
            ));
        }
        if self.reference_m <= 0.0 {
            return Err(ChannelError::InvalidParameter(
                "reference distance must be positive",
            ));
        }
        if self.shadowing_sigma_db < 0.0 {
            return Err(ChannelError::InvalidParameter(
                "shadowing sigma must be non-negative",
            ));
        }
        Ok(())
    }

    /// Median (no shadowing) path loss in dB at `distance_m`.
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.01);
        if d <= self.reference_m {
            friis_db(d, self.freq_hz)
        } else {
            friis_db(self.reference_m, self.freq_hz)
                + 10.0 * self.exponent * (d / self.reference_m).log10()
        }
    }

    /// Path loss with a lognormal shadowing draw from `rng`.
    pub fn path_loss_shadowed_db<R: Rng>(&self, distance_m: f64, rng: &mut R) -> f64 {
        self.path_loss_db(distance_m) + gaussian(rng) * self.shadowing_sigma_db
    }

    /// Amplitude gain (≤ 1) corresponding to the median path loss — the
    /// factor applied to IQ samples traversing this link.
    pub fn amplitude_gain(&self, distance_m: f64) -> f64 {
        interscatter_dsp::units::db_to_amplitude(-self.path_loss_db(distance_m))
    }
}

/// A standard-normal draw using the Box–Muller transform (kept local so the
/// crate only needs the `rand` core traits).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Propagation delay in seconds over `distance_m`.
pub fn propagation_delay_s(distance_m: f64) -> f64 {
    distance_m / SPEED_OF_LIGHT
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn friis_known_values() {
        // At 2.45 GHz and 1 m, free-space loss is ~40.2 dB.
        let pl = friis_db(1.0, 2.45e9);
        assert!((pl - 40.2).abs() < 0.3, "1 m Friis loss {pl}");
        // Doubling the distance adds 6 dB.
        assert!((friis_db(2.0, 2.45e9) - pl - 6.02).abs() < 0.05);
        // Clamping below 1 cm.
        assert_eq!(friis_db(0.0, 2.45e9), friis_db(0.001, 2.45e9));
    }

    #[test]
    fn log_distance_reduces_to_friis_in_free_space() {
        let model = LogDistanceModel::free_space(2.45e9);
        for &d in &[0.5, 1.0, 3.0, 10.0, 30.0] {
            assert!(
                (model.path_loss_db(d) - friis_db(d, 2.45e9)).abs() < 1e-9,
                "distance {d}"
            );
        }
    }

    #[test]
    fn indoor_model_loses_more_than_free_space_beyond_reference() {
        let fs = LogDistanceModel::free_space(2.45e9);
        let indoor = LogDistanceModel::indoor_los(2.45e9);
        assert!(indoor.path_loss_db(10.0) > fs.path_loss_db(10.0));
        assert!((indoor.path_loss_db(1.0) - fs.path_loss_db(1.0)).abs() < 1e-9);
        assert!(indoor.validate().is_ok());
    }

    #[test]
    fn path_loss_is_monotonic_in_distance() {
        let model = LogDistanceModel::indoor_los(2.45e9);
        let mut prev = 0.0;
        for i in 1..100 {
            let d = i as f64 * 0.5;
            let pl = model.path_loss_db(d);
            assert!(pl >= prev, "path loss must not decrease with distance");
            prev = pl;
        }
    }

    #[test]
    fn amplitude_gain_matches_loss() {
        let model = LogDistanceModel::free_space(2.45e9);
        let gain = model.amplitude_gain(5.0);
        let expected = interscatter_dsp::units::db_to_amplitude(-model.path_loss_db(5.0));
        assert!((gain - expected).abs() < 1e-15);
        assert!(gain < 1.0);
    }

    #[test]
    fn shadowing_has_requested_spread() {
        let model = LogDistanceModel {
            shadowing_sigma_db: 4.0,
            ..LogDistanceModel::indoor_los(2.45e9)
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let median = model.path_loss_db(10.0);
        let samples: Vec<f64> = (0..2000)
            .map(|_| model.path_loss_shadowed_db(10.0, &mut rng) - median)
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let std = (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / samples.len() as f64)
            .sqrt();
        assert!(mean.abs() < 0.5, "shadowing mean {mean}");
        assert!((std - 4.0).abs() < 0.5, "shadowing std {std}");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut m = LogDistanceModel::free_space(2.45e9);
        m.exponent = 0.5;
        assert!(m.validate().is_err());
        let mut m = LogDistanceModel::free_space(2.45e9);
        m.freq_hz = 0.0;
        assert!(m.validate().is_err());
        let mut m = LogDistanceModel::free_space(2.45e9);
        m.reference_m = 0.0;
        assert!(m.validate().is_err());
        let mut m = LogDistanceModel::free_space(2.45e9);
        m.shadowing_sigma_db = -1.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn propagation_delay() {
        assert!((propagation_delay_s(300.0) - 1e-6).abs() < 2e-9);
    }

    #[test]
    fn gaussian_is_roughly_standard_normal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 5000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
