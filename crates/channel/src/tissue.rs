//! Attenuation of 2.4 GHz signals in biological tissue and saline.
//!
//! The implanted-device scenarios (§5.1, §5.2) place the backscatter antenna
//! inside lossy dielectric media: a contact-lens antenna immersed in contact
//! lens solution (saline), and a neural-recording antenna implanted under
//! 1/16 inch of muscle tissue (the in-vitro pork-chop experiment, chosen
//! because muscle's dielectric properties at 2.4 GHz are similar to grey
//! matter). Electromagnetic fields in a lossy dielectric decay exponentially
//! with depth; the skin depth at 2.4 GHz is on the order of a centimetre for
//! high-water-content tissue, so even a few millimetres of cover cost
//! several dB per traversal — the reason the Fig. 15/16 ranges are tens of
//! inches rather than the tens of feet of Fig. 10.

use crate::ChannelError;
use interscatter_dsp::units::ratio_to_db;

/// Dielectric description of a medium at 2.4 GHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TissueMedium {
    /// Name of the medium (for reports).
    pub name: &'static str,
    /// Relative permittivity ε_r at 2.4 GHz.
    pub relative_permittivity: f64,
    /// Conductivity σ in S/m at 2.4 GHz.
    pub conductivity_s_per_m: f64,
}

impl TissueMedium {
    /// Skeletal muscle at 2.45 GHz (Gabriel et al. 1996): ε_r ≈ 52.7,
    /// σ ≈ 1.74 S/m.
    pub fn muscle() -> Self {
        TissueMedium {
            name: "muscle",
            relative_permittivity: 52.7,
            conductivity_s_per_m: 1.74,
        }
    }

    /// Grey matter at 2.45 GHz: ε_r ≈ 48.9, σ ≈ 1.81 S/m — close to muscle,
    /// which is why the paper uses pork muscle as the in-vitro stand-in.
    pub fn grey_matter() -> Self {
        TissueMedium {
            name: "grey matter",
            relative_permittivity: 48.9,
            conductivity_s_per_m: 1.81,
        }
    }

    /// Physiological saline / contact-lens solution at 2.45 GHz.
    pub fn saline() -> Self {
        TissueMedium {
            name: "saline",
            relative_permittivity: 74.0,
            conductivity_s_per_m: 3.0,
        }
    }

    /// Skin (dry) at 2.45 GHz.
    pub fn skin() -> Self {
        TissueMedium {
            name: "skin",
            relative_permittivity: 38.0,
            conductivity_s_per_m: 1.46,
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), ChannelError> {
        if self.relative_permittivity < 1.0 {
            return Err(ChannelError::InvalidParameter(
                "relative permittivity must be >= 1",
            ));
        }
        if self.conductivity_s_per_m < 0.0 {
            return Err(ChannelError::InvalidParameter(
                "conductivity must be non-negative",
            ));
        }
        Ok(())
    }

    /// The attenuation constant α (nepers/metre) of a plane wave at
    /// `freq_hz` in this medium, from the standard lossy-dielectric
    /// expression.
    pub fn attenuation_constant(&self, freq_hz: f64) -> f64 {
        let eps0 = 8.854_187_812_8e-12;
        let mu0 = 4.0e-7 * std::f64::consts::PI;
        let w = 2.0 * std::f64::consts::PI * freq_hz;
        let eps = self.relative_permittivity * eps0;
        let loss_tangent = self.conductivity_s_per_m / (w * eps);
        w * (mu0 * eps / 2.0).sqrt() * ((1.0 + loss_tangent * loss_tangent).sqrt() - 1.0).sqrt()
    }

    /// Skin depth (1/α) in metres at `freq_hz`.
    pub fn skin_depth_m(&self, freq_hz: f64) -> f64 {
        1.0 / self.attenuation_constant(freq_hz)
    }

    /// One-way power attenuation in dB for a propagation depth of `depth_m`
    /// metres at `freq_hz`.
    pub fn attenuation_db(&self, depth_m: f64, freq_hz: f64) -> f64 {
        if depth_m <= 0.0 {
            return 0.0;
        }
        // Field decays as e^{-α d}; power as e^{-2 α d}.
        ratio_to_db((2.0 * self.attenuation_constant(freq_hz) * depth_m).exp())
    }
}

/// A layered tissue path (e.g. skin over muscle), summing the per-layer
/// attenuations.
#[derive(Debug, Clone, Default)]
pub struct TissuePath {
    layers: Vec<(TissueMedium, f64)>,
}

impl TissuePath {
    /// Creates an empty path (no tissue: 0 dB).
    pub fn new() -> Self {
        TissuePath { layers: Vec::new() }
    }

    /// Adds a layer of `medium` with thickness `depth_m`.
    pub fn with_layer(mut self, medium: TissueMedium, depth_m: f64) -> Self {
        self.layers.push((medium, depth_m));
        self
    }

    /// Total one-way attenuation in dB at `freq_hz`.
    pub fn attenuation_db(&self, freq_hz: f64) -> f64 {
        self.layers
            .iter()
            .map(|(m, d)| m.attenuation_db(*d, freq_hz))
            .sum()
    }

    /// The neural-implant scenario of §5.2: the antenna sits 1/16 inch
    /// (≈1.6 mm) under the surface of muscle tissue.
    pub fn neural_implant() -> Self {
        TissuePath::new().with_layer(TissueMedium::muscle(), 0.0625 * 0.0254)
    }

    /// The contact-lens scenario of §5.1: the loop antenna is immersed in
    /// contact-lens solution; the effective covering depth is a few
    /// millimetres of saline.
    pub fn contact_lens() -> Self {
        TissuePath::new().with_layer(TissueMedium::saline(), 3e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 2.45e9;

    #[test]
    fn skin_depth_is_centimetre_scale() {
        // High-water-content tissue at 2.45 GHz has a skin depth of roughly
        // 1–3 cm.
        for medium in [
            TissueMedium::muscle(),
            TissueMedium::grey_matter(),
            TissueMedium::saline(),
        ] {
            let d = medium.skin_depth_m(F);
            assert!(
                (0.005..0.05).contains(&d),
                "{} skin depth {d} m out of expected range",
                medium.name
            );
            assert!(medium.validate().is_ok());
        }
    }

    #[test]
    fn muscle_approximates_grey_matter() {
        // The paper's justification for the pork-chop in-vitro setup: the
        // attenuation through 5 mm of muscle is within ~1.5 dB of grey matter.
        let a_muscle = TissueMedium::muscle().attenuation_db(5e-3, F);
        let a_grey = TissueMedium::grey_matter().attenuation_db(5e-3, F);
        assert!(
            (a_muscle - a_grey).abs() < 1.5,
            "muscle {a_muscle} dB vs grey {a_grey} dB"
        );
    }

    #[test]
    fn attenuation_grows_with_depth_and_zero_at_surface() {
        let muscle = TissueMedium::muscle();
        assert_eq!(muscle.attenuation_db(0.0, F), 0.0);
        assert_eq!(muscle.attenuation_db(-1.0, F), 0.0);
        let mut prev = 0.0;
        for i in 1..20 {
            let a = muscle.attenuation_db(i as f64 * 1e-3, F);
            assert!(a > prev);
            prev = a;
        }
        // Attenuation through one skin depth is ~8.7 dB of field loss.
        let one_depth = muscle.attenuation_db(muscle.skin_depth_m(F), F);
        assert!(
            (one_depth - 8.686).abs() < 0.1,
            "one-skin-depth loss {one_depth}"
        );
    }

    #[test]
    fn implant_path_costs_single_digit_db() {
        // 1.6 mm of muscle: around 1–3 dB one-way — small but measurable,
        // consistent with the Fig. 16 ranges being shorter than Fig. 10 but
        // still tens of inches.
        let a = TissuePath::neural_implant().attenuation_db(F);
        assert!((0.5..4.0).contains(&a), "implant path loss {a} dB");
    }

    #[test]
    fn lens_path_costs_a_few_db() {
        let a = TissuePath::contact_lens().attenuation_db(F);
        assert!((1.0..8.0).contains(&a), "lens path loss {a} dB");
    }

    #[test]
    fn layered_path_sums_layers() {
        let path = TissuePath::new()
            .with_layer(TissueMedium::skin(), 2e-3)
            .with_layer(TissueMedium::muscle(), 5e-3);
        let sum = TissueMedium::skin().attenuation_db(2e-3, F)
            + TissueMedium::muscle().attenuation_db(5e-3, F);
        assert!((path.attenuation_db(F) - sum).abs() < 1e-12);
        assert_eq!(TissuePath::new().attenuation_db(F), 0.0);
    }

    #[test]
    fn validation() {
        let bad = TissueMedium {
            name: "bad",
            relative_permittivity: 0.5,
            conductivity_s_per_m: 1.0,
        };
        assert!(bad.validate().is_err());
        let bad = TissueMedium {
            name: "bad",
            relative_permittivity: 50.0,
            conductivity_s_per_m: -1.0,
        };
        assert!(bad.validate().is_err());
    }
}
