//! # interscatter
//!
//! A library-level reproduction of **"Inter-Technology Backscatter: Towards
//! Internet Connectivity for Implanted Devices"** (SIGCOMM 2016).
//!
//! Interscatter turns transmissions from one commodity wireless technology
//! into another, on the air: a backscatter tag reflects a Bluetooth Low
//! Energy advertisement (crafted to be a single tone) and, by switching
//! among four complex antenna impedances at tens of MHz, synthesizes a
//! standards-compliant 802.11b or ZigBee packet that a normal smartphone,
//! laptop or sensor hub can decode. In the other direction, a commodity
//! 802.11g transmitter is turned into an amplitude modulator that a passive
//! envelope detector on the tag can decode.
//!
//! This crate is the facade over the workspace: it re-exports the individual
//! layers and offers a small high-level API ([`Interscatter`]) that wires the
//! typical pipelines together. The heavy lifting lives in the sub-crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`dsp`] | complex IQ, FFT, filters, spectra, CRCs, LFSRs |
//! | [`ble`] | BLE GFSK, advertising PDUs, whitening, single-tone crafting |
//! | [`wifi`] | 802.11b DSSS/CCK and 802.11g OFDM PHYs, AM downlink crafting |
//! | [`zigbee`] | IEEE 802.15.4 O-QPSK PHY |
//! | [`backscatter`] | impedance model, single/double-sideband modulators, tag, envelope detector, IC power |
//! | [`channel`] | path loss, noise, tissue attenuation, antennas, link budget |
//! | [`sim`] | end-to-end scenarios, MAC coexistence, per-figure experiments |
//! | [`net`] | deterministic event-driven multi-tag network engine and Monte-Carlo runner |
//!
//! # Quick start
//!
//! ```
//! use interscatter::prelude::*;
//!
//! // 1. Craft the BLE advertising payload that makes the radio emit a tone.
//! let system = Interscatter::default();
//! let packet = system.single_tone_advertisement([0xC0, 0xFF, 0xEE, 0x01, 0x02, 0x03]).unwrap();
//! assert_eq!(packet.adv_data.len(), 31);
//!
//! // 2. Ask the tag for the Wi-Fi packet it will synthesize from that tone.
//! let reflection = system.wifi_reflection_sequence(b"hello interscatter").unwrap();
//! assert!(reflection.iter().all(|g| g.abs() <= 1.0 + 1e-9));
//!
//! // 3. Estimate the link: 10 dBm phone 1 ft from the tag, laptop 20 ft away.
//! let rssi = system.uplink_rssi_dbm(10.0, 1.0, 20.0);
//! assert!(rssi > -92.0, "the packet should be decodable at 20 ft");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use interscatter_backscatter as backscatter;
pub use interscatter_ble as ble;
pub use interscatter_channel as channel;
pub use interscatter_dsp as dsp;
pub use interscatter_net as net;
pub use interscatter_sim as sim;
pub use interscatter_wifi as wifi;
pub use interscatter_zigbee as zigbee;

pub mod prelude;

use backscatter::tag::{InterscatterTag, SidebandMode, TagConfig, TargetPhy};
use backscatter::BackscatterError;
use ble::channels::BleChannel;
use ble::packet::AdvertisingPacket;
use ble::single_tone::{single_tone_packet, TonePolarity};
use ble::BleError;
use dsp::Cplx;
use sim::uplink::UplinkScenario;
use wifi::dot11b::DsssRate;

/// Errors surfaced by the high-level facade.
#[derive(Debug, Clone, PartialEq)]
pub enum InterscatterError {
    /// Error from the BLE layer.
    Ble(BleError),
    /// Error from the backscatter layer.
    Backscatter(BackscatterError),
}

impl core::fmt::Display for InterscatterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InterscatterError::Ble(e) => write!(f, "BLE: {e}"),
            InterscatterError::Backscatter(e) => write!(f, "backscatter: {e}"),
        }
    }
}

impl std::error::Error for InterscatterError {}

impl From<BleError> for InterscatterError {
    fn from(e: BleError) -> Self {
        InterscatterError::Ble(e)
    }
}

impl From<BackscatterError> for InterscatterError {
    fn from(e: BackscatterError) -> Self {
        InterscatterError::Backscatter(e)
    }
}

/// High-level configuration of an interscatter deployment.
#[derive(Debug, Clone, Copy)]
pub struct Interscatter {
    /// BLE advertising channel used as the RF source (38 in the paper).
    pub ble_channel: BleChannel,
    /// Advertiser address placed in the crafted advertisements.
    pub advertiser_address: [u8; 6],
    /// Which tone polarity the crafted payload produces.
    pub tone_polarity: TonePolarity,
    /// The packet format the tag synthesizes.
    pub target: TargetPhy,
    /// Sideband architecture of the tag.
    pub sideband: SidebandMode,
    /// Simulation sample rate used when waveforms are generated.
    pub sample_rate: f64,
    /// Frequency shift applied by the tag, Hz.
    pub shift_hz: f64,
}

impl Default for Interscatter {
    /// The paper's prototype configuration: BLE channel 38 shifted by
    /// +35.75 MHz into Wi-Fi channel 11 as a 2 Mbps 802.11b packet, single
    /// sideband.
    fn default() -> Self {
        Interscatter {
            ble_channel: BleChannel::ADV_38,
            advertiser_address: [0x49, 0x53, 0x43, 0x54, 0x52, 0x00], // "ISCTR"
            tone_polarity: TonePolarity::High,
            target: TargetPhy::Wifi(DsssRate::Mbps2),
            sideband: SidebandMode::Single,
            sample_rate: 176e6,
            shift_hz: backscatter::ssb::PROTOTYPE_SHIFT_HZ,
        }
    }
}

impl Interscatter {
    /// A configuration targeting ZigBee channel 14 instead of Wi-Fi
    /// (§4.5 of the paper): the tag shifts the BLE channel 38 tone down by
    /// 6 MHz.
    pub fn zigbee() -> Self {
        Interscatter {
            target: TargetPhy::Zigbee,
            shift_hz: -6e6,
            sample_rate: 88e6,
            ..Default::default()
        }
    }

    /// Builds the BLE advertising packet whose payload section is a single
    /// tone, carrying the given 6-byte advertiser address... the payload
    /// bytes themselves are dictated by the whitening sequence, so the
    /// "content" of this advertisement is fixed; applications identify the
    /// source through the advertiser address.
    pub fn single_tone_advertisement(
        &self,
        advertiser_address: [u8; 6],
    ) -> Result<AdvertisingPacket, InterscatterError> {
        Ok(single_tone_packet(
            self.ble_channel,
            advertiser_address,
            ble::packet::MAX_ADV_DATA_LEN,
            self.tone_polarity,
        )?)
    }

    /// The tag object configured for this deployment.
    pub fn tag(&self) -> Result<InterscatterTag, InterscatterError> {
        let config = TagConfig {
            sample_rate: self.sample_rate,
            shift_hz: self.shift_hz,
            target: self.target,
            sideband: self.sideband,
            guard_interval_s: 4e-6,
        };
        Ok(InterscatterTag::new(config)?)
    }

    /// The reflection-coefficient sequence the tag applies to synthesize a
    /// Wi-Fi/ZigBee packet carrying `payload`.
    pub fn wifi_reflection_sequence(&self, payload: &[u8]) -> Result<Vec<Cplx>, InterscatterError> {
        Ok(self.tag()?.reflection_for_payload(payload)?)
    }

    /// Link-budget estimate of the RSSI a commodity receiver reports, dBm.
    ///
    /// * `ble_tx_power_dbm` — transmit power of the Bluetooth source.
    /// * `source_to_tag_ft` — Bluetooth-to-tag distance in feet.
    /// * `tag_to_rx_ft` — tag-to-receiver distance in feet.
    pub fn uplink_rssi_dbm(
        &self,
        ble_tx_power_dbm: f64,
        source_to_tag_ft: f64,
        tag_to_rx_ft: f64,
    ) -> f64 {
        let mut scenario =
            UplinkScenario::fig10_bench(ble_tx_power_dbm, source_to_tag_ft, tag_to_rx_ft);
        scenario.target = self.target;
        scenario.sideband = self.sideband;
        scenario.rssi_dbm()
    }

    /// The active power the interscatter IC draws while generating packets
    /// at this configuration's rates, watts.
    pub fn ic_power_w(&self) -> f64 {
        let model = backscatter::power::IcPowerModel::tsmc65nm();
        match self.target {
            TargetPhy::Wifi(rate) => {
                model.total_active_w(rate.bits_per_second(), wifi::dot11b::CHIP_RATE)
            }
            TargetPhy::Zigbee => {
                model.total_active_w(zigbee::phy::BIT_RATE, zigbee::oqpsk::CHIP_RATE)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_matches_the_prototype() {
        let system = Interscatter::default();
        assert_eq!(system.ble_channel, BleChannel::ADV_38);
        assert_eq!(system.target, TargetPhy::Wifi(DsssRate::Mbps2));
        assert_eq!(system.sideband, SidebandMode::Single);
        assert!((system.shift_hz - 35.75e6).abs() < 1.0);
    }

    #[test]
    fn quickstart_pipeline_works() {
        let system = Interscatter::default();
        let advert = system
            .single_tone_advertisement([1, 2, 3, 4, 5, 6])
            .unwrap();
        assert_eq!(advert.adv_data.len(), 31);
        let reflection = system.wifi_reflection_sequence(b"test payload").unwrap();
        assert!(!reflection.is_empty());
        assert!(reflection.iter().all(|g| g.abs() <= 1.0 + 1e-9));
        let rssi = system.uplink_rssi_dbm(10.0, 1.0, 20.0);
        assert!(rssi > -92.0 && rssi < -30.0, "RSSI {rssi}");
    }

    #[test]
    fn zigbee_configuration() {
        let system = Interscatter::zigbee();
        assert_eq!(system.target, TargetPhy::Zigbee);
        assert!(system.shift_hz < 0.0);
        let reflection = system.wifi_reflection_sequence(&[0xAB; 10]).unwrap();
        assert!(!reflection.is_empty());
    }

    #[test]
    fn ic_power_is_tens_of_microwatts() {
        let wifi_power = Interscatter::default().ic_power_w();
        assert!(
            (20e-6..60e-6).contains(&wifi_power),
            "Wi-Fi power {wifi_power}"
        );
        let zigbee_power = Interscatter::zigbee().ic_power_w();
        assert!(zigbee_power < wifi_power);
    }

    #[test]
    fn error_conversion_and_display() {
        let e: InterscatterError = BleError::CrcMismatch.into();
        assert!(e.to_string().contains("BLE"));
        let e: InterscatterError = BackscatterError::NoPacketDetected.into();
        assert!(e.to_string().contains("backscatter"));
    }
}
