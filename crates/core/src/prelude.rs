//! A convenience prelude re-exporting the types most applications need.
//!
//! ```
//! use interscatter::prelude::*;
//! let system = Interscatter::default();
//! let _ = system.uplink_rssi_dbm(4.0, 1.0, 10.0);
//! ```

pub use crate::{Interscatter, InterscatterError};

pub use crate::backscatter::envelope::EnvelopeDetector;
pub use crate::backscatter::power::IcPowerModel;
pub use crate::backscatter::ssb::SsbConfig;
pub use crate::backscatter::tag::{InterscatterTag, SidebandMode, TagConfig, TargetPhy};
pub use crate::ble::channels::BleChannel;
pub use crate::ble::device::BleDeviceProfile;
pub use crate::ble::packet::AdvertisingPacket;
pub use crate::ble::single_tone::TonePolarity;
pub use crate::channel::antenna::Antenna;
pub use crate::channel::link::BackscatterLink;
pub use crate::channel::pathloss::LogDistanceModel;
pub use crate::dsp::Cplx;
pub use crate::net::engine::{NetRunResult, NetworkSim};
pub use crate::net::mac::{MacLoop, MacMode};
pub use crate::net::runner::{MonteCarlo, MonteCarloReport};
pub use crate::net::scenario::Scenario;
pub use crate::sim::downlink::DownlinkScenario;
pub use crate::sim::uplink::UplinkScenario;
pub use crate::wifi::dot11b::{Dot11bReceiver, Dot11bTransmitter, DsssRate};
pub use crate::wifi::ofdm::{OfdmRate, OfdmTransmitter};
pub use crate::zigbee::{ZigbeeReceiver, ZigbeeTransmitter};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        // Construction through the prelude alone must compile and work.
        let _ = Interscatter::default();
        let _ = BleChannel::ADV_38;
        let _ = DsssRate::Mbps2;
        let _ = TonePolarity::High;
        let _ = Antenna::monopole_2dbi();
        let _ = IcPowerModel::tsmc65nm();
        let _ = Cplx::new(1.0, -1.0);
    }
}
