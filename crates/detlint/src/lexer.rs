//! A hand-rolled Rust lexer, just deep enough for token-stream linting.
//!
//! The rules in [`crate::rules`] match on identifier tokens, so the one
//! job of this lexer is to never confuse an identifier with the *contents*
//! of a string, comment, char literal or lifetime — a rule keyed on
//! `HashMap` must stay silent on `"HashMap"` in a diagnostic message and
//! on `// HashMap` in prose. Everything else (numeric fine structure,
//! operator gluing) is deliberately crude: numbers and punctuation only
//! need to be *skipped over* correctly, not understood.
//!
//! Handled corner cases: nested block comments, doc comments, raw strings
//! with arbitrary `#` fences (`r##"…"##`), byte strings (`b"…"`, `br#"…"#`),
//! char-vs-lifetime disambiguation (`'a'` vs `'a`), escaped chars
//! (`'\''`, `'\u{1F600}'`) and raw identifiers (`r#match`).

/// What a token is, as far as the rule engine cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unsafe`).
    Ident,
    /// A numeric literal (possibly split across `.`/sign punctuation —
    /// the rules never inspect numbers, they only step over them).
    Num,
    /// A string or byte-string literal, raw or not. `text` is empty: rule
    /// matching must never see string contents.
    Str,
    /// A char or byte-char literal. `text` is empty.
    Char,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character.
    Punct,
    /// A `//` comment (incl. `///`/`//!` doc comments); `text` holds the
    /// body after the slashes, which is where allow-pragmas live.
    LineComment,
    /// A `/* … */` comment (nested fences handled); `text` holds the body.
    BlockComment,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Identifier name, comment body, or punctuation char; empty for
    /// string/char literals and numbers.
    pub text: String,
    /// 1-indexed line the token *starts* on.
    pub line: u32,
}

/// Lexes `src` into a token stream. Comments are kept (pragmas live
/// there); whitespace is dropped. The lexer never fails: any byte it does
/// not understand becomes a [`TokKind::Punct`].
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, keeping the line counter honest.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut body = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            body.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, body, line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut body = String::new();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    body.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        body.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    body.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
        self.push(TokKind::BlockComment, body, line);
    }

    /// A non-raw string body, opening quote not yet consumed.
    fn string(&mut self, line: u32) {
        self.bump(); // "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped, incl. \" and \\
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// A raw string body: `hashes` `#` fences then `"` were already
    /// consumed; reads until `"` followed by the same fence count.
    fn raw_string(&mut self, hashes: usize, line: u32) {
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// `'` not yet consumed: a char literal (`'a'`, `'\n'`) or a
    /// lifetime/label (`'a`, `'static`). A lifetime is a quote followed by
    /// an identifier *not* closed by another quote.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume until the closing quote.
                self.bump();
                self.bump(); // the escaped char (or the 'u' of \u{…})
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, String::new(), line);
            }
            Some(c) if (c == '_' || c.is_alphabetic()) && self.peek(1) != Some('\'') => {
                // Lifetime or label.
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, name, line);
            }
            Some(_) => {
                // Plain char literal: one char then the closing quote.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line);
            }
            None => self.push(TokKind::Punct, "'".into(), line),
        }
    }

    fn number(&mut self, line: u32) {
        // Digits, type suffixes and `_` separators; `1.5` lexes as
        // Num Punct Num, which the rules never care about.
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, String::new(), line);
    }

    /// An identifier, or one of the literal prefixes `r`/`b`/`br` glued to
    /// a string (`r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`) or a raw
    /// identifier (`r#match`).
    fn ident_or_prefixed(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let is_str_prefix = matches!(name.as_str(), "r" | "b" | "br");
        match (is_str_prefix, self.peek(0)) {
            (true, Some('"')) => {
                self.bump();
                if name.starts_with('r') || name == "br" {
                    self.raw_string(0, line);
                } else {
                    // b"…": ordinary escapes apply.
                    while let Some(c) = self.bump() {
                        match c {
                            '\\' => {
                                self.bump();
                            }
                            '"' => break,
                            _ => {}
                        }
                    }
                    self.push(TokKind::Str, String::new(), line);
                }
            }
            (true, Some('#')) if name != "b" => {
                // Count the fence: raw string r#"…"# / r##"…"##, or a raw
                // identifier r#match (single # followed by ident-start).
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..=hashes {
                        self.bump(); // the fence and the opening quote
                    }
                    self.raw_string(hashes, line);
                } else if hashes == 1 && self.peek(1).is_some_and(|c| c == '_' || c.is_alphabetic())
                {
                    // Raw identifier: emit the unprefixed name.
                    self.bump(); // #
                    let mut raw = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            raw.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident, raw, line);
                } else {
                    self.push(TokKind::Ident, name, line);
                }
            }
            (true, Some('\'')) if name == "b" => {
                // Byte-char literal b'x'.
                self.char_or_lifetime(line);
                if let Some(last) = self.out.last_mut() {
                    last.kind = TokKind::Char;
                }
            }
            _ => self.push(TokKind::Ident, name, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // None of the quoted words may surface as identifiers.
        let src = r##"let m = "HashMap"; let r = r"Instant"; let f = r#"thread_rng "quoted" inside"#; let b = b"SystemTime";"##;
        let ids = idents(src);
        assert_eq!(ids, ["let", "m", "let", "r", "let", "f", "let", "b"]);
    }

    #[test]
    fn comments_are_kept_but_separate() {
        let src = "// HashMap in prose\n/* Instant\n nested /* SystemTime */ done */\nlet x = 1;";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::LineComment && t.text.contains("HashMap")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::BlockComment && t.text.contains("SystemTime")));
        assert_eq!(idents(src), ["let", "x"]);
        // The let sits on line 4 (block comment spans lines 2-3).
        let let_tok = toks.iter().find(|t| t.text == "let").unwrap();
        assert_eq!(let_tok.line, 4);
    }

    #[test]
    fn chars_and_lifetimes_disambiguate() {
        let src =
            "fn f<'a>(x: &'a str) -> char { let c = 'h'; let e = '\\''; let u = '\\u{1F600}'; c }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            3,
            "'h', '\\'' and '\\u{{…}}' are all char literals"
        );
        // The identifier h from 'h' must not leak out.
        assert!(!idents(src).iter().any(|i| i == "h"));
    }

    #[test]
    fn raw_identifiers_unprefix() {
        assert_eq!(idents("let r#match = 1;"), ["let", "match"]);
    }

    #[test]
    fn lines_are_tracked_through_strings() {
        let src = "let a = \"multi\nline\nstring\";\nlet b = 2;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn numbers_do_not_swallow_idents() {
        assert_eq!(idents("let x = 1.0e-3f64 + 0xFFu8; x"), ["let", "x", "x"]);
    }
}
