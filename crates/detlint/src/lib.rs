//! # detlint — determinism-hazard static analysis for this workspace
//!
//! Every guarantee the reproduction makes — digest-pinned traces per seed,
//! bit-for-bit equality of lazy vs dense pair tables, the timing-wheel
//! swap reproducing the old `(at, seq)` order — rests on a determinism
//! discipline. This crate *verifies* that discipline instead of assuming
//! it: a dependency-free static-analysis pass (hand-rolled lexer +
//! token-stream rule engine, in the same offline shim philosophy as
//! `crates/shims`) that scans the workspace and fails on hazards.
//!
//! ## Rules
//!
//! | rule | hazard |
//! |------|--------|
//! | `hash_iter` | std `HashMap`/`HashSet` in simulation code (seeded iteration order) |
//! | `wall_clock` | `Instant`/`SystemTime` outside bench/CI code |
//! | `stray_rng` | RNG construction outside the named per-entity stream constructors; any entropy-seeded generator |
//! | `forbid_unsafe` | crate roots missing `#![forbid(unsafe_code)]`; any `unsafe` token |
//! | `float_key` | float `partial_cmp` ordering keys in engine code |
//! | `ordered_merge` | raw parallel-iterator calls bypassing `rayon::det::map_ordered` |
//!
//! plus `bad_pragma` for malformed allow-pragmas. Audited exceptions are
//! written inline as `// detlint: allow(<rule>): <justification>` — the
//! justification is mandatory.
//!
//! Run it locally with `cargo run -p detlint` (add `--json` for the
//! machine-readable JSON-lines report CI uploads as an artifact).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{scan_source, Finding, RuleId};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of scanning a workspace tree.
#[derive(Debug)]
pub struct ScanReport {
    /// Workspace-relative paths of every `.rs` file scanned, sorted.
    pub files: Vec<String>,
    /// All findings, in (path, line) order.
    pub findings: Vec<Finding>,
}

impl ScanReport {
    /// True when the scan produced no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The JSON-lines report: one object per finding, then a summary line
    /// (same shape discipline as the criterion shim's `--json` mode).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{},\"hint\":{}}}\n",
                json_str(f.rule.name()),
                json_str(&f.path),
                f.line,
                json_str(&f.message),
                json_str(f.rule.hint()),
            ));
        }
        out.push_str(&format!(
            "{{\"summary\":true,\"files_scanned\":{},\"findings\":{}}}\n",
            self.files.len(),
            self.findings.len()
        ));
        out
    }
}

/// Minimal JSON string encoding (the only JSON this crate emits).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Scans every `.rs` file under `root` (skipping `target/` and VCS
/// directories), in sorted path order so reports are stable across
/// filesystems — the determinism linter is itself deterministic.
pub fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut rels: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rels.sort();
    let mut findings = Vec::new();
    for rel in &rels {
        let src = fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        findings.extend(scan_source(rel, &src));
    }
    Ok(ScanReport {
        files: rels,
        findings,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]` — how the binary finds its scan root when
/// invoked from a subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_lines_end_with_summary() {
        let report = ScanReport {
            files: vec!["a.rs".into()],
            findings: vec![],
        };
        let json = report.to_json_lines();
        assert_eq!(
            json.trim(),
            "{\"summary\":true,\"files_scanned\":1,\"findings\":0}"
        );
    }
}
