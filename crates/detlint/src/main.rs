//! The `detlint` binary: scan the workspace for determinism hazards.
//!
//! ```text
//! detlint [--json] [--root <dir>]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error. With
//! `--json` the report is JSON lines (one object per finding plus a
//! summary line) on stdout, mirroring the criterion shim's `--json`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("detlint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("usage: detlint [--json] [--root <dir>]");
                println!("scans the workspace for determinism hazards; exit 1 on findings");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("detlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("detlint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match detlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("detlint: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match detlint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json_lines());
    } else {
        for f in &report.findings {
            println!("{}", f.render());
        }
        println!(
            "detlint: {} file(s) scanned, {} finding(s)",
            report.files.len(),
            report.findings.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
