//! The determinism-hazard rules and the pragma-aware scan driver.
//!
//! Every rule is a pure function over a file's code-token stream (comments
//! stripped, but consulted separately for allow-pragmas). Rules are scoped
//! by *path*: the engine crates carry the full contract, bench harnesses
//! may read wall clocks, and the shims are the one place allowed to define
//! the surfaces everyone else must route through.
//!
//! ## Allow pragmas
//!
//! A finding is suppressed by a justified inline pragma on the flagged
//! line or the line directly above it:
//!
//! ```text
//! // detlint: allow(stray_rng): property-test stream, not an entity stream
//! let mut rng = SmallRng::seed_from_u64(0xBA2D ^ trial);
//! ```
//!
//! The justification text after the closing parenthesis is mandatory; a
//! pragma without one (or naming an unknown rule) is itself reported as
//! `bad_pragma`, so silent blanket waivers cannot accumulate.

use crate::lexer::{lex, TokKind, Token};

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `std::collections::HashMap`/`HashSet` in simulation code: iteration
    /// order is seeded per-process, so any walk over one is a trace-digest
    /// hazard.
    HashIter,
    /// `Instant`/`SystemTime` outside bench/CI code: simulated time lives
    /// on the integer-ns grid, never on the host clock.
    WallClock,
    /// RNG construction outside the named per-entity stream constructors
    /// (streams 0–4), or an entropy-seeded generator anywhere.
    StrayRng,
    /// A crate root missing `#![forbid(unsafe_code)]`, or an `unsafe`
    /// token anywhere.
    ForbidUnsafe,
    /// A floating-point `partial_cmp` used as an ordering key in engine
    /// code: NaN makes the comparator inconsistent, and an inconsistent
    /// comparator makes sort order an implementation detail.
    FloatKey,
    /// A direct parallel-iterator call bypassing the rayon shim's
    /// deterministic-merge helper.
    OrderedMerge,
    /// A shared-state or message-passing primitive (`Mutex`, `RwLock`,
    /// `Atomic*`, `mpsc`, raw `thread` spawns …) in the engine crate:
    /// cross-shard state must flow through the epoch-boundary
    /// drain → merge → inject surface of the sharded executor, never
    /// through a side channel whose observation order the scheduler picks.
    ShardExchange,
    /// A malformed allow-pragma: unknown rule name or missing
    /// justification.
    BadPragma,
}

impl RuleId {
    /// The stable machine-readable rule name (`hash_iter`, …).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashIter => "hash_iter",
            RuleId::WallClock => "wall_clock",
            RuleId::StrayRng => "stray_rng",
            RuleId::ForbidUnsafe => "forbid_unsafe",
            RuleId::FloatKey => "float_key",
            RuleId::OrderedMerge => "ordered_merge",
            RuleId::ShardExchange => "shard_exchange",
            RuleId::BadPragma => "bad_pragma",
        }
    }

    /// Parses a rule name as written in an allow-pragma. `bad_pragma` is
    /// deliberately not allowable.
    pub fn from_name(name: &str) -> Option<RuleId> {
        match name {
            "hash_iter" => Some(RuleId::HashIter),
            "wall_clock" => Some(RuleId::WallClock),
            "stray_rng" => Some(RuleId::StrayRng),
            "forbid_unsafe" => Some(RuleId::ForbidUnsafe),
            "float_key" => Some(RuleId::FloatKey),
            "ordered_merge" => Some(RuleId::OrderedMerge),
            "shard_exchange" => Some(RuleId::ShardExchange),
            _ => None,
        }
    }

    /// The fix hint shown with every finding of this rule.
    pub fn hint(self) -> &'static str {
        match self {
            RuleId::HashIter => {
                "use BTreeMap/BTreeSet or a sorted+deduped Vec; if the table is \
                 never iterated, justify with // detlint: allow(hash_iter): <why>"
            }
            RuleId::WallClock => {
                "simulated time lives on the engine's integer-ns grid (net::Time); \
                 host-clock timing belongs in benches or the criterion shim"
            }
            RuleId::StrayRng => {
                "route through the named stream constructors (net::entities::streams, \
                 streams 0-4, backed by rand::stream::small_rng); test-local generators \
                 need // detlint: allow(stray_rng): <why>"
            }
            RuleId::ForbidUnsafe => {
                "add #![forbid(unsafe_code)] to the crate root; this workspace is \
                 100% safe Rust by policy"
            }
            RuleId::FloatKey => {
                "use f64::total_cmp or an integer/bit key (e.g. to_bits on \
                 non-negative floats); partial_cmp + unwrap_or(Equal) is an \
                 inconsistent comparator under NaN"
            }
            RuleId::OrderedMerge => {
                "call rayon::det::map_ordered (the deterministic-merge helper) \
                 instead of raw parallel iterators, so results merge in input order"
            }
            RuleId::ShardExchange => {
                "cross-shard state must cross cell boundaries through the sharded \
                 executor's epoch exchange (net::shard's drain/merge/inject path over \
                 rayon::det), not through locks, atomics, channels or raw threads"
            }
            RuleId::BadPragma => {
                "write // detlint: allow(<rule>): <justification> — the \
                 justification text is mandatory and the rule name must exist"
            }
        }
    }
}

/// One reported hazard.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-indexed line of the offending token.
    pub line: u32,
    /// Human-readable statement of the hazard.
    pub message: String,
}

impl Finding {
    /// The `file:line: [rule] message; hint` form printed by the binary.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    hint: {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message,
            self.rule.hint()
        )
    }
}

/// A parsed `detlint: allow(...)` pragma.
struct Pragma {
    line: u32,
    rules: Vec<RuleId>,
}

/// Per-rule path scoping. Paths are workspace-relative with `/` separators.
fn in_scope(rule: RuleId, path: &str) -> bool {
    match rule {
        // Shims mirror upstream APIs verbatim; everything else — engine,
        // PHY crates, root tests/examples — is simulation code.
        RuleId::HashIter => !path.starts_with("crates/shims/"),
        // Bench harnesses time things by design: the criterion shim is the
        // sanctioned stopwatch, crates/bench and benches/ are its callers.
        // The profiling module is the one sanctioned home for `Instant`
        // inside the engine crate — every other engine file still fails.
        RuleId::WallClock => {
            !path.starts_with("crates/shims/criterion")
                && !path.starts_with("crates/bench/")
                && !path.contains("/benches/")
                && !path.starts_with("benches/")
                && path != "crates/net/src/prof.rs"
        }
        // The rand shim defines the constructors the rule polices.
        RuleId::StrayRng => !path.starts_with("crates/shims/rand"),
        RuleId::ForbidUnsafe => true,
        // The engine crate carries the bit-exactness contract; the PHY
        // math crates compare floats freely.
        RuleId::FloatKey => path.starts_with("crates/net/src/"),
        // The rayon shim hosts the deterministic-merge helper itself.
        RuleId::OrderedMerge => !path.starts_with("crates/shims/rayon"),
        // The engine crate carries the sharding contract; the rayon shim
        // is the one sanctioned holder of scoped threads.
        RuleId::ShardExchange => path.starts_with("crates/net/src/"),
        RuleId::BadPragma => true,
    }
}

/// Whether `path` is a crate root that must carry
/// `#![forbid(unsafe_code)]`.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs")
}

/// Scans one file's source text. `path` must be workspace-relative with
/// `/` separators — scoping and the self-scan both key on it.
pub fn scan_source(path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let mut findings: Vec<Finding> = Vec::new();
    let pragmas = collect_pragmas(path, &tokens, &mut findings);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    check_idents(path, &code, &mut findings);
    if is_crate_root(path) && in_scope(RuleId::ForbidUnsafe, path) {
        check_forbid_attr(path, &code, &mut findings);
    }

    // Apply suppressions: a pragma covers its own line and the next one.
    findings.retain(|f| {
        if f.rule == RuleId::BadPragma {
            return true;
        }
        !pragmas
            .iter()
            .any(|p| (p.line == f.line || p.line + 1 == f.line) && p.rules.contains(&f.rule))
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Extracts well-formed pragmas from comment tokens; malformed ones become
/// `bad_pragma` findings on the spot.
fn collect_pragmas(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let body = t.text.trim();
        let Some(rest) = body.strip_prefix("detlint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let bad = |msg: String, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                rule: RuleId::BadPragma,
                path: path.to_string(),
                line: t.line,
                message: msg,
            });
        };
        let Some(args) = rest.strip_prefix("allow") else {
            bad(format!("unrecognized detlint pragma `{body}`"), findings);
            continue;
        };
        let args = args.trim_start();
        let (Some(open), Some(close)) = (args.find('('), args.find(')')) else {
            bad("allow-pragma missing (rule) list".to_string(), findings);
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for name in args[open + 1..close].split(',') {
            let name = name.trim();
            match RuleId::from_name(name) {
                Some(r) => rules.push(r),
                None => {
                    bad(
                        format!("allow-pragma names unknown rule `{name}`"),
                        findings,
                    );
                    ok = false;
                }
            }
        }
        // Mandatory justification: substantive text after the rule list.
        let justification = args[close + 1..]
            .trim_matches(|c: char| c.is_whitespace() || matches!(c, ':' | '-' | '—' | '–' | '.'));
        if justification
            .chars()
            .filter(|c| c.is_alphanumeric())
            .count()
            < 3
        {
            bad(
                "allow-pragma has no justification text after the rule list".to_string(),
                findings,
            );
            ok = false;
        }
        if ok {
            pragmas.push(Pragma {
                line: t.line,
                rules,
            });
        }
    }
    pragmas
}

/// All identifier-keyed rules in one pass over the code tokens.
fn check_idents(path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    let mut report = |rule: RuleId, line: u32, message: String| {
        if in_scope(rule, path) {
            findings.push(Finding {
                rule,
                path: path.to_string(),
                line,
                message,
            });
        }
    };
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_ident = i
            .checked_sub(1)
            .and_then(|p| code.get(p))
            .filter(|p| p.kind == TokKind::Ident)
            .map(|p| p.text.as_str());
        match t.text.as_str() {
            "HashMap" | "HashSet" => report(
                RuleId::HashIter,
                t.line,
                format!(
                    "`{}` in simulation code: std hash tables iterate in a \
                     seeded, per-process order",
                    t.text
                ),
            ),
            "Instant" | "SystemTime" => report(
                RuleId::WallClock,
                t.line,
                format!("`{}` reads the host clock, which no two runs share", t.text),
            ),
            "thread_rng" | "ThreadRng" | "from_entropy" | "OsRng" => report(
                RuleId::StrayRng,
                t.line,
                format!(
                    "`{}` draws from process entropy: unreproducible by design",
                    t.text
                ),
            ),
            // Construction inside the named stream constructors
            // (entities.rs) is the sanctioned path; everywhere else in the
            // engine crate it bypasses the stream-id discipline.
            "seed_from_u64"
                if path.starts_with("crates/net/src/") && !path.ends_with("/entities.rs") =>
            {
                report(
                    RuleId::StrayRng,
                    t.line,
                    "RNG constructed outside the named per-entity stream \
                     constructors (streams 0-4)"
                        .to_string(),
                );
            }
            "unsafe" => report(
                RuleId::ForbidUnsafe,
                t.line,
                "`unsafe` block/fn in a forbid(unsafe_code) workspace".to_string(),
            ),
            "partial_cmp" if prev_ident != Some("fn") => report(
                RuleId::FloatKey,
                t.line,
                "float `partial_cmp` used as an ordering key in engine code".to_string(),
            ),
            "into_par_iter" | "par_iter" | "par_iter_mut" | "par_bridge" | "par_chunks"
            | "par_sort" | "par_sort_unstable" => report(
                RuleId::OrderedMerge,
                t.line,
                format!(
                    "`{}` called directly: parallel results must flow through \
                     the deterministic-merge helper",
                    t.text
                ),
            ),
            "Mutex" | "RwLock" | "Condvar" | "Barrier" | "mpsc" | "sync_channel" => report(
                RuleId::ShardExchange,
                t.line,
                format!(
                    "`{}` is a cross-shard side channel: shard state may only \
                     cross cell boundaries through the epoch exchange",
                    t.text
                ),
            ),
            name if name.starts_with("Atomic") && name.len() > "Atomic".len() => report(
                RuleId::ShardExchange,
                t.line,
                format!(
                    "`{}` shares mutable state across workers outside the \
                     epoch exchange; observation order is scheduler-picked",
                    t.text
                ),
            ),
            "thread" if prev_ident != Some("use") => {
                // `std::thread::spawn`/`scope` in the engine crate: raw
                // threads bypass the ordered chunking of `rayon::det`.
                let colon = |t: Option<&&Token>| {
                    t.is_some_and(|t| t.kind == TokKind::Punct && t.text == ":")
                };
                if colon(code.get(i + 1))
                    && colon(code.get(i + 2))
                    && code.get(i + 3).is_some_and(|what| {
                        what.kind == TokKind::Ident
                            && matches!(what.text.as_str(), "spawn" | "scope" | "Builder")
                    })
                {
                    report(
                        RuleId::ShardExchange,
                        t.line,
                        "raw thread spawned in the engine crate: parallel work \
                         must run through rayon::det's ordered chunking"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Requires the `forbid ( unsafe_code )` token sequence somewhere in a
/// crate root (in practice: the leading inner attribute).
fn check_forbid_attr(path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    let has = code.windows(3).any(|w| {
        w[0].kind == TokKind::Ident
            && w[0].text == "forbid"
            && w[1].kind == TokKind::Punct
            && w[1].text == "("
            && w[2].kind == TokKind::Ident
            && w[2].text == "unsafe_code"
    });
    if !has {
        findings.push(Finding {
            rule: RuleId::ForbidUnsafe,
            path: path.to_string(),
            line: 1,
            message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_requires_justification() {
        let src = "// detlint: allow(hash_iter)\nlet m: XMap = XMap::new();\n";
        let f = scan_source("crates/net/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::BadPragma);
    }

    #[test]
    fn pragma_rejects_unknown_rule() {
        let src = "// detlint: allow(no_such_rule): because reasons\n";
        let f = scan_source("crates/net/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::BadPragma);
        assert!(f[0].message.contains("no_such_rule"));
    }

    #[test]
    fn pragma_cannot_allow_bad_pragma() {
        assert!(RuleId::from_name("bad_pragma").is_none());
    }

    #[test]
    fn multi_rule_pragma_parses() {
        let src = "// detlint: allow(hash_iter, wall_clock): scratch analysis cell\n\
                   let m = one_line_using_nothing();\n";
        assert!(scan_source("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_sort_by_line() {
        let src = "type B = HashSet<u8>;\ntype A = HashMap<u8, u8>;\n";
        let f = scan_source("crates/net/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }

    #[test]
    fn render_includes_hint() {
        let f = Finding {
            rule: RuleId::HashIter,
            path: "crates/net/src/x.rs".into(),
            line: 3,
            message: "m".into(),
        };
        let r = f.render();
        assert!(r.contains("crates/net/src/x.rs:3"));
        assert!(r.contains("[hash_iter]"));
        assert!(r.contains("hint:"));
    }
}
