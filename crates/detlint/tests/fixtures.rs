//! Per-rule fixture tests: every rule fires on a crafted hazardous
//! snippet and stays silent on the idiomatic equivalent. The hazardous
//! code lives in string literals, which the lexer guarantees are invisible
//! to the rules when *this* file is itself scanned by the workspace
//! self-scan.

use detlint::{scan_source, RuleId};

/// Findings of one rule for a snippet placed at `path`.
fn fire(path: &str, src: &str, rule: RuleId) -> usize {
    scan_source(path, src)
        .iter()
        .filter(|f| f.rule == rule)
        .count()
}

const NET: &str = "crates/net/src/fixture.rs";

// ---------------------------------------------------------------- hash_iter

#[test]
fn hash_iter_fires_on_std_hash_tables() {
    let src =
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u64, usize> = HashMap::new(); }\n";
    assert_eq!(fire(NET, src, RuleId::HashIter), 3, "use + type + ctor");
    let set = "fn g() { let s = std::collections::HashSet::<usize>::new(); }\n";
    assert_eq!(fire(NET, set, RuleId::HashIter), 1);
}

#[test]
fn hash_iter_silent_on_ordered_structures() {
    let src = "use std::collections::BTreeMap;\nfn f(xs: &mut Vec<u64>) -> BTreeMap<u64, usize> {\n  xs.sort_unstable(); xs.dedup(); BTreeMap::new()\n}\n";
    assert_eq!(fire(NET, src, RuleId::HashIter), 0);
}

#[test]
fn hash_iter_silent_in_strings_and_comments() {
    let src = "// a HashMap would be wrong here\nfn f() -> &'static str { \"HashMap\" }\n";
    assert_eq!(fire(NET, src, RuleId::HashIter), 0);
}

#[test]
fn hash_iter_out_of_scope_in_shims() {
    let src = "fn f() { let m = std::collections::HashMap::<u8, u8>::new(); }\n";
    assert_eq!(
        fire("crates/shims/criterion/src/lib.rs", src, RuleId::HashIter),
        0
    );
}

// ---------------------------------------------------------------- wall_clock

#[test]
fn wall_clock_fires_on_host_clock_reads() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(fire(NET, src, RuleId::WallClock), 1);
    let sys = "fn f() { let t = std::time::SystemTime::now(); }\n";
    assert_eq!(fire(NET, sys, RuleId::WallClock), 1);
}

#[test]
fn wall_clock_silent_on_virtual_time_and_in_benches() {
    let src = "fn f(now: Time) -> Time { now.after_nanos(5) }\n";
    assert_eq!(fire(NET, src, RuleId::WallClock), 0);
    // Bench harnesses are the sanctioned stopwatch holders.
    let bench = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(
        fire(
            "crates/bench/benches/net_engine.rs",
            bench,
            RuleId::WallClock
        ),
        0
    );
    assert_eq!(
        fire(
            "crates/shims/criterion/src/lib.rs",
            bench,
            RuleId::WallClock
        ),
        0
    );
}

#[test]
fn wall_clock_allowance_is_scoped_to_the_prof_module() {
    // prof.rs is the one sanctioned home for Instant in the engine crate.
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert_eq!(fire("crates/net/src/prof.rs", src, RuleId::WallClock), 0);
    // The allowance does not leak to siblings, the hot path, or lookalike
    // paths elsewhere in the tree.
    assert_eq!(fire("crates/net/src/engine.rs", src, RuleId::WallClock), 1);
    assert_eq!(fire("crates/net/src/shard.rs", src, RuleId::WallClock), 1);
    assert_eq!(fire("crates/sim/src/prof.rs", src, RuleId::WallClock), 1);
}

// ----------------------------------------------------------------- stray_rng

#[test]
fn stray_rng_fires_on_entropy_sources_anywhere() {
    let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
    assert_eq!(fire("crates/sim/src/fixture.rs", src, RuleId::StrayRng), 1);
    let ent = "fn f() { let rng = SmallRng::from_entropy(); }\n";
    assert_eq!(fire("crates/sim/src/fixture.rs", ent, RuleId::StrayRng), 1);
}

#[test]
fn stray_rng_fires_on_direct_seeding_in_the_engine_crate() {
    let src = "fn f(seed: u64) { let rng = SmallRng::seed_from_u64(seed ^ 17); }\n";
    assert_eq!(fire(NET, src, RuleId::StrayRng), 1);
}

#[test]
fn stray_rng_silent_in_the_stream_constructors_and_outside_net() {
    let src = "fn f(seed: u64) { let rng = SmallRng::seed_from_u64(seed ^ 17); }\n";
    // entities.rs hosts the named stream constructors (streams 0-4).
    assert_eq!(fire("crates/net/src/entities.rs", src, RuleId::StrayRng), 0);
    // Deterministically seeded generators outside the engine crate are
    // not stream-disciplined; only entropy sources are policed there.
    assert_eq!(fire("crates/sim/src/fixture.rs", src, RuleId::StrayRng), 0);
}

#[test]
fn stray_rng_silent_on_routed_constructors() {
    let src = "fn f(seed: u64, t: usize) { let rng = streams::tag_rng(seed, t); }\n";
    assert_eq!(fire(NET, src, RuleId::StrayRng), 0);
}

// ------------------------------------------------------------- forbid_unsafe

#[test]
fn forbid_unsafe_fires_on_missing_attr_in_crate_root() {
    let src = "//! A crate.\npub fn f() {}\n";
    assert_eq!(fire("crates/fake/src/lib.rs", src, RuleId::ForbidUnsafe), 1);
    assert_eq!(
        fire("crates/fake/src/main.rs", src, RuleId::ForbidUnsafe),
        1
    );
}

#[test]
fn forbid_unsafe_fires_on_unsafe_token() {
    let src =
        "#![forbid(unsafe_code)]\nfn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
    assert_eq!(fire("crates/fake/src/lib.rs", src, RuleId::ForbidUnsafe), 1);
}

#[test]
fn forbid_unsafe_silent_on_guarded_root_and_non_roots() {
    let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
    assert_eq!(fire("crates/fake/src/lib.rs", src, RuleId::ForbidUnsafe), 0);
    // A non-root module file needs no attribute of its own.
    assert_eq!(
        fire(
            "crates/fake/src/module.rs",
            "pub fn f() {}\n",
            RuleId::ForbidUnsafe
        ),
        0
    );
}

// ------------------------------------------------------------------ float_key

#[test]
fn float_key_fires_on_partial_cmp_ordering() {
    let src = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
    assert_eq!(fire(NET, src, RuleId::FloatKey), 1);
}

#[test]
fn float_key_silent_on_total_cmp_and_trait_impls() {
    let src = "fn f(xs: &mut [f64]) { xs.sort_by(f64::total_cmp); }\n";
    assert_eq!(fire(NET, src, RuleId::FloatKey), 0);
    // A PartialOrd impl *defines* partial_cmp; that is not a float key.
    let imp = "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> { Some(self.cmp(o)) } }\n";
    assert_eq!(fire(NET, imp, RuleId::FloatKey), 0);
    // Outside the engine crate the PHY math compares floats freely.
    let phy = "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
    assert_eq!(fire("crates/dsp/src/fixture.rs", phy, RuleId::FloatKey), 0);
}

// -------------------------------------------------------------- ordered_merge

#[test]
fn ordered_merge_fires_on_raw_parallel_iterators() {
    let src = "fn f(xs: Vec<u64>) -> Vec<u64> { xs.into_par_iter().map(|x| x + 1).collect() }\n";
    assert_eq!(fire(NET, src, RuleId::OrderedMerge), 1);
    let byref = "fn f(xs: &[u64]) -> u64 { xs.par_iter().map(|&x| x).count() as u64 }\n";
    assert_eq!(fire(NET, byref, RuleId::OrderedMerge), 1);
}

#[test]
fn ordered_merge_silent_on_the_helper_and_inside_the_shim() {
    let src = "fn f(xs: Vec<u64>) -> Vec<u64> { rayon::det::map_ordered(xs, |x| x + 1) }\n";
    assert_eq!(fire(NET, src, RuleId::OrderedMerge), 0);
    // The shim itself defines the parallel surface.
    let shim = "pub fn into_par_iter(self) -> ParIter<T> { ParIter { items: self } }\n";
    assert_eq!(
        fire("crates/shims/rayon/src/lib.rs", shim, RuleId::OrderedMerge),
        0
    );
}

// ------------------------------------------------------------- shard_exchange

#[test]
fn shard_exchange_fires_on_sync_primitives_in_the_engine_crate() {
    let lock = "fn f() { let shared = std::sync::Mutex::new(Vec::<u64>::new()); }\n";
    assert_eq!(fire(NET, lock, RuleId::ShardExchange), 1);
    let rw = "fn f() { let shared = std::sync::RwLock::new(0u64); }\n";
    assert_eq!(fire(NET, rw, RuleId::ShardExchange), 1);
    let atomic = "fn f() { let n = std::sync::atomic::AtomicU64::new(0); }\n";
    assert_eq!(fire(NET, atomic, RuleId::ShardExchange), 1);
    let chan = "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u64>(); }\n";
    assert_eq!(fire(NET, chan, RuleId::ShardExchange), 1);
    let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(fire(NET, spawn, RuleId::ShardExchange), 1);
    let scope = "fn f() { std::thread::scope(|s| {}); }\n";
    assert_eq!(fire(NET, scope, RuleId::ShardExchange), 1);
}

#[test]
fn shard_exchange_silent_on_the_epoch_exchange_and_outside_the_engine() {
    // The sanctioned path: ordered chunking plus the boundary drain/inject.
    let ok = "fn step(cores: &mut [EngineCore]) {\n  rayon::det::for_each_mut_ordered(4, cores, |_, c| c.run_until(limit));\n  let rows: Vec<_> = cores.iter_mut().map(|c| c.drain_boundary()).collect();\n}\n";
    assert_eq!(fire(NET, ok, RuleId::ShardExchange), 0);
    // The rayon shim holds the scoped threads; bench code times freely.
    let shim = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
    assert_eq!(
        fire("crates/shims/rayon/src/lib.rs", shim, RuleId::ShardExchange),
        0
    );
    assert_eq!(
        fire(
            "crates/bench/benches/net_campus.rs",
            shim,
            RuleId::ShardExchange
        ),
        0
    );
    // Plain identifiers that merely *contain* the words are no hazard.
    let vocab = "fn f() { let atomic_swap_count = 3; thread_local_name(); }\n";
    assert_eq!(fire(NET, vocab, RuleId::ShardExchange), 0);
}

// -------------------------------------------------------------------- pragmas

#[test]
fn justified_pragma_suppresses_line_below_and_same_line() {
    let above = "// detlint: allow(hash_iter): scratch table, never iterated, test-only\nfn f() { let m = HashMap::<u8, u8>::new(); }\n";
    assert!(scan_source(NET, above).is_empty());
    let trailing =
        "fn f() { let m = HashMap::<u8, u8>::new(); } // detlint: allow(hash_iter): scratch table, never iterated\n";
    assert!(scan_source(NET, trailing).is_empty());
}

#[test]
fn pragma_does_not_leak_past_the_next_line() {
    let src = "// detlint: allow(hash_iter): covers only the next line\nfn f() { let m = HashMap::<u8, u8>::new(); }\nfn g() { let m = HashMap::<u8, u8>::new(); }\n";
    let f = scan_source(NET, src);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].line, 3);
}

#[test]
fn pragma_for_the_wrong_rule_does_not_suppress() {
    let src = "// detlint: allow(wall_clock): wrong rule named here\nfn f() { let m = HashMap::<u8, u8>::new(); }\n";
    let f = scan_source(NET, src);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].rule, RuleId::HashIter);
}

#[test]
fn unjustified_pragma_is_a_finding_and_suppresses_nothing() {
    let src = "// detlint: allow(hash_iter)\nfn f() { let m = HashMap::<u8, u8>::new(); }\n";
    let f = scan_source(NET, src);
    let rules: Vec<RuleId> = f.iter().map(|x| x.rule).collect();
    assert!(rules.contains(&RuleId::BadPragma));
    assert!(rules.contains(&RuleId::HashIter));
}
