//! The workspace self-scan: the repository must be detlint-clean. This is
//! the tier-1 incarnation of the CI gate — `cargo test -q` fails the
//! moment a determinism hazard lands anywhere in the tree.

use std::path::Path;

#[test]
fn workspace_is_detlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = detlint::scan_workspace(&root).expect("workspace scan");
    assert!(
        report.files.len() > 50,
        "suspiciously small scan ({} files) — walker broke?",
        report.files.len()
    );
    // The engine sources must be in the sweep (the two historical hazards
    // lived there).
    assert!(report.files.iter().any(|f| f == "crates/net/src/medium.rs"));
    assert!(report.files.iter().any(|f| f == "src/lib.rs"));
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.is_clean(),
        "detlint found {} hazard(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}

#[test]
fn json_report_matches_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = detlint::scan_workspace(&root).expect("workspace scan");
    let json = report.to_json_lines();
    let last = json.lines().last().expect("summary line");
    assert!(last.contains("\"summary\":true"));
    assert!(last.contains(&format!("\"findings\":{}", report.findings.len())));
    assert_eq!(json.lines().count(), report.findings.len() + 1);
}
