//! Bit/byte packing helpers shared by every framing implementation.
//!
//! The 802.x family is inconsistent about bit ordering: BLE and 802.11
//! transmit each octet least-significant-bit first, while CRCs are usually
//! specified in polynomial (MSB-first) form. Keeping the conversions in one
//! audited place avoids an entire class of off-by-reversal bugs.

/// Expands a byte slice into bits, least-significant bit of each byte first
/// (the over-the-air order used by BLE and 802.11b).
pub fn bytes_to_bits_lsb(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Expands a byte slice into bits, most-significant bit of each byte first.
pub fn bytes_to_bits_msb(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Packs bits (LSB-first per byte) back into bytes. The final partial byte,
/// if any, is zero-padded in its high bits.
pub fn bits_to_bytes_lsb(bits: &[u8]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit & 1 == 1 {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

/// Packs bits (MSB-first per byte) back into bytes. The final partial byte,
/// if any, is zero-padded in its low bits.
pub fn bits_to_bytes_msb(bits: &[u8]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit & 1 == 1 {
            bytes[i / 8] |= 1 << (7 - (i % 8));
        }
    }
    bytes
}

/// XORs two equal-length bit (or byte) slices element-wise.
///
/// # Panics
/// Panics if the slices have different lengths; callers in this workspace
/// always construct both operands from the same frame length.
pub fn xor_bits(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "xor_bits requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// Counts positions where two equal-length bit slices differ (Hamming
/// distance). Slices of unequal length compare only the overlapping prefix
/// and count every extra position as an error, which is the convention the
/// BER measurements in the evaluation use.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    let overlap = a.len().min(b.len());
    let differing = a[..overlap]
        .iter()
        .zip(&b[..overlap])
        .filter(|(x, y)| (**x & 1) != (**y & 1))
        .count();
    differing + (a.len().max(b.len()) - overlap)
}

/// Reverses the bit order of the low `width` bits of `value`.
/// Used when CRC registers are specified MSB-first but transmitted LSB-first.
pub fn reverse_bits(value: u32, width: u32) -> u32 {
    let mut out = 0u32;
    for i in 0..width {
        if (value >> i) & 1 == 1 {
            out |= 1 << (width - 1 - i);
        }
    }
    out
}

/// Converts a bit slice (each element 0/1) into an integer, first bit =
/// least-significant.
pub fn bits_to_u32_lsb(bits: &[u8]) -> u32 {
    assert!(bits.len() <= 32, "at most 32 bits fit in a u32");
    bits.iter()
        .enumerate()
        .fold(0u32, |acc, (i, &b)| acc | ((u32::from(b & 1)) << i))
}

/// Converts an integer into `width` bits, least-significant first.
pub fn u32_to_bits_lsb(value: u32, width: usize) -> Vec<u8> {
    assert!(width <= 32, "at most 32 bits fit in a u32");
    (0..width).map(|i| ((value >> i) & 1) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_round_trip() {
        let data = [0x8Eu8, 0x89, 0xBE, 0xD6, 0x00, 0xFF, 0x55];
        let bits = bytes_to_bits_lsb(&data);
        assert_eq!(bits.len(), data.len() * 8);
        assert_eq!(bits_to_bytes_lsb(&bits), data);
    }

    #[test]
    fn msb_round_trip() {
        let data = [0xA5u8, 0x01, 0x80, 0x7E];
        let bits = bytes_to_bits_msb(&data);
        assert_eq!(bits_to_bytes_msb(&bits), data);
    }

    #[test]
    fn lsb_ordering_of_single_byte() {
        // 0xAA = 0b10101010 transmitted LSB first -> 0,1,0,1,0,1,0,1
        assert_eq!(bytes_to_bits_lsb(&[0xAA]), vec![0, 1, 0, 1, 0, 1, 0, 1]);
        // MSB first -> 1,0,1,0,...
        assert_eq!(bytes_to_bits_msb(&[0xAA]), vec![1, 0, 1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn partial_byte_padding() {
        let bits = [1u8, 1, 0, 1]; // 0b1011 LSB-first = 0x0B
        assert_eq!(bits_to_bytes_lsb(&bits), vec![0x0B]);
        // MSB-first packing: 1101 in the top nibble = 0xD0
        assert_eq!(bits_to_bytes_msb(&bits), vec![0xD0]);
    }

    #[test]
    fn xor_and_hamming() {
        let a = [1u8, 0, 1, 1, 0];
        let b = [1u8, 1, 1, 0, 0];
        assert_eq!(xor_bits(&a, &b), vec![0, 1, 0, 1, 0]);
        assert_eq!(hamming_distance(&a, &b), 2);
        // Unequal lengths: extra positions count as errors.
        assert_eq!(hamming_distance(&a, &b[..3]), 1 + 2);
    }

    #[test]
    fn reverse_bits_works() {
        assert_eq!(reverse_bits(0b001, 3), 0b100);
        assert_eq!(reverse_bits(0x1, 32), 0x8000_0000);
        assert_eq!(reverse_bits(reverse_bits(0xDEAD_BEEF, 32), 32), 0xDEAD_BEEF);
    }

    #[test]
    fn u32_bits_round_trip() {
        let v = 0x00B5_55AD;
        let bits = u32_to_bits_lsb(v, 24);
        assert_eq!(bits.len(), 24);
        assert_eq!(bits_to_u32_lsb(&bits), v);
    }
}
