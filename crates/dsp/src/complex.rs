//! A minimal `f64` complex number type.
//!
//! The Interscatter pipelines manipulate complex-baseband IQ samples
//! everywhere: the BLE GFSK modulator produces them, the backscatter tag
//! multiplies them by a reflection coefficient, and the Wi-Fi / ZigBee
//! receivers correlate against them. The workspace keeps its own small type
//! instead of pulling in an external numerics crate so that every operation
//! used in the reproduction is visible in this file.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real (in-phase) and imaginary (quadrature)
/// parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real / in-phase component.
    pub re: f64,
    /// Imaginary / quadrature component.
    pub im: f64,
}

impl Cplx {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const J: Cplx = Cplx { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Cplx { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates (magnitude, phase in
    /// radians).
    #[inline]
    pub fn from_polar(mag: f64, phase: f64) -> Self {
        Cplx {
            re: mag * phase.cos(),
            im: mag * phase.sin(),
        }
    }

    /// `e^{jθ}` — a unit phasor at angle `theta` radians. This is the
    /// workhorse of every mixer and oscillator in the workspace.
    #[inline]
    pub fn expj(theta: f64) -> Self {
        Cplx {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, `|z|^2` — the instantaneous power of an IQ sample.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Cplx {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns the multiplicative inverse `1/z`. Returns `None` when the
    /// magnitude is zero (division would produce NaNs).
    #[inline]
    pub fn inv(self) -> Option<Self> {
        let d = self.norm_sq();
        if d == 0.0 {
            None
        } else {
            Some(Cplx {
                re: self.re / d,
                im: -self.im / d,
            })
        }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Cplx {
    type Output = Cplx;
    #[inline]
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cplx {
    #[inline]
    fn add_assign(&mut self, rhs: Cplx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    #[inline]
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Cplx {
    #[inline]
    fn sub_assign(&mut self, rhs: Cplx) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Cplx {
    #[inline]
    fn mul_assign(&mut self, rhs: Cplx) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Cplx {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: f64) -> Cplx {
        self.scale(rhs)
    }
}

impl Mul<Cplx> for f64 {
    type Output = Cplx;
    #[inline]
    fn mul(self, rhs: Cplx) -> Cplx {
        rhs.scale(self)
    }
}

impl Div for Cplx {
    type Output = Cplx;
    /// Complex division. Dividing by zero yields a NaN-filled value, matching
    /// `f64` semantics; use [`Cplx::inv`] for a checked variant.
    #[inline]
    fn div(self, rhs: Cplx) -> Cplx {
        let d = rhs.norm_sq();
        Cplx::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Cplx {
    type Output = Cplx;
    #[inline]
    fn div(self, rhs: f64) -> Cplx {
        Cplx::new(self.re / rhs, self.im / rhs)
    }
}

impl DivAssign<f64> for Cplx {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        self.re /= rhs;
        self.im /= rhs;
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    #[inline]
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

impl Sum for Cplx {
    fn sum<I: Iterator<Item = Cplx>>(iter: I) -> Cplx {
        iter.fold(Cplx::ZERO, |acc, x| acc + x)
    }
}

impl From<f64> for Cplx {
    fn from(re: f64) -> Self {
        Cplx::real(re)
    }
}

impl core::fmt::Display for Cplx {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn constructors_match() {
        assert_eq!(Cplx::new(1.0, 2.0), Cplx { re: 1.0, im: 2.0 });
        assert_eq!(Cplx::real(3.0), Cplx::new(3.0, 0.0));
        assert_eq!(Cplx::from(4.0), Cplx::new(4.0, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Cplx::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
    }

    #[test]
    fn expj_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            let z = Cplx::expj(theta);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        // (1 + 2j)(3 + 4j) = 3 + 4j + 6j - 8 = -5 + 10j
        let z = Cplx::new(1.0, 2.0) * Cplx::new(3.0, 4.0);
        assert!((z.re + 5.0).abs() < EPS);
        assert!((z.im - 10.0).abs() < EPS);
    }

    #[test]
    fn conjugate_multiplication_gives_power() {
        let z = Cplx::new(3.0, -4.0);
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
        assert!((z.norm_sq() - 25.0).abs() < EPS);
        assert!((z.abs() - 5.0).abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Cplx::new(1.5, -0.25);
        let b = Cplx::new(-2.0, 0.75);
        let c = a * b;
        let back = c / b;
        assert!((back.re - a.re).abs() < 1e-10);
        assert!((back.im - a.im).abs() < 1e-10);
    }

    #[test]
    fn inv_of_zero_is_none() {
        assert!(Cplx::ZERO.inv().is_none());
        let z = Cplx::new(0.0, 2.0);
        let inv = z.inv().unwrap();
        let prod = z * inv;
        assert!((prod.re - 1.0).abs() < EPS && prod.im.abs() < EPS);
    }

    #[test]
    fn scalar_ops_and_neg() {
        let z = Cplx::new(1.0, -2.0);
        assert_eq!(z * 2.0, Cplx::new(2.0, -4.0));
        assert_eq!(2.0 * z, Cplx::new(2.0, -4.0));
        assert_eq!(z / 2.0, Cplx::new(0.5, -1.0));
        assert_eq!(-z, Cplx::new(-1.0, 2.0));
        let mut w = z;
        w += Cplx::ONE;
        w -= Cplx::J;
        w *= Cplx::new(0.0, 1.0);
        w /= 2.0;
        assert!(w.is_finite() && !w.is_nan());
    }

    #[test]
    fn sum_of_phasors_cancels() {
        // Sum of the 8th roots of unity is zero.
        let total: Cplx = (0..8)
            .map(|k| Cplx::expj(2.0 * std::f64::consts::PI * k as f64 / 8.0))
            .sum();
        assert!(total.abs() < 1e-10);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Cplx::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Cplx::new(1.0, -2.0).to_string(), "1-2j");
    }
}
