//! Constellation mapping for the 802.11g OFDM downlink and the DSSS/CCK
//! phase modulations.
//!
//! The downlink AM trick (§2.4 of the paper) works at any 802.11g
//! constellation; the paper uses 16/64-QAM to keep the "random" OFDM symbols
//! high-amplitude. The uplink 802.11b synthesis only needs (D)BPSK and
//! (D)QPSK points. Mapping here follows the IEEE 802.11 Gray-coded
//! constellations with the standard per-constellation normalisation factors
//! so that every scheme has unit average symbol energy.

use crate::Cplx;

/// Supported modulation orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// Binary phase shift keying, 1 bit/symbol.
    Bpsk,
    /// Quadrature phase shift keying, 2 bits/symbol.
    Qpsk,
    /// 16-point quadrature amplitude modulation, 4 bits/symbol.
    Qam16,
    /// 64-point quadrature amplitude modulation, 6 bits/symbol.
    Qam64,
}

impl Modulation {
    /// Number of coded bits carried per constellation symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Normalisation factor K such that mapped points have unit average
    /// energy (IEEE 802.11-2016 Table 17-10: 1, 1/√2, 1/√10, 1/√42).
    pub fn normalization(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 1.0 / 2f64.sqrt(),
            Modulation::Qam16 => 1.0 / 10f64.sqrt(),
            Modulation::Qam64 => 1.0 / 42f64.sqrt(),
        }
    }

    /// Maps a group of `bits_per_symbol` bits to a constellation point.
    ///
    /// Bits are consumed in transmission order; for QAM the first half of the
    /// group selects the I coordinate and the second half the Q coordinate,
    /// Gray-coded as in the standard.
    ///
    /// # Panics
    /// Panics if `bits.len() != self.bits_per_symbol()`.
    pub fn map(self, bits: &[u8]) -> Cplx {
        assert_eq!(
            bits.len(),
            self.bits_per_symbol(),
            "wrong number of bits for {self:?}"
        );
        let k = self.normalization();
        match self {
            Modulation::Bpsk => {
                let v = if bits[0] & 1 == 1 { 1.0 } else { -1.0 };
                Cplx::new(v * k, 0.0)
            }
            Modulation::Qpsk => {
                let i = if bits[0] & 1 == 1 { 1.0 } else { -1.0 };
                let q = if bits[1] & 1 == 1 { 1.0 } else { -1.0 };
                Cplx::new(i * k, q * k)
            }
            Modulation::Qam16 => {
                let i = gray_amplitude_2bit(bits[0], bits[1]);
                let q = gray_amplitude_2bit(bits[2], bits[3]);
                Cplx::new(i * k, q * k)
            }
            Modulation::Qam64 => {
                let i = gray_amplitude_3bit(bits[0], bits[1], bits[2]);
                let q = gray_amplitude_3bit(bits[3], bits[4], bits[5]);
                Cplx::new(i * k, q * k)
            }
        }
    }

    /// Maps a full bit stream; the length must be a multiple of
    /// `bits_per_symbol`.
    ///
    /// # Panics
    /// Panics on a length mismatch (framing layers always pad to symbol
    /// boundaries before mapping).
    pub fn map_stream(self, bits: &[u8]) -> Vec<Cplx> {
        let bps = self.bits_per_symbol();
        assert_eq!(bits.len() % bps, 0, "bit stream not a multiple of {bps}");
        bits.chunks(bps).map(|chunk| self.map(chunk)).collect()
    }

    /// Hard-decision demapping of a single received point back into bits.
    pub fn demap(self, point: Cplx) -> Vec<u8> {
        let k = self.normalization();
        let x = point.re / k;
        let y = point.im / k;
        match self {
            Modulation::Bpsk => vec![(x >= 0.0) as u8],
            Modulation::Qpsk => vec![(x >= 0.0) as u8, (y >= 0.0) as u8],
            Modulation::Qam16 => {
                let (b0, b1) = degray_amplitude_2bit(x);
                let (b2, b3) = degray_amplitude_2bit(y);
                vec![b0, b1, b2, b3]
            }
            Modulation::Qam64 => {
                let (b0, b1, b2) = degray_amplitude_3bit(x);
                let (b3, b4, b5) = degray_amplitude_3bit(y);
                vec![b0, b1, b2, b3, b4, b5]
            }
        }
    }

    /// Demaps a stream of received points.
    pub fn demap_stream(self, points: &[Cplx]) -> Vec<u8> {
        points.iter().flat_map(|&p| self.demap(p)).collect()
    }
}

/// 16-QAM per-axis Gray mapping: (b0,b1) -> {-3,-1,1,3}.
fn gray_amplitude_2bit(b0: u8, b1: u8) -> f64 {
    match (b0 & 1, b1 & 1) {
        (0, 0) => -3.0,
        (0, 1) => -1.0,
        (1, 1) => 1.0,
        (1, 0) => 3.0,
        _ => unreachable!(),
    }
}

fn degray_amplitude_2bit(x: f64) -> (u8, u8) {
    if x < -2.0 {
        (0, 0)
    } else if x < 0.0 {
        (0, 1)
    } else if x < 2.0 {
        (1, 1)
    } else {
        (1, 0)
    }
}

/// 64-QAM per-axis Gray mapping: (b0,b1,b2) -> {-7,...,7}.
fn gray_amplitude_3bit(b0: u8, b1: u8, b2: u8) -> f64 {
    match (b0 & 1, b1 & 1, b2 & 1) {
        (0, 0, 0) => -7.0,
        (0, 0, 1) => -5.0,
        (0, 1, 1) => -3.0,
        (0, 1, 0) => -1.0,
        (1, 1, 0) => 1.0,
        (1, 1, 1) => 3.0,
        (1, 0, 1) => 5.0,
        (1, 0, 0) => 7.0,
        _ => unreachable!(),
    }
}

fn degray_amplitude_3bit(x: f64) -> (u8, u8, u8) {
    if x < -6.0 {
        (0, 0, 0)
    } else if x < -4.0 {
        (0, 0, 1)
    } else if x < -2.0 {
        (0, 1, 1)
    } else if x < 0.0 {
        (0, 1, 0)
    } else if x < 2.0 {
        (1, 1, 0)
    } else if x < 4.0 {
        (1, 1, 1)
    } else if x < 6.0 {
        (1, 0, 1)
    } else {
        (1, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_modulations() -> [Modulation; 4] {
        [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ]
    }

    #[test]
    fn bits_per_symbol_counts() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Qam16.bits_per_symbol(), 4);
        assert_eq!(Modulation::Qam64.bits_per_symbol(), 6);
    }

    #[test]
    fn map_demap_round_trip_all_points() {
        for m in all_modulations() {
            let bps = m.bits_per_symbol();
            for v in 0..(1u32 << bps) {
                let bits: Vec<u8> = (0..bps).map(|i| ((v >> i) & 1) as u8).collect();
                let point = m.map(&bits);
                assert_eq!(m.demap(point), bits, "{m:?} point {v}");
            }
        }
    }

    #[test]
    fn average_energy_is_unity() {
        for m in all_modulations() {
            let bps = m.bits_per_symbol();
            let mut total = 0.0;
            let count = 1u32 << bps;
            for v in 0..count {
                let bits: Vec<u8> = (0..bps).map(|i| ((v >> i) & 1) as u8).collect();
                total += m.map(&bits).norm_sq();
            }
            let avg = total / count as f64;
            assert!((avg - 1.0).abs() < 1e-12, "{m:?} average energy {avg}");
        }
    }

    #[test]
    fn constant_bits_give_constant_symbols() {
        // The downlink trick relies on a run of identical coded bits mapping
        // to the *same* constellation point in every bin.
        for m in all_modulations() {
            let bps = m.bits_per_symbol();
            let ones = vec![1u8; bps * 48];
            let pts = m.map_stream(&ones);
            for p in &pts {
                assert_eq!(
                    *p, pts[0],
                    "{m:?} should map constant bits to a constant point"
                );
            }
            let zeros = vec![0u8; bps * 48];
            let pts0 = m.map_stream(&zeros);
            for p in &pts0 {
                assert_eq!(*p, pts0[0]);
            }
        }
    }

    #[test]
    fn gray_coding_adjacent_amplitudes_differ_by_one_bit() {
        // 16-QAM axis levels in increasing order and their bit labels.
        let labels = [(0u8, 0u8), (0, 1), (1, 1), (1, 0)];
        for w in labels.windows(2) {
            let differing = (w[0].0 ^ w[1].0) + (w[0].1 ^ w[1].1);
            assert_eq!(
                differing, 1,
                "adjacent 16-QAM levels must differ in one bit"
            );
        }
    }

    #[test]
    fn demap_stream_matches_per_symbol() {
        let m = Modulation::Qam16;
        let bits: Vec<u8> = (0..64).map(|i| ((i * 5) % 3 == 0) as u8).collect();
        let pts = m.map_stream(&bits);
        assert_eq!(m.demap_stream(&pts), bits);
    }

    #[test]
    #[should_panic(expected = "wrong number of bits")]
    fn wrong_bit_count_panics() {
        let _ = Modulation::Qpsk.map(&[1]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_stream_panics() {
        let _ = Modulation::Qam64.map_stream(&[1, 0, 1]);
    }
}
