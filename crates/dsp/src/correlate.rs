//! Correlation utilities used by the PHY receivers.
//!
//! The 802.11b receiver despreads by correlating against the 11-chip Barker
//! sequence, the ZigBee receiver matches 32-chip PN sequences, and packet
//! detection at every receiver correlates against a known preamble. These are
//! all expressed through the small set of helpers in this module.

use crate::Cplx;

/// Cross-correlates `signal` with `pattern` at every alignment where the
/// pattern fits entirely inside the signal. Output length is
/// `signal.len() - pattern.len() + 1`; an oversized pattern yields an empty
/// vector.
pub fn cross_correlate(signal: &[Cplx], pattern: &[Cplx]) -> Vec<Cplx> {
    if pattern.is_empty() || signal.len() < pattern.len() {
        return Vec::new();
    }
    let n = signal.len() - pattern.len() + 1;
    (0..n)
        .map(|i| {
            pattern
                .iter()
                .enumerate()
                .map(|(j, &p)| signal[i + j] * p.conj())
                .sum()
        })
        .collect()
}

/// Normalised correlation magnitude in [0, 1] at each alignment: the
/// correlation divided by the energies of both windows. A value near 1 means
/// the signal window is a scaled/rotated copy of the pattern.
pub fn normalized_correlation(signal: &[Cplx], pattern: &[Cplx]) -> Vec<f64> {
    if pattern.is_empty() || signal.len() < pattern.len() {
        return Vec::new();
    }
    let pattern_energy: f64 = pattern.iter().map(|p| p.norm_sq()).sum();
    if pattern_energy <= 0.0 {
        return vec![0.0; signal.len() - pattern.len() + 1];
    }
    let raw = cross_correlate(signal, pattern);
    raw.iter()
        .enumerate()
        .map(|(i, c)| {
            let window_energy: f64 = signal[i..i + pattern.len()]
                .iter()
                .map(|s| s.norm_sq())
                .sum();
            if window_energy <= 0.0 {
                0.0
            } else {
                c.abs() / (window_energy * pattern_energy).sqrt()
            }
        })
        .collect()
}

/// Returns the index and value of the peak magnitude of a correlation
/// output. `None` for an empty input.
pub fn peak(correlation: &[Cplx]) -> Option<(usize, f64)> {
    correlation
        .iter()
        .enumerate()
        .map(|(i, c)| (i, c.abs()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

/// Correlates a ±1 chip sequence against a hard-decision chip stream and
/// returns the number of agreeing positions minus disagreeing positions
/// (the despreading metric used by the DSSS decoders).
pub fn bipolar_correlation(chips: &[i8], reference: &[i8]) -> i32 {
    chips
        .iter()
        .zip(reference)
        .map(|(&c, &r)| i32::from(c) * i32::from(r))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iq::tone;

    #[test]
    fn empty_and_oversized_patterns() {
        let sig = vec![Cplx::ONE; 4];
        assert!(cross_correlate(&sig, &[]).is_empty());
        assert!(cross_correlate(&sig, &[Cplx::ONE; 5]).is_empty());
        assert!(normalized_correlation(&sig, &[Cplx::ONE; 5]).is_empty());
        assert!(peak(&[]).is_none());
    }

    #[test]
    fn correlation_peaks_at_embedded_pattern() {
        let pattern: Vec<Cplx> = tone(0.17e6, 1e6, 32, 0.4);
        let mut sig = vec![Cplx::ZERO; 100];
        sig.extend_from_slice(&pattern);
        sig.extend(vec![Cplx::ZERO; 50]);
        let corr = cross_correlate(&sig, &pattern);
        let (idx, _) = peak(&corr).unwrap();
        assert_eq!(idx, 100);
    }

    #[test]
    fn normalized_correlation_is_one_for_exact_match() {
        let pattern: Vec<Cplx> = tone(0.1e6, 1e6, 16, 0.0);
        // Scale and rotate the embedded copy; normalised correlation should
        // still be ~1.
        let embedded: Vec<Cplx> = pattern
            .iter()
            .map(|&p| p * Cplx::from_polar(3.0, 1.2))
            .collect();
        let mut sig = vec![Cplx::new(0.01, 0.0); 20];
        sig.extend_from_slice(&embedded);
        sig.extend(vec![Cplx::new(0.01, 0.0); 20]);
        let norm = normalized_correlation(&sig, &pattern);
        let best = norm.iter().cloned().fold(0.0, f64::max);
        assert!(best > 0.999, "best normalised correlation {best}");
        let best_idx = norm
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best_idx, 20);
    }

    #[test]
    fn zero_energy_pattern_gives_zero() {
        let sig = vec![Cplx::ONE; 10];
        let norm = normalized_correlation(&sig, &[Cplx::ZERO; 3]);
        assert!(norm.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bipolar_correlation_counts_agreements() {
        let barker: [i8; 11] = [1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1];
        assert_eq!(bipolar_correlation(&barker, &barker), 11);
        let inverted: Vec<i8> = barker.iter().map(|&c| -c).collect();
        assert_eq!(bipolar_correlation(&inverted, &barker), -11);
        // Barker sequences have low off-peak autocorrelation: shifting by one
        // must give a small magnitude.
        let shifted: Vec<i8> = barker[1..].iter().chain(&barker[..1]).copied().collect();
        assert!(bipolar_correlation(&shifted, &barker).abs() <= 1);
    }
}
