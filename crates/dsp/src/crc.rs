//! Cyclic-redundancy checks used across the workspace.
//!
//! * CRC-24 as used by the BLE link layer on advertising packets (3-byte CRC,
//!   polynomial 0x00065B, initialised from 0x555555 on advertising channels).
//! * CRC-16 CCITT as used by the 802.11b PLCP header and the 802.15.4 FCS.
//! * CRC-32 (IEEE 802.3) as used by the 802.11 MAC FCS.
//!
//! All of these are implemented as generic bitwise shift registers rather
//! than table-driven versions: frame sizes in this workspace are tiny (tens
//! of bytes), and the bitwise form mirrors the hardware registers described
//! in the standards, which keeps the implementation reviewable against them.

/// A generic bit-serial CRC register, processing input LSB-first per byte
/// (the over-the-air order of BLE and 802.11) with a reflected polynomial.
#[derive(Debug, Clone)]
pub struct CrcEngine {
    /// Reflected generator polynomial (bit i set = term x^i after reflection).
    poly_reflected: u32,
    /// Register width in bits (16, 24 or 32).
    width: u32,
    /// Current register contents.
    state: u32,
    /// Value XORed into the register at the end.
    final_xor: u32,
    /// Mask of `width` ones.
    mask: u32,
}

impl CrcEngine {
    /// Creates a CRC engine.
    ///
    /// `poly` is the conventional MSB-first polynomial representation (e.g.
    /// `0x00065B` for BLE CRC-24); it is reflected internally because this
    /// engine consumes bits LSB-first.
    pub fn new(poly: u32, width: u32, init: u32, final_xor: u32) -> Self {
        assert!(
            width == 16 || width == 24 || width == 32,
            "supported widths: 16/24/32"
        );
        let mask = if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        CrcEngine {
            poly_reflected: crate::bits::reverse_bits(poly & mask, width),
            width,
            state: init & mask,
            final_xor: final_xor & mask,
            mask,
        }
    }

    /// Feeds a single bit (0 or 1) into the register.
    pub fn push_bit(&mut self, bit: u8) {
        let fb = (self.state ^ u32::from(bit & 1)) & 1;
        self.state >>= 1;
        if fb == 1 {
            self.state ^= self.poly_reflected;
        }
        self.state &= self.mask;
    }

    /// Feeds a byte, least-significant bit first.
    pub fn push_byte(&mut self, byte: u8) {
        for i in 0..8 {
            self.push_bit((byte >> i) & 1);
        }
    }

    /// Feeds a byte slice.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push_byte(b);
        }
    }

    /// Returns the final CRC value (register XOR final value). Does not
    /// consume the engine so streaming use remains possible.
    pub fn value(&self) -> u32 {
        (self.state ^ self.final_xor) & self.mask
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }
}

/// Computes the BLE link-layer CRC-24 over a PDU (header + payload bytes).
///
/// The polynomial is x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1 (0x00065B)
/// and the shift register is preset to `init` (0x555555 for advertising
/// channel packets). The result is returned as three bytes in transmission
/// order (LSB of the register first).
pub fn ble_crc24(pdu: &[u8], init: u32) -> [u8; 3] {
    let mut eng = CrcEngine::new(0x00065B, 24, reflect24(init), 0);
    eng.push_bytes(pdu);
    let v = eng.value();
    // The register shifts LSB-first; transmission order is the register
    // content from LSB upward.
    [
        (v & 0xFF) as u8,
        ((v >> 8) & 0xFF) as u8,
        ((v >> 16) & 0xFF) as u8,
    ]
}

/// BLE specifies the CRC preset MSB-first (0x555555); our reflected register
/// needs the bit-reversed preset.
fn reflect24(init: u32) -> u32 {
    crate::bits::reverse_bits(init & 0x00FF_FFFF, 24)
}

/// Default CRC-24 initialiser for BLE advertising channel packets.
pub const BLE_ADV_CRC_INIT: u32 = 0x555555;

/// Computes the IEEE 802.3 / 802.11 FCS CRC-32 over a byte slice.
///
/// Polynomial 0x04C11DB7, init all-ones, output complemented, reflected
/// input and output — i.e. the standard Ethernet CRC. Returned in the
/// little-endian byte order in which it is appended to 802.11 frames.
pub fn crc32_ieee(data: &[u8]) -> [u8; 4] {
    let mut eng = CrcEngine::new(0x04C1_1DB7, 32, u32::MAX, u32::MAX);
    eng.push_bytes(data);
    eng.value().to_le_bytes()
}

/// Computes the CRC-32 and returns it as a `u32` (reflected/output-inverted,
/// little-endian semantics as used in software implementations).
pub fn crc32_ieee_u32(data: &[u8]) -> u32 {
    let mut eng = CrcEngine::new(0x04C1_1DB7, 32, u32::MAX, u32::MAX);
    eng.push_bytes(data);
    eng.value()
}

/// Computes the CCITT CRC-16 used by the 802.11b PLCP header and the
/// 802.15.4 frame check sequence.
///
/// Polynomial x^16 + x^12 + x^5 + 1 (0x1021), init all-ones, ones-complement
/// output, reflected processing per the 802.11 long-preamble PLCP spec.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut eng = CrcEngine::new(0x1021, 16, 0xFFFF, 0xFFFF);
    eng.push_bytes(data);
    eng.value() as u16
}

/// CRC-16 variant used by IEEE 802.15.4 (init zero, no output inversion).
pub fn crc16_802154(data: &[u8]) -> u16 {
    let mut eng = CrcEngine::new(0x1021, 16, 0x0000, 0x0000);
    eng.push_bytes(data);
    eng.value() as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32_ieee_u32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_bytes_are_little_endian_of_u32() {
        let b = crc32_ieee(b"123456789");
        assert_eq!(b, 0xCBF4_3926u32.to_le_bytes());
    }

    #[test]
    fn crc16_known_vectors() {
        // X-25 style (reflected, init 0xFFFF, xorout 0xFFFF): check = 0x906E.
        assert_eq!(crc16_ccitt(b"123456789"), 0x906E);
        // KERMIT style (reflected, init 0, xorout 0): check = 0x2189.
        assert_eq!(crc16_802154(b"123456789"), 0x2189);
    }

    #[test]
    fn ble_crc24_is_deterministic_and_sensitive() {
        let pdu = [0x42u8, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, 0x00];
        let a = ble_crc24(&pdu, BLE_ADV_CRC_INIT);
        let b = ble_crc24(&pdu, BLE_ADV_CRC_INIT);
        assert_eq!(a, b);
        let mut pdu2 = pdu;
        pdu2[3] ^= 0x01;
        assert_ne!(ble_crc24(&pdu2, BLE_ADV_CRC_INIT), a);
        // Different init (data channel) must give a different CRC.
        assert_ne!(ble_crc24(&pdu, 0x123456), a);
    }

    #[test]
    fn ble_crc24_detects_burst_errors() {
        // A CRC-24 must detect any single-bit and any two-bit error in a
        // short packet. Exhaustively check single-bit flips on a 16-byte PDU.
        let pdu: Vec<u8> = (0u8..16).collect();
        let good = ble_crc24(&pdu, BLE_ADV_CRC_INIT);
        for byte in 0..pdu.len() {
            for bit in 0..8 {
                let mut bad = pdu.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(
                    ble_crc24(&bad, BLE_ADV_CRC_INIT),
                    good,
                    "undetected single-bit error"
                );
            }
        }
    }

    #[test]
    fn engine_streaming_equals_oneshot() {
        let data = b"interscatter backscatters bluetooth into wifi";
        let mut eng = CrcEngine::new(0x04C1_1DB7, 32, u32::MAX, u32::MAX);
        for chunk in data.chunks(5) {
            eng.push_bytes(chunk);
        }
        assert_eq!(eng.value(), crc32_ieee_u32(data));
        assert_eq!(eng.width(), 32);
    }

    #[test]
    #[should_panic(expected = "supported widths")]
    fn unsupported_width_panics() {
        let _ = CrcEngine::new(0x07, 8, 0, 0);
    }
}
