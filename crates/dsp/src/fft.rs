//! Radix-2 decimation-in-time FFT and inverse FFT.
//!
//! Used by the 802.11g OFDM modulator (64-point IFFT per symbol, §2.4 of the
//! paper) and by the spectrum estimators that regenerate Figures 6 and 9.
//! The implementation is an in-place iterative Cooley–Tukey transform with
//! precomputed twiddle factors; sizes are restricted to powers of two, which
//! is all the workspace needs (64 for OFDM, 1024–65536 for spectra).

use crate::{Cplx, DspError};

/// A planned FFT of a fixed power-of-two size.
///
/// Planning precomputes the bit-reversal permutation and twiddle factors so
/// repeated transforms (one per OFDM symbol, one per Welch segment) only pay
/// for the butterflies.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    // twiddles[k] = exp(-j 2π k / n) for k in 0..n/2
    twiddles: Vec<Cplx>,
    bitrev: Vec<usize>,
}

impl Fft {
    /// Plans a forward/inverse FFT of size `n` (must be a power of two ≥ 1).
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(DspError::InvalidFftLength(n));
        }
        let twiddles = (0..n / 2)
            .map(|k| Cplx::expj(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let bitrev = if bits == 0 {
            vec![0]
        } else {
            (0..n)
                .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1))
                .collect()
        };
        Ok(Fft {
            n,
            twiddles,
            bitrev,
        })
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true for the degenerate size-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn permute(&self, data: &mut [Cplx]) {
        for i in 0..self.n {
            let j = self.bitrev[i];
            if j > i {
                data.swap(i, j);
            }
        }
    }

    fn transform(&self, data: &mut [Cplx], inverse: bool) -> Result<(), DspError> {
        if data.len() != self.n {
            return Err(DspError::LengthMismatch {
                left: data.len(),
                right: self.n,
            });
        }
        if self.n == 1 {
            return Ok(());
        }
        self.permute(data);
        let mut len = 2;
        while len <= self.n {
            let half = len / 2;
            let step = self.n / len;
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let tw = if inverse {
                        self.twiddles[k * step].conj()
                    } else {
                        self.twiddles[k * step]
                    };
                    let a = data[start + k];
                    let b = data[start + k + half] * tw;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
        if inverse {
            let scale = 1.0 / self.n as f64;
            for x in data.iter_mut() {
                *x = *x * scale;
            }
        }
        Ok(())
    }

    /// In-place forward FFT (no normalisation).
    pub fn forward(&self, data: &mut [Cplx]) -> Result<(), DspError> {
        self.transform(data, false)
    }

    /// In-place inverse FFT with 1/N normalisation, so
    /// `inverse(forward(x)) == x`.
    pub fn inverse(&self, data: &mut [Cplx]) -> Result<(), DspError> {
        self.transform(data, true)
    }

    /// Convenience: forward FFT of a slice, returning a new vector.
    pub fn forward_vec(&self, input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
        let mut buf = input.to_vec();
        self.forward(&mut buf)?;
        Ok(buf)
    }

    /// Convenience: inverse FFT of a slice, returning a new vector.
    pub fn inverse_vec(&self, input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
        let mut buf = input.to_vec();
        self.inverse(&mut buf)?;
        Ok(buf)
    }
}

/// One-shot forward FFT for callers that do not reuse a plan.
pub fn fft(input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
    Fft::new(input.len())?.forward_vec(input)
}

/// One-shot inverse FFT (1/N normalised).
pub fn ifft(input: &[Cplx]) -> Result<Vec<Cplx>, DspError> {
    Fft::new(input.len())?.inverse_vec(input)
}

/// Reorders an FFT output so that the zero-frequency bin sits in the middle
/// (negative frequencies first), which is how spectra are plotted in the
/// paper's figures.
pub fn fft_shift<T: Copy>(data: &[T]) -> Vec<T> {
    let n = data.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&data[half..]);
    out.extend_from_slice(&data[..half]);
    out
}

/// The frequency (in Hz) associated with each bin of an `n`-point FFT at
/// sample rate `fs`, in the same shifted ordering as [`fft_shift`].
pub fn fft_shift_freqs(n: usize, fs: f64) -> Vec<f64> {
    let mut freqs: Vec<f64> = (0..n)
        .map(|k| {
            let k = k as isize;
            let n_i = n as isize;
            let idx = if k < n_i.div_euclid(2) + n_i % 2 {
                k
            } else {
                k - n_i
            };
            idx as f64 * fs / n as f64
        })
        .collect();
    freqs = fft_shift(&freqs);
    freqs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cplx, b: Cplx, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(Fft::new(0).unwrap_err(), DspError::InvalidFftLength(0));
        assert_eq!(Fft::new(12).unwrap_err(), DspError::InvalidFftLength(12));
        assert!(Fft::new(64).is_ok());
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let n = 64;
        let mut x = vec![Cplx::ZERO; n];
        x[0] = Cplx::ONE;
        let plan = Fft::new(n).unwrap();
        plan.forward(&mut x).unwrap();
        for bin in &x {
            assert!(close(*bin, Cplx::ONE, 1e-10));
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 256;
        let k0 = 37;
        let x: Vec<Cplx> = (0..n)
            .map(|i| Cplx::expj(2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        let spec = fft(&x).unwrap();
        for (k, bin) in spec.iter().enumerate() {
            if k == k0 {
                assert!((bin.abs() - n as f64).abs() < 1e-6);
            } else {
                assert!(bin.abs() < 1e-6, "leakage at bin {k}: {}", bin.abs());
            }
        }
    }

    #[test]
    fn round_trip_identity() {
        let n = 128;
        let x: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let back = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(&back) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 512;
        let x: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new(((i * i) as f64).sin(), (i as f64).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|s| s.norm_sq()).sum();
        let spec = fft(&x).unwrap();
        let freq_energy: f64 = spec.iter().map(|s| s.norm_sq()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn length_mismatch_is_reported() {
        let plan = Fft::new(64).unwrap();
        let mut buf = vec![Cplx::ZERO; 32];
        assert!(matches!(
            plan.forward(&mut buf),
            Err(DspError::LengthMismatch {
                left: 32,
                right: 64
            })
        ));
    }

    #[test]
    fn size_one_is_identity() {
        let plan = Fft::new(1).unwrap();
        let mut buf = vec![Cplx::new(2.0, -3.0)];
        plan.forward(&mut buf).unwrap();
        assert_eq!(buf[0], Cplx::new(2.0, -3.0));
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn fft_shift_centres_dc() {
        let data = [0, 1, 2, 3, 4, 5, 6, 7];
        let shifted = fft_shift(&data);
        assert_eq!(shifted, vec![4, 5, 6, 7, 0, 1, 2, 3]);
        let freqs = fft_shift_freqs(8, 8.0);
        assert_eq!(freqs, vec![-4.0, -3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn fft_shift_freqs_odd_length() {
        let freqs = fft_shift_freqs(5, 5.0);
        assert_eq!(freqs, vec![-2.0, -1.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a: Vec<Cplx> = (0..n).map(|i| Cplx::new(i as f64, 0.0)).collect();
        let b: Vec<Cplx> = (0..n).map(|i| Cplx::new(0.0, (n - i) as f64)).collect();
        let sum: Vec<Cplx> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fsum = fft(&sum).unwrap();
        for k in 0..n {
            assert!(close(fsum[k], fa[k] + fb[k], 1e-8));
        }
    }
}
