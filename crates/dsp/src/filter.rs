//! FIR filter design, filtering and rational resampling.
//!
//! The PHY models need three things from this module:
//!
//! * a low-pass windowed-sinc design for channel-selection filtering at the
//!   receivers (e.g. the 22 MHz Wi-Fi channel filter, the 2 MHz BLE filter),
//! * straightforward FIR convolution of complex sample streams, and
//! * integer up/down sampling so waveforms generated at their natural chip
//!   rates (11 Mchip/s for 802.11b, 1 Msym/s for BLE, 2 Mchip/s for ZigBee)
//!   can be mixed onto a common simulation sample rate.

use crate::window::Window;
use crate::{Cplx, DspError};

/// A finite-impulse-response filter with real taps, applied to complex
/// samples.
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f64>,
}

impl Fir {
    /// Creates a filter from explicit taps.
    pub fn from_taps(taps: Vec<f64>) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::InvalidFilterSpec(
                "FIR must have at least one tap",
            ));
        }
        Ok(Fir { taps })
    }

    /// Designs a low-pass filter with the windowed-sinc method.
    ///
    /// * `cutoff` — normalised cutoff frequency in cycles/sample, 0 < cutoff < 0.5.
    /// * `num_taps` — number of taps (odd lengths give a symmetric, linear-phase
    ///   filter with an integer group delay of `(num_taps-1)/2`).
    /// * `window` — tapering window controlling stop-band attenuation.
    pub fn lowpass(cutoff: f64, num_taps: usize, window: Window) -> Result<Self, DspError> {
        if !(cutoff > 0.0 && cutoff < 0.5) {
            return Err(DspError::InvalidFilterSpec("cutoff must be in (0, 0.5)"));
        }
        if num_taps == 0 {
            return Err(DspError::InvalidFilterSpec("num_taps must be >= 1"));
        }
        let mid = (num_taps - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..num_taps)
            .map(|n| {
                let x = n as f64 - mid;
                let sinc = if x.abs() < 1e-12 {
                    2.0 * cutoff
                } else {
                    (2.0 * std::f64::consts::PI * cutoff * x).sin() / (std::f64::consts::PI * x)
                };
                sinc * window.coeff(n, num_taps)
            })
            .collect();
        // Normalise to unity DC gain so filtering does not change signal power
        // in the pass band.
        let sum: f64 = taps.iter().sum();
        if sum.abs() > 1e-12 {
            for t in &mut taps {
                *t /= sum;
            }
        }
        Ok(Fir { taps })
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples for a symmetric (linear-phase) design.
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Filters a complex sample stream ("same" mode: output has the same
    /// length as the input, aligned so that the group delay is compensated
    /// for symmetric filters).
    pub fn filter(&self, input: &[Cplx]) -> Vec<Cplx> {
        let full = self.filter_full(input);
        let delay = (self.taps.len() - 1) / 2;
        full.into_iter().skip(delay).take(input.len()).collect()
    }

    /// Full linear convolution: output length is `input.len() + taps.len() - 1`.
    pub fn filter_full(&self, input: &[Cplx]) -> Vec<Cplx> {
        if input.is_empty() {
            return Vec::new();
        }
        let n = input.len() + self.taps.len() - 1;
        let mut out = vec![Cplx::ZERO; n];
        for (i, &x) in input.iter().enumerate() {
            for (j, &h) in self.taps.iter().enumerate() {
                out[i + j] += x * h;
            }
        }
        out
    }

    /// Evaluates the filter's frequency response (complex gain) at the
    /// normalised frequency `f` (cycles/sample).
    pub fn response_at(&self, f: f64) -> Cplx {
        self.taps
            .iter()
            .enumerate()
            .map(|(n, &h)| Cplx::expj(-2.0 * std::f64::consts::PI * f * n as f64) * h)
            .sum()
    }
}

/// Inserts `factor - 1` zeros between consecutive samples (zero-stuffing
/// upsampler). Follow with a low-pass filter to interpolate.
pub fn upsample(input: &[Cplx], factor: usize) -> Result<Vec<Cplx>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidResampleRatio {
            up: factor,
            down: 1,
        });
    }
    let mut out = vec![Cplx::ZERO; input.len() * factor];
    for (i, &x) in input.iter().enumerate() {
        out[i * factor] = x;
    }
    Ok(out)
}

/// Repeats each sample `factor` times (sample-and-hold upsampling).
///
/// This models the behaviour of the backscatter switch network and of square
/// digital waveforms: the FPGA drives the switch with a piecewise-constant
/// control signal, so rectangular interpolation — not band-limited
/// interpolation — is the physically accurate model.
pub fn upsample_hold(input: &[Cplx], factor: usize) -> Result<Vec<Cplx>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidResampleRatio {
            up: factor,
            down: 1,
        });
    }
    let mut out = Vec::with_capacity(input.len() * factor);
    for &x in input {
        for _ in 0..factor {
            out.push(x);
        }
    }
    Ok(out)
}

/// Keeps every `factor`-th sample (decimation without filtering; apply an
/// anti-alias filter first if the signal is not already band-limited).
pub fn downsample(input: &[Cplx], factor: usize) -> Result<Vec<Cplx>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidResampleRatio {
            up: 1,
            down: factor,
        });
    }
    Ok(input.iter().copied().step_by(factor).collect())
}

/// Interpolating upsampler: zero-stuff by `factor` and low-pass filter at the
/// original Nyquist frequency. `taps_per_phase` controls filter quality.
pub fn interpolate(
    input: &[Cplx],
    factor: usize,
    taps_per_phase: usize,
) -> Result<Vec<Cplx>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidResampleRatio {
            up: factor,
            down: 1,
        });
    }
    if factor == 1 {
        return Ok(input.to_vec());
    }
    let stuffed = upsample(input, factor)?;
    let num_taps = (taps_per_phase * factor) | 1; // force odd for linear phase
    let fir = Fir::lowpass(0.5 / factor as f64 * 0.9, num_taps, Window::Hamming)?;
    // Compensate the 1/factor amplitude loss of zero stuffing.
    Ok(fir
        .filter(&stuffed)
        .into_iter()
        .map(|x| x * factor as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_rejects_bad_specs() {
        assert!(Fir::lowpass(0.0, 31, Window::Hamming).is_err());
        assert!(Fir::lowpass(0.6, 31, Window::Hamming).is_err());
        assert!(Fir::lowpass(0.25, 0, Window::Hamming).is_err());
        assert!(Fir::from_taps(vec![]).is_err());
    }

    #[test]
    fn lowpass_has_unity_dc_gain() {
        let fir = Fir::lowpass(0.1, 63, Window::Hamming).unwrap();
        let dc = fir.response_at(0.0);
        assert!((dc.abs() - 1.0).abs() < 1e-9);
        assert!((fir.taps().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lowpass_passes_low_and_rejects_high_frequencies() {
        let fir = Fir::lowpass(0.1, 101, Window::Blackman).unwrap();
        let pass = fir.response_at(0.02).abs();
        let stop = fir.response_at(0.35).abs();
        assert!(pass > 0.95, "passband gain {pass}");
        assert!(stop < 0.01, "stopband gain {stop}");
    }

    #[test]
    fn filter_preserves_length_in_same_mode() {
        let fir = Fir::lowpass(0.2, 31, Window::Hann).unwrap();
        let input: Vec<Cplx> = (0..200)
            .map(|i| Cplx::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        let out = fir.filter(&input);
        assert_eq!(out.len(), input.len());
        let full = fir.filter_full(&input);
        assert_eq!(full.len(), input.len() + 30);
    }

    #[test]
    fn filtering_a_constant_returns_the_constant() {
        let fir = Fir::lowpass(0.15, 41, Window::Hamming).unwrap();
        let input = vec![Cplx::new(2.0, -1.0); 300];
        let out = fir.filter(&input);
        // Away from the edges the output equals the input (unity DC gain).
        for s in &out[40..260] {
            assert!((s.re - 2.0).abs() < 1e-6 && (s.im + 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn group_delay_is_half_filter_length() {
        let fir = Fir::lowpass(0.2, 31, Window::Hann).unwrap();
        assert_eq!(fir.group_delay(), 15.0);
    }

    #[test]
    fn upsample_and_downsample_shapes() {
        let x: Vec<Cplx> = (0..10).map(|i| Cplx::real(i as f64)).collect();
        let up = upsample(&x, 4).unwrap();
        assert_eq!(up.len(), 40);
        assert_eq!(up[0], Cplx::real(0.0));
        assert_eq!(up[4], Cplx::real(1.0));
        assert_eq!(up[5], Cplx::ZERO);
        let held = upsample_hold(&x, 3).unwrap();
        assert_eq!(held.len(), 30);
        assert_eq!(held[0], held[2]);
        let down = downsample(&up, 4).unwrap();
        assert_eq!(down, x);
        assert!(upsample(&x, 0).is_err());
        assert!(downsample(&x, 0).is_err());
        assert!(upsample_hold(&x, 0).is_err());
    }

    #[test]
    fn interpolate_preserves_a_slow_tone() {
        // A slow complex tone should survive 4x interpolation with roughly
        // unchanged amplitude.
        let n = 256;
        let tone: Vec<Cplx> = (0..n)
            .map(|i| Cplx::expj(2.0 * std::f64::consts::PI * 0.02 * i as f64))
            .collect();
        let interp = interpolate(&tone, 4, 16).unwrap();
        assert_eq!(interp.len(), n * 4);
        // Check amplitude in the central region.
        let mid = &interp[256..768];
        let avg_amp: f64 = mid.iter().map(|s| s.abs()).sum::<f64>() / mid.len() as f64;
        assert!((avg_amp - 1.0).abs() < 0.05, "avg amplitude {avg_amp}");
    }

    #[test]
    fn interpolate_factor_one_is_identity() {
        let x: Vec<Cplx> = (0..5).map(|i| Cplx::real(i as f64)).collect();
        assert_eq!(interpolate(&x, 1, 8).unwrap(), x);
        assert!(interpolate(&x, 0, 8).is_err());
    }

    #[test]
    fn empty_input_filtering() {
        let fir = Fir::lowpass(0.2, 11, Window::Hann).unwrap();
        assert!(fir.filter_full(&[]).is_empty());
        assert!(fir.filter(&[]).is_empty());
    }
}
