//! Gaussian pulse shaping for GFSK (Bluetooth LE).
//!
//! BLE modulates bits with Gaussian Frequency Shift Keying: the ±1 NRZ bit
//! stream is filtered by a Gaussian low-pass with bandwidth–time product
//! BT = 0.5 before driving the frequency modulator with a modulation index of
//! approximately 0.5 (±250 kHz deviation at 1 Mbit/s). The paper's
//! single-tone observation (§2.2) is that a constant bit stream is unchanged
//! by this filter: the Gaussian filter only smooths *transitions*, so a run
//! of identical bits produces a constant frequency, i.e. a pure tone.

use crate::DspError;

/// A Gaussian pulse-shaping filter sampled at `samples_per_symbol`.
#[derive(Debug, Clone)]
pub struct GaussianPulse {
    taps: Vec<f64>,
    samples_per_symbol: usize,
}

impl GaussianPulse {
    /// Designs the filter.
    ///
    /// * `bt` — bandwidth–time product (0.5 for BLE, 0.3 for classic Bluetooth).
    /// * `samples_per_symbol` — oversampling factor of the symbol stream.
    /// * `span_symbols` — filter length in symbols (the impulse response is
    ///   truncated to this span; 3–4 symbols is standard).
    pub fn new(bt: f64, samples_per_symbol: usize, span_symbols: usize) -> Result<Self, DspError> {
        if bt <= 0.0 {
            return Err(DspError::InvalidFilterSpec("BT product must be positive"));
        }
        if samples_per_symbol == 0 || span_symbols == 0 {
            return Err(DspError::InvalidFilterSpec(
                "samples_per_symbol and span_symbols must be >= 1",
            ));
        }
        let n = samples_per_symbol * span_symbols + 1;
        let mid = (n - 1) as f64 / 2.0;
        // Standard Gaussian impulse response: h(t) = sqrt(2π/ln2)·B·exp(−2π²B²t²/ln2)
        // with t in symbol periods and B = BT (bandwidth normalised to symbol rate).
        let ln2 = std::f64::consts::LN_2;
        let alpha = 2.0 * std::f64::consts::PI * std::f64::consts::PI * bt * bt / ln2;
        let mut taps: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 - mid) / samples_per_symbol as f64;
                (-alpha * t * t).exp()
            })
            .collect();
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Ok(GaussianPulse {
            taps,
            samples_per_symbol,
        })
    }

    /// The filter taps (normalised to unit sum).
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Oversampling factor the filter was designed for.
    pub fn samples_per_symbol(&self) -> usize {
        self.samples_per_symbol
    }

    /// Filters a real-valued sample stream (typically the NRZ ±1 bit stream
    /// upsampled by sample-and-hold) and returns the smoothed frequency
    /// trajectory. "Same" alignment: output length equals input length.
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        if input.is_empty() {
            return Vec::new();
        }
        let delay = (self.taps.len() - 1) / 2;
        let n = input.len();
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &h) in self.taps.iter().enumerate() {
                // index into input corresponding to output sample i with the
                // group delay compensated; clamp at the edges (hold first /
                // last value) so constant streams stay exactly constant.
                let idx = (i + j).saturating_sub(delay).min(n - 1);
                acc += input[idx] * h;
            }
            *o = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(GaussianPulse::new(0.0, 8, 3).is_err());
        assert!(GaussianPulse::new(0.5, 0, 3).is_err());
        assert!(GaussianPulse::new(0.5, 8, 0).is_err());
    }

    #[test]
    fn taps_are_normalised_symmetric_and_peaked() {
        let g = GaussianPulse::new(0.5, 8, 4).unwrap();
        let taps = g.taps();
        let sum: f64 = taps.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let n = taps.len();
        for i in 0..n {
            assert!((taps[i] - taps[n - 1 - i]).abs() < 1e-12);
        }
        let peak = taps.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - taps[n / 2]).abs() < 1e-15);
        assert_eq!(g.samples_per_symbol(), 8);
    }

    #[test]
    fn constant_input_is_unchanged() {
        // This is the heart of the paper's single-tone argument: a constant
        // frequency command passes through the Gaussian filter untouched.
        let g = GaussianPulse::new(0.5, 8, 3).unwrap();
        let input = vec![1.0; 200];
        let out = g.filter(&input);
        assert_eq!(out.len(), input.len());
        for &v in &out {
            assert!((v - 1.0).abs() < 1e-9, "constant stream distorted: {v}");
        }
    }

    #[test]
    fn transitions_are_smoothed() {
        // An abrupt -1 -> +1 transition must be turned into a gradual ramp:
        // intermediate samples strictly between -1 and 1 must exist.
        let g = GaussianPulse::new(0.5, 8, 3).unwrap();
        let mut input = vec![-1.0; 80];
        input.extend(vec![1.0; 80]);
        let out = g.filter(&input);
        let intermediate = out.iter().filter(|&&v| v > -0.9 && v < 0.9).count();
        assert!(
            intermediate >= 4,
            "expected a smooth ramp, got {intermediate} intermediate samples"
        );
        // Far from the transition the levels are preserved.
        assert!((out[10] + 1.0).abs() < 1e-6);
        assert!((out[150] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn narrower_bt_smooths_more() {
        let sharp = GaussianPulse::new(0.5, 8, 4).unwrap();
        let smooth = GaussianPulse::new(0.3, 8, 4).unwrap();
        let mut input = vec![-1.0; 64];
        input.extend(vec![1.0; 64]);
        let rise = |out: &[f64]| -> usize { out.iter().filter(|&&v| v > -0.9 && v < 0.9).count() };
        assert!(
            rise(&smooth.filter(&input)) > rise(&sharp.filter(&input)),
            "BT=0.3 should have a longer transition than BT=0.5"
        );
    }

    #[test]
    fn empty_input() {
        let g = GaussianPulse::new(0.5, 4, 3).unwrap();
        assert!(g.filter(&[]).is_empty());
    }
}
