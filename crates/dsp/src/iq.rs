//! Complex-baseband sample-stream utilities.
//!
//! A backscatter simulation is at its core a chain of operations on IQ
//! buffers: generate the BLE tone, shift it in frequency at the tag, scale it
//! by path losses, add thermal noise, and measure its power at the receiver.
//! This module provides those stream-level operations.

use crate::units::{ratio_to_db, watts_to_dbm};
use crate::Cplx;

/// Multiplies a sample stream by a complex exponential, shifting its spectrum
/// by `freq_offset_hz` (positive values move energy toward higher
/// frequencies). `phase0` is the starting oscillator phase in radians.
pub fn frequency_shift(
    input: &[Cplx],
    freq_offset_hz: f64,
    sample_rate: f64,
    phase0: f64,
) -> Vec<Cplx> {
    let w = 2.0 * std::f64::consts::PI * freq_offset_hz / sample_rate;
    input
        .iter()
        .enumerate()
        .map(|(n, &x)| x * Cplx::expj(phase0 + w * n as f64))
        .collect()
}

/// Generates a complex tone `exp(j(2π f t + φ0))` of `len` samples.
pub fn tone(freq_hz: f64, sample_rate: f64, len: usize, phase0: f64) -> Vec<Cplx> {
    let w = 2.0 * std::f64::consts::PI * freq_hz / sample_rate;
    (0..len)
        .map(|n| Cplx::expj(phase0 + w * n as f64))
        .collect()
}

/// Mean power of a sample stream (mean of |x|²). Returns 0 for an empty
/// buffer.
pub fn mean_power(input: &[Cplx]) -> f64 {
    if input.is_empty() {
        return 0.0;
    }
    input.iter().map(|x| x.norm_sq()).sum::<f64>() / input.len() as f64
}

/// Peak instantaneous power of a stream.
pub fn peak_power(input: &[Cplx]) -> f64 {
    input.iter().map(|x| x.norm_sq()).fold(0.0, f64::max)
}

/// Mean power expressed in dB relative to unit power.
pub fn mean_power_db(input: &[Cplx]) -> f64 {
    ratio_to_db(mean_power(input))
}

/// Mean power expressed in dBm under the convention used throughout the
/// workspace: a unit-amplitude complex sample represents 1 mW (0 dBm) at the
/// antenna reference plane. Transmit powers are therefore applied by scaling
/// amplitudes with `db_to_amplitude(tx_dbm)`.
pub fn rssi_dbm(input: &[Cplx]) -> f64 {
    watts_to_dbm(mean_power(input) * 1e-3)
}

/// Scales a stream by a real gain factor (amplitude, not power).
pub fn scale(input: &[Cplx], gain: f64) -> Vec<Cplx> {
    input.iter().map(|&x| x * gain).collect()
}

/// Adds two streams sample-by-sample. The shorter stream is treated as being
/// followed by silence, which is how overlapping transmissions combine on the
/// air.
pub fn add(a: &[Cplx], b: &[Cplx]) -> Vec<Cplx> {
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| {
            let x = a.get(i).copied().unwrap_or(Cplx::ZERO);
            let y = b.get(i).copied().unwrap_or(Cplx::ZERO);
            x + y
        })
        .collect()
}

/// Element-wise product of two equal-length streams (e.g. applying a
/// time-varying reflection coefficient to an incident carrier).
///
/// # Panics
/// Panics if the streams have different lengths.
pub fn multiply(a: &[Cplx], b: &[Cplx]) -> Vec<Cplx> {
    assert_eq!(a.len(), b.len(), "multiply requires equal lengths");
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// Normalises a stream to unit mean power. A silent stream is returned
/// unchanged.
pub fn normalize_power(input: &[Cplx]) -> Vec<Cplx> {
    let p = mean_power(input);
    if p <= 0.0 {
        return input.to_vec();
    }
    scale(input, 1.0 / p.sqrt())
}

/// Delays a stream by `samples`, padding with zeros in front (models
/// propagation delay / the tag's guard interval).
pub fn delay(input: &[Cplx], samples: usize) -> Vec<Cplx> {
    let mut out = vec![Cplx::ZERO; samples];
    out.extend_from_slice(input);
    out
}

/// Extracts the instantaneous amplitude (envelope) of a stream — the quantity
/// a passive envelope-detector receiver observes.
pub fn envelope(input: &[Cplx]) -> Vec<f64> {
    input.iter().map(|x| x.abs()).collect()
}

/// Computes the instantaneous frequency (Hz) between consecutive samples by
/// phase differencing — a simple FM discriminator used by the BLE receiver
/// model and by the single-tone verification tests.
pub fn instantaneous_frequency(input: &[Cplx], sample_rate: f64) -> Vec<f64> {
    if input.len() < 2 {
        return Vec::new();
    }
    input
        .windows(2)
        .map(|w| {
            let dphi = (w[1] * w[0].conj()).arg();
            dphi * sample_rate / (2.0 * std::f64::consts::PI)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tone_has_unit_power_and_correct_frequency() {
        let fs = 1e6;
        let f = 125e3;
        let t = tone(f, fs, 4096, 0.0);
        assert!((mean_power(&t) - 1.0).abs() < 1e-12);
        let inst = instantaneous_frequency(&t, fs);
        for &fi in &inst {
            assert!((fi - f).abs() < 1.0, "instantaneous frequency {fi}");
        }
    }

    #[test]
    fn frequency_shift_moves_a_tone() {
        let fs = 10e6;
        let t = tone(1e6, fs, 2048, 0.3);
        let shifted = frequency_shift(&t, 2e6, fs, 0.0);
        let inst = instantaneous_frequency(&shifted, fs);
        let mean: f64 = inst.iter().sum::<f64>() / inst.len() as f64;
        assert!((mean - 3e6).abs() < 1e3, "shifted tone at {mean} Hz");
    }

    #[test]
    fn negative_shift_and_phase_continuity() {
        let fs = 8e6;
        let t = tone(1e6, fs, 1024, 0.0);
        let down = frequency_shift(&t, -1e6, fs, 0.0);
        // Shifting a 1 MHz tone down by 1 MHz gives DC: all samples equal.
        for s in &down {
            assert!((*s - down[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn power_and_rssi_conventions() {
        // Unit amplitude tone => 1.0 mean power => 0 dBm by convention.
        let t = tone(0.0, 1e6, 100, 0.0);
        assert!((rssi_dbm(&t) - 0.0).abs() < 1e-9);
        // Scaling amplitude by 10 raises power by 20 dB.
        let loud = scale(&t, 10.0);
        assert!((rssi_dbm(&loud) - 20.0).abs() < 1e-9);
        assert!((mean_power_db(&loud) - 20.0).abs() < 1e-9);
        assert!((peak_power(&loud) - 100.0).abs() < 1e-9);
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn add_handles_unequal_lengths() {
        let a = vec![Cplx::ONE; 3];
        let b = vec![Cplx::J; 5];
        let s = add(&a, &b);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], Cplx::new(1.0, 1.0));
        assert_eq!(s[4], Cplx::J);
    }

    #[test]
    fn multiply_applies_reflection() {
        let carrier = tone(0.0, 1e6, 4, 0.0);
        let gamma = vec![Cplx::new(0.5, 0.5); 4];
        let out = multiply(&carrier, &gamma);
        for s in &out {
            assert!((*s - Cplx::new(0.5, 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn multiply_rejects_mismatch() {
        let _ = multiply(&[Cplx::ONE], &[Cplx::ONE, Cplx::ONE]);
    }

    #[test]
    fn normalize_power_gives_unit_power() {
        let x = scale(&tone(1e3, 1e6, 500, 0.0), 7.3);
        let n = normalize_power(&x);
        assert!((mean_power(&n) - 1.0).abs() < 1e-9);
        // Silence unchanged.
        let silent = vec![Cplx::ZERO; 10];
        assert_eq!(normalize_power(&silent), silent);
    }

    #[test]
    fn delay_pads_with_zeros() {
        let x = vec![Cplx::ONE; 3];
        let d = delay(&x, 2);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], Cplx::ZERO);
        assert_eq!(d[1], Cplx::ZERO);
        assert_eq!(d[2], Cplx::ONE);
    }

    #[test]
    fn envelope_of_scaled_tone() {
        let x = scale(&tone(1e3, 1e6, 64, 0.0), 2.5);
        let env = envelope(&x);
        for &e in &env {
            assert!((e - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn instantaneous_frequency_short_input() {
        assert!(instantaneous_frequency(&[], 1e6).is_empty());
        assert!(instantaneous_frequency(&[Cplx::ONE], 1e6).is_empty());
    }
}
