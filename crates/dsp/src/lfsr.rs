//! Linear-feedback shift registers.
//!
//! Both the BLE data-whitening circuit (§2.2 of the paper) and the 802.11
//! scrambler (§2.4) use the same 7-bit LFSR with polynomial x^7 + x^4 + 1.
//! The Interscatter tricks rely on being able to *predict* these sequences:
//! the BLE payload is chosen as (whitening sequence) or its complement so
//! the on-air bits are constant, and the Wi-Fi downlink payload is chosen
//! so the scrambled bits are all ones or all zeros within an OFDM symbol.
//!
//! The generic [`Lfsr`] type supports arbitrary Fibonacci-style registers,
//! and [`Lfsr7`] is the specialised x^7+x^4+1 register both standards use.

/// A Fibonacci linear-feedback shift register of up to 32 bits.
///
/// Bit 0 of `state` is the register labelled "0" in the standards diagrams.
/// On each step the feedback is the XOR of the tapped positions; the register
/// shifts toward higher indices and the output bit is the bit shifted out of
/// the highest position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u32,
    taps: Vec<u32>,
    len: u32,
}

impl Lfsr {
    /// Creates an LFSR of `len` bits with feedback taps at the given bit
    /// positions (0-based, position `len-1` is the output stage).
    ///
    /// # Panics
    /// Panics if `len` is 0 or greater than 32, or any tap is out of range.
    pub fn new(len: u32, taps: &[u32], seed: u32) -> Self {
        assert!((1..=32).contains(&len), "LFSR length must be 1..=32");
        assert!(taps.iter().all(|&t| t < len), "tap positions must be < len");
        Lfsr {
            state: seed & Self::mask(len),
            taps: taps.to_vec(),
            len,
        }
    }

    fn mask(len: u32) -> u32 {
        if len == 32 {
            u32::MAX
        } else {
            (1 << len) - 1
        }
    }

    /// Current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Advances the register one step and returns the output bit (the bit
    /// that was in the highest position).
    pub fn step(&mut self) -> u8 {
        let out = ((self.state >> (self.len - 1)) & 1) as u8;
        let fb = self
            .taps
            .iter()
            .fold(0u32, |acc, &t| acc ^ ((self.state >> t) & 1))
            & 1;
        self.state = ((self.state << 1) | fb) & Self::mask(self.len);
        out
    }

    /// Generates `n` output bits.
    pub fn generate(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.step()).collect()
    }

    /// The sequence period: steps until the state repeats (at most 2^len - 1
    /// for a maximal-length register). Returns `None` if the register is
    /// stuck in the all-zero state.
    pub fn period(&self) -> Option<usize> {
        if self.state == 0 {
            return None;
        }
        let mut probe = self.clone();
        let start = probe.state;
        for i in 1..=(1usize << self.len) {
            probe.step();
            if probe.state == start {
                return Some(i);
            }
        }
        None
    }
}

/// The 7-bit x^7 + x^4 + 1 register shared by BLE whitening and the 802.11
/// scrambler (Fig. 4 of the paper).
///
/// This specialisation matches the standards' register diagrams exactly:
/// position 0 holds the newest bit, the output is taken from position 6, and
/// the feedback into position 0 is `bit6 XOR bit3` (x^7 and x^4 taps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr7 {
    /// Register contents; bit i of this word is register position i.
    state: u8,
}

impl Lfsr7 {
    /// Creates the register with the given 7-bit initial state.
    ///
    /// For BLE whitening on channel `c`, position 0 is set to 1 and positions
    /// 1..=6 hold the binary representation of `c` (MSB in position 1), which
    /// is what [`Lfsr7::ble_whitening_for_channel`] computes.
    pub fn new(state: u8) -> Self {
        Lfsr7 {
            state: state & 0x7F,
        }
    }

    /// Initial state of the BLE whitening register for an RF channel index
    /// (0–39). Per the Bluetooth Core specification, position 0 = 1 and
    /// positions 1..6 carry the channel number MSB-first.
    pub fn ble_whitening_for_channel(channel: u8) -> Self {
        let ch = channel & 0x3F;
        let mut state = 1u8; // position 0 = 1
        for i in 0..6 {
            // channel bit 5 (MSB) goes to position 1, ... bit 0 to position 6.
            let bit = (ch >> (5 - i)) & 1;
            state |= bit << (i + 1);
        }
        Lfsr7 { state }
    }

    /// Current register contents (7 bits).
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Advances one step, returning the output bit (register position 6).
    /// The feedback `pos6 ^ pos3` enters position 0.
    pub fn step(&mut self) -> u8 {
        let out = (self.state >> 6) & 1;
        let fb = out ^ ((self.state >> 3) & 1);
        self.state = ((self.state << 1) | fb) & 0x7F;
        out
    }

    /// Generates `n` output bits of the whitening / scrambling sequence.
    pub fn sequence(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Whitens (or de-whitens — the operation is its own inverse) a bit
    /// stream by XORing it with the register output.
    pub fn whiten(&mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter().map(|&b| (b & 1) ^ self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr7_is_maximal_length() {
        // x^7 + x^4 + 1 is primitive: the period must be 2^7 - 1 = 127 for
        // any non-zero seed.
        let reg = Lfsr::new(7, &[6, 3], 0b0100101);
        assert_eq!(reg.period(), Some(127));
        // Degenerate all-zero state never changes.
        let reg = Lfsr::new(7, &[6, 3], 0);
        assert_eq!(reg.period(), None);
    }

    #[test]
    fn lfsr7_specialisation_matches_generic() {
        // The Lfsr7 register (taps at positions 6 and 3, shifting up) should
        // produce the same output stream as the generic register configured
        // the same way, for the same seed.
        let seed = 0b1010011u8;
        let mut spec = Lfsr7::new(seed);
        let mut gen = Lfsr::new(7, &[6, 3], u32::from(seed));
        for _ in 0..300 {
            assert_eq!(spec.step(), gen.step());
        }
    }

    #[test]
    fn whitening_is_involutive() {
        let data: Vec<u8> = (0..200).map(|i| (i * 7 % 3 == 0) as u8).collect();
        let mut w1 = Lfsr7::ble_whitening_for_channel(37);
        let whitened = w1.whiten(&data);
        assert_ne!(
            whitened, data,
            "whitening should change a structured stream"
        );
        let mut w2 = Lfsr7::ble_whitening_for_channel(37);
        let recovered = w2.whiten(&whitened);
        assert_eq!(recovered, data);
    }

    #[test]
    fn ble_channel_seeds_differ() {
        let s37 = Lfsr7::ble_whitening_for_channel(37).state();
        let s38 = Lfsr7::ble_whitening_for_channel(38).state();
        let s39 = Lfsr7::ble_whitening_for_channel(39).state();
        assert_ne!(s37, s38);
        assert_ne!(s38, s39);
        assert_ne!(s37, s39);
        // Position 0 must always be 1 per the spec.
        assert_eq!(s37 & 1, 1);
        assert_eq!(s38 & 1, 1);
        assert_eq!(s39 & 1, 1);
    }

    #[test]
    fn channel_37_seed_encodes_channel_number() {
        // Channel 37 = 0b100101. Position 1 holds the MSB (1), position 6 the
        // LSB (1). Expected state bits: p0=1, p1=1,p2=0,p3=0,p4=1,p5=0,p6=1.
        let s = Lfsr7::ble_whitening_for_channel(37).state();
        assert_eq!(s & 1, 1);
        assert_eq!((s >> 1) & 1, 1);
        assert_eq!((s >> 2) & 1, 0);
        assert_eq!((s >> 3) & 1, 0);
        assert_eq!((s >> 4) & 1, 1);
        assert_eq!((s >> 5) & 1, 0);
        assert_eq!((s >> 6) & 1, 1);
    }

    #[test]
    fn whitening_sequence_is_deterministic_and_balanced() {
        let mut w = Lfsr7::ble_whitening_for_channel(38);
        let seq = w.sequence(127);
        // One full period of a maximal-length 7-bit LFSR has 64 ones and 63
        // zeros.
        let ones: usize = seq.iter().map(|&b| b as usize).sum();
        assert_eq!(ones, 64);
        let mut w2 = Lfsr7::ble_whitening_for_channel(38);
        assert_eq!(w2.sequence(127), seq);
    }

    #[test]
    fn generic_lfsr_generate_matches_step() {
        let mut a = Lfsr::new(7, &[6, 3], 0x5A);
        let mut b = Lfsr::new(7, &[6, 3], 0x5A);
        let bits = a.generate(50);
        let manual: Vec<u8> = (0..50).map(|_| b.step()).collect();
        assert_eq!(bits, manual);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    #[should_panic(expected = "tap positions")]
    fn out_of_range_tap_panics() {
        let _ = Lfsr::new(7, &[7], 1);
    }
}
