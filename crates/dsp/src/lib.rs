//! # interscatter-dsp
//!
//! Digital-signal-processing substrate for the Interscatter (SIGCOMM 2016)
//! reproduction. All of the physical layers in the workspace (Bluetooth LE
//! GFSK, 802.11b DSSS/CCK, 802.11g OFDM, 802.15.4 O-QPSK) and the backscatter
//! tag model are expressed as operations on discrete-time complex-baseband
//! sample streams. This crate provides those primitives:
//!
//! * [`Cplx`] — a small `f64` complex number type with the arithmetic the
//!   PHY layers need (the workspace deliberately avoids external numeric
//!   crates so the whole pipeline is auditable).
//! * [`fft`] — radix-2 FFT/IFFT used by the OFDM modulator and the spectrum
//!   estimators.
//! * [`filter`] — windowed-sinc FIR design, filtering, and rational
//!   resampling.
//! * [`gaussian`] — the Gaussian pulse-shaping filter used by BLE GFSK.
//! * [`spectrum`] — periodogram / Welch power-spectral-density estimation in
//!   dBm, used to regenerate the spectra of Figures 6 and 9.
//! * [`iq`] — sample-buffer utilities: frequency shifting (mixing), power and
//!   RSSI measurement, normalisation.
//! * [`crc`], [`lfsr`], [`bits`] — the bit-domain helpers shared by every
//!   802.x framing implementation (CRC-24/16/32, the x^7+x^4+1 whitening and
//!   scrambling register, LSB/MSB bit packing).
//! * [`constellation`] — PSK/QAM mapping used by the OFDM downlink.
//! * [`units`] — dB / dBm / distance conversions so link-budget code never
//!   mixes linear and logarithmic quantities silently.
//!
//! Everything is deterministic: functions that need randomness take an
//! explicit [`rand::Rng`](https://docs.rs/rand).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod complex;
pub mod constellation;
pub mod correlate;
pub mod crc;
pub mod fft;
pub mod filter;
pub mod gaussian;
pub mod iq;
pub mod lfsr;
pub mod spectrum;
pub mod units;
pub mod window;

pub use complex::Cplx;

/// Crate-wide error type for DSP primitives.
///
/// The DSP layer is almost entirely infallible by construction, but a few
/// operations (FFT on a non-power-of-two length, filter design with an
/// invalid cutoff) need a structured error instead of a panic so that the
/// higher layers can surface configuration mistakes cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// FFT length was not a power of two (or zero).
    InvalidFftLength(usize),
    /// A filter design parameter was out of range (cutoff, number of taps...).
    InvalidFilterSpec(&'static str),
    /// A resampling ratio was invalid (zero numerator or denominator).
    InvalidResampleRatio {
        /// Upsampling factor requested.
        up: usize,
        /// Downsampling factor requested.
        down: usize,
    },
    /// Input buffer was empty where at least one sample is required.
    EmptyInput(&'static str),
    /// Mismatched lengths between two buffers that must agree.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
}

impl core::fmt::Display for DspError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DspError::InvalidFftLength(n) => {
                write!(f, "FFT length {n} is not a non-zero power of two")
            }
            DspError::InvalidFilterSpec(what) => write!(f, "invalid filter specification: {what}"),
            DspError::InvalidResampleRatio { up, down } => {
                write!(f, "invalid resample ratio {up}/{down}")
            }
            DspError::EmptyInput(what) => write!(f, "empty input: {what}"),
            DspError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = DspError::InvalidFftLength(3);
        assert!(e.to_string().contains('3'));
        let e = DspError::LengthMismatch { left: 4, right: 8 };
        assert!(e.to_string().contains('4') && e.to_string().contains('8'));
        let e = DspError::InvalidResampleRatio { up: 0, down: 2 };
        assert!(e.to_string().contains("0/2"));
        let e = DspError::EmptyInput("samples");
        assert!(e.to_string().contains("samples"));
        let e = DspError::InvalidFilterSpec("cutoff");
        assert!(e.to_string().contains("cutoff"));
    }
}
