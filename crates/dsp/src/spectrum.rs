//! Power-spectral-density estimation.
//!
//! Figures 6 and 9 of the paper are spectra measured on a spectrum analyzer:
//! the BLE single tone versus a random advertisement, and the
//! single-sideband versus double-sideband backscattered Wi-Fi signal. This
//! module provides the Welch-averaged periodogram the experiment runners use
//! to regenerate those plots, with output in dB/dBm so mirror-image
//! suppression can be read off directly.

use crate::fft::{fft_shift, fft_shift_freqs, Fft};
use crate::units::ratio_to_db;
use crate::window::Window;
use crate::{Cplx, DspError};

/// One point of a power spectral density estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumPoint {
    /// Frequency offset from the centre of the analysis band, in Hz.
    pub freq_hz: f64,
    /// Power in dB relative to a unit-amplitude (1 mW by workspace
    /// convention) tone, i.e. effectively dBm per bin.
    pub power_db: f64,
}

/// Configuration for Welch PSD estimation.
#[derive(Debug, Clone, Copy)]
pub struct WelchConfig {
    /// FFT size per segment (power of two).
    pub nfft: usize,
    /// Overlap between segments, as a fraction of `nfft` in [0, 1).
    pub overlap: f64,
    /// Window applied to each segment.
    pub window: Window,
}

impl Default for WelchConfig {
    fn default() -> Self {
        WelchConfig {
            nfft: 4096,
            overlap: 0.5,
            window: Window::Blackman,
        }
    }
}

/// Computes a Welch-averaged power spectral density of a complex baseband
/// stream sampled at `sample_rate`. The result is fft-shifted so negative
/// frequency offsets come first, matching how the paper plots spectra around
/// the carrier.
pub fn welch_psd(
    input: &[Cplx],
    sample_rate: f64,
    config: &WelchConfig,
) -> Result<Vec<SpectrumPoint>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput("welch_psd input"));
    }
    if config.nfft == 0 || !config.nfft.is_power_of_two() {
        return Err(DspError::InvalidFftLength(config.nfft));
    }
    if !(0.0..1.0).contains(&config.overlap) {
        return Err(DspError::InvalidFilterSpec("overlap must be in [0,1)"));
    }
    let nfft = config.nfft.min(input.len().next_power_of_two());
    let nfft = if nfft > input.len() { nfft / 2 } else { nfft };
    let nfft = nfft.max(1);
    if nfft < 2 {
        return Err(DspError::EmptyInput("input shorter than one FFT segment"));
    }
    let plan = Fft::new(nfft)?;
    let win = config.window.coefficients(nfft);
    let win_power: f64 = win.iter().map(|w| w * w).sum::<f64>();
    let hop = ((nfft as f64) * (1.0 - config.overlap)).max(1.0) as usize;

    let mut acc = vec![0.0f64; nfft];
    let mut segments = 0usize;
    let mut start = 0usize;
    let mut buf = vec![Cplx::ZERO; nfft];
    while start + nfft <= input.len() {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = input[start + i] * win[i];
        }
        plan.forward(&mut buf)?;
        for (i, s) in buf.iter().enumerate() {
            acc[i] += s.norm_sq();
        }
        segments += 1;
        start += hop;
    }
    if segments == 0 {
        // Input shorter than nfft: single zero-padded segment.
        for (i, b) in buf.iter_mut().enumerate() {
            *b = input.get(i).copied().unwrap_or(Cplx::ZERO) * win.get(i).copied().unwrap_or(0.0);
        }
        plan.forward(&mut buf)?;
        for (i, s) in buf.iter().enumerate() {
            acc[i] += s.norm_sq();
        }
        segments = 1;
    }

    // Normalise so that a unit-amplitude tone integrates to ~0 dB total.
    let norm = 1.0 / (segments as f64 * win_power * nfft as f64 / nfft as f64);
    let shifted_power = fft_shift(&acc);
    let freqs = fft_shift_freqs(nfft, sample_rate);
    Ok(freqs
        .into_iter()
        .zip(shifted_power)
        .map(|(freq_hz, p)| SpectrumPoint {
            freq_hz,
            power_db: ratio_to_db(p * norm),
        })
        .collect())
}

/// Returns the total power (linear, relative to the unit-amplitude
/// convention) contained in `[f_lo, f_hi]` of a PSD estimate.
pub fn band_power(psd: &[SpectrumPoint], f_lo: f64, f_hi: f64) -> f64 {
    psd.iter()
        .filter(|p| p.freq_hz >= f_lo && p.freq_hz <= f_hi)
        .map(|p| crate::units::db_to_ratio(p.power_db))
        .sum()
}

/// Returns the total band power in dB. Negative infinity if the band is
/// empty.
pub fn band_power_db(psd: &[SpectrumPoint], f_lo: f64, f_hi: f64) -> f64 {
    ratio_to_db(band_power(psd, f_lo, f_hi))
}

/// Finds the frequency of the strongest PSD bin — used to verify the BLE
/// single-tone and the backscatter frequency shift.
pub fn peak_frequency(psd: &[SpectrumPoint]) -> Option<f64> {
    psd.iter()
        .max_by(|a, b| {
            a.power_db
                .partial_cmp(&b.power_db)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|p| p.freq_hz)
}

/// Occupied bandwidth: the smallest symmetric-percentile bandwidth containing
/// `fraction` (e.g. 0.99) of the total power. Returns 0 for an empty PSD.
pub fn occupied_bandwidth(psd: &[SpectrumPoint], fraction: f64) -> f64 {
    if psd.is_empty() {
        return 0.0;
    }
    let powers: Vec<f64> = psd
        .iter()
        .map(|p| crate::units::db_to_ratio(p.power_db))
        .collect();
    let total: f64 = powers.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let target = total * fraction;
    // Grow a window outward from the strongest bin until the target power is
    // enclosed.
    let peak_idx = powers
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut lo = peak_idx;
    let mut hi = peak_idx;
    let mut acc = powers[peak_idx];
    while acc < target && (lo > 0 || hi + 1 < powers.len()) {
        let grow_lo = if lo > 0 { powers[lo - 1] } else { f64::MIN };
        let grow_hi = if hi + 1 < powers.len() {
            powers[hi + 1]
        } else {
            f64::MIN
        };
        if grow_lo >= grow_hi && lo > 0 {
            lo -= 1;
            acc += powers[lo];
        } else if hi + 1 < powers.len() {
            hi += 1;
            acc += powers[hi];
        } else if lo > 0 {
            lo -= 1;
            acc += powers[lo];
        }
    }
    psd[hi].freq_hz - psd[lo].freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iq::{add, scale, tone};

    #[test]
    fn rejects_bad_inputs() {
        let cfg = WelchConfig::default();
        assert!(welch_psd(&[], 1e6, &cfg).is_err());
        let bad = WelchConfig { nfft: 1000, ..cfg };
        assert!(welch_psd(&[Cplx::ONE; 2048], 1e6, &bad).is_err());
        let bad = WelchConfig {
            overlap: 1.5,
            ..cfg
        };
        assert!(welch_psd(&[Cplx::ONE; 2048], 1e6, &bad).is_err());
    }

    #[test]
    fn tone_peak_is_at_tone_frequency() {
        let fs = 8e6;
        let f0 = 1.5e6;
        let sig = tone(f0, fs, 32768, 0.0);
        let cfg = WelchConfig {
            nfft: 4096,
            overlap: 0.5,
            window: Window::Blackman,
        };
        let psd = welch_psd(&sig, fs, &cfg).unwrap();
        let peak = peak_frequency(&psd).unwrap();
        assert!((peak - f0).abs() < fs / 4096.0 * 2.0, "peak at {peak}");
    }

    #[test]
    fn negative_frequency_tone_is_resolved() {
        let fs = 8e6;
        let f0 = -2.25e6;
        let sig = tone(f0, fs, 16384, 0.0);
        let psd = welch_psd(&sig, fs, &WelchConfig::default()).unwrap();
        let peak = peak_frequency(&psd).unwrap();
        assert!((peak - f0).abs() < 2.0 * fs / 4096.0);
    }

    #[test]
    fn two_tone_power_ratio_is_preserved() {
        // A -20 dB second tone must show up ~20 dB below the main tone.
        let fs = 16e6;
        let strong = tone(2e6, fs, 65536, 0.0);
        let weak = scale(&tone(-4e6, fs, 65536, 0.0), 0.1);
        let sig = add(&strong, &weak);
        let psd = welch_psd(&sig, fs, &WelchConfig::default()).unwrap();
        let p_strong = band_power_db(&psd, 1.5e6, 2.5e6);
        let p_weak = band_power_db(&psd, -4.5e6, -3.5e6);
        let diff = p_strong - p_weak;
        assert!((diff - 20.0).abs() < 1.0, "power difference {diff} dB");
    }

    #[test]
    fn band_power_sums_to_total() {
        let fs = 4e6;
        let sig = tone(0.5e6, fs, 8192, 0.0);
        let psd = welch_psd(&sig, fs, &WelchConfig::default()).unwrap();
        let total = band_power(&psd, -fs / 2.0, fs / 2.0);
        let inband = band_power(&psd, 0.4e6, 0.6e6);
        assert!(inband / total > 0.95, "tone energy should be concentrated");
    }

    #[test]
    fn occupied_bandwidth_of_tone_is_narrow() {
        let fs = 8e6;
        let sig = tone(1e6, fs, 32768, 0.0);
        let psd = welch_psd(&sig, fs, &WelchConfig::default()).unwrap();
        let bw = occupied_bandwidth(&psd, 0.99);
        assert!(bw < 50e3, "tone occupied bandwidth {bw} Hz");
        assert_eq!(occupied_bandwidth(&[], 0.99), 0.0);
    }

    #[test]
    fn short_input_is_zero_padded() {
        let fs = 1e6;
        let sig = tone(100e3, fs, 512, 0.0);
        let cfg = WelchConfig {
            nfft: 4096,
            overlap: 0.5,
            window: Window::Hann,
        };
        let psd = welch_psd(&sig, fs, &cfg).unwrap();
        let peak = peak_frequency(&psd).unwrap();
        assert!((peak - 100e3).abs() < 10e3);
    }
}
