//! Unit conversions for link-budget arithmetic.
//!
//! The evaluation figures mix dBm transmit powers, dB path losses, distances
//! in feet and inches, and linear signal amplitudes. These helpers keep the
//! conversions explicit so the channel and simulation crates never silently
//! mix linear and logarithmic quantities.

/// Converts a power ratio to decibels. Returns negative infinity for a
/// non-positive ratio, matching the physical meaning of "no power".
pub fn ratio_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * ratio.log10()
    }
}

/// Converts decibels to a power ratio.
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a power in watts to dBm.
pub fn watts_to_dbm(watts: f64) -> f64 {
    ratio_to_db(watts * 1e3)
}

/// Converts dBm to watts.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    db_to_ratio(dbm) * 1e-3
}

/// Converts milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    ratio_to_db(mw)
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_ratio(dbm)
}

/// Converts an amplitude (voltage-like) ratio to decibels (20·log10).
pub fn amplitude_to_db(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * ratio.log10()
    }
}

/// Converts decibels to an amplitude ratio.
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Feet to metres (the paper reports ranges in feet and inches).
pub fn feet_to_meters(feet: f64) -> f64 {
    feet * 0.3048
}

/// Metres to feet.
pub fn meters_to_feet(m: f64) -> f64 {
    m / 0.3048
}

/// Inches to metres.
pub fn inches_to_meters(inches: f64) -> f64 {
    inches * 0.0254
}

/// Metres to inches.
pub fn meters_to_inches(m: f64) -> f64 {
    m / 0.0254
}

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Wavelength (metres) of a carrier at `freq_hz`.
pub fn wavelength(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT / freq_hz
}

/// Thermal noise power in dBm for a bandwidth in Hz at temperature `temp_k`.
///
/// `kTB`: at 290 K this is the familiar −174 dBm/Hz noise density.
pub fn thermal_noise_dbm(bandwidth_hz: f64, temp_k: f64) -> f64 {
    watts_to_dbm(BOLTZMANN * temp_k * bandwidth_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trips() {
        for &db in &[-30.0, -3.0, 0.0, 3.0, 10.0, 20.0] {
            assert!((ratio_to_db(db_to_ratio(db)) - db).abs() < 1e-9);
            assert!((amplitude_to_db(db_to_amplitude(db)) - db).abs() < 1e-9);
        }
        assert_eq!(ratio_to_db(0.0), f64::NEG_INFINITY);
        assert_eq!(amplitude_to_db(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn dbm_watts_known_points() {
        assert!((watts_to_dbm(1.0) - 30.0).abs() < 1e-9);
        assert!((watts_to_dbm(1e-3) - 0.0).abs() < 1e-9);
        assert!((dbm_to_watts(0.0) - 1e-3).abs() < 1e-12);
        assert!((dbm_to_watts(20.0) - 0.1).abs() < 1e-9);
        assert!((mw_to_dbm(100.0) - 20.0).abs() < 1e-9);
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn three_db_is_a_factor_of_two() {
        assert!((db_to_ratio(3.0103) - 2.0).abs() < 1e-3);
        assert!((db_to_amplitude(6.0206) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn distance_conversions() {
        assert!((feet_to_meters(1.0) - 0.3048).abs() < 1e-12);
        assert!((meters_to_feet(0.3048) - 1.0).abs() < 1e-12);
        assert!((inches_to_meters(12.0) - feet_to_meters(1.0)).abs() < 1e-12);
        assert!((meters_to_inches(0.0254) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wavelength_at_2_4_ghz_is_12_5_cm() {
        let lambda = wavelength(2.4e9);
        assert!((lambda - 0.1249).abs() < 1e-3);
    }

    #[test]
    fn thermal_noise_floor() {
        // kTB at 290 K over 1 Hz is -173.98 dBm/Hz.
        let n = thermal_noise_dbm(1.0, 290.0);
        assert!((n + 174.0).abs() < 0.2, "noise density {n} dBm/Hz");
        // Over a 22 MHz Wi-Fi channel: about -100.5 dBm.
        let n_wifi = thermal_noise_dbm(22e6, 290.0);
        assert!(
            (n_wifi + 100.5).abs() < 0.5,
            "Wi-Fi noise floor {n_wifi} dBm"
        );
    }
}
