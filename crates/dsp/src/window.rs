//! Window functions for FIR design and spectral estimation.

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Rectangular (no weighting).
    Rectangular,
    /// Hann (raised cosine) — good general-purpose spectral window.
    Hann,
    /// Hamming — slightly better first-sidelobe suppression than Hann.
    Hamming,
    /// Blackman — wide main lobe, very low sidelobes; used for the paper-style
    /// spectra where the mirror-image suppression of single-sideband
    /// backscatter (≳ 20 dB) must be measurable.
    Blackman,
}

impl Window {
    /// Evaluates the window at sample `n` of `len` (0-based, symmetric form).
    pub fn coeff(self, n: usize, len: usize) -> f64 {
        if len <= 1 {
            return 1.0;
        }
        let x = n as f64 / (len - 1) as f64;
        let tau = 2.0 * std::f64::consts::PI;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// Generates the full window as a vector of `len` coefficients.
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.coeff(n, len)).collect()
    }

    /// Sum of squared coefficients — the noise-equivalent scaling used when
    /// normalising a periodogram computed with this window.
    pub fn power_gain(self, len: usize) -> f64 {
        self.coefficients(len).iter().map(|c| c * c).sum()
    }

    /// Coherent (amplitude) gain: mean of the coefficients.
    pub fn coherent_gain(self, len: usize) -> f64 {
        self.coefficients(len).iter().sum::<f64>() / len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = Window::Rectangular.coefficients(17);
        assert!(w.iter().all(|&c| (c - 1.0).abs() < 1e-15));
        assert!((Window::Rectangular.power_gain(17) - 17.0).abs() < 1e-12);
        assert!((Window::Rectangular.coherent_gain(17) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_is_symmetric_and_zero_at_edges() {
        let n = 65;
        let w = Window::Hann.coefficients(n);
        assert!(w[0].abs() < 1e-12);
        assert!(w[n - 1].abs() < 1e-12);
        assert!((w[n / 2] - 1.0).abs() < 1e-12);
        for i in 0..n {
            assert!((w[i] - w[n - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn hamming_edges_are_nonzero() {
        let w = Window::Hamming.coefficients(33);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!(w.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn blackman_is_nonnegative_and_peaks_in_middle() {
        let n = 129;
        let w = Window::Blackman.coefficients(n);
        assert!(w.iter().all(|&c| c >= -1e-12));
        let peak = w.iter().cloned().fold(f64::MIN, f64::max);
        assert!((peak - w[n / 2]).abs() < 1e-9);
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
        assert_eq!(Window::Blackman.coefficients(0), Vec::<f64>::new());
    }

    #[test]
    fn coherent_gain_ordering() {
        // Narrower windows concentrate less energy: Blackman < Hamming ~ Hann < Rect.
        let n = 256;
        let g_rect = Window::Rectangular.coherent_gain(n);
        let g_hann = Window::Hann.coherent_gain(n);
        let g_black = Window::Blackman.coherent_gain(n);
        assert!(g_rect > g_hann && g_hann > g_black);
    }
}
