//! Coexistence: the rest of the 2.4 GHz band, modelled as *traffic*.
//!
//! Until this module existed, "other people's Wi-Fi" was a single static
//! `external_occupancy` scalar per sink, folded into a delivery
//! probability inside the engine's reception arbitration. That shortcut
//! cannot congest, cannot spike mid-run and cannot be sensed — which made
//! the ROADMAP's "dynamic sub-band re-striping when a channel's external
//! occupancy spikes" unbuildable. This module replaces it with three
//! layers:
//!
//! 1. **External traffic generators** — a [`CoexTraffic`] trait
//!    enum-dispatched through [`CoexModel`], like
//!    [`crate::mobility::Mobility`] and [`crate::sched::Scheduler`]. Each
//!    [`CoexSource`] runs a seeded arrival process on its own RNG stream
//!    and injects *real timed emissions* into the [`crate::medium::Medium`]
//!    ([`crate::medium::Emitter::External`]), so collisions, capture and
//!    the §2.3.3 NAV interact with external traffic packet by packet. The
//!    legacy scalar survives as the degenerate [`CoexModel::Constant`],
//!    which emits nothing and keeps the old probability fold — byte-for-
//!    byte, so pre-refactor trace digests still reproduce.
//! 2. **Occupancy sensing** — each carrier maintains an EWMA busy-airtime
//!    estimate per channel from what the medium actually carries at its
//!    slot instants ([`SenseConfig`]), exposed to schedulers through
//!    [`crate::sched::SlotView::occupancy`] and to metrics as the
//!    per-carrier [`crate::metrics::OccupancySample`] series.
//! 3. **Adaptive re-striping** — a [`ReStripe`] policy: when a carrier's
//!    sensed occupancy on its own stripe crosses `high_occupancy` and
//!    another sub-band is at least `hysteresis` quieter, the carrier and
//!    its tags re-tune to the least-occupied sub-band. Decisions are
//!    slot-aligned, deterministic (no RNG) and trace-visible as a
//!    [`crate::metrics::ReStripeEvent`].
//!
//! Determinism: every generator draws only from its own
//! [`crate::entities::streams::coex_rng`] stream (stream 4 of the named
//! per-entity derivation), sensing and re-striping
//! draw nothing, and all decision ties break toward the lower index — so
//! coex scenarios keep the byte-identical-trace contract
//! (`tests/net_determinism.rs` runs every generator kind, including a
//! mid-run re-stripe).

use crate::entities::Position;
use crate::medium::Band;
use interscatter_ble::channels::{wifi_channel_freq_hz, zigbee_channel_freq_hz, BleChannel};
use rand::rngs::SmallRng;
use rand::Rng;

/// On-air duration of one BLE advertising PDU (preamble + access address +
/// a full 37-byte advertisement at 1 Mbps), seconds.
pub const BLE_ADV_AIRTIME_S: f64 = 376e-6;

/// Upper bound of the BLE spec's pseudo-random `advDelay` between
/// advertising events, seconds.
pub const BLE_ADV_DELAY_MAX_S: f64 = 10e-3;

/// How an external source treats the shared medium before emitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediumAccess {
    /// Carrier-senses first (defers while the band — or a NAV reservation
    /// — is busy), and is itself audible to everyone's carrier-sense.
    /// Well-behaved Wi-Fi and ZigBee neighbours.
    Csma,
    /// Never senses, but is audible: in-model tags defer to it (a
    /// microwave oven is loud enough to trip any CCA).
    Ignore,
    /// Never senses and is *inaudible to carrier-sense* — the classic
    /// hidden terminal: too far from the transmitting side to trip its
    /// CCA, close enough to the receiving side to collide. Hidden
    /// emissions still register as interference and still count toward
    /// the AP-side occupancy that sensing reads
    /// ([`crate::medium::Medium::occupied`]).
    Hidden,
}

/// An external traffic process: when (and for how long) the source is on
/// the air. Enum-dispatched through [`CoexModel`], like
/// [`crate::mobility::Mobility`].
pub trait CoexTraffic {
    /// Draws the next emission as `(gap_s, duration_s)`: an idle gap from
    /// the previous emission's end (or the activity window's start) to the
    /// next start, then the on-air time. `None` for silent models
    /// ([`CoexModel::Constant`]).
    fn next_emission(&self, rng: &mut SmallRng) -> Option<(f64, f64)>;

    /// The band emissions occupy; `None` for silent models.
    fn band(&self) -> Option<Band>;

    /// How the source treats the shared medium.
    fn access(&self) -> MediumAccess {
        MediumAccess::Ignore
    }

    /// A short name for traces and report tables.
    fn slug(&self) -> &'static str;
}

/// The legacy static scalar: fold `occupancy` into sink `sink`'s delivery
/// probability, exactly as the pre-coex engine did. Emits nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantOccupancy {
    /// Index of the sink whose channel the occupancy applies to.
    pub sink: usize,
    /// Fraction of airtime the channel is externally occupied, in [0, 1].
    pub occupancy: f64,
}

impl CoexTraffic for ConstantOccupancy {
    fn next_emission(&self, _rng: &mut SmallRng) -> Option<(f64, f64)> {
        None
    }

    fn band(&self) -> Option<Band> {
        None
    }

    fn slug(&self) -> &'static str {
        "constant"
    }
}

/// Bursty Wi-Fi OFDM traffic on one channel: geometrically sized A-MPDU
/// bursts separated by exponential idle gaps — the on/off shape real
/// WLAN load shows at millisecond scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WifiBursty {
    /// Wi-Fi channel the traffic lands on (1–13).
    pub channel: u8,
    /// Mean frames per burst (geometric).
    pub mean_burst_frames: f64,
    /// On-air time of one frame (data + IFS), seconds.
    pub frame_airtime_s: f64,
    /// Mean idle gap between bursts, seconds (exponential).
    pub mean_gap_s: f64,
    /// CSMA-abiding neighbour or hidden terminal.
    pub access: MediumAccess,
}

impl CoexTraffic for WifiBursty {
    fn next_emission(&self, rng: &mut SmallRng) -> Option<(f64, f64)> {
        let gap = exponential_s(rng, 1.0 / self.mean_gap_s);
        // Geometric burst length with the configured mean, ≥ 1 frame.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let frames = (-u.ln() * self.mean_burst_frames).ceil().max(1.0);
        Some((gap, frames * self.frame_airtime_s))
    }

    fn band(&self) -> Option<Band> {
        Some(Band::new(wifi_channel_freq_hz(self.channel), 22e6))
    }

    fn access(&self) -> MediumAccess {
        self.access
    }

    fn slug(&self) -> &'static str {
        "wifi-bursty"
    }
}

/// Periodic BLE advertising on one advertising channel: one PDU per
/// advertising event, spaced `interval_s` plus the spec's pseudo-random
/// `advDelay`. Advertisements never carrier-sense.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BleAdvertiser {
    /// The advertising channel the PDUs land on.
    pub ble_channel: BleChannel,
    /// Nominal advertising interval, seconds.
    pub interval_s: f64,
}

impl CoexTraffic for BleAdvertiser {
    fn next_emission(&self, rng: &mut SmallRng) -> Option<(f64, f64)> {
        let gap = self.interval_s + rng.gen_range(0.0..BLE_ADV_DELAY_MAX_S);
        Some((gap, BLE_ADV_AIRTIME_S))
    }

    fn band(&self) -> Option<Band> {
        Some(Band::new(self.ble_channel.center_freq_hz(), 2e6))
    }

    fn slug(&self) -> &'static str {
        "ble-adv"
    }
}

/// Poisson ZigBee chatter on one 802.15.4 channel: fixed-size frames at a
/// mean rate, CSMA-abiding like the standard's CCA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZigbeeChatter {
    /// ZigBee channel the frames land on (11–26).
    pub channel: u8,
    /// Mean frame rate, frames per second (Poisson).
    pub rate_fps: f64,
    /// Application payload per frame, bytes.
    pub payload_bytes: usize,
}

impl ZigbeeChatter {
    /// On-air time of one frame: 6 sync/header bytes plus the payload at
    /// 250 kbps.
    pub fn frame_airtime_s(&self) -> f64 {
        (6.0 * 8.0 + self.payload_bytes as f64 * 8.0) / 250e3
    }
}

impl CoexTraffic for ZigbeeChatter {
    fn next_emission(&self, rng: &mut SmallRng) -> Option<(f64, f64)> {
        Some((exponential_s(rng, self.rate_fps), self.frame_airtime_s()))
    }

    fn band(&self) -> Option<Band> {
        Some(Band::new(zigbee_channel_freq_hz(self.channel), 2e6))
    }

    fn access(&self) -> MediumAccess {
        MediumAccess::Csma
    }

    fn slug(&self) -> &'static str {
        "zigbee"
    }
}

/// A microwave oven: a strict magnetron duty cycle (on for `duty` of every
/// `period_s`, off for the rest), wideband around 2.45 GHz, deaf to
/// carrier-sense but loud enough that everyone else defers to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Microwave {
    /// Magnetron cycle period, seconds (mains half-cycle scale, ~10 ms).
    pub period_s: f64,
    /// Fraction of each period the magnetron radiates, in (0, 1).
    pub duty: f64,
}

impl CoexTraffic for Microwave {
    fn next_emission(&self, _rng: &mut SmallRng) -> Option<(f64, f64)> {
        // Deterministic: the oven does not consult its RNG stream at all.
        Some(((1.0 - self.duty) * self.period_s, self.duty * self.period_s))
    }

    fn band(&self) -> Option<Band> {
        // 40 MHz around 2.45 GHz: punctures Wi-Fi channels 6 and 11 but
        // spares channel 1 — the classic kitchen-adjacent deployment tale.
        Some(Band::new(2.45e9, 40e6))
    }

    fn slug(&self) -> &'static str {
        "microwave"
    }
}

/// The sharded executor's cross-cell interference proxy
/// ([`crate::shard`]): never schedules traffic of its own — the executor
/// injects hidden ghost windows directly into the cell's medium at epoch
/// boundaries — but reports a nominal mid-ISM band so the link tables
/// build power rows for it. Not constructible from presets; one is
/// appended per cell by the executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GhostProxy;

impl CoexTraffic for GhostProxy {
    fn next_emission(&self, _rng: &mut SmallRng) -> Option<(f64, f64)> {
        // Silent on its own RNG stream: the executor schedules the windows.
        None
    }

    fn band(&self) -> Option<Band> {
        // A nominal mid-ISM band: only the *path-loss model* keys on this
        // (the injected windows carry their real exchanged bands).
        Some(Band::new(2.44e9, 80e6))
    }

    fn access(&self) -> MediumAccess {
        MediumAccess::Hidden
    }

    fn slug(&self) -> &'static str {
        "ghost"
    }
}

/// The generator catalogue a [`CoexSource`] can run (plain data, `Copy`,
/// like [`crate::mobility::MobilityModel`] and
/// [`crate::sched::SchedPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoexModel {
    /// The legacy static per-sink scalar; emits nothing.
    Constant(ConstantOccupancy),
    /// Bursty Wi-Fi OFDM on a channel.
    WifiBursty(WifiBursty),
    /// Periodic BLE advertising.
    BleAdvertiser(BleAdvertiser),
    /// Poisson ZigBee chatter.
    ZigbeeChatter(ZigbeeChatter),
    /// An on/off microwave duty cycle.
    Microwave(Microwave),
    /// The sharded executor's cross-cell interference proxy.
    Ghost(GhostProxy),
}

impl CoexModel {
    /// The model as its [`CoexTraffic`] behaviour.
    pub fn traffic(&self) -> &dyn CoexTraffic {
        match self {
            CoexModel::Constant(m) => m,
            CoexModel::WifiBursty(m) => m,
            CoexModel::BleAdvertiser(m) => m,
            CoexModel::ZigbeeChatter(m) => m,
            CoexModel::Microwave(m) => m,
            CoexModel::Ghost(m) => m,
        }
    }
}

/// One external emitter: where it sits, how loud it is, when it is active
/// and which traffic process it runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoexSource {
    /// Where the source sits (feeds the capture tables in
    /// [`crate::links::LinkMatrix`]).
    pub position: Position,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// The source is silent before this instant, seconds.
    pub start_s: f64,
    /// The source is silent from this instant on, seconds
    /// (`f64::INFINITY` for always-on).
    pub stop_s: f64,
    /// The traffic process.
    pub model: CoexModel,
}

impl CoexSource {
    fn always(position: Position, tx_power_dbm: f64, model: CoexModel) -> Self {
        CoexSource {
            position,
            tx_power_dbm,
            start_s: 0.0,
            stop_s: f64::INFINITY,
            model,
        }
    }

    /// The legacy scalar for sink `sink` (position and power are unused —
    /// the model emits nothing).
    pub fn constant(sink: usize, occupancy: f64) -> Self {
        CoexSource::always(
            Position::default(),
            -300.0,
            CoexModel::Constant(ConstantOccupancy { sink, occupancy }),
        )
    }

    /// A CSMA-abiding Wi-Fi neighbour AP on `channel` offering roughly
    /// `load` of the channel's airtime (15 dBm, 4-frame mean bursts of
    /// 1 ms A-MPDUs).
    pub fn wifi_neighbor(position: Position, channel: u8, load: f64) -> Self {
        CoexSource::always(
            position,
            15.0,
            CoexModel::WifiBursty(WifiBursty {
                channel,
                mean_burst_frames: 4.0,
                frame_airtime_s: 1e-3,
                mean_gap_s: burst_gap_for_load(4.0 * 1e-3, load),
                access: MediumAccess::Csma,
            }),
        )
    }

    /// A *hidden* Wi-Fi transmitter on `channel` at roughly `load`: too
    /// far to trip the fleet's carrier-sense, close enough to its own AP
    /// to collide with everything the fleet sends there (20 dBm).
    pub fn hidden_wifi(position: Position, channel: u8, load: f64) -> Self {
        CoexSource::always(
            position,
            20.0,
            CoexModel::WifiBursty(WifiBursty {
                channel,
                mean_burst_frames: 4.0,
                frame_airtime_s: 1e-3,
                mean_gap_s: burst_gap_for_load(4.0 * 1e-3, load),
                access: MediumAccess::Hidden,
            }),
        )
    }

    /// A BLE beacon advertising every `interval_s` on channel 38 (0 dBm).
    pub fn ble_beacon(position: Position, interval_s: f64) -> Self {
        CoexSource::always(
            position,
            0.0,
            CoexModel::BleAdvertiser(BleAdvertiser {
                ble_channel: BleChannel::ADV_38,
                interval_s,
            }),
        )
    }

    /// A ZigBee neighbour network chattering at `rate_fps` 20-byte frames
    /// on `channel` (0 dBm).
    pub fn zigbee_neighbor(position: Position, channel: u8, rate_fps: f64) -> Self {
        CoexSource::always(
            position,
            0.0,
            CoexModel::ZigbeeChatter(ZigbeeChatter {
                channel,
                rate_fps,
                payload_bytes: 20,
            }),
        )
    }

    /// A microwave oven: 50% duty over a 10 ms magnetron cycle, leaking
    /// ~20 dBm into the band.
    pub fn microwave_oven(position: Position) -> Self {
        CoexSource::always(
            position,
            20.0,
            CoexModel::Microwave(Microwave {
                period_s: 10e-3,
                duty: 0.5,
            }),
        )
    }

    /// The sharded executor's per-cell cross-cell interference emitter:
    /// placed at the centroid of the *other* cells' carriers, as loud as
    /// the loudest foreign carrier ([`crate::shard`]).
    pub(crate) fn ghost(position: Position, tx_power_dbm: f64) -> Self {
        CoexSource::always(position, tx_power_dbm, CoexModel::Ghost(GhostProxy))
    }

    /// Restricts the source to the `[start_s, stop_s)` window (builder
    /// style) — how a preset hammers a channel *mid-run*.
    pub fn active(mut self, start_s: f64, stop_s: f64) -> Self {
        self.start_s = start_s;
        self.stop_s = stop_s;
        self
    }

    /// Checks the source's parameters.
    pub fn validate(&self, n_sinks: usize) -> Result<(), String> {
        if !(self.start_s >= 0.0 && self.stop_s > self.start_s) {
            return Err(format!(
                "activity window [{}, {}) is empty",
                self.start_s, self.stop_s
            ));
        }
        if !self.tx_power_dbm.is_finite() {
            return Err("tx power must be finite".into());
        }
        match self.model {
            CoexModel::Constant(ConstantOccupancy { sink, occupancy }) => {
                if sink >= n_sinks {
                    return Err(format!("constant source: sink {sink} out of range"));
                }
                if !(0.0..=1.0).contains(&occupancy) {
                    return Err(format!("constant occupancy {occupancy} outside [0, 1]"));
                }
            }
            CoexModel::WifiBursty(WifiBursty {
                channel,
                mean_burst_frames,
                frame_airtime_s,
                mean_gap_s,
                ..
            }) => {
                if !(1..=13).contains(&channel) {
                    return Err(format!("wifi channel {channel} outside 1..=13"));
                }
                if mean_burst_frames <= 0.0 || frame_airtime_s <= 0.0 || mean_gap_s <= 0.0 {
                    return Err("wifi burst parameters must be positive".into());
                }
            }
            CoexModel::BleAdvertiser(BleAdvertiser { interval_s, .. }) => {
                if interval_s <= 0.0 {
                    return Err("BLE advertising interval must be positive".into());
                }
            }
            CoexModel::ZigbeeChatter(ZigbeeChatter {
                channel,
                rate_fps,
                payload_bytes,
            }) => {
                if !(11..=26).contains(&channel) {
                    return Err(format!("zigbee channel {channel} outside 11..=26"));
                }
                if rate_fps <= 0.0 || payload_bytes == 0 {
                    return Err("zigbee chatter needs a positive rate and payload".into());
                }
            }
            CoexModel::Microwave(Microwave { period_s, duty }) => {
                if period_s <= 0.0 || !(duty > 0.0 && duty < 1.0) {
                    return Err(format!(
                        "microwave needs a positive period and duty in (0, 1), got {period_s}/{duty}"
                    ));
                }
            }
            // The executor-internal proxy has no parameters of its own.
            CoexModel::Ghost(GhostProxy) => {}
        }
        Ok(())
    }
}

/// The mean inter-burst gap that offers `load` of a channel's airtime with
/// bursts of `burst_airtime_s` seconds.
fn burst_gap_for_load(burst_airtime_s: f64, load: f64) -> f64 {
    let load = load.clamp(0.01, 0.95);
    burst_airtime_s * (1.0 - load) / load
}

/// Occupancy-sensing parameters: how each carrier's per-channel EWMA busy
/// estimate is maintained and how often it is sampled into the metrics
/// series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseConfig {
    /// EWMA smoothing factor per carrier slot, in (0, 1]: the weight of
    /// the newest busy/idle observation.
    pub ewma_alpha: f64,
    /// Cadence of [`crate::metrics::OccupancySample`] records, seconds.
    pub sample_interval_s: f64,
}

impl Default for SenseConfig {
    fn default() -> Self {
        SenseConfig {
            // At the presets' 5 ms slot cadence, α = 0.05 gives a ~100 ms
            // time constant: fast enough to catch a mid-run load spike,
            // slow enough not to chase single bursts.
            ewma_alpha: 0.05,
            sample_interval_s: 0.1,
        }
    }
}

impl SenseConfig {
    /// Checks the sensing parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(format!(
                "sense ewma_alpha must be in (0, 1], got {}",
                self.ewma_alpha
            ));
        }
        if self.sample_interval_s <= 0.0 {
            return Err("sense sample interval must be positive".into());
        }
        Ok(())
    }
}

/// The adaptive re-striping policy: when a carrier's sensed occupancy on
/// its own stripe crosses `high_occupancy` and the least-occupied
/// alternative sub-band is at least `hysteresis` quieter, the carrier and
/// its Wi-Fi tags re-tune there. All thresholds compare EWMA occupancies;
/// the dwell time and the check cadence are the hysteresis in *time* that
/// keeps carriers from flapping between stripes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReStripe {
    /// Re-striping is considered only above this sensed occupancy.
    pub high_occupancy: f64,
    /// The best alternative must be at least this much quieter.
    pub hysteresis: f64,
    /// Minimum time between re-stripes of one carrier, seconds.
    pub min_dwell_s: f64,
    /// Decision cadence: check every this many of the carrier's slots.
    pub check_every_slots: u32,
}

impl Default for ReStripe {
    fn default() -> Self {
        ReStripe {
            high_occupancy: 0.35,
            hysteresis: 0.15,
            min_dwell_s: 1.0,
            check_every_slots: 10,
        }
    }
}

impl ReStripe {
    /// Checks the policy's parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.high_occupancy) {
            return Err(format!(
                "high_occupancy {} outside [0, 1]",
                self.high_occupancy
            ));
        }
        if !(self.hysteresis >= 0.0 && self.hysteresis.is_finite()) {
            return Err("hysteresis must be finite and non-negative".into());
        }
        if self.min_dwell_s < 0.0 {
            return Err("min_dwell_s must be non-negative".into());
        }
        if self.check_every_slots == 0 {
            return Err("check_every_slots must be at least 1".into());
        }
        Ok(())
    }
}

/// The full coexistence configuration a scenario attaches: the external
/// sources, the sensing parameters, and (optionally) the adaptive
/// re-striping policy. The default is sourceless: sensing runs on the
/// fleet's own traffic and nothing external touches the medium.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CoexConfig {
    /// The external emitters sharing the band with the fleet.
    pub sources: Vec<CoexSource>,
    /// Occupancy-sensing parameters.
    pub sense: SenseConfig,
    /// Adaptive sub-band re-striping, off by default.
    pub restripe: Option<ReStripe>,
}

impl CoexConfig {
    /// A config carrying only the given sources, default sensing and no
    /// re-striping.
    pub fn with_sources(sources: Vec<CoexSource>) -> Self {
        CoexConfig {
            sources,
            ..CoexConfig::default()
        }
    }

    /// Attaches the re-striping policy (builder style).
    pub fn with_restripe(mut self, policy: ReStripe) -> Self {
        self.restripe = Some(policy);
        self
    }

    /// The engine's per-sink *scalar* occupancy under this config: the sum
    /// of the [`CoexModel::Constant`] sources targeting the sink, clamped
    /// to [0, 1]. Real generators contribute through the medium instead,
    /// so any sink without a constant source reads 0 here.
    pub fn constant_occupancy(&self, sink: usize) -> f64 {
        self.sources
            .iter()
            .filter_map(|s| match s.model {
                CoexModel::Constant(ConstantOccupancy { sink: k, occupancy }) if k == sink => {
                    Some(occupancy)
                }
                _ => None,
            })
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Checks every source and parameter block.
    pub fn validate(&self, n_sinks: usize) -> Result<(), String> {
        for (k, source) in self.sources.iter().enumerate() {
            source
                .validate(n_sinks)
                .map_err(|e| format!("source {k}: {e}"))?;
        }
        self.sense.validate()?;
        if let Some(restripe) = &self.restripe {
            restripe.validate()?;
        }
        Ok(())
    }
}

/// An exponential draw with mean `1/rate` seconds (the same shape as the
/// engine's arrival draws, duplicated so coex streams stay self-contained).
fn exponential_s<R: Rng>(rng: &mut R, rate_per_s: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate_per_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        // detlint: allow(stray_rng): test-local stream driving generators directly, not an engine entity
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn constant_is_silent_and_folds_per_sink() {
        let c = CoexSource::constant(1, 0.2);
        assert!(c.model.traffic().next_emission(&mut rng()).is_none());
        assert!(c.model.traffic().band().is_none());
        let cfg = CoexConfig::with_sources(vec![
            CoexSource::constant(0, 0.05),
            CoexSource::constant(1, 0.2),
            CoexSource::constant(1, 0.9),
        ]);
        assert_eq!(cfg.constant_occupancy(0), 0.05);
        // Multiple constants on one sink sum, clamped into [0, 1].
        assert_eq!(cfg.constant_occupancy(1), 1.0);
        assert_eq!(cfg.constant_occupancy(2), 0.0);
        cfg.validate(3).unwrap();
    }

    #[test]
    fn wifi_bursty_approximates_its_offered_load() {
        for load in [0.2, 0.6] {
            let src = CoexSource::hidden_wifi(Position::default(), 6, load);
            let traffic = src.model.traffic();
            let mut rng = rng();
            let (mut on, mut total) = (0.0, 0.0);
            for _ in 0..4000 {
                let (gap, dur) = traffic.next_emission(&mut rng).unwrap();
                on += dur;
                total += gap + dur;
            }
            let measured = on / total;
            assert!(
                (measured - load).abs() < 0.05,
                "load {load}: measured {measured}"
            );
        }
        assert_eq!(
            CoexSource::hidden_wifi(Position::default(), 6, 0.5)
                .model
                .traffic()
                .access(),
            MediumAccess::Hidden
        );
        assert_eq!(
            CoexSource::wifi_neighbor(Position::default(), 6, 0.5)
                .model
                .traffic()
                .access(),
            MediumAccess::Csma
        );
    }

    #[test]
    fn generators_draw_sane_schedules() {
        let ble = CoexSource::ble_beacon(Position::default(), 0.1);
        let (gap, dur) = ble.model.traffic().next_emission(&mut rng()).unwrap();
        assert!((0.1..0.1 + BLE_ADV_DELAY_MAX_S).contains(&gap));
        assert_eq!(dur, BLE_ADV_AIRTIME_S);

        let zb = CoexSource::zigbee_neighbor(Position::default(), 14, 50.0);
        let (gap, dur) = zb.model.traffic().next_emission(&mut rng()).unwrap();
        assert!(gap > 0.0);
        // 6 header bytes + 20 payload bytes at 250 kbps = 832 µs.
        assert!((dur - 832e-6).abs() < 1e-9);
        assert_eq!(zb.model.traffic().access(), MediumAccess::Csma);

        // The microwave never consults its RNG: a strict duty cycle.
        let mw = CoexSource::microwave_oven(Position::default());
        let a = mw.model.traffic().next_emission(&mut rng()).unwrap();
        let b = mw.model.traffic().next_emission(&mut rng()).unwrap();
        assert_eq!(a, b);
        assert!((a.0 - 5e-3).abs() < 1e-12 && (a.1 - 5e-3).abs() < 1e-12);
        assert_eq!(mw.model.traffic().access(), MediumAccess::Ignore);
    }

    #[test]
    fn microwave_band_spares_channel_1() {
        let band = CoexSource::microwave_oven(Position::default())
            .model
            .traffic()
            .band()
            .unwrap();
        let ch = |c| Band::new(wifi_channel_freq_hz(c), 22e6);
        assert!(!band.overlaps(&ch(1)), "channel 1 must escape the oven");
        assert!(band.overlaps(&ch(6)));
        assert!(band.overlaps(&ch(11)));
    }

    #[test]
    fn activity_windows_and_validation() {
        let src = CoexSource::hidden_wifi(Position::default(), 6, 0.5).active(3.0, 8.0);
        assert_eq!((src.start_s, src.stop_s), (3.0, 8.0));
        src.validate(1).unwrap();
        assert!(CoexSource::hidden_wifi(Position::default(), 6, 0.5)
            .active(5.0, 5.0)
            .validate(1)
            .is_err());
        assert!(CoexSource::constant(4, 0.1).validate(3).is_err());
        assert!(CoexSource::constant(0, 1.5).validate(3).is_err());
        // Channel ranges are validated, not deferred to a mid-run panic
        // inside the channel-frequency asserts.
        assert!(CoexSource::wifi_neighbor(Position::default(), 14, 0.3)
            .validate(1)
            .is_err());
        assert!(CoexSource::zigbee_neighbor(Position::default(), 9, 10.0)
            .validate(1)
            .is_err());

        let mut bad = CoexSource::microwave_oven(Position::default());
        bad.model = CoexModel::Microwave(Microwave {
            period_s: 10e-3,
            duty: 1.0,
        });
        assert!(bad.validate(1).is_err());

        assert!(SenseConfig::default().validate().is_ok());
        assert!(SenseConfig {
            ewma_alpha: 0.0,
            sample_interval_s: 0.1
        }
        .validate()
        .is_err());
        assert!(ReStripe::default().validate().is_ok());
        assert!(ReStripe {
            check_every_slots: 0,
            ..ReStripe::default()
        }
        .validate()
        .is_err());
        assert!(ReStripe {
            high_occupancy: 1.5,
            ..ReStripe::default()
        }
        .validate()
        .is_err());

        let cfg = CoexConfig::with_sources(vec![CoexSource::constant(9, 0.1)]);
        assert!(cfg.validate(2).is_err());
        CoexConfig::default().validate(0).unwrap();
    }
}
