//! The discrete-event simulation loop.
//!
//! One [`NetworkSim`] owns the event queue, the medium, the link matrix
//! and every entity's runtime state (packet queues, round-robin cursors,
//! per-entity RNG streams). Determinism comes from three rules:
//!
//! 1. time is integer nanoseconds and event ties resolve by scheduling
//!    order ([`crate::event::EventQueue`]);
//! 2. every random draw comes from the RNG of the entity the event
//!    belongs to, seeded from `(scenario seed, entity kind, entity
//!    index)` — never from a shared stream whose consumption order could
//!    drift;
//! 3. entity iteration is always by index.
//!
//! Two MAC disciplines share the loop ([`crate::mac::MacMode`]): the
//! open-loop schedule of PR 1 (carriers grant slots blindly) and the
//! closed poll/ack loop, where every uplink transmission is bracketed by
//! an AM-OFDM poll from the carrier and an AM-OFDM ack from the sink
//! (see [`crate::mac`] for the transaction structure and its physics).

use crate::coex::{CoexConfig, MediumAccess};
use crate::entities::{streams, NetPhy, Position, SinkKind};
use crate::event::{DownlinkKind, EventKind, EventQueue, EventTrace};
use crate::links::{EntityId, LinkBudget, LinkMatrix, Listener};
use crate::mac::{self, LoopPhase, MacLoop, MacMode};
use crate::medium::{Band, Emitter, Medium, TxReport};
use crate::metrics::{MobilitySample, NetworkMetrics, OccupancySample, ReStripeEvent, TagTable};
use crate::mobility::{MobilityConfig, MotionState};
use crate::prof::{CellProf, ProfReport};
use crate::scenario::Scenario;
use crate::sched::{CarrierSched, SlotView};
use crate::telemetry::{
    LossKind, MetricsMode, ProgressRuntime, TelemetryEvent, TelemetryKind, TelemetryReport,
    TelemetryRuntime,
};
use crate::time::Time;
use crate::NetError;
use interscatter_backscatter::tag::SidebandMode;
use interscatter_sim::mac::backscatter_delivery_probability;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// How much stronger than the sum of its interferers a packet must be at
/// its receiver to survive a collision (capture effect), dB.
pub const CAPTURE_MARGIN_DB: f64 = 10.0;

/// Bandwidth an AM downlink frame occupies on the medium: the 802.11
/// channel mask, shared with the Wi-Fi uplink bands so poll/ack frames
/// contend on exactly the channels the data does.
pub const AM_DOWNLINK_BANDWIDTH_HZ: f64 = interscatter_wifi::dot11b::CHANNEL_BANDWIDTH_HZ;

/// A packet waiting in a tag's queue.
#[derive(Debug, Clone, Copy)]
struct QueuedPacket {
    arrived: Time,
    retries: u32,
}

/// Runtime state of one tag.
#[derive(Debug)]
struct TagState {
    queue: VecDeque<QueuedPacket>,
    rng: SmallRng,
}

/// Runtime state of one carrier.
#[derive(Debug)]
struct CarrierState {
    /// The carrier's arbitration runtime: member list, sub-band stripe and
    /// the scenario's [`crate::sched::SchedPolicy`] state. Which tag a
    /// slot illuminates is decided here, not in the engine.
    sched: CarrierSched,
    /// Slot period on the integer-nanosecond grid (quantized once, so
    /// slot `k` fires at exactly `offset + k · period` — re-rounding the
    /// f64 period every slot would accumulate cadence drift).
    slot_interval_ns: u64,
    rng: SmallRng,
}

/// Runtime state of the mobility subsystem (only present when the scenario
/// attaches a non-static [`MobilityConfig`]).
#[derive(Debug)]
struct MobilityRuntime {
    config: MobilityConfig,
    /// Tick period on the integer-nanosecond grid (quantized once).
    tick_ns: u64,
    /// Per-tag kinematic state.
    states: Vec<MotionState>,
    /// Per-tag mobility RNG stream, independent of the traffic streams.
    rngs: Vec<SmallRng>,
    /// Per-carrier scenario placement, the reference for body-worn
    /// carriers that follow their tag.
    carrier_origin: Vec<Position>,
    /// For each carrier with exactly one assigned tag: that tag (the
    /// wearer). Shared carriers stay put.
    carrier_wearer: Vec<Option<usize>>,
    /// Per-tag delivery/attempt counters at the previous tick, for the
    /// PRR-vs-displacement series.
    prev_delivered: Vec<u64>,
    prev_attempts: Vec<u64>,
}

/// Runtime state of the coexistence subsystem (only present when the
/// scenario attaches a [`CoexConfig`]).
#[derive(Debug)]
struct CoexRuntime<'a> {
    config: &'a CoexConfig,
    /// Per source: its dedicated RNG stream (stream 4 — isolated from the
    /// traffic, carrier and mobility streams, so adding a source never
    /// shifts anyone else's draws).
    rngs: Vec<SmallRng>,
    /// Per source: the emission duration drawn for its pending
    /// `CoexStart`.
    pending_dur_s: Vec<f64>,
    /// Per receiver: the band its channel occupies — the sensing axis.
    rx_bands: Vec<Band>,
    /// Wi-Fi receiver indices: the candidate sub-bands of re-striping
    /// (the same axis [`Scenario::with_subband_striping`] stripes over).
    wifi_rx: Vec<usize>,
    /// Per carrier: sensing estimators and re-striping decision state.
    sense: Vec<CarrierSense>,
    /// Metrics sampling cadence on the integer-ns grid (quantized once).
    sample_ns: u64,
}

/// One carrier's occupancy sensing and re-striping state.
#[derive(Debug)]
struct CarrierSense {
    /// EWMA busy-airtime estimate per receiver channel, in [0, 1].
    ewma: Vec<f64>,
    /// When the last [`OccupancySample`] was recorded.
    last_sample: Time,
    /// Member-tag counters at the last sample, for the PRR deltas.
    prev_attempts: u64,
    prev_delivered: u64,
    /// Slots seen so far (the re-striping check cadence counts these).
    slots: u32,
    /// When the carrier last re-striped (the dwell-time hysteresis).
    last_restripe: Time,
}

/// How one reception attempt resolved, in arbitration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RxOutcome {
    /// Survived collisions, external traffic and the link budget.
    Delivered,
    /// Lost to in-model interference (capture failed).
    Collision,
    /// Lost to external traffic: a collision where every in-band
    /// interferer was a coex source's emission, or the legacy
    /// occupancy-scalar fold.
    External,
    /// Lost to the link budget (shadowed RSSI under sensitivity).
    LinkLoss,
}

impl RxOutcome {
    fn label(self) -> &'static str {
        match self {
            RxOutcome::Delivered => "delivered",
            RxOutcome::Collision => "collision",
            RxOutcome::External => "external collision",
            RxOutcome::LinkLoss => "link loss",
        }
    }
}

/// The result of one run: metrics plus (optionally) the full event trace.
#[derive(Debug, Clone)]
pub struct NetRunResult {
    /// Aggregated counters and distributions.
    pub metrics: NetworkMetrics,
    /// The event trace (empty if tracing was disabled).
    pub trace: EventTrace,
    /// What the run's telemetry subscriptions reduced to, plus any
    /// collected progress lines ([`crate::telemetry`]). Empty (but for the
    /// event count) when the scenario registers no subscriptions.
    pub telemetry: TelemetryReport,
    /// The run's self-profile ([`crate::prof`]): wall-clock span timeline
    /// plus phase/shard-load summary. `Some` only when
    /// [`crate::scenario::ExecutionConfig::profile`] was set; never
    /// consulted by the simulation, so digests are identical either way.
    pub prof: Option<ProfReport>,
}

/// A configured simulation, ready to run.
#[derive(Debug, Clone)]
pub struct NetworkSim<'a> {
    scenario: &'a Scenario,
    seed: u64,
    record_trace: bool,
}

impl<'a> NetworkSim<'a> {
    /// Prepares a run of `scenario` with the given seed. Tracing is on by
    /// default; disable it with [`NetworkSim::with_trace`] for large
    /// Monte-Carlo sweeps.
    pub fn new(scenario: &'a Scenario, seed: u64) -> Self {
        NetworkSim {
            scenario,
            seed,
            record_trace: true,
        }
    }

    /// Enables or disables event-trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Runs the simulation to its horizon.
    ///
    /// This is the legacy single-engine reference path: one event loop over
    /// the whole scenario, no cell partition, no epoch chunking. The
    /// sharded executor ([`crate::run`] / [`crate::shard`]) drives the same
    /// engine core per spatial cell instead.
    pub fn run(self) -> Result<NetRunResult, NetError> {
        let mut core = EngineCore::new(self.scenario, self.seed, self.record_trace)?;
        core.run_until(Time::from_nanos(u64::MAX));
        Ok(core.finish())
    }
}

/// Per-band in-model emission airtime accumulated since the last epoch
/// boundary. The sharded executor drains this at every boundary and turns
/// each cell's foreign share into a hidden ghost window in every *other*
/// cell ([`crate::shard`]). Rows stay sorted by the canonical band order
/// (`total_cmp` on center, then bandwidth bits), so the drain order is
/// deterministic and independent of emission arrival order.
#[derive(Debug, Default)]
pub(crate) struct BoundaryAccum {
    rows: Vec<(Band, f64)>,
}

/// The canonical cross-cell band order: bit-exact float comparison, the
/// same identity the medium's band registry uses.
pub(crate) fn band_order(a: &Band, b: &Band) -> std::cmp::Ordering {
    a.center_hz
        .total_cmp(&b.center_hz)
        .then(a.bandwidth_hz.total_cmp(&b.bandwidth_hz))
}

impl BoundaryAccum {
    fn charge(&mut self, band: Band, airtime_s: f64) {
        match self.rows.binary_search_by(|(b, _)| band_order(b, &band)) {
            Ok(i) => self.rows[i].1 += airtime_s,
            Err(i) => self.rows.insert(i, (band, airtime_s)),
        }
    }
}

/// Charges an in-model emission window to the boundary accumulator (no-op
/// on the legacy unsharded path, where `boundary` is `None`).
fn charge_boundary(
    boundary: &mut Option<BoundaryAccum>,
    primary: Band,
    mirror: Option<Band>,
    window_s: f64,
) {
    let Some(b) = boundary.as_mut() else { return };
    b.charge(primary, window_s);
    if let Some(m) = mirror {
        b.charge(m, window_s);
    }
}

/// The resumable engine: all of a run's state behind a `run_until` cursor.
///
/// [`NetworkSim::run`] is `new` + `run_until(u64::MAX)` + `finish` — one
/// uninterrupted pass, byte-identical to the pre-refactor engine. The
/// sharded executor instead interleaves `run_until(epoch_k)` calls across
/// cells with an interference exchange between epochs; the
/// [`crate::event::EventQueue::pop_before`] gate guarantees the chunked
/// pop sequence is identical to the uninterrupted one.
pub(crate) struct EngineCore<'a> {
    scenario: &'a Scenario,
    links: LinkMatrix,
    queue: EventQueue,
    medium: Medium,
    trace: EventTrace,
    metrics: NetworkMetrics,
    tag_stats: TagTable,
    tele: TelemetryRuntime,
    progress: Option<ProgressRuntime>,
    mac_loop: Option<MacLoop>,
    tags: Vec<TagState>,
    carriers: Vec<CarrierState>,
    mobility: Option<MobilityRuntime>,
    tuned_phy: Vec<NetPhy>,
    tuned_rx: Vec<usize>,
    airborne: Vec<bool>,
    ext_occ: Vec<f64>,
    coex: Option<CoexRuntime<'a>>,
    /// `Some` only in sharded mode: per-band airtime for the exchange.
    boundary: Option<BoundaryAccum>,
    /// Pending ghost windows: `(band, end)` per [`EventKind::GhostStart`]
    /// index. Band/Time live here because [`EventKind`] derives `Eq` and
    /// [`Band`] holds floats.
    ghosts: Vec<(Band, Time)>,
    /// Index of the cell's ghost coex source (sharded mode only).
    ghost_source: Option<usize>,
    /// Self-profiling recorder, `Some` only when the scenario enables
    /// profiling. Wall-clock state stays out of the event loop's inputs —
    /// detlint's `wall_clock` rule keeps `Instant` itself in `prof.rs`.
    prof: Option<CellProf>,
    done: bool,
}

impl<'a> EngineCore<'a> {
    /// Validates the scenario, builds the link matrix and primes the queue.
    pub(crate) fn new(
        scenario: &'a Scenario,
        seed: u64,
        record_trace: bool,
    ) -> Result<EngineCore<'a>, NetError> {
        let mut prof = scenario.execution.profile.then(|| CellProf::wall(0));
        let init_tok = prof.as_mut().map(|p| p.begin("engine_init"));
        scenario.validate()?;
        let link_tok = prof.as_mut().map(|p| p.begin("link_build"));
        let links = LinkMatrix::build(scenario)?;
        if let (Some(p), Some(tok)) = (prof.as_mut(), link_tok) {
            p.end(tok);
        }
        let horizon = Time::from_secs(scenario.duration_s);

        let mut queue = EventQueue::new();
        let medium = Medium::new();
        let trace = EventTrace::new(record_trace);
        let mut metrics = NetworkMetrics::new(
            scenario.tags.len(),
            scenario.receivers.len(),
            scenario.duration_s,
        );
        // The hot-path counter table: struct-of-arrays columns the event
        // loop bumps, materialised into `metrics.tags` once at the end of
        // the run.
        let tag_stats = TagTable::new(scenario.tags.len());
        if scenario.telemetry.mode == MetricsMode::Streaming {
            metrics.enable_streaming();
        }
        // The subscription layer: filters compiled to a per-kind dispatch
        // mask, so each emit site below pays one dead branch when nothing
        // is subscribed. Telemetry consumes no RNG and never touches the
        // queue or the medium — traces stay byte-identical regardless.
        let tele = TelemetryRuntime::new(
            &scenario.telemetry,
            scenario.tags.len(),
            scenario.carriers.len(),
        );
        let progress: Option<ProgressRuntime> = scenario
            .telemetry
            .progress_every_s
            .map(|every| ProgressRuntime::new(every, scenario.telemetry.live_progress));
        let mac_loop = match scenario.mac {
            MacMode::OpenLoop => None,
            MacMode::ClosedLoop => Some(MacLoop::new(scenario.tags.len())),
        };
        let mut tags: Vec<TagState> = (0..scenario.tags.len())
            .map(|t| TagState {
                queue: VecDeque::new(),
                rng: streams::tag_rng(seed, t),
            })
            .collect();
        let mut carriers: Vec<CarrierState> = (0..scenario.carriers.len())
            .map(|c| CarrierState {
                sched: CarrierSched::new(
                    scenario.scheduler,
                    // The matrix's hoisted carrier → tags index (ascending,
                    // like the fleet scan it replaced).
                    links.carrier_tags(c).to_vec(),
                    scenario.carriers[c].subband,
                ),
                slot_interval_ns: Time::from_secs(scenario.carriers[c].slot_interval_s)
                    .as_nanos()
                    .max(1),
                rng: streams::carrier_rng(seed, c),
            })
            .collect();
        let mobility: Option<MobilityRuntime> = scenario
            .mobility
            .filter(|config| !config.model.is_static())
            .map(|config| MobilityRuntime {
                config,
                tick_ns: Time::from_secs(config.tick_interval_s).as_nanos().max(1),
                states: scenario
                    .tags
                    .iter()
                    .map(|t| MotionState::at(t.position()))
                    .collect(),
                rngs: (0..scenario.tags.len())
                    .map(|t| streams::mobility_rng(seed, t))
                    .collect(),
                carrier_origin: scenario.carriers.iter().map(|c| c.position()).collect(),
                carrier_wearer: carriers
                    .iter()
                    .map(|state| match state.sched.members() {
                        [only] => Some(*only),
                        _ => None,
                    })
                    .collect(),
                prev_delivered: vec![0; scenario.tags.len()],
                prev_attempts: vec![0; scenario.tags.len()],
            });

        // The tags' *live* tuning: the scenario's PHY/receiver assignment
        // until an adaptive re-stripe re-tunes a carrier's members. When
        // nothing re-stripes these mirror the scenario exactly, so legacy
        // runs reproduce byte for byte.
        let tuned_phy: Vec<NetPhy> = scenario.tags.iter().map(|t| t.phy).collect();
        let tuned_rx: Vec<usize> = scenario.tags.iter().map(|t| t.receiver).collect();
        // Per tag: an uplink emission is on the air (re-striping waits for
        // quiescence so a tag is never re-tuned mid-flight).
        let airborne = vec![false; scenario.tags.len()];

        // The per-sink *scalar* external occupancy folded into delivery
        // probabilities: the legacy `external_occupancy` field without a
        // coex config, the `CoexModel::Constant` sources with one (real
        // generators contribute through the medium instead).
        let ext_occ: Vec<f64> = match &scenario.coex {
            None => scenario
                .receivers
                .iter()
                .map(|r| r.external_occupancy)
                .collect(),
            Some(cfg) => (0..scenario.receivers.len())
                .map(|s| cfg.constant_occupancy(s))
                .collect(),
        };

        let mut coex: Option<CoexRuntime> = scenario.coex.as_ref().map(|config| {
            metrics.init_coex(scenario.carriers.len(), config.sources.len());
            let carrier0_freq = scenario.carriers[0].carrier_freq_hz();
            CoexRuntime {
                config,
                rngs: (0..config.sources.len())
                    .map(|k| streams::coex_rng(seed, k))
                    .collect(),
                pending_dur_s: vec![0.0; config.sources.len()],
                rx_bands: scenario
                    .receivers
                    .iter()
                    .map(|r| Band::new(r.center_freq_hz(carrier0_freq), r.bandwidth_hz()))
                    .collect(),
                wifi_rx: scenario
                    .receivers
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| matches!(r.kind, SinkKind::Wifi { .. }))
                    .map(|(i, _)| i)
                    .collect(),
                sense: (0..scenario.carriers.len())
                    .map(|_| CarrierSense {
                        ewma: vec![0.0; scenario.receivers.len()],
                        last_sample: Time::ZERO,
                        prev_attempts: 0,
                        prev_delivered: 0,
                        slots: 0,
                        last_restripe: Time::ZERO,
                    })
                    .collect(),
                sample_ns: Time::from_secs(config.sense.sample_interval_s)
                    .as_nanos()
                    .max(1),
            }
        });

        // Prime the queue: first packet arrival per tag, first slot per
        // carrier (staggered within one interval so co-located carriers do
        // not fire in lockstep), and the horizon.
        for (t, state) in tags.iter_mut().enumerate() {
            let dt = exponential_s(&mut state.rng, scenario.tags[t].arrival_rate_pps);
            queue.schedule(
                Time::ZERO.after_secs(dt),
                EventKind::PacketArrival { tag: t },
            );
        }
        for (c, state) in carriers.iter_mut().enumerate() {
            let offset = state
                .rng
                .gen_range(0.0..scenario.carriers[c].slot_interval_s);
            queue.schedule(
                Time::ZERO.after_secs(offset),
                EventKind::CarrierSlot { carrier: c },
            );
        }
        if let Some(mob) = &mobility {
            queue.schedule(Time::ZERO.after_nanos(mob.tick_ns), EventKind::MobilityTick);
        }
        if let Some(cx) = coex.as_mut() {
            // First arrival per external source (silent models draw
            // nothing and schedule nothing).
            for (k, source) in cx.config.sources.iter().enumerate() {
                let Some((gap, dur)) = source.model.traffic().next_emission(&mut cx.rngs[k]) else {
                    continue;
                };
                let start = Time::from_secs(source.start_s).after_secs(gap);
                if start.as_secs() < source.stop_s {
                    cx.pending_dur_s[k] = dur;
                    queue.schedule(start, EventKind::CoexStart { source: k });
                }
            }
        }
        queue.schedule(horizon, EventKind::Horizon);

        if let (Some(p), Some(tok)) = (prof.as_mut(), init_tok) {
            p.end(tok);
        }
        Ok(EngineCore {
            scenario,
            links,
            queue,
            medium,
            trace,
            metrics,
            tag_stats,
            tele,
            progress,
            mac_loop,
            tags,
            carriers,
            mobility,
            tuned_phy,
            tuned_rx,
            airborne,
            ext_occ,
            coex,
            boundary: None,
            ghosts: Vec::new(),
            ghost_source: None,
            prof,
            done: false,
        })
    }

    /// Re-tags the core's profiling spans onto cell `cell`'s track. The
    /// sharded executor calls this after construction — init spans are
    /// recorded before the core knows which cell it runs.
    pub(crate) fn set_prof_track(&mut self, cell: u32) {
        if let Some(p) = self.prof.as_mut() {
            p.set_track(cell + 1);
        }
    }

    /// Switches the core into sharded mode: accumulate per-band in-model
    /// airtime for the epoch-boundary exchange, and resolve the cell's
    /// ghost coex source (the emitter foreign interference is charged to).
    pub(crate) fn enable_boundary_exchange(&mut self) {
        self.boundary = Some(BoundaryAccum::default());
        self.ghost_source = self.scenario.coex.as_ref().and_then(|cfg| {
            cfg.sources
                .iter()
                .position(|s| matches!(s.model, crate::coex::CoexModel::Ghost(_)))
        });
    }

    /// Drains the per-band airtime charged since the previous drain, in
    /// the canonical band order. Empty on the legacy unsharded path.
    pub(crate) fn drain_boundary(&mut self) -> Vec<(Band, f64)> {
        match self.boundary.as_mut() {
            Some(b) => std::mem::take(&mut b.rows),
            None => Vec::new(),
        }
    }

    /// Schedules a hidden cross-cell interference window `[at, end)` on
    /// `band`, emitted by the cell's ghost coex source. Only the sharded
    /// executor calls this, between epochs.
    pub(crate) fn inject_ghost(&mut self, at: Time, band: Band, end: Time) {
        debug_assert!(
            self.ghost_source.is_some(),
            "inject_ghost without enable_boundary_exchange"
        );
        let ghost = self.ghosts.len();
        self.ghosts.push((band, end));
        self.queue.schedule(at, EventKind::GhostStart { ghost });
    }

    /// True once the horizon event has been consumed.
    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    /// Engine events processed so far (the sharded executor's progress
    /// lines sum this across cells mid-run).
    pub(crate) fn events_so_far(&self) -> u64 {
        self.tele.events()
    }

    /// Pops and handles every event strictly before `limit` (and nothing
    /// at or after it), stopping early at the horizon. Calling this with
    /// an ascending sequence of limits handles exactly the events — in
    /// exactly the order — one `run_until(MAX)` would.
    pub(crate) fn run_until(&mut self, limit: Time) {
        if self.done {
            return;
        }
        let epoch_tok = self.prof.as_mut().map(CellProf::begin_epoch);
        let EngineCore {
            scenario,
            ref mut links,
            ref mut queue,
            ref mut medium,
            ref mut trace,
            ref mut metrics,
            ref mut tag_stats,
            ref mut tele,
            ref mut progress,
            ref mut mac_loop,
            ref mut tags,
            ref mut carriers,
            ref mut mobility,
            ref mut tuned_phy,
            ref mut tuned_rx,
            ref mut airborne,
            ref ext_occ,
            ref mut coex,
            ref mut boundary,
            ref ghosts,
            ghost_source,
            ref mut prof,
            ref mut done,
        } = *self;
        while let Some(event) = queue.pop_before(limit) {
            tele.tick_event();
            if let Some(p) = progress.as_mut() {
                // One status line per elapsed cadence period, driven by
                // simulated time so the output is deterministic (events
                // per *simulated* second, no wall clock).
                if p.due(event.at) {
                    let attempts: u64 = tag_stats.attempts.iter().sum();
                    let delivered: u64 = tag_stats.delivered.iter().sum();
                    p.emit(
                        event.at,
                        tele.events(),
                        attempts as usize,
                        delivered as usize,
                        metrics.restripes(),
                    );
                }
            }
            match event.kind {
                EventKind::Horizon => {
                    *done = true;
                    break;
                }
                EventKind::MobilityTick => {
                    let now = event.at;
                    let mob = mobility.as_mut().expect("tick without mobility");
                    queue.schedule(now.after_nanos(mob.tick_ns), EventKind::MobilityTick);
                    // Advance every tag's walk from its own RNG stream (in
                    // index order — the determinism contract), pushing new
                    // positions into the matrix as dirty rows.
                    let dt_s = mob.tick_ns as f64 / 1e9;
                    let mut moved = 0usize;
                    for t in 0..scenario.tags.len() {
                        let before = mob.states[t].position;
                        mob.config.model.step(
                            &mut mob.states[t],
                            &mob.config.bounds,
                            dt_s,
                            &mut mob.rngs[t],
                        );
                        if mob.states[t].position != before {
                            links.set_position(EntityId::Tag(t), mob.states[t].position);
                            moved += 1;
                        }
                    }
                    if mob.config.carriers_follow {
                        // Body-worn carriers ride rigidly with their single
                        // wearer tag, preserving the scenario offset.
                        for (c, wearer) in mob.carrier_wearer.iter().enumerate() {
                            let Some(t) = *wearer else { continue };
                            let state = &mob.states[t];
                            let origin = mob.carrier_origin[c];
                            let p = Position::new(
                                origin.x + (state.position.x - state.origin.x),
                                origin.y + (state.position.y - state.origin.y),
                                origin.z + (state.position.z - state.origin.z),
                            );
                            if p != links.position(EntityId::Carrier(c)) {
                                links.set_position(EntityId::Carrier(c), p);
                            }
                        }
                    }
                    let flush_tok = prof.as_mut().map(|p| p.begin("link_flush"));
                    let refreshed = links.flush(scenario);
                    if let (Some(p), Some(tok)) = (prof.as_mut(), flush_tok) {
                        p.end(tok);
                    }
                    // One PRR-vs-displacement sample per tag per tick.
                    let mut max_disp_mm = 0u64;
                    for t in 0..scenario.tags.len() {
                        let (attempts, delivered) = (tag_stats.attempts[t], tag_stats.delivered[t]);
                        metrics.record_mobility_sample(
                            t,
                            MobilitySample {
                                at_s: now.as_secs(),
                                displacement_m: mob.states[t].displacement_m(),
                                attempts: (attempts - mob.prev_attempts[t]) as usize,
                                delivered: (delivered - mob.prev_delivered[t]) as usize,
                            },
                        );
                        mob.prev_attempts[t] = attempts;
                        mob.prev_delivered[t] = delivered;
                        max_disp_mm =
                            max_disp_mm.max((mob.states[t].displacement_m() * 1e3).round() as u64);
                    }
                    trace.record(now, || {
                        format!(
                            "mobility tick: {moved} moved, {refreshed} entities refreshed, \
                             max displacement {max_disp_mm} mm"
                        )
                    });
                }
                EventKind::CoexStart { source } => {
                    let now = event.at;
                    let cx = coex.as_mut().expect("coex event without config");
                    let spec = &cx.config.sources[source];
                    let traffic = spec.model.traffic();
                    let band = traffic.band().expect("silent sources never schedule");
                    if traffic.access() == MediumAccess::Csma && medium.busy(band, now) {
                        // A well-behaved neighbour defers to the busy band
                        // (including the §2.3.3 NAV — this is exactly the
                        // protection a CTS-to-Self buys against external
                        // traffic) and retries after a contention-window
                        // backoff from its own stream.
                        metrics.coex_defers[source] += 1;
                        let backoff = cx.rngs[source].gen_range(50e-6..500e-6);
                        let retry = now.after_secs(backoff);
                        if retry.as_secs() < spec.stop_s {
                            queue.schedule(retry, EventKind::CoexStart { source });
                        }
                        continue;
                    }
                    // Clip at the activity window's edge: `stop_s` means
                    // silent from that instant on, even mid-burst.
                    let dur = cx.pending_dur_s[source].min(spec.stop_s - now.as_secs());
                    let end = now.after_secs(dur);
                    let tx_id = if traffic.access() == MediumAccess::Hidden {
                        medium.start_hidden(Emitter::External(source), band, None, now, end)
                    } else {
                        medium.start(Emitter::External(source), band, None, now, end)
                    };
                    metrics.coex_emissions[source] += 1;
                    metrics.coex_airtime_s[source] += dur;
                    queue.schedule(end, EventKind::CoexEnd { source, tx_id });
                    trace.record(now, || {
                        format!(
                            "coex {} {source}: {} ns on air",
                            traffic.slug(),
                            Time::from_secs(dur).as_nanos()
                        )
                    });
                }
                EventKind::CoexEnd { source, tx_id } => {
                    let now = event.at;
                    // External receptions are nobody's business: the
                    // report only mattered to the in-model victims, whose
                    // own finishes collect it.
                    let _ = medium.finish(tx_id);
                    let cx = coex.as_mut().expect("coex event without config");
                    let spec = &cx.config.sources[source];
                    if let Some((gap, dur)) =
                        spec.model.traffic().next_emission(&mut cx.rngs[source])
                    {
                        let start = now.after_secs(gap);
                        if start.as_secs() < spec.stop_s {
                            cx.pending_dur_s[source] = dur;
                            queue.schedule(start, EventKind::CoexStart { source });
                        }
                    }
                }
                EventKind::PacketArrival { tag } => {
                    let now = event.at;
                    let rate = scenario.tags[tag].arrival_rate_pps;
                    let state = &mut tags[tag];
                    tag_stats.offered[tag] += 1;
                    if tele.wants(TelemetryKind::Offered) {
                        tele.emit(now, &TelemetryEvent::Offered { tag });
                    }
                    if state.queue.len() < scenario.max_queue {
                        state.queue.push_back(QueuedPacket {
                            arrived: now,
                            retries: 0,
                        });
                        let depth = state.queue.len();
                        trace.record(now, || format!("tag {tag} arrival (queue {depth})"));
                    } else {
                        tag_stats.dropped[tag] += 1;
                        if tele.wants(TelemetryKind::Dropped) {
                            tele.emit(now, &TelemetryEvent::Dropped { tag });
                        }
                        trace.record(now, || format!("tag {tag} arrival dropped (queue full)"));
                    }
                    let dt = exponential_s(&mut state.rng, rate);
                    queue.schedule(now.after_secs(dt), EventKind::PacketArrival { tag });
                }
                EventKind::CarrierSlot { carrier } => {
                    let now = event.at;
                    let spec = &scenario.carriers[carrier];
                    queue.schedule(
                        now.after_nanos(carriers[carrier].slot_interval_ns),
                        EventKind::CarrierSlot { carrier },
                    );
                    // Coex scenarios: sample the receive-side channel load
                    // into the carrier's EWMAs and — on the policy cadence
                    // — maybe re-tune the carrier and its tags to the
                    // least-occupied sub-band. Slot-aligned, RNG-free.
                    let occupancy = match coex.as_mut() {
                        None => 0.0,
                        Some(cx) => sense_and_restripe(
                            cx,
                            scenario,
                            carrier,
                            now,
                            carriers,
                            links,
                            medium,
                            tuned_phy,
                            tuned_rx,
                            airborne,
                            mac_loop.as_ref(),
                            metrics,
                            tag_stats,
                            tele,
                            trace,
                        ),
                    };
                    // Consult the scenario's scheduler: the backlog oracle
                    // reports each member's head-of-queue arrival when the
                    // tag can be granted (queued traffic and — closed loop —
                    // no transaction in flight).
                    let picked = {
                        let tags_ref = &tags;
                        let mac = mac_loop.as_ref();
                        let backlog = move |t: usize| -> Option<Time> {
                            let state = &tags_ref[t];
                            (!state.queue.is_empty() && mac.is_none_or(|m| m.is_idle(t)))
                                .then(|| state.queue.front().expect("backlogged").arrived)
                        };
                        carriers[carrier].sched.pick(
                            &backlog,
                            &SlotView {
                                now,
                                links,
                                occupancy,
                            },
                        )
                    };
                    let Some(tag) = picked else {
                        continue;
                    };
                    let tag_spec = &scenario.tags[tag];
                    let carrier_freq = spec.carrier_freq_hz();
                    match mac_loop.as_mut() {
                        None => {
                            // Open loop: grant the slot and put the uplink
                            // packet straight on the air (on the tag's
                            // *live* tuning — a re-striped tag synthesizes
                            // onto its carrier's new sub-band).
                            let phy = &tuned_phy[tag];
                            let airtime = phy.airtime_s(tag_spec.payload_bytes);
                            let primary =
                                Band::new(phy.center_freq_hz(carrier_freq), phy.bandwidth_hz());
                            if medium.busy(primary, now) {
                                tag_stats.csma_defers[tag] += 1;
                                trace.record(now, || {
                                    format!("carrier {carrier} slot: tag {tag} defers (band busy)")
                                });
                                continue;
                            }
                            grant_slot(
                                &mut carriers[carrier],
                                carrier,
                                tags,
                                metrics,
                                tag_stats,
                                links,
                                tele,
                                progress.as_mut(),
                                tag,
                                now,
                                occupancy,
                            );
                            let end = now.after_secs(airtime);
                            if scenario.cts_to_self {
                                // The §2.3.3 NAV covers the inter-channel
                                // gaps around the packet, so it outlives the
                                // emission itself and keeps other tags off
                                // the band while the next trigger is being
                                // set up.
                                let nav = interscatter_ble::timing::reservation_window_s(airtime);
                                medium.reserve(primary, now.after_secs(nav));
                            }
                            let mirror = mirror_band(tag_spec.sideband, phy, carrier_freq, primary);
                            charge_mirror_airtime(
                                scenario,
                                metrics,
                                tuned_rx[tag],
                                tag_spec.carrier,
                                mirror,
                                airtime,
                            );
                            let tx_id = medium.start(Emitter::Tag(tag), primary, mirror, now, end);
                            charge_boundary(boundary, primary, mirror, airtime);
                            airborne[tag] = true;
                            queue.schedule(
                                end,
                                EventKind::TxEnd {
                                    tag,
                                    tx_id,
                                    started: now,
                                },
                            );
                            trace.record(now, || {
                                format!(
                                    "carrier {carrier} slot: tag {tag} tx start ({} ns airtime{})",
                                    Time::from_secs(airtime).as_nanos(),
                                    if mirror.is_some() { ", dsb mirror" } else { "" }
                                )
                            });
                        }
                        Some(mac_state) => {
                            // Closed loop: the slot opens with an AM-OFDM
                            // poll on the tag's service band.
                            let band = downlink_band(scenario, tuned_rx[tag], carrier_freq);
                            if medium.busy(band, now) {
                                tag_stats.csma_defers[tag] += 1;
                                trace.record(now, || {
                                    format!("carrier {carrier} poll: tag {tag} defers (band busy)")
                                });
                                continue;
                            }
                            grant_slot(
                                &mut carriers[carrier],
                                carrier,
                                tags,
                                metrics,
                                tag_stats,
                                links,
                                tele,
                                progress.as_mut(),
                                tag,
                                now,
                                occupancy,
                            );
                            let poll_air = mac::poll_airtime_s();
                            let end = now.after_secs(poll_air);
                            if scenario.cts_to_self {
                                // The NAV must hold the band for the whole
                                // poll → response → ack exchange.
                                let data_air = tuned_phy[tag].airtime_s(tag_spec.payload_bytes);
                                let nav = interscatter_ble::timing::reservation_window_s(
                                    mac::transaction_airtime_s(data_air),
                                );
                                medium.reserve(band, now.after_secs(nav));
                            }
                            let tx_id =
                                medium.start(Emitter::Carrier(carrier), band, None, now, end);
                            charge_boundary(boundary, band, None, poll_air);
                            mac_state.poll_started(tag, now);
                            tag_stats.polls[tag] += 1;
                            queue.schedule(
                                end,
                                EventKind::DownlinkEmission {
                                    kind: DownlinkKind::Poll,
                                    tag,
                                    tx_id,
                                    started: now,
                                },
                            );
                            trace.record(now, || {
                                format!(
                                    "carrier {carrier} poll: tag {tag} ({} ns airtime)",
                                    Time::from_secs(poll_air).as_nanos()
                                )
                            });
                        }
                    }
                }
                EventKind::DownlinkEmission {
                    kind: DownlinkKind::Poll,
                    tag,
                    tx_id,
                    started: _,
                } => {
                    let now = event.at;
                    let report = medium.finish(tx_id);
                    let tag_spec = &scenario.tags[tag];
                    let carrier_freq = scenario.carriers[tag_spec.carrier].carrier_freq_hz();
                    let band = downlink_band(scenario, tuned_rx[tag], carrier_freq);
                    let outcome = receive_outcome(
                        links,
                        links.poll_budget(tag),
                        &report,
                        band,
                        Listener::Tag(tag),
                        ext_occ[tuned_rx[tag]],
                        scenario.cts_to_self,
                        &mut tags[tag].rng,
                    );
                    if outcome == RxOutcome::Delivered {
                        // The tag decoded its poll: backscatter the queued
                        // packet one SIFS later while the carrier holds the
                        // tone. No carrier-sense — SIFS-spaced frames of one
                        // transaction own the reservation.
                        let phy = &tuned_phy[tag];
                        let airtime = phy.airtime_s(tag_spec.payload_bytes);
                        let primary =
                            Band::new(phy.center_freq_hz(carrier_freq), phy.bandwidth_hz());
                        let mirror = mirror_band(tag_spec.sideband, phy, carrier_freq, primary);
                        charge_mirror_airtime(
                            scenario,
                            metrics,
                            tuned_rx[tag],
                            tag_spec.carrier,
                            mirror,
                            airtime,
                        );
                        let response_start = now.after_secs(mac::SIFS_S);
                        let response_end = response_start.after_secs(airtime);
                        // The medium treats the SIFS gap as part of the
                        // emission window: the band is held anyway.
                        let tx_id =
                            medium.start(Emitter::Tag(tag), primary, mirror, now, response_end);
                        charge_boundary(
                            boundary,
                            primary,
                            mirror,
                            response_end.since(now).as_secs(),
                        );
                        airborne[tag] = true;
                        mac_loop
                            .as_mut()
                            .expect("closed loop")
                            .response_started(tag);
                        queue.schedule(
                            response_end,
                            EventKind::TxEnd {
                                tag,
                                tx_id,
                                started: response_start,
                            },
                        );
                        trace.record(now, || {
                            format!(
                                "tag {tag} poll decoded; backscatter response start \
                                 ({} ns airtime{})",
                                Time::from_secs(airtime).as_nanos(),
                                if mirror.is_some() { ", dsb mirror" } else { "" }
                            )
                        });
                    } else {
                        tag_stats.poll_losses[tag] += 1;
                        retry_packet(
                            &mut tags[tag],
                            tag_spec.max_retries,
                            tag_stats,
                            tele,
                            tag,
                            now,
                        );
                        mac_loop.as_mut().expect("closed loop").finish(tag);
                        trace.record(now, || {
                            format!(
                                "tag {tag} poll lost ({}, {} interferer(s))",
                                outcome.label(),
                                report.interferers.len()
                            )
                        });
                    }
                }
                EventKind::DownlinkEmission {
                    kind: DownlinkKind::Ack,
                    tag,
                    tx_id,
                    started: _,
                } => {
                    let now = event.at;
                    let report = medium.finish(tx_id);
                    let tag_spec = &scenario.tags[tag];
                    let carrier_idx = tag_spec.carrier;
                    let carrier_freq = scenario.carriers[carrier_idx].carrier_freq_hz();
                    let band = downlink_band(scenario, tuned_rx[tag], carrier_freq);
                    let outcome = receive_outcome(
                        links,
                        links.ack_budget(tag),
                        &report,
                        band,
                        Listener::Carrier(carrier_idx),
                        ext_occ[tuned_rx[tag]],
                        scenario.cts_to_self,
                        &mut carriers[carrier_idx].rng,
                    );
                    let poll_started = mac_loop.as_mut().expect("closed loop").finish(tag);
                    if outcome == RxOutcome::Delivered {
                        if let Some(packet) = tags[tag].queue.pop_front() {
                            let bits = tag_spec.phy.payload_bits(tag_spec.payload_bytes);
                            carriers[carrier_idx].sched.delivered(tag, bits);
                            tag_stats.delivered[tag] += 1;
                            tag_stats.delivered_bits[tag] += bits as u64;
                            tag_stats.transactions[tag] += 1;
                            let span = now.since(poll_started);
                            tag_stats.transaction_ns[tag] += span.as_nanos();
                            let latency = now.since(packet.arrived);
                            metrics.record_latency_ms(latency.as_secs() * 1e3);
                            metrics.record_transaction_ms(span.as_secs() * 1e3);
                            if tele.wants(TelemetryKind::Delivery) {
                                tele.emit(
                                    now,
                                    &TelemetryEvent::Delivery {
                                        tag,
                                        latency_ns: latency.as_nanos(),
                                        bits,
                                    },
                                );
                            }
                            if tele.wants(TelemetryKind::Transaction) {
                                tele.emit(
                                    now,
                                    &TelemetryEvent::Transaction {
                                        tag,
                                        span_ns: span.as_nanos(),
                                    },
                                );
                            }
                        }
                        trace.record(now, || {
                            format!(
                                "tag {tag} ack decoded (transaction complete in {} ns)",
                                now.since(poll_started).as_nanos()
                            )
                        });
                    } else {
                        tag_stats.ack_losses[tag] += 1;
                        retry_packet(
                            &mut tags[tag],
                            tag_spec.max_retries,
                            tag_stats,
                            tele,
                            tag,
                            now,
                        );
                        trace.record(now, || {
                            format!(
                                "tag {tag} ack lost ({}, {} interferer(s))",
                                outcome.label(),
                                report.interferers.len()
                            )
                        });
                    }
                }
                EventKind::TxEnd {
                    tag,
                    tx_id,
                    started,
                } => {
                    let now = event.at;
                    let report = medium.finish(tx_id);
                    airborne[tag] = false;
                    let tag_spec = &scenario.tags[tag];
                    let rx_idx = tuned_rx[tag];
                    let rx = &scenario.receivers[rx_idx];
                    tag_stats.attempts[tag] += 1;
                    if tele.wants(TelemetryKind::Attempt) {
                        tele.emit(now, &TelemetryEvent::Attempt { tag });
                    }

                    let own_carrier_freq = scenario.carriers[tag_spec.carrier].carrier_freq_hz();
                    let rx_band = Band::new(rx.center_freq_hz(own_carrier_freq), rx.bandwidth_hz());
                    let outcome = receive_outcome(
                        links,
                        links.budget(tag),
                        &report,
                        rx_band,
                        Listener::Receiver(rx_idx),
                        ext_occ[rx_idx],
                        scenario.cts_to_self,
                        &mut tags[tag].rng,
                    );
                    match outcome {
                        RxOutcome::Collision => tag_stats.collided[tag] += 1,
                        RxOutcome::External => tag_stats.external_collisions[tag] += 1,
                        RxOutcome::LinkLoss => tag_stats.link_losses[tag] += 1,
                        RxOutcome::Delivered => {}
                    }
                    if outcome != RxOutcome::Delivered && tele.wants(TelemetryKind::Loss) {
                        let loss = match outcome {
                            RxOutcome::Collision => LossKind::Collision,
                            RxOutcome::External => LossKind::External,
                            _ => LossKind::LinkBudget,
                        };
                        tele.emit(now, &TelemetryEvent::Loss { tag, loss });
                    }

                    let closed_loop_response = mac_loop
                        .as_ref()
                        .is_some_and(|m| m.phase(tag) == LoopPhase::Responding);
                    if closed_loop_response {
                        if outcome == RxOutcome::Delivered {
                            // The sink decoded the response: transmit the
                            // AM-OFDM ack one SIFS later. Acks ride SIFS
                            // priority, no carrier-sense.
                            let band = downlink_band(scenario, rx_idx, own_carrier_freq);
                            let ack_start = now.after_secs(mac::SIFS_S);
                            let ack_end = ack_start.after_secs(mac::ack_airtime_s());
                            let ack_tx =
                                medium.start(Emitter::Sink(rx_idx), band, None, now, ack_end);
                            charge_boundary(boundary, band, None, ack_end.since(now).as_secs());
                            mac_loop.as_mut().expect("closed loop").ack_started(tag);
                            queue.schedule(
                                ack_end,
                                EventKind::DownlinkEmission {
                                    kind: DownlinkKind::Ack,
                                    tag,
                                    tx_id: ack_tx,
                                    started: ack_start,
                                },
                            );
                            trace.record(now, || {
                                format!("tag {tag} response delivered; sink {rx_idx} ack start")
                            });
                        } else {
                            // The response never made it: the sink times
                            // out and the carrier will re-poll.
                            tag_stats.timeouts[tag] += 1;
                            retry_packet(
                                &mut tags[tag],
                                tag_spec.max_retries,
                                tag_stats,
                                tele,
                                tag,
                                now,
                            );
                            mac_loop.as_mut().expect("closed loop").finish(tag);
                            trace.record(now, || {
                                format!(
                                    "tag {tag} response lost ({}, started {} ns, \
                                     {} interferer(s)); sink timeout",
                                    outcome.label(),
                                    started.as_nanos(),
                                    report.interferers.len()
                                )
                            });
                        }
                    } else {
                        // Open loop: delivery is decided here.
                        if outcome == RxOutcome::Delivered {
                            if let Some(packet) = tags[tag].queue.pop_front() {
                                let bits = tag_spec.phy.payload_bits(tag_spec.payload_bytes);
                                carriers[tag_spec.carrier].sched.delivered(tag, bits);
                                tag_stats.delivered[tag] += 1;
                                tag_stats.delivered_bits[tag] += bits as u64;
                                let latency = now.since(packet.arrived);
                                metrics.record_latency_ms(latency.as_secs() * 1e3);
                                if tele.wants(TelemetryKind::Delivery) {
                                    tele.emit(
                                        now,
                                        &TelemetryEvent::Delivery {
                                            tag,
                                            latency_ns: latency.as_nanos(),
                                            bits,
                                        },
                                    );
                                }
                            }
                        } else {
                            retry_packet(
                                &mut tags[tag],
                                tag_spec.max_retries,
                                tag_stats,
                                tele,
                                tag,
                                now,
                            );
                        }
                        trace.record(now, || {
                            format!(
                                "tag {tag} tx end ({}, started {} ns, {} interferer(s))",
                                outcome.label(),
                                started.as_nanos(),
                                report.interferers.len()
                            )
                        });
                    }
                }
                EventKind::GhostStart { ghost } => {
                    let now = event.at;
                    let (band, end) = ghosts[ghost];
                    let source = ghost_source.expect("ghost window without a ghost source");
                    // Hidden, like a distant transmitter: invisible to the
                    // fleet's carrier-sense, but its power lands in the
                    // capture arbitration and the AP-side occupancy that
                    // sensing reads.
                    let tx_id =
                        medium.start_hidden(Emitter::External(source), band, None, now, end);
                    queue.schedule(end, EventKind::GhostEnd { ghost, tx_id });
                    trace.record(now, || {
                        format!(
                            "ghost window: {} ns foreign airtime on {} Hz",
                            end.since(now).as_nanos(),
                            band.center_hz as u64
                        )
                    });
                }
                EventKind::GhostEnd { ghost: _, tx_id } => {
                    // Like an external burst's end, the report is nobody's
                    // business: in-model victims collect it at their own
                    // finishes.
                    let _ = medium.finish(tx_id);
                }
            }
        }
        if let (Some(p), Some(tok)) = (prof.as_mut(), epoch_tok) {
            p.end(tok);
        }
    }

    /// Materialises the hot-path columns and the telemetry report into the
    /// public run result.
    pub(crate) fn finish(self) -> NetRunResult {
        let EngineCore {
            tag_stats,
            mut metrics,
            tele,
            progress,
            trace,
            mut prof,
            ..
        } = self;
        let fin_tok = prof.as_mut().map(|p| p.begin("finalize"));
        // Materialise the hot-path columns into the public row-per-tag
        // view before handing the metrics out.
        tag_stats.materialize_into(&mut metrics.tags);
        let telemetry = tele.finish(
            progress
                .map(ProgressRuntime::into_lines)
                .unwrap_or_default(),
        );
        if let (Some(p), Some(tok)) = (prof.as_mut(), fin_tok) {
            p.end(tok);
        }
        NetRunResult {
            metrics,
            trace,
            telemetry,
            prof: prof.map(CellProf::finish),
        }
    }
}

/// The mirror-copy band a double-sideband tag also occupies: the carrier's
/// reflection places the same modulation at `2·f_carrier − f_primary`
/// (§2.3.1). Single-sideband tags and card OOK (whose "primary" already
/// straddles the carrier) have none.
fn mirror_band(
    sideband: SidebandMode,
    phy: &NetPhy,
    carrier_freq_hz: f64,
    primary: Band,
) -> Option<Band> {
    match (sideband, phy) {
        (SidebandMode::Double, NetPhy::Wifi { .. } | NetPhy::Zigbee { .. }) => Some(Band::new(
            2.0 * carrier_freq_hz - primary.center_hz,
            primary.bandwidth_hz,
        )),
        _ => None,
    }
}

/// The band an AM-OFDM downlink frame addressed through sink `rx` occupies:
/// a full 802.11g transmission centred on that sink's band. `rx` is the
/// tag's *live* receiver assignment (re-striping can re-tune it).
fn downlink_band(scenario: &Scenario, rx: usize, carrier_freq_hz: f64) -> Band {
    let sink = &scenario.receivers[rx];
    Band::new(
        sink.center_freq_hz(carrier_freq_hz),
        AM_DOWNLINK_BANDWIDTH_HZ,
    )
}

/// Charges a double-sideband mirror copy's airtime to every receiver whose
/// channel it punctures (Fig. 12's coexistence cost). `own_rx` is the
/// emitting tag's live destination (exempt — the copy rides its own
/// packet), `carrier` its illuminator.
fn charge_mirror_airtime(
    scenario: &Scenario,
    metrics: &mut NetworkMetrics,
    own_rx: usize,
    carrier: usize,
    mirror: Option<Band>,
    airtime: f64,
) {
    let Some(m) = mirror else { return };
    let carrier_freq = scenario.carriers[carrier].carrier_freq_hz();
    for (r, rx) in scenario.receivers.iter().enumerate() {
        let rx_band = Band::new(rx.center_freq_hz(carrier_freq), rx.bandwidth_hz());
        if r != own_rx && m.overlaps(&rx_band) {
            metrics.mirror_airtime_s[r] += airtime;
        }
    }
}

/// One carrier slot's coexistence step: update the carrier's per-channel
/// EWMA busy estimates from the medium's receive-side load, record an
/// [`OccupancySample`] on the configured cadence, and — when a
/// [`crate::coex::ReStripe`] policy is attached — maybe re-tune the
/// carrier and its Wi-Fi tags to the least-occupied sub-band. Returns the
/// carrier's sensed occupancy on its own stripe (what
/// [`SlotView::occupancy`] exposes to the scheduler).
///
/// Re-striping is deterministic (no RNG), slot-aligned, hysteretic (an
/// occupancy threshold *and* a dwell time) and quiescent: a carrier with a
/// member mid-transmission or mid-transaction defers the move to a later
/// check, so no tag is ever re-tuned with an emission in flight.
#[allow(clippy::too_many_arguments)]
fn sense_and_restripe(
    cx: &mut CoexRuntime,
    scenario: &Scenario,
    carrier: usize,
    now: Time,
    carriers: &mut [CarrierState],
    links: &mut LinkMatrix,
    medium: &Medium,
    tuned_phy: &mut [NetPhy],
    tuned_rx: &mut [usize],
    airborne: &[bool],
    mac: Option<&MacLoop>,
    metrics: &mut NetworkMetrics,
    tag_stats: &TagTable,
    tele: &mut TelemetryRuntime,
    trace: &mut EventTrace,
) -> f64 {
    let CoexRuntime {
        config,
        rx_bands,
        wifi_rx,
        sense,
        sample_ns,
        ..
    } = cx;
    let sense = &mut sense[carrier];
    sense.slots = sense.slots.wrapping_add(1);
    let alpha = config.sense.ewma_alpha;
    for (r, band) in rx_bands.iter().enumerate() {
        let busy = if medium.occupied(*band, now) {
            1.0
        } else {
            0.0
        };
        sense.ewma[r] += alpha * (busy - sense.ewma[r]);
    }
    // The carrier's own channel: where its members actually deliver (in a
    // striped scenario that *is* the stripe's sink, before and after any
    // re-stripe; in an unstriped multi-AP ward — whose tags cycle the APs
    // while every `subband` sits at 0 — the first member's live sink is
    // the one whose load matters). Memberless carriers fall back to their
    // stripe's sink.
    let own_rx = carriers[carrier]
        .sched
        .members()
        .first()
        .map(|&t| tuned_rx[t])
        .unwrap_or_else(|| {
            if wifi_rx.is_empty() {
                0
            } else {
                wifi_rx[carriers[carrier].sched.subband().min(wifi_rx.len() - 1)]
            }
        });
    let occ = sense.ewma[own_rx];

    if now.since(sense.last_sample).as_nanos() >= *sample_ns {
        sense.last_sample = now;
        let (mut attempts, mut delivered) = (0u64, 0u64);
        for &t in carriers[carrier].sched.members() {
            attempts += tag_stats.attempts[t];
            delivered += tag_stats.delivered[t];
        }
        let subband = carriers[carrier].sched.subband();
        metrics.record_occupancy_sample(
            carrier,
            OccupancySample {
                at_s: now.as_secs(),
                subband,
                occupancy: occ,
                attempts: (attempts - sense.prev_attempts) as usize,
                delivered: (delivered - sense.prev_delivered) as usize,
            },
        );
        if tele.wants(TelemetryKind::Occupancy) {
            tele.emit(
                now,
                &TelemetryEvent::Occupancy {
                    carrier,
                    subband,
                    occupancy: occ,
                },
            );
        }
        sense.prev_attempts = attempts;
        sense.prev_delivered = delivered;
    }

    let Some(policy) = config.restripe else {
        return occ;
    };
    if wifi_rx.len() < 2 || sense.slots % policy.check_every_slots != 0 {
        return occ;
    }
    if now.since(sense.last_restripe).as_nanos() < Time::from_secs(policy.min_dwell_s).as_nanos() {
        return occ;
    }
    // The carrier's current stripe, derived from where its members
    // deliver (so an unstriped ward's channel-6 carriers are judged on
    // channel 6, not on the never-assigned subband 0). A carrier whose
    // own channel is not a Wi-Fi sink has nothing to re-stripe.
    let Some(cur) = wifi_rx.iter().position(|&r| r == own_rx) else {
        return occ;
    };
    let cur_occ = sense.ewma[own_rx];
    if cur_occ <= policy.high_occupancy {
        return occ;
    }
    // The least-occupied candidate stripe; ties break toward the lower
    // stripe index (strict `<` with an ascending scan).
    let (mut best, mut best_occ) = (cur, cur_occ);
    for (b, &r) in wifi_rx.iter().enumerate() {
        if sense.ewma[r] < best_occ {
            (best, best_occ) = (b, sense.ewma[r]);
        }
    }
    if best == cur || best_occ + policy.hysteresis >= cur_occ {
        return occ;
    }
    let members = carriers[carrier].sched.members();
    let quiescent = members
        .iter()
        .all(|&t| !airborne[t] && mac.is_none_or(|m| m.is_idle(t)));
    let any_wifi = members
        .iter()
        .any(|&t| matches!(tuned_phy[t], NetPhy::Wifi { .. }));
    if !quiescent || !any_wifi {
        return occ;
    }
    let to_rx = wifi_rx[best];
    let SinkKind::Wifi { channel } = scenario.receivers[to_rx].kind else {
        unreachable!("wifi_rx only holds Wi-Fi sinks");
    };
    let members: Vec<usize> = members.to_vec();
    for &t in &members {
        let NetPhy::Wifi { rate, .. } = tuned_phy[t] else {
            continue;
        };
        tuned_phy[t] = NetPhy::Wifi { rate, channel };
        tuned_rx[t] = to_rx;
        links.retune_tag(scenario, t, to_rx, tuned_phy[t]);
    }
    links.flush(scenario);
    carriers[carrier].sched.set_subband(best);
    sense.last_restripe = now;
    metrics.restripe_events.push(ReStripeEvent {
        at_s: now.as_secs(),
        carrier,
        from_subband: cur,
        to_subband: best,
    });
    if tele.wants(TelemetryKind::Restripe) {
        tele.emit(
            now,
            &TelemetryEvent::Restripe {
                carrier,
                from_subband: cur,
                to_subband: best,
            },
        );
    }
    let (from_pct, to_pct) = (
        (cur_occ * 100.0).round() as u64,
        (best_occ * 100.0).round() as u64,
    );
    trace.record(now, || {
        format!(
            "carrier {carrier} re-stripe: subband {cur} -> {best} \
             (occupancy {from_pct}% -> {to_pct}%)"
        )
    });
    sense.ewma[to_rx]
}

/// Arbitrates one reception in three stages, in order:
///
/// 1. in-model collision with capture — the signal survives if it
///    outpowers the summed interferers that actually land in the victim's
///    band by [`CAPTURE_MARGIN_DB`];
/// 2. collision with external (unmodelled) Wi-Fi traffic on the band,
///    tamed by the §2.3.3 reservation;
/// 3. the link budget itself (lognormal shadowing around the median).
#[allow(clippy::too_many_arguments)]
fn receive_outcome<R: Rng>(
    links: &LinkMatrix,
    budget: &LinkBudget,
    report: &TxReport,
    victim_band: Band,
    at: Listener,
    external_occupancy: f64,
    cts_to_self: bool,
    rng: &mut R,
) -> RxOutcome {
    let total_interference_mw: f64 = report
        .interferers
        .iter()
        .filter(|i| i.lands_in(&victim_band))
        .map(|i| 10f64.powf(links.power_dbm(i.who, at) / 10.0))
        .sum();
    let captured =
        budget.median_rssi_dbm >= 10.0 * total_interference_mw.log10() + CAPTURE_MARGIN_DB;
    if !report.interferers.is_empty() && !captured {
        // A failed capture with *only* coex emissions in the victim's band
        // is a loss to external traffic, not to the fleet's own contention
        // (an uncaptured reception always has at least one in-band
        // interferer, so `all` cannot be vacuous here).
        let all_external = report
            .interferers
            .iter()
            .filter(|i| i.lands_in(&victim_band))
            .all(|i| matches!(i.who, Emitter::External(_)));
        return if all_external {
            RxOutcome::External
        } else {
            RxOutcome::Collision
        };
    }
    let p_deliver = backscatter_delivery_probability(external_occupancy, cts_to_self);
    if rng.gen_range(0.0..1.0) >= p_deliver {
        return RxOutcome::External;
    }
    let (ok, _rssi) = budget.packet_outcome(rng);
    if ok {
        RxOutcome::Delivered
    } else {
        RxOutcome::LinkLoss
    }
}

/// Burns one retry on the packet at the head of `tag`'s queue, dropping it
/// once the retry budget is exhausted (the retry-exhaustion
/// [`TelemetryKind::Dropped`] emit site).
fn retry_packet(
    state: &mut TagState,
    max_retries: u32,
    tag_stats: &mut TagTable,
    tele: &mut TelemetryRuntime,
    tag: usize,
    now: Time,
) {
    if let Some(packet) = state.queue.front_mut() {
        packet.retries += 1;
        if packet.retries > max_retries {
            state.queue.pop_front();
            tag_stats.dropped[tag] += 1;
            if tele.wants(TelemetryKind::Dropped) {
                tele.emit(now, &TelemetryEvent::Dropped { tag });
            }
        }
    }
}

/// Accounts one granted carrier slot: hands the grant to the carrier's
/// scheduler (cursor/counter updates and the deadline check live there,
/// not in the engine) and records the scheduler-facing metrics — the
/// grant count, any deadline miss, and the head packet's poll latency
/// (how long it waited in queue before winning this slot). The grant is
/// also the [`TelemetryKind::Grant`] emit site and what feeds the
/// progress line's live P² poll-latency estimator.
#[allow(clippy::too_many_arguments)]
fn grant_slot(
    carrier: &mut CarrierState,
    carrier_idx: usize,
    tags: &[TagState],
    metrics: &mut NetworkMetrics,
    tag_stats: &mut TagTable,
    links: &LinkMatrix,
    tele: &mut TelemetryRuntime,
    progress: Option<&mut ProgressRuntime>,
    tag: usize,
    now: Time,
    occupancy: f64,
) {
    let head_arrived = tags[tag].queue.front().map(|p| p.arrived).unwrap_or(now);
    let missed = carrier.sched.granted(
        tag,
        head_arrived,
        &SlotView {
            now,
            links,
            occupancy,
        },
    );
    tag_stats.grants[tag] += 1;
    if missed {
        tag_stats.deadline_misses[tag] += 1;
    }
    let waited = now.since(head_arrived);
    metrics.record_poll_latency_ms(waited.as_secs() * 1e3);
    if tele.wants(TelemetryKind::Grant) {
        tele.emit(
            now,
            &TelemetryEvent::Grant {
                tag,
                carrier: carrier_idx,
                waited_ns: waited.as_nanos(),
            },
        );
    }
    if let Some(p) = progress {
        p.p2_poll_ms.add(waited.as_secs() * 1e3);
    }
}

/// An exponential inter-arrival draw with mean `1/rate_pps` seconds.
fn exponential_s<R: Rng>(rng: &mut R, rate_pps: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate_pps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{Bounds, MobilityModel, RandomWaypoint};
    use crate::scenario::Scenario;

    #[test]
    fn runs_and_delivers_traffic() {
        let scenario = Scenario::hospital_ward(12);
        let result = NetworkSim::new(&scenario, 7).run().unwrap();
        let m = &result.metrics;
        // ~12 tags × 2 pps × 10 s ≈ 240 offered packets.
        assert!(m.offered_packets() > 120, "offered {}", m.offered_packets());
        assert!(m.delivered_packets() > 0);
        assert!(m.throughput_bps() > 0.0);
        assert!(m.jain_fairness() > 0.0 && m.jain_fairness() <= 1.0);
        assert!(!result.trace.records().is_empty());
    }

    #[test]
    fn same_seed_reproduces_different_seed_diverges() {
        let scenario = Scenario::hospital_ward(8);
        let a = NetworkSim::new(&scenario, 99).run().unwrap();
        let b = NetworkSim::new(&scenario, 99).run().unwrap();
        assert_eq!(a.trace.to_bytes(), b.trace.to_bytes());
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
        let c = NetworkSim::new(&scenario, 100).run().unwrap();
        assert_ne!(a.trace.to_bytes(), c.trace.to_bytes());
    }

    #[test]
    fn trace_can_be_disabled() {
        let scenario = Scenario::contact_lens_fleet(6);
        let result = NetworkSim::new(&scenario, 3)
            .with_trace(false)
            .run()
            .unwrap();
        assert!(result.trace.records().is_empty());
        assert!(result.metrics.offered_packets() > 0);
    }

    #[test]
    fn contention_grows_with_fleet_size() {
        // More tags per carrier slot supply → lower delivery ratio.
        let small = NetworkSim::new(&Scenario::contact_lens_fleet(2), 5)
            .with_trace(false)
            .run()
            .unwrap();
        let mut big_scenario = Scenario::contact_lens_fleet(48);
        // Stress: one carrier only, so 48 tags share 100 slots/s.
        for tag in &mut big_scenario.tags {
            tag.carrier = 0;
        }
        big_scenario.carriers.truncate(1);
        let big = NetworkSim::new(&big_scenario, 5)
            .with_trace(false)
            .run()
            .unwrap();
        assert!(
            big.metrics.delivery_ratio() < small.metrics.delivery_ratio(),
            "small {} vs big {}",
            small.metrics.delivery_ratio(),
            big.metrics.delivery_ratio()
        );
        // Saturated carriers leave latency well above the idle case.
        let p50_small = small.metrics.latency_ms.median().unwrap_or(0.0);
        let p50_big = big.metrics.latency_ms.median().unwrap_or(f64::INFINITY);
        assert!(p50_big > p50_small, "latency {p50_small} vs {p50_big}");
    }

    #[test]
    fn card_room_runs_on_shared_spectrum() {
        let scenario = Scenario::card_to_card_room(9);
        let result = NetworkSim::new(&scenario, 11).run().unwrap();
        // All pairs share one band: carrier-slot scheduling must still
        // deliver most packets (one tx at a time).
        assert!(result.metrics.delivered_packets() > 0);
        assert!(
            result.metrics.per() < 0.5,
            "card room PER {}",
            result.metrics.per()
        );
    }

    #[test]
    fn zigbee_wing_delivers() {
        let scenario = Scenario::zigbee_wing(10);
        let result = NetworkSim::new(&scenario, 21)
            .with_trace(false)
            .run()
            .unwrap();
        assert!(result.metrics.delivered_packets() > 0);
    }

    #[test]
    fn closed_loop_completes_transactions() {
        for scenario in [
            Scenario::hospital_ward(10).closed_loop(),
            Scenario::contact_lens_fleet(8).closed_loop(),
            Scenario::card_to_card_room(4).closed_loop(),
            Scenario::zigbee_wing(8).closed_loop(),
        ] {
            let result = NetworkSim::new(&scenario, 13).run().unwrap();
            let m = &result.metrics;
            assert!(m.polls() > 0, "{}: no polls", scenario.name);
            assert!(
                m.completed_transactions() > 0,
                "{}: no completed transactions",
                scenario.name
            );
            assert_eq!(
                m.completed_transactions(),
                m.delivered_packets(),
                "{}: every delivery must ride a transaction",
                scenario.name
            );
            assert!(
                m.transaction_latency_ms.median().unwrap_or(0.0) > 0.0,
                "{}: transactions must take time",
                scenario.name
            );
            // The trace shows the full poll → backscatter → ack loop.
            let text = String::from_utf8(result.trace.to_bytes()).unwrap();
            assert!(text.contains("poll"), "{}: no polls traced", scenario.name);
            assert!(
                text.contains("backscatter response start"),
                "{}: no responses traced",
                scenario.name
            );
            assert!(
                text.contains("ack decoded (transaction complete"),
                "{}: no acks traced",
                scenario.name
            );
        }
    }

    #[test]
    fn closed_loop_accounting_is_conserved() {
        let scenario = Scenario::hospital_ward(16).closed_loop();
        let m = NetworkSim::new(&scenario, 4)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        for (t, stats) in m.tags.iter().enumerate() {
            // Every poll resolves as a loss, a timeout, an ack loss, a
            // completed transaction — or is still in flight at the horizon.
            let resolved =
                stats.poll_losses + stats.timeouts + stats.ack_losses + stats.transactions;
            assert!(
                stats.polls >= resolved && stats.polls <= resolved + 1,
                "tag {t}: polls {} vs resolved {resolved}",
                stats.polls
            );
            // Attempts are responses: only decoded polls backscatter.
            assert!(
                stats.attempts <= stats.polls - stats.poll_losses,
                "tag {t}: attempts {} polls {} losses {}",
                stats.attempts,
                stats.polls,
                stats.poll_losses
            );
        }
        // The loop costs airtime: some polls are lost to the downlink
        // margin or contention, so completion is below 1.
        assert!(m.transaction_completion_rate() <= 1.0);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let scenario = Scenario::hospital_ward(12).closed_loop();
        let a = NetworkSim::new(&scenario, 123).run().unwrap();
        let b = NetworkSim::new(&scenario, 123).run().unwrap();
        assert_eq!(a.trace.to_bytes(), b.trace.to_bytes());
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
        let c = NetworkSim::new(&scenario, 124).run().unwrap();
        assert_ne!(a.trace.to_bytes(), c.trace.to_bytes());
    }

    #[test]
    fn mobile_runs_are_deterministic_and_track_displacement() {
        let scenario = Scenario::ambulatory_ward(8);
        let a = NetworkSim::new(&scenario, 5).run().unwrap();
        let b = NetworkSim::new(&scenario, 5).run().unwrap();
        assert_eq!(a.trace.to_bytes(), b.trace.to_bytes());
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
        let c = NetworkSim::new(&scenario, 6).run().unwrap();
        assert_ne!(a.trace.to_bytes(), c.trace.to_bytes());

        let text = String::from_utf8(a.trace.to_bytes()).unwrap();
        assert!(text.contains("mobility tick"), "no ticks traced");
        // 10 s at a 100 ms tick: one PRR sample per tick per tag.
        assert!(
            a.metrics.mobility_series[0].len() >= 99,
            "samples {}",
            a.metrics.mobility_series[0].len()
        );
        // Patients actually walk: metres of displacement by the horizon.
        assert!(
            a.metrics.max_displacement_m() > 1.0,
            "max displacement {}",
            a.metrics.max_displacement_m()
        );
        // Worn carriers keep the illumination hop alive, so traffic still
        // flows while patients wander.
        assert!(a.metrics.delivered_packets() > 0);
    }

    #[test]
    fn walking_away_from_a_bedside_carrier_starves_the_uplink() {
        // Same ward, but the helpers stay at the bedside while the
        // patients walk: the carrier → tag hop collapses with distance and
        // delivery must fall well below the static ward's.
        let static_ward = Scenario::hospital_ward(10);
        let mobile_ward = Scenario::hospital_ward(10).with_mobility(MobilityConfig {
            model: MobilityModel::RandomWaypoint(RandomWaypoint {
                speed_min_mps: 0.8,
                speed_max_mps: 1.5,
                pause_s: 0.5,
            }),
            tick_interval_s: 0.1,
            bounds: Bounds::room(12.0, 9.0, 1.0),
            carriers_follow: false,
        });
        let fixed = NetworkSim::new(&static_ward, 11)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        let walking = NetworkSim::new(&mobile_ward, 11)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        assert!(fixed.mobility_series.iter().all(|s| s.is_empty()));
        assert!(
            walking.delivery_ratio() < fixed.delivery_ratio() - 0.2,
            "static {} vs walking {}",
            fixed.delivery_ratio(),
            walking.delivery_ratio()
        );
        // The PRR-vs-displacement series shows the same story: links near
        // the starting geometry beat links far from it.
        let near = walking.prr_in_displacement_band(0.0, 1.0);
        let far = walking.prr_in_displacement_band(3.0, f64::INFINITY);
        if let (Some((near_prr, _)), Some((far_prr, _))) = (near, far) {
            assert!(
                near_prr > far_prr,
                "near PRR {near_prr} vs far PRR {far_prr}"
            );
        } else {
            panic!("both displacement bands must see attempts: {near:?} vs {far:?}");
        }
    }

    #[test]
    fn closed_loop_survives_mobility() {
        let scenario = Scenario::ambulatory_ward(6).closed_loop();
        let result = NetworkSim::new(&scenario, 13).run().unwrap();
        let m = &result.metrics;
        assert!(m.polls() > 0);
        assert!(
            m.completed_transactions() > 0,
            "no transactions completed while walking"
        );
        assert_eq!(m.completed_transactions(), m.delivered_packets());
        assert!(m.max_displacement_m() > 1.0);
        // Determinism holds with the full poll/ack loop and mobility
        // interleaved.
        let replay = NetworkSim::new(&scenario, 13).run().unwrap();
        assert_eq!(result.trace.to_bytes(), replay.trace.to_bytes());
    }

    #[test]
    fn static_mobility_config_schedules_no_ticks() {
        let scenario = Scenario::hospital_ward(4).with_mobility(MobilityConfig {
            model: MobilityModel::Static,
            tick_interval_s: 0.1,
            bounds: Bounds::room(12.0, 9.0, 1.0),
            carriers_follow: false,
        });
        let result = NetworkSim::new(&scenario, 3).run().unwrap();
        let text = String::from_utf8(result.trace.to_bytes()).unwrap();
        assert!(!text.contains("mobility tick"));
        assert!(result.metrics.mobility_series.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn round_robin_reproduces_pre_extraction_traces() {
        // Digests captured from the engine *before* the scheduler was
        // extracted into `sched.rs` (commit e60cecf): the default
        // round-robin policy must keep producing these bytes, or the
        // extraction changed behaviour. (The constants assume the usual
        // glibc libm; a platform with a different `ln`/`log10` rounding
        // would shift them while same-binary determinism still holds.)
        let cases: [(&str, Scenario, u64, u64); 6] = [
            (
                "open ward",
                Scenario::hospital_ward(12),
                7,
                0x7FFE_41A8_87B8_D4D2,
            ),
            (
                "closed ward",
                Scenario::hospital_ward(10).closed_loop(),
                13,
                0xA9EF_B8C8_FD03_1709,
            ),
            (
                "mobile ward",
                Scenario::ambulatory_ward(8),
                5,
                0x55C3_1028_8FE0_2A99,
            ),
            (
                "mobile closed ward",
                Scenario::ambulatory_ward(6).closed_loop(),
                21,
                0x1F17_3B41_0172_34F0,
            ),
            (
                "card room",
                Scenario::card_to_card_room(6),
                11,
                0x4496_0DA0_D925_6BE8,
            ),
            (
                "zigbee wing",
                Scenario::zigbee_wing(10),
                3,
                0x2E0F_8E80_91EC_18D0,
            ),
        ];
        for (what, scenario, seed, expect) in cases {
            let result = NetworkSim::new(&scenario, seed).run().unwrap();
            let digest = result.trace.digest();
            assert_eq!(
                digest, expect,
                "{what}: trace digest {digest:#018X} != pre-extraction {expect:#018X}"
            );
        }
    }

    #[test]
    fn engine_core_swap_reproduces_pre_refactor_traces() {
        // Digests captured from the engine *before* the city-scale core
        // swap (binary-heap EventQueue → hierarchical timing wheel,
        // linear-scan medium → band-indexed emission set, AoS hot tables →
        // SoA): every preset across every axis — open/closed loop,
        // mobility, scheduling policies, sub-band striping, coexistence,
        // mid-run re-striping — must keep producing these exact bytes.
        // (Like the digests above, the constants assume the usual glibc
        // libm rounding.)
        use crate::coex::ReStripe;
        use crate::sched::SchedPolicy;
        let cases: Vec<(&str, Scenario, u64)> = vec![
            (
                "hospital_ward_12_open",
                Scenario::hospital_ward(12),
                0x90B0_EB83_F4F6_9E17,
            ),
            (
                "hospital_ward_12_closed",
                Scenario::hospital_ward(12).closed_loop(),
                0x6455_9DBC_CAF9_81EF,
            ),
            (
                "contact_lens_8_open",
                Scenario::contact_lens_fleet(8),
                0xEA8D_FD36_BBD3_8671,
            ),
            (
                "contact_lens_8_closed",
                Scenario::contact_lens_fleet(8).closed_loop(),
                0xC50B_2F9E_9D51_5AE2,
            ),
            (
                "card_room_6_open",
                Scenario::card_to_card_room(6),
                0x8792_1070_7FB0_CDCA,
            ),
            (
                "card_room_6_closed",
                Scenario::card_to_card_room(6).closed_loop(),
                0x071D_B96D_E091_78D4,
            ),
            (
                "zigbee_wing_10_open",
                Scenario::zigbee_wing(10),
                0x7A6B_6E55_5F1D_38AD,
            ),
            (
                "zigbee_wing_10_closed",
                Scenario::zigbee_wing(10).closed_loop(),
                0xEA04_B1B9_EB0D_F36D,
            ),
            (
                "ambulatory_8_open",
                Scenario::ambulatory_ward(8),
                0x479B_17BF_EC48_1775,
            ),
            (
                "ambulatory_8_closed",
                Scenario::ambulatory_ward(8).closed_loop(),
                0xFA55_BB09_E675_951E,
            ),
            (
                "walking_8",
                Scenario::walking_ward(8),
                0x575B_4B06_5573_0AC7,
            ),
            (
                "walking_8_margin",
                Scenario::walking_ward(8).with_scheduler(SchedPolicy::margin_aware()),
                0xF140_4873_4D67_7F54,
            ),
            (
                "congested_10_open",
                Scenario::congested_ward(10),
                0x3219_5606_8ED4_A18A,
            ),
            (
                "congested_10_restripe",
                Scenario::congested_ward(10).with_restripe(ReStripe::default()),
                0x0C1E_CF22_AA41_DFF3,
            ),
            (
                "congested_8_closed_restripe",
                Scenario::congested_ward(8)
                    .closed_loop()
                    .with_restripe(ReStripe::default()),
                0xB83F_C0B5_6039_5C1E,
            ),
            (
                "hospital_16_striped_pf",
                Scenario::hospital_ward(16)
                    .with_subband_striping()
                    .with_scheduler(SchedPolicy::proportional_fair()),
                0xDAC0_2872_E363_DFB1,
            ),
            (
                "hospital_12_constant_coex",
                Scenario::hospital_ward(12).with_constant_coex(),
                0x90B0_EB83_F4F6_9E17,
            ),
            (
                "hospital_12_deadline_closed",
                Scenario::hospital_ward(12)
                    .closed_loop()
                    .with_scheduler(SchedPolicy::deadline_aware()),
                0x6217_9E49_3798_3BEF,
            ),
        ];
        for (what, scenario, expect) in cases {
            let result = NetworkSim::new(&scenario, 42).run().unwrap();
            let digest = result.trace.digest();
            assert_eq!(
                digest, expect,
                "{what}: trace digest {digest:#018X} != pre-refactor {expect:#018X}"
            );
        }
    }

    #[test]
    fn every_policy_runs_and_is_deterministic() {
        use crate::sched::SchedPolicy;
        for policy in [
            SchedPolicy::RoundRobin,
            SchedPolicy::proportional_fair(),
            SchedPolicy::deadline_aware(),
            SchedPolicy::margin_aware(),
        ] {
            let scenario = Scenario::walking_ward(10)
                .closed_loop()
                .with_scheduler(policy);
            let a = NetworkSim::new(&scenario, 17).run().unwrap();
            let b = NetworkSim::new(&scenario, 17).run().unwrap();
            assert_eq!(
                a.trace.to_bytes(),
                b.trace.to_bytes(),
                "{}: same-seed traces must match",
                scenario.name
            );
            assert!(
                a.metrics.delivered_packets() > 0,
                "{}: nothing delivered",
                scenario.name
            );
            assert!(
                a.metrics.grants() >= a.metrics.polls(),
                "{}: every poll rides a grant",
                scenario.name
            );
        }
    }

    #[test]
    fn margin_aware_beats_round_robin_prr_on_the_walking_ward() {
        // The acceptance bar of the scheduler extraction: with live
        // margins from the mobility-refreshed LinkMatrix, skipping
        // mid-fade tags (starvation-bounded) must convert into a higher
        // packet reception ratio than blind rotation.
        let seed = 42;
        let rr = NetworkSim::new(&Scenario::walking_ward(12).closed_loop(), seed)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        let ma = NetworkSim::new(
            &Scenario::walking_ward(12)
                .closed_loop()
                .with_scheduler(crate::sched::SchedPolicy::margin_aware()),
            seed,
        )
        .with_trace(false)
        .run()
        .unwrap()
        .metrics;
        let (prr_rr, prr_ma) = (1.0 - rr.per(), 1.0 - ma.per());
        assert!(
            prr_ma > prr_rr + 0.1,
            "margin-aware PRR {prr_ma:.3} vs round-robin {prr_rr:.3}"
        );
        // The bound holds: every tag still got polled.
        assert!(
            ma.tags.iter().all(|t| t.grants > 0),
            "starvation bound must keep every tag polled"
        );
    }

    #[test]
    fn deadline_misses_surface_under_congestion() {
        let scenario = Scenario::walking_ward(12)
            .closed_loop()
            .with_scheduler(crate::sched::SchedPolicy::deadline_aware());
        let m = NetworkSim::new(&scenario, 42)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        assert!(m.grants() > 0);
        assert!(
            m.deadline_misses() > 0,
            "a congested walking ward must miss 50 ms deadlines"
        );
        assert!(m.deadline_miss_rate() > 0.0 && m.deadline_miss_rate() < 1.0);
        // Deadline-blind policies never report misses.
        let rr = NetworkSim::new(&Scenario::walking_ward(12).closed_loop(), 42)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        assert_eq!(rr.deadline_misses(), 0);
    }

    #[test]
    fn grants_feed_poll_latency_and_fairness() {
        let m = NetworkSim::new(&Scenario::hospital_ward(12), 7)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        // Open loop: every attempt was a granted slot.
        assert_eq!(m.grants(), m.attempts());
        assert_eq!(m.poll_latency_ms.samples().len(), m.grants());
        let fairness = m.grant_fairness();
        assert!(fairness > 0.0 && fairness <= 1.0, "fairness {fairness}");
        assert!(m.report().contains("scheduler:"), "{}", m.report());
    }

    #[test]
    fn subband_striping_separates_neighbouring_carriers() {
        let plain = Scenario::hospital_ward(12);
        let striped = Scenario::hospital_ward(12).with_subband_striping();
        striped.validate().unwrap();
        assert!(striped.name.ends_with("striped"));
        // Carriers stripe 0,1,2,0,… across the three APs and their tags
        // follow their carrier's stripe.
        for (c, carrier) in striped.carriers.iter().enumerate() {
            assert_eq!(carrier.subband, c % 3);
        }
        for tag in &striped.tags {
            assert_eq!(tag.receiver, striped.carriers[tag.carrier].subband);
        }
        // Both run; striping changes the channel map, hence the trace.
        let a = NetworkSim::new(&plain, 9).run().unwrap();
        let b = NetworkSim::new(&striped, 9).run().unwrap();
        assert!(b.metrics.delivered_packets() > 0);
        assert_ne!(a.trace.to_bytes(), b.trace.to_bytes());
    }

    #[test]
    fn constant_coex_reproduces_legacy_digests() {
        // The backward-compatibility contract of the coex refactor (same
        // style as the PR 4 scheduler extraction): a coex config whose
        // only sources are `CoexSource::Constant` scalars mirroring the
        // sinks' legacy `external_occupancy` must take the *same* RNG
        // draws through the same delivery-probability fold — and hence
        // reproduce the pre-coex trace digests byte for byte. The pinned
        // constants are the same ones `round_robin_reproduces_pre_extraction_traces`
        // carries from commit e60cecf.
        let cases: [(&str, Scenario, u64, u64); 2] = [
            (
                "open ward",
                Scenario::hospital_ward(12).with_constant_coex(),
                7,
                0x7FFE_41A8_87B8_D4D2,
            ),
            (
                "closed ward",
                Scenario::hospital_ward(10)
                    .closed_loop()
                    .with_constant_coex(),
                13,
                0xA9EF_B8C8_FD03_1709,
            ),
        ];
        for (what, scenario, seed, expect) in cases {
            assert!(scenario.coex.is_some());
            let result = NetworkSim::new(&scenario, seed).run().unwrap();
            let digest = result.trace.digest();
            assert_eq!(
                digest, expect,
                "{what}: constant-coex digest {digest:#018X} != legacy {expect:#018X}"
            );
        }
    }

    #[test]
    fn external_traffic_congests_the_hammered_stripe() {
        // The static-striping half of the acceptance bar: from t = 3 s a
        // hidden Wi-Fi transmitter hammers channel 6, so stripe-1 tags
        // keep transmitting (they cannot hear it) and lose captures at
        // their AP — external collisions, not fleet contention.
        let quiet = NetworkSim::new(&Scenario::hospital_ward(12).with_subband_striping(), 42)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        let congested = NetworkSim::new(&Scenario::congested_ward(12), 42)
            .run()
            .unwrap()
            .metrics;
        assert!(congested.external_emissions() > 100);
        assert!(congested.external_airtime_s() > 1.0);
        let ext: usize = congested.tags.iter().map(|t| t.external_collisions).sum();
        assert!(ext > 50, "external collisions {ext}");
        assert!(
            congested.per() > quiet.per() + 0.2,
            "PER quiet {:.3} vs congested {:.3}",
            quiet.per(),
            congested.per()
        );
        // The trace shows the external bursts.
        let result = NetworkSim::new(&Scenario::congested_ward(12), 42)
            .run()
            .unwrap();
        let text = String::from_utf8(result.trace.to_bytes()).unwrap();
        assert!(
            text.contains("coex wifi-bursty"),
            "no coex emissions traced"
        );
    }

    #[test]
    fn occupancy_sensing_tracks_the_hammered_channel() {
        // Carrier 1 sits on stripe 1 (channel 6, the hammered one),
        // carrier 0 on stripe 0 (channel 1): their sensed-occupancy series
        // must diverge once the hidden source switches on at t = 3 s.
        let m = NetworkSim::new(&Scenario::congested_ward(12), 42)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        let late_peak = |c: usize| -> f64 {
            m.occupancy_series[c]
                .iter()
                .filter(|s| s.at_s > 4.0)
                .map(|s| s.occupancy)
                .fold(0.0, f64::max)
        };
        assert!(late_peak(1) > 0.4, "hammered stripe peak {}", late_peak(1));
        assert!(late_peak(0) < 0.2, "quiet stripe peak {}", late_peak(0));
        // Before the source switches on, everyone is quiet.
        let early_peak = m.occupancy_series[1]
            .iter()
            .filter(|s| s.at_s < 2.9)
            .map(|s| s.occupancy)
            .fold(0.0, f64::max);
        assert!(early_peak < 0.1, "early peak {early_peak}");
        // The PRR-under-congestion readout orders the same way.
        let (quiet_prr, _) = m.prr_in_occupancy_band(0.0, 0.3).expect("quiet samples");
        let (busy_prr, _) = m
            .prr_in_occupancy_band(0.3, f64::INFINITY)
            .expect("busy samples");
        assert!(
            quiet_prr > busy_prr + 0.2,
            "PRR quiet {quiet_prr:.3} vs busy {busy_prr:.3}"
        );
    }

    #[test]
    fn sensing_follows_member_channels_without_striping() {
        use crate::coex::{CoexConfig, CoexSource, ReStripe};
        // In the *unstriped* ward every carrier's `subband` is 0 while its
        // tags cycle the three APs — sensing must read the channel the
        // members actually deliver on, not the never-assigned stripe.
        // Carrier 2's first member (tag 4) delivers to the channel-6 AP;
        // carrier 0's (tag 0) to channel 1.
        let hammered = Scenario::hospital_ward(12).with_coex(CoexConfig::with_sources(vec![
            CoexSource::hidden_wifi(Position::new(6.0, 8.0, 2.0), 6, 0.6),
        ]));
        let m = NetworkSim::new(&hammered, 42)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        assert!(
            m.peak_occupancy(2).unwrap() > 0.4,
            "channel-6 carrier sensed {:?}",
            m.peak_occupancy(2)
        );
        assert!(
            m.peak_occupancy(0).unwrap() < 0.2,
            "channel-1 carrier sensed {:?}",
            m.peak_occupancy(0)
        );
        // And re-striping keys on the same member-derived channel: the
        // channel-6 carriers escape even though their subband was 0.
        let adaptive = NetworkSim::new(&hammered.with_restripe(ReStripe::default()), 42)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        assert!(adaptive.restripes() > 0, "no re-stripes fired");
        assert!(adaptive
            .restripe_events
            .iter()
            .all(|e| e.from_subband == 1 && e.to_subband != 1));
    }

    #[test]
    fn coex_activity_window_clips_emissions() {
        use crate::coex::{CoexConfig, CoexSource};
        // A source windowed to [1 s, 2 s) must put airtime on the medium
        // inside the window and none after it — even when a burst is
        // drawn just before the edge (emissions clip at stop_s).
        let mut scenario = Scenario::hospital_ward(4).with_coex(CoexConfig::with_sources(vec![
            CoexSource::hidden_wifi(Position::new(6.0, 8.0, 2.0), 6, 0.6).active(1.0, 2.0),
        ]));
        scenario.duration_s = 4.0;
        let result = NetworkSim::new(&scenario, 5).run().unwrap();
        let m = &result.metrics;
        assert!(
            m.coex_emissions[0] > 20,
            "emissions {}",
            m.coex_emissions[0]
        );
        assert!(
            m.coex_airtime_s[0] > 0.3 && m.coex_airtime_s[0] <= 1.0 + 1e-9,
            "airtime {} outside the 1 s window",
            m.coex_airtime_s[0]
        );
        // No trace line of an external burst at or past the stop instant.
        let text = String::from_utf8(result.trace.to_bytes()).unwrap();
        for line in text.lines().filter(|l| l.contains("coex wifi-bursty")) {
            let ns: u64 = line[1..13].trim().parse().unwrap();
            assert!(ns < 2_000_000_000, "burst started at {ns} ns");
        }
    }

    #[test]
    fn adaptive_restriping_beats_static_on_the_congested_ward() {
        // The acceptance bar of this PR, pinned at a fixed seed: with the
        // default ReStripe policy the stripe-1 carriers sense the spike,
        // re-tune themselves and their tags to the quietest sub-band, and
        // convert the escape into a large PRR uplift over static striping.
        let seed = 42;
        let fixed = NetworkSim::new(&Scenario::congested_ward(12), seed)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        let scenario = Scenario::congested_ward(12).with_restripe(crate::coex::ReStripe::default());
        let result = NetworkSim::new(&scenario, seed).run().unwrap();
        let adaptive = &result.metrics;
        let (prr_fixed, prr_adaptive) = (1.0 - fixed.per(), 1.0 - adaptive.per());
        assert!(
            prr_adaptive > prr_fixed + 0.2,
            "adaptive PRR {prr_adaptive:.3} vs static {prr_fixed:.3}"
        );
        // Both stripe-1 carriers re-tuned, shortly after the spike began,
        // and the decisions are trace-visible.
        assert!(
            adaptive.restripes() >= 2,
            "re-stripes {}",
            adaptive.restripes()
        );
        for e in &adaptive.restripe_events {
            assert!(e.at_s >= 3.0, "re-stripe before the spike at {} s", e.at_s);
            assert_eq!(e.from_subband, 1, "only the hammered stripe moves");
            assert_ne!(e.to_subband, 1);
        }
        let text = String::from_utf8(result.trace.to_bytes()).unwrap();
        assert!(
            text.contains("re-stripe: subband 1 ->"),
            "no re-stripe traced"
        );
        // Determinism holds across the mid-run re-stripe.
        let replay = NetworkSim::new(&scenario, seed).run().unwrap();
        assert_eq!(result.trace.to_bytes(), replay.trace.to_bytes());
    }

    #[test]
    fn csma_coex_sources_defer_to_the_fleet() {
        use crate::coex::{CoexConfig, CoexSource};
        // A well-behaved neighbour AP on the lens fleet's only channel:
        // heavy load means it keeps bumping into the fleet's emissions and
        // NAV reservations, deferring with a backoff each time.
        let scenario = Scenario::contact_lens_fleet(8).with_coex(CoexConfig::with_sources(vec![
            CoexSource::wifi_neighbor(Position::new(1.5, 1.5, 2.0), 11, 0.5),
        ]));
        let m = NetworkSim::new(&scenario, 9)
            .with_trace(false)
            .run()
            .unwrap()
            .metrics;
        assert!(m.external_emissions() > 50);
        let defers: usize = m.coex_defers.iter().sum();
        assert!(defers > 0, "a CSMA source must defer sometimes");
        // The fleet's carrier-sense hears the visible neighbour too.
        let fleet_defers: usize = m.tags.iter().map(|t| t.csma_defers).sum();
        assert!(fleet_defers > 0, "the fleet must defer to visible bursts");
    }

    #[test]
    fn every_generator_kind_runs_deterministically() {
        use crate::coex::{CoexConfig, CoexSource};
        let config = CoexConfig::with_sources(vec![
            CoexSource::wifi_neighbor(Position::new(6.0, 8.0, 2.0), 6, 0.2),
            CoexSource::hidden_wifi(Position::new(2.0, 8.0, 2.0), 1, 0.1),
            CoexSource::ble_beacon(Position::new(0.5, 0.5, 1.0), 0.05),
            CoexSource::zigbee_neighbor(Position::new(11.0, 1.0, 1.0), 17, 30.0),
            CoexSource::microwave_oven(Position::new(11.5, 8.5, 1.0)),
            CoexSource::constant(2, 0.1),
        ]);
        for scenario in [
            Scenario::hospital_ward(10).with_coex(config.clone()),
            Scenario::hospital_ward(10)
                .closed_loop()
                .with_coex(config.clone()),
        ] {
            let a = NetworkSim::new(&scenario, 31).run().unwrap();
            let b = NetworkSim::new(&scenario, 31).run().unwrap();
            assert_eq!(
                a.trace.to_bytes(),
                b.trace.to_bytes(),
                "{}: same-seed coex traces must match",
                scenario.name
            );
            let c = NetworkSim::new(&scenario, 32).run().unwrap();
            assert_ne!(a.trace.to_bytes(), c.trace.to_bytes());
            // All four emitting kinds actually emitted (the constant is
            // silent by design).
            for k in 0..5 {
                assert!(
                    a.metrics.coex_emissions[k] > 0,
                    "{}: source {k} never emitted",
                    scenario.name
                );
            }
            assert_eq!(a.metrics.coex_emissions[5], 0, "constants are silent");
            assert!(a.metrics.delivered_packets() > 0);
        }
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = rand::derive_stream_seed(1, 1, 0);
        let b = rand::derive_stream_seed(1, 1, 1);
        let c = rand::derive_stream_seed(1, 2, 0);
        let d = rand::derive_stream_seed(2, 1, 0);
        assert!(a != b && a != c && a != d && b != c);
    }
}
