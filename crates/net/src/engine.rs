//! The discrete-event simulation loop.
//!
//! One [`NetworkSim`] owns the event queue, the medium, the link matrix
//! and every entity's runtime state (packet queues, round-robin cursors,
//! per-entity RNG streams). Determinism comes from three rules:
//!
//! 1. time is integer nanoseconds and event ties resolve by scheduling
//!    order ([`crate::event::EventQueue`]);
//! 2. every random draw comes from the RNG of the entity the event
//!    belongs to, seeded from `(scenario seed, entity kind, entity
//!    index)` — never from a shared stream whose consumption order could
//!    drift;
//! 3. entity iteration is always by index.

use crate::entities::NetPhy;
use crate::event::{EventKind, EventQueue, EventTrace};
use crate::links::LinkMatrix;
use crate::medium::{Band, Medium};
use crate::metrics::NetworkMetrics;
use crate::scenario::Scenario;
use crate::time::Time;
use crate::NetError;
use interscatter_backscatter::tag::SidebandMode;
use interscatter_sim::mac::backscatter_delivery_probability;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// How much stronger than the sum of its interferers a packet must be at
/// its receiver to survive a collision (capture effect), dB.
pub const CAPTURE_MARGIN_DB: f64 = 10.0;

/// A packet waiting in a tag's queue.
#[derive(Debug, Clone, Copy)]
struct QueuedPacket {
    arrived: Time,
    retries: u32,
}

/// Runtime state of one tag.
#[derive(Debug)]
struct TagState {
    queue: VecDeque<QueuedPacket>,
    rng: SmallRng,
}

/// Runtime state of one carrier.
#[derive(Debug)]
struct CarrierState {
    /// Tags assigned to this carrier, in index order.
    members: Vec<usize>,
    /// Round-robin cursor into `members`.
    cursor: usize,
    rng: SmallRng,
}

/// The result of one run: metrics plus (optionally) the full event trace.
#[derive(Debug, Clone)]
pub struct NetRunResult {
    /// Aggregated counters and distributions.
    pub metrics: NetworkMetrics,
    /// The event trace (empty if tracing was disabled).
    pub trace: EventTrace,
}

/// A configured simulation, ready to run.
#[derive(Debug, Clone)]
pub struct NetworkSim<'a> {
    scenario: &'a Scenario,
    seed: u64,
    record_trace: bool,
}

impl<'a> NetworkSim<'a> {
    /// Prepares a run of `scenario` with the given seed. Tracing is on by
    /// default; disable it with [`NetworkSim::with_trace`] for large
    /// Monte-Carlo sweeps.
    pub fn new(scenario: &'a Scenario, seed: u64) -> Self {
        NetworkSim {
            scenario,
            seed,
            record_trace: true,
        }
    }

    /// Enables or disables event-trace recording.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Runs the simulation to its horizon.
    pub fn run(self) -> Result<NetRunResult, NetError> {
        let scenario = self.scenario;
        scenario.validate()?;
        let links = LinkMatrix::build(scenario)?;
        let horizon = Time::from_secs(scenario.duration_s);

        let mut queue = EventQueue::new();
        let mut medium = Medium::new();
        let mut trace = EventTrace::new(self.record_trace);
        let mut metrics = NetworkMetrics::new(
            scenario.tags.len(),
            scenario.receivers.len(),
            scenario.duration_s,
        );
        let mut tags: Vec<TagState> = (0..scenario.tags.len())
            .map(|t| TagState {
                queue: VecDeque::new(),
                rng: SmallRng::seed_from_u64(derive_seed(self.seed, 1, t)),
            })
            .collect();
        let mut carriers: Vec<CarrierState> = (0..scenario.carriers.len())
            .map(|c| CarrierState {
                members: scenario
                    .tags
                    .iter()
                    .enumerate()
                    .filter(|(_, tag)| tag.carrier == c)
                    .map(|(t, _)| t)
                    .collect(),
                cursor: 0,
                rng: SmallRng::seed_from_u64(derive_seed(self.seed, 2, c)),
            })
            .collect();

        // Prime the queue: first packet arrival per tag, first slot per
        // carrier (staggered within one interval so co-located carriers do
        // not fire in lockstep), and the horizon.
        for (t, state) in tags.iter_mut().enumerate() {
            let dt = exponential_s(&mut state.rng, scenario.tags[t].arrival_rate_pps);
            queue.schedule(
                Time::ZERO.after_secs(dt),
                EventKind::PacketArrival { tag: t },
            );
        }
        for (c, state) in carriers.iter_mut().enumerate() {
            let offset = state
                .rng
                .gen_range(0.0..scenario.carriers[c].slot_interval_s);
            queue.schedule(
                Time::ZERO.after_secs(offset),
                EventKind::CarrierSlot { carrier: c },
            );
        }
        queue.schedule(horizon, EventKind::Horizon);

        while let Some(event) = queue.pop() {
            match event.kind {
                EventKind::Horizon => break,
                EventKind::PacketArrival { tag } => {
                    let now = event.at;
                    let rate = scenario.tags[tag].arrival_rate_pps;
                    let state = &mut tags[tag];
                    metrics.tags[tag].offered += 1;
                    if state.queue.len() < scenario.max_queue {
                        state.queue.push_back(QueuedPacket {
                            arrived: now,
                            retries: 0,
                        });
                        let depth = state.queue.len();
                        trace.record(now, || format!("tag {tag} arrival (queue {depth})"));
                    } else {
                        metrics.tags[tag].dropped += 1;
                        trace.record(now, || format!("tag {tag} arrival dropped (queue full)"));
                    }
                    let dt = exponential_s(&mut state.rng, rate);
                    queue.schedule(now.after_secs(dt), EventKind::PacketArrival { tag });
                }
                EventKind::CarrierSlot { carrier } => {
                    let now = event.at;
                    let spec = &scenario.carriers[carrier];
                    queue.schedule(
                        now.after_secs(spec.slot_interval_s),
                        EventKind::CarrierSlot { carrier },
                    );
                    let Some(tag) = next_backlogged_tag(&carriers[carrier], &tags) else {
                        continue;
                    };
                    let tag_spec = &scenario.tags[tag];
                    let airtime = tag_spec.phy.airtime_s(tag_spec.payload_bytes);
                    let carrier_freq = spec.carrier_freq_hz();
                    let primary = Band::new(
                        tag_spec.phy.center_freq_hz(carrier_freq),
                        tag_spec.phy.bandwidth_hz(),
                    );
                    if medium.busy(primary, now) {
                        metrics.tags[tag].csma_defers += 1;
                        trace.record(now, || {
                            format!("carrier {carrier} slot: tag {tag} defers (band busy)")
                        });
                        continue;
                    }
                    // Grant: advance the round-robin cursor past this tag.
                    advance_cursor(&mut carriers[carrier], tag);
                    let end = now.after_secs(airtime);
                    if scenario.cts_to_self {
                        // The §2.3.3 NAV covers the inter-channel gaps
                        // around the packet, so it outlives the emission
                        // itself and keeps other tags off the band while
                        // the next trigger is being set up.
                        let nav = interscatter_ble::timing::reservation_window_s(airtime);
                        medium.reserve(primary, now.after_secs(nav));
                    }
                    let mirror =
                        mirror_band(tag_spec.sideband, &tag_spec.phy, carrier_freq, primary);
                    if let Some(m) = mirror {
                        // Charge the mirror copy's airtime to every
                        // receiver whose channel it punctures (Fig. 12's
                        // coexistence cost).
                        for (r, rx) in scenario.receivers.iter().enumerate() {
                            let rx_band =
                                Band::new(rx.center_freq_hz(carrier_freq), rx.bandwidth_hz());
                            if r != tag_spec.receiver && m.overlaps(&rx_band) {
                                metrics.mirror_airtime_s[r] += airtime;
                            }
                        }
                    }
                    let tx_id = medium.start(tag, primary, mirror, now, end);
                    queue.schedule(
                        end,
                        EventKind::TxEnd {
                            tag,
                            tx_id,
                            started: now,
                        },
                    );
                    trace.record(now, || {
                        format!(
                            "carrier {carrier} slot: tag {tag} tx start ({} ns airtime{})",
                            Time::from_secs(airtime).as_nanos(),
                            if mirror.is_some() { ", dsb mirror" } else { "" }
                        )
                    });
                }
                EventKind::TxEnd {
                    tag,
                    tx_id,
                    started,
                } => {
                    let now = event.at;
                    let report = medium.finish(tx_id);
                    let tag_spec = &scenario.tags[tag];
                    let rx = &scenario.receivers[tag_spec.receiver];
                    let budget = links.budget(tag);
                    metrics.tags[tag].attempts += 1;

                    // 1. Tag-to-tag (or mirror-copy) collision, with
                    //    capture: the packet survives if it outpowers the
                    //    summed overlapping emissions at ITS receiver by
                    //    the capture margin. Only interferers whose bands
                    //    actually land in this tag's receiver channel
                    //    count — an overlap recorded on the *interferer's*
                    //    side of the spectrum (e.g. our mirror copy hit
                    //    them) does not corrupt our own reception.
                    let own_carrier_freq = scenario.carriers[tag_spec.carrier].carrier_freq_hz();
                    let rx_band = Band::new(rx.center_freq_hz(own_carrier_freq), rx.bandwidth_hz());
                    let total_interference_mw: f64 = report
                        .interferers
                        .iter()
                        .filter(|&&other| {
                            let o_spec = &scenario.tags[other];
                            let o_carrier = scenario.carriers[o_spec.carrier].carrier_freq_hz();
                            let o_primary = Band::new(
                                o_spec.phy.center_freq_hz(o_carrier),
                                o_spec.phy.bandwidth_hz(),
                            );
                            o_primary.overlaps(&rx_band)
                                || mirror_band(o_spec.sideband, &o_spec.phy, o_carrier, o_primary)
                                    .is_some_and(|m| m.overlaps(&rx_band))
                        })
                        .map(|&other| {
                            10f64.powf(links.interference_dbm(other, tag_spec.receiver) / 10.0)
                        })
                        .sum();
                    let captured = budget.median_rssi_dbm
                        >= 10.0 * total_interference_mw.log10() + CAPTURE_MARGIN_DB;
                    let outcome = if !report.interferers.is_empty() && !captured {
                        metrics.tags[tag].collided += 1;
                        "collision"
                    } else {
                        // 2. Collision with external (unmodelled) Wi-Fi
                        //    traffic on the receiver's channel, tamed by
                        //    the §2.3.3 reservation.
                        let p_deliver = backscatter_delivery_probability(
                            rx.external_occupancy,
                            scenario.cts_to_self,
                        );
                        let external_hit = tags[tag].rng.gen_range(0.0..1.0) >= p_deliver;
                        if external_hit {
                            metrics.tags[tag].external_collisions += 1;
                            "external collision"
                        } else {
                            // 3. The link budget itself.
                            let (ok, _rssi) = budget.packet_outcome(&mut tags[tag].rng);
                            if !ok {
                                metrics.tags[tag].link_losses += 1;
                                "link loss"
                            } else {
                                "delivered"
                            }
                        }
                    };

                    let state = &mut tags[tag];
                    if outcome == "delivered" {
                        if let Some(packet) = state.queue.pop_front() {
                            metrics.tags[tag].delivered += 1;
                            metrics.tags[tag].delivered_bits +=
                                tag_spec.phy.payload_bits(tag_spec.payload_bytes);
                            let latency_ms = now.since(packet.arrived).as_secs() * 1e3;
                            metrics.latency_ms.push(latency_ms);
                        }
                    } else if let Some(packet) = state.queue.front_mut() {
                        packet.retries += 1;
                        if packet.retries > tag_spec.max_retries {
                            state.queue.pop_front();
                            metrics.tags[tag].dropped += 1;
                        }
                    }
                    trace.record(now, || {
                        format!(
                            "tag {tag} tx end ({outcome}, started {} ns, {} interferer(s))",
                            started.as_nanos(),
                            report.interferers.len()
                        )
                    });
                }
            }
        }

        Ok(NetRunResult { metrics, trace })
    }
}

/// The mirror-copy band a double-sideband tag also occupies: the carrier's
/// reflection places the same modulation at `2·f_carrier − f_primary`
/// (§2.3.1). Single-sideband tags and card OOK (whose "primary" already
/// straddles the carrier) have none.
fn mirror_band(
    sideband: SidebandMode,
    phy: &NetPhy,
    carrier_freq_hz: f64,
    primary: Band,
) -> Option<Band> {
    match (sideband, phy) {
        (SidebandMode::Double, NetPhy::Wifi { .. } | NetPhy::Zigbee { .. }) => Some(Band::new(
            2.0 * carrier_freq_hz - primary.center_hz,
            primary.bandwidth_hz,
        )),
        _ => None,
    }
}

/// Picks the next member tag (round-robin from the cursor) with queued
/// traffic.
fn next_backlogged_tag(carrier: &CarrierState, tags: &[TagState]) -> Option<usize> {
    let n = carrier.members.len();
    (0..n)
        .map(|k| carrier.members[(carrier.cursor + k) % n.max(1)])
        .find(|&t| !tags[t].queue.is_empty())
}

/// Moves the round-robin cursor to the member after `granted`.
fn advance_cursor(carrier: &mut CarrierState, granted: usize) {
    if let Some(pos) = carrier.members.iter().position(|&t| t == granted) {
        carrier.cursor = (pos + 1) % carrier.members.len();
    }
}

/// An exponential inter-arrival draw with mean `1/rate_pps` seconds.
fn exponential_s<R: Rng>(rng: &mut R, rate_pps: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate_pps
}

/// Mixes a scenario seed with an entity's kind and index into an
/// independent stream seed (SplitMix64-style finalizer).
pub(crate) fn derive_seed(base: u64, stream: u64, index: usize) -> u64 {
    let mut z = base
        .wrapping_add(stream.wrapping_mul(0xD6E8_FEB8_6659_FD93))
        .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn runs_and_delivers_traffic() {
        let scenario = Scenario::hospital_ward(12);
        let result = NetworkSim::new(&scenario, 7).run().unwrap();
        let m = &result.metrics;
        // ~12 tags × 2 pps × 10 s ≈ 240 offered packets.
        assert!(m.offered_packets() > 120, "offered {}", m.offered_packets());
        assert!(m.delivered_packets() > 0);
        assert!(m.throughput_bps() > 0.0);
        assert!(m.jain_fairness() > 0.0 && m.jain_fairness() <= 1.0);
        assert!(!result.trace.records().is_empty());
    }

    #[test]
    fn same_seed_reproduces_different_seed_diverges() {
        let scenario = Scenario::hospital_ward(8);
        let a = NetworkSim::new(&scenario, 99).run().unwrap();
        let b = NetworkSim::new(&scenario, 99).run().unwrap();
        assert_eq!(a.trace.to_bytes(), b.trace.to_bytes());
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
        let c = NetworkSim::new(&scenario, 100).run().unwrap();
        assert_ne!(a.trace.to_bytes(), c.trace.to_bytes());
    }

    #[test]
    fn trace_can_be_disabled() {
        let scenario = Scenario::contact_lens_fleet(6);
        let result = NetworkSim::new(&scenario, 3)
            .with_trace(false)
            .run()
            .unwrap();
        assert!(result.trace.records().is_empty());
        assert!(result.metrics.offered_packets() > 0);
    }

    #[test]
    fn contention_grows_with_fleet_size() {
        // More tags per carrier slot supply → lower delivery ratio.
        let small = NetworkSim::new(&Scenario::contact_lens_fleet(2), 5)
            .with_trace(false)
            .run()
            .unwrap();
        let mut big_scenario = Scenario::contact_lens_fleet(48);
        // Stress: one carrier only, so 48 tags share 100 slots/s.
        for tag in &mut big_scenario.tags {
            tag.carrier = 0;
        }
        big_scenario.carriers.truncate(1);
        let big = NetworkSim::new(&big_scenario, 5)
            .with_trace(false)
            .run()
            .unwrap();
        assert!(
            big.metrics.delivery_ratio() < small.metrics.delivery_ratio(),
            "small {} vs big {}",
            small.metrics.delivery_ratio(),
            big.metrics.delivery_ratio()
        );
        // Saturated carriers leave latency well above the idle case.
        let p50_small = small.metrics.latency_ms.median().unwrap_or(0.0);
        let p50_big = big.metrics.latency_ms.median().unwrap_or(f64::INFINITY);
        assert!(p50_big > p50_small, "latency {p50_small} vs {p50_big}");
    }

    #[test]
    fn card_room_runs_on_shared_spectrum() {
        let scenario = Scenario::card_to_card_room(9);
        let result = NetworkSim::new(&scenario, 11).run().unwrap();
        // All pairs share one band: carrier-slot scheduling must still
        // deliver most packets (one tx at a time).
        assert!(result.metrics.delivered_packets() > 0);
        assert!(
            result.metrics.per() < 0.5,
            "card room PER {}",
            result.metrics.per()
        );
    }

    #[test]
    fn zigbee_wing_delivers() {
        let scenario = Scenario::zigbee_wing(10);
        let result = NetworkSim::new(&scenario, 21)
            .with_trace(false)
            .run()
            .unwrap();
        assert!(result.metrics.delivered_packets() > 0);
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(1, 1, 0);
        let b = derive_seed(1, 1, 1);
        let c = derive_seed(1, 2, 0);
        let d = derive_seed(2, 1, 0);
        assert!(a != b && a != c && a != d && b != c);
    }
}
