//! The three entity kinds of a network scenario: carriers, tags and
//! receivers, plus the geometry and PHY descriptors they share.

use interscatter_backscatter::tag::SidebandMode;
use interscatter_ble::channels::{wifi_channel_freq_hz, zigbee_channel_freq_hz, BleChannel};
use interscatter_channel::antenna::Antenna;
use interscatter_channel::noise::NoiseModel;
use interscatter_channel::tissue::TissuePath;
use interscatter_dsp::Cplx;
use interscatter_wifi::dot11b::rates::SHORT_PLCP_DURATION_S;
use interscatter_wifi::dot11b::DsssRate;

/// A point in the scenario's coordinate system, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East, metres.
    pub x: f64,
    /// North, metres.
    pub y: f64,
    /// Up, metres.
    pub z: f64,
}

impl Position {
    /// Builds a position from coordinates in metres.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Position { x, y, z }
    }

    /// Euclidean distance to `other`, metres (floored at 1 cm so link
    /// budgets never divide by zero).
    pub fn distance_m(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt().max(0.01)
    }
}

/// The antenna/tissue package a tag is built into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagProfile {
    /// Bench prototype: 2 dBi monopole, no tissue (Fig. 10).
    Bench,
    /// Smart contact lens: 1 cm loop in lens solution (§5.1).
    ContactLens,
    /// Implanted neural recorder: 4 cm loop under muscle (§5.2).
    NeuralImplant,
    /// Credit-card form factor: printed antenna, no tissue (§5.3).
    Card,
}

impl TagProfile {
    /// The tag's antenna.
    pub fn antenna(&self) -> Antenna {
        match self {
            TagProfile::Bench => Antenna::monopole_2dbi(),
            TagProfile::ContactLens => Antenna::contact_lens_loop(),
            TagProfile::NeuralImplant => Antenna::implant_loop(),
            TagProfile::Card => Antenna {
                name: "card antenna",
                gain_dbi: 1.0,
                efficiency: 0.7,
                mismatch_loss_db: 1.0,
                impedance: Cplx::real(50.0),
            },
        }
    }

    /// The tissue covering the tag, traversed on both hops.
    pub fn tissue(&self) -> TissuePath {
        match self {
            TagProfile::Bench | TagProfile::Card => TissuePath::new(),
            TagProfile::ContactLens => TissuePath::contact_lens(),
            TagProfile::NeuralImplant => TissuePath::neural_implant(),
        }
    }
}

/// The packet format a tag synthesizes on the air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetPhy {
    /// 802.11b DSSS/CCK on the given Wi-Fi channel (1–13).
    Wifi {
        /// DSSS/CCK rate of the synthesized packets.
        rate: DsssRate,
        /// Wi-Fi channel number the packets land on.
        channel: u8,
    },
    /// IEEE 802.15.4 O-QPSK on the given ZigBee channel (11–26).
    Zigbee {
        /// ZigBee channel number the packets land on.
        channel: u8,
    },
    /// Card-to-card on-off keying of the carrier tone itself (§5.3): no
    /// frequency shift, decoded by a peer card's envelope detector.
    CardOok {
        /// OOK bit rate, bits per second (100 kbps in the paper).
        bit_rate_bps: f64,
    },
}

impl NetPhy {
    /// Airtime of one packet with `payload_bytes` of payload, seconds.
    pub fn airtime_s(&self, payload_bytes: usize) -> f64 {
        match self {
            NetPhy::Wifi { rate, .. } => {
                SHORT_PLCP_DURATION_S + rate.payload_airtime_s(payload_bytes)
            }
            // 802.15.4: 4-byte preamble + SFD + length at 250 kbps, then
            // the payload.
            NetPhy::Zigbee { .. } => (6.0 * 8.0 + payload_bytes as f64 * 8.0) / 250e3,
            // OOK: a short preamble for threshold calibration plus the
            // payload bits.
            NetPhy::CardOok { bit_rate_bps } => (16.0 + payload_bytes as f64 * 8.0) / bit_rate_bps,
        }
    }

    /// Information bits delivered by one packet.
    pub fn payload_bits(&self, payload_bytes: usize) -> usize {
        payload_bytes * 8
    }

    /// Centre frequency of the synthesized packet, Hz. `carrier_freq_hz` is
    /// the illuminating tone's frequency (used by [`NetPhy::CardOok`], which
    /// does not shift).
    pub fn center_freq_hz(&self, carrier_freq_hz: f64) -> f64 {
        match self {
            NetPhy::Wifi { channel, .. } => wifi_channel_freq_hz(*channel),
            NetPhy::Zigbee { channel } => zigbee_channel_freq_hz(*channel),
            NetPhy::CardOok { .. } => carrier_freq_hz,
        }
    }

    /// Occupied bandwidth of the synthesized packet, Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        match self {
            NetPhy::Wifi { .. } => 22e6,
            NetPhy::Zigbee { .. } => 2e6,
            NetPhy::CardOok { bit_rate_bps } => (4.0 * bit_rate_bps).max(1e6),
        }
    }

    /// The receiver noise model matching this PHY.
    pub fn noise_model(&self) -> NoiseModel {
        match self {
            NetPhy::Wifi { .. } => NoiseModel::wifi_dsss(),
            NetPhy::Zigbee { .. } => NoiseModel::zigbee(),
            NetPhy::CardOok { .. } => NoiseModel::envelope_detector(),
        }
    }
}

/// A Bluetooth device providing the carrier the tags modulate.
///
/// The carrier activates every `slot_interval_s` (one crafted advertisement
/// per activation) and its single-tone payload window illuminates one tag
/// for up to `slot_window_s`.
#[derive(Debug, Clone)]
pub struct CarrierSource {
    /// Where the Bluetooth device sits. Private: a scenario's positions
    /// are build-time inputs; the *live* geometry belongs to
    /// [`crate::links::LinkMatrix`], whose `set_position` marks the
    /// affected budget rows dirty. Mutating a position here after the
    /// matrix was built would silently leave every budget stale — the
    /// bug this field's privacy removes. Read with
    /// [`CarrierSource::position`]; reposition before the run with
    /// [`crate::scenario::Scenario::place_carrier`].
    pub(crate) position: Position,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// BLE advertising channel the tone is emitted on.
    pub ble_channel: BleChannel,
    /// Time between carrier activations, seconds.
    pub slot_interval_s: f64,
    /// Usable single-tone window per activation, seconds.
    pub slot_window_s: f64,
    /// Minimum RSSI the carrier's conventional radio can decode, dBm —
    /// what a closed-loop ack frame from the sink must clear.
    pub ack_sensitivity_dbm: f64,
    /// The Wi-Fi sub-band stripe this carrier's tags synthesize onto
    /// (0 unless the scenario striped its carriers across channels with
    /// [`crate::scenario::Scenario::with_subband_striping`]). Striping
    /// itself acts at build time — it retunes the tags' channels — and
    /// the stripe index is carried into
    /// [`crate::sched::CarrierSched::subband`] so future arbitration
    /// policies can key on it; none of the built-in four does yet.
    pub subband: usize,
}

impl CarrierSource {
    /// A phone-class 10 dBm carrier on BLE channel 38 activating every
    /// `slot_interval_s`, with the paper's 248 µs payload window.
    pub fn phone(position: Position, slot_interval_s: f64) -> Self {
        CarrierSource {
            position,
            tx_power_dbm: 10.0,
            ble_channel: BleChannel::ADV_38,
            slot_interval_s,
            slot_window_s: interscatter_ble::timing::MAX_PAYLOAD_DURATION_S,
            ack_sensitivity_dbm: -85.0,
            subband: 0,
        }
    }

    /// A class-1 20 dBm helper beacon (the dedicated "helper device" of
    /// §2.3.3, deployed bedside so implants sit inside the ~1 m
    /// illumination range the paper's links need).
    pub fn helper(position: Position, slot_interval_s: f64) -> Self {
        CarrierSource {
            tx_power_dbm: 20.0,
            ..CarrierSource::phone(position, slot_interval_s)
        }
    }

    /// The tone frequency, Hz.
    pub fn carrier_freq_hz(&self) -> f64 {
        self.ble_channel.center_freq_hz()
    }

    /// Where the Bluetooth device sits (the scenario's build-time
    /// placement; a mobile run's live position lives in the
    /// [`crate::links::LinkMatrix`]).
    pub fn position(&self) -> Position {
        self.position
    }
}

/// A backscatter tag with its application traffic source.
#[derive(Debug, Clone)]
pub struct TagNode {
    /// Where the tag sits. Private for the same reason as
    /// [`CarrierSource::position`]: post-build mutation would leave the
    /// [`crate::links::LinkMatrix`] silently stale. Read with
    /// [`TagNode::position`]; reposition before the run with
    /// [`crate::scenario::Scenario::place_tag`]; attach a
    /// [`crate::mobility::MobilityConfig`] to move tags *during* a run.
    pub(crate) position: Position,
    /// Antenna/tissue package.
    pub profile: TagProfile,
    /// Single- or double-sideband modulator.
    pub sideband: SidebandMode,
    /// What the tag synthesizes.
    pub phy: NetPhy,
    /// Index (into the scenario's carrier list) of the carrier that
    /// illuminates this tag.
    pub carrier: usize,
    /// Index (into the scenario's receiver list) of the receiver the tag's
    /// packets are destined for.
    pub receiver: usize,
    /// Application payload per packet, bytes.
    pub payload_bytes: usize,
    /// Mean application packet rate, packets per second (Poisson arrivals).
    pub arrival_rate_pps: f64,
    /// How many carrier slots a packet may be retried in before it is
    /// dropped.
    pub max_retries: u32,
}

impl TagNode {
    /// Where the tag sits (build-time placement; a mobile run's live
    /// position lives in the [`crate::links::LinkMatrix`]).
    pub fn position(&self) -> Position {
        self.position
    }
}

/// What kind of radio a receiver is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SinkKind {
    /// A commodity 802.11b receiver on the given Wi-Fi channel.
    Wifi {
        /// Wi-Fi channel the receiver listens on.
        channel: u8,
    },
    /// A commodity 802.15.4 receiver on the given ZigBee channel.
    Zigbee {
        /// ZigBee channel the receiver listens on.
        channel: u8,
    },
    /// A peer card's passive envelope detector (wideband, around the
    /// carrier).
    Envelope,
}

/// A device that decodes tag transmissions.
#[derive(Debug, Clone)]
pub struct SinkReceiver {
    /// Where the receiver sits. Private for the same reason as
    /// [`CarrierSource::position`]; read with [`SinkReceiver::position`],
    /// reposition before the run with
    /// [`crate::scenario::Scenario::place_sink`].
    pub(crate) position: Position,
    /// What kind of radio it is.
    pub kind: SinkKind,
    /// Minimum RSSI it can decode, dBm.
    pub sensitivity_dbm: f64,
    /// Fraction of airtime its channel is occupied by *other* (external)
    /// Wi-Fi traffic the engine does not model packet-by-packet, in [0, 1].
    pub external_occupancy: f64,
    /// Transmit power of the sink's AM-OFDM downlink (closed-loop acks),
    /// dBm. APs transmit at the §4.4 bench's 15 dBm; hubs and card hosts
    /// are weaker.
    pub downlink_tx_power_dbm: f64,
}

impl SinkReceiver {
    /// A Wi-Fi access point: −88 dBm sensitivity at 2 Mbps DSSS.
    pub fn wifi_ap(position: Position, channel: u8) -> Self {
        SinkReceiver {
            position,
            kind: SinkKind::Wifi { channel },
            sensitivity_dbm: -88.0,
            external_occupancy: 0.0,
            downlink_tx_power_dbm: 15.0,
        }
    }

    /// A ZigBee hub: −94 dBm sensitivity (§4.5 notes ZigBee's narrower
    /// bandwidth buys sensitivity).
    pub fn zigbee_hub(position: Position, channel: u8) -> Self {
        SinkReceiver {
            position,
            kind: SinkKind::Zigbee { channel },
            sensitivity_dbm: -94.0,
            external_occupancy: 0.0,
            downlink_tx_power_dbm: 10.0,
        }
    }

    /// A peer card's envelope detector: −58 dBm sensitivity (the averaging
    /// comparator of the §5.3 prototype).
    pub fn card_detector(position: Position) -> Self {
        SinkReceiver {
            position,
            kind: SinkKind::Envelope,
            sensitivity_dbm: -58.0,
            external_occupancy: 0.0,
            downlink_tx_power_dbm: 4.0,
        }
    }

    /// Where the receiver sits (build-time placement; a mobile run's live
    /// position lives in the [`crate::links::LinkMatrix`]).
    pub fn position(&self) -> Position {
        self.position
    }

    /// Centre frequency the receiver listens at, Hz. For an envelope
    /// detector this is the carrier frequency, supplied by the caller.
    pub fn center_freq_hz(&self, carrier_freq_hz: f64) -> f64 {
        match self.kind {
            SinkKind::Wifi { channel } => wifi_channel_freq_hz(channel),
            SinkKind::Zigbee { channel } => zigbee_channel_freq_hz(channel),
            SinkKind::Envelope => carrier_freq_hz,
        }
    }

    /// Occupied bandwidth the receiver listens over, Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        match self.kind {
            SinkKind::Wifi { .. } => 22e6,
            SinkKind::Zigbee { .. } => 2e6,
            SinkKind::Envelope => 20e6,
        }
    }

    /// Whether this receiver can decode packets of the given PHY (same
    /// technology *and* same channel).
    pub fn accepts(&self, phy: &NetPhy) -> bool {
        match (self.kind, phy) {
            (SinkKind::Wifi { channel: rx }, NetPhy::Wifi { channel: tx, .. }) => rx == *tx,
            (SinkKind::Zigbee { channel: rx }, NetPhy::Zigbee { channel: tx }) => rx == *tx,
            (SinkKind::Envelope, NetPhy::CardOok { .. }) => true,
            _ => false,
        }
    }
}

/// The named per-entity RNG streams — the **only** sanctioned way to
/// construct a generator in this crate.
///
/// Every run's randomness fans out from the scenario seed through five
/// decorrelated streams, one per entity kind:
///
/// | stream | constructor | consumer |
/// |--------|-------------|----------|
/// | 0 | [`streams::trial_seed`] | Monte-Carlo trials ([`crate::runner::MonteCarlo`]) |
/// | 1 | [`streams::tag_rng`] | tag traffic arrivals |
/// | 2 | [`streams::carrier_rng`] | carrier CSMA backoff |
/// | 3 | [`streams::mobility_rng`] | per-tag mobility walks |
/// | 4 | [`streams::coex_rng`] | coex source emission processes |
///
/// The derivation itself lives in [`rand::derive_stream_seed`]; this
/// module names the streams so a call site reads as *which* entity's
/// randomness it draws. detlint's `stray_rng` rule fails any
/// `seed_from_u64` in the engine crate outside this module — a stray
/// generator is a determinism hazard, not a style nit: it either aliases
/// an existing stream (correlating what must be independent) or invents
/// an unnamed one (breaking the seed-reproducibility audit trail).
pub mod streams {
    use rand::rngs::SmallRng;

    /// Stream id of the Monte-Carlo trial stream.
    pub const TRIALS: u64 = 0;
    /// Stream id of the tag traffic stream.
    pub const TAGS: u64 = 1;
    /// Stream id of the carrier CSMA stream.
    pub const CARRIERS: u64 = 2;
    /// Stream id of the mobility stream.
    pub const MOBILITY: u64 = 3;
    /// Stream id of the coex-source stream.
    pub const COEX: u64 = 4;

    /// The seed Monte-Carlo trial `trial` runs with (stream 0): trials are
    /// whole engine runs, so this hands out a seed, not a generator.
    pub fn trial_seed(base: u64, trial: usize) -> u64 {
        rand::derive_stream_seed(base, TRIALS, trial as u64)
    }

    /// Tag `tag`'s traffic-arrival generator (stream 1).
    pub fn tag_rng(seed: u64, tag: usize) -> SmallRng {
        rand::stream::small_rng(seed, TAGS, tag as u64)
    }

    /// Carrier `carrier`'s CSMA-backoff generator (stream 2).
    pub fn carrier_rng(seed: u64, carrier: usize) -> SmallRng {
        rand::stream::small_rng(seed, CARRIERS, carrier as u64)
    }

    /// Tag `tag`'s mobility-walk generator (stream 3).
    pub fn mobility_rng(seed: u64, tag: usize) -> SmallRng {
        rand::stream::small_rng(seed, MOBILITY, tag as u64)
    }

    /// Coex source `source`'s emission-process generator (stream 4).
    pub fn coex_rng(seed: u64, source: usize) -> SmallRng {
        rand::stream::small_rng(seed, COEX, source as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_constructors_are_decorrelated_and_reproducible() {
        use rand::Rng;
        let mut draws: Vec<u64> = vec![
            streams::tag_rng(42, 0).gen(),
            streams::tag_rng(42, 1).gen(),
            streams::carrier_rng(42, 0).gen(),
            streams::mobility_rng(42, 0).gen(),
            streams::coex_rng(42, 0).gen(),
            streams::trial_seed(42, 0),
            streams::trial_seed(42, 1),
        ];
        draws.sort_unstable();
        draws.dedup();
        assert_eq!(draws.len(), 7, "streams alias each other");
        // Reproducible: the same constructor yields the same stream.
        let mut a = streams::tag_rng(42, 3);
        let mut b = streams::tag_rng(42, 3);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distances() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 4.0, 0.0);
        assert!((a.distance_m(&b) - 5.0).abs() < 1e-12);
        // Coincident points floor at 1 cm.
        assert!((a.distance_m(&a) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn airtimes_scale_with_payload_and_rate() {
        let slow = NetPhy::Wifi {
            rate: DsssRate::Mbps2,
            channel: 11,
        };
        let fast = NetPhy::Wifi {
            rate: DsssRate::Mbps11,
            channel: 11,
        };
        assert!(slow.airtime_s(31) > fast.airtime_s(31));
        assert!(slow.airtime_s(62) > slow.airtime_s(31));
        // 2 Mbps, 31 bytes: 96 µs PLCP + 124 µs payload ≈ 220 µs, inside
        // the 248 µs single-tone window.
        assert!(slow.airtime_s(31) < 248e-6);
        let zb = NetPhy::Zigbee { channel: 14 };
        assert!(zb.airtime_s(20) > slow.airtime_s(20));
        let ook = NetPhy::CardOok {
            bit_rate_bps: 100e3,
        };
        assert!(ook.airtime_s(8) > zb.airtime_s(8));
    }

    #[test]
    fn frequencies_and_acceptance() {
        let carrier = CarrierSource::phone(Position::default(), 20e-3);
        assert!((carrier.carrier_freq_hz() - 2.426e9).abs() < 1.0);
        let wifi = NetPhy::Wifi {
            rate: DsssRate::Mbps2,
            channel: 11,
        };
        assert!((wifi.center_freq_hz(carrier.carrier_freq_hz()) - 2.462e9).abs() < 1.0);
        let ook = NetPhy::CardOok {
            bit_rate_bps: 100e3,
        };
        assert_eq!(ook.center_freq_hz(2.426e9), 2.426e9);

        let ap = SinkReceiver::wifi_ap(Position::default(), 11);
        assert!(ap.accepts(&wifi));
        assert!(!ap.accepts(&ook));
        let card = SinkReceiver::card_detector(Position::default());
        assert!(card.accepts(&ook));
        assert!(!card.accepts(&wifi));
    }

    #[test]
    fn profiles_provide_antennas_and_tissue() {
        for profile in [
            TagProfile::Bench,
            TagProfile::ContactLens,
            TagProfile::NeuralImplant,
            TagProfile::Card,
        ] {
            assert!(profile.antenna().validate().is_ok());
            let _ = profile.tissue();
        }
        // Implant antennas are lossier than the bench monopole.
        assert!(
            TagProfile::NeuralImplant.antenna().effective_gain_dbi()
                < TagProfile::Bench.antenna().effective_gain_dbi()
        );
    }
}
