//! The event queue and the trace it leaves behind.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is the
//! order of scheduling, so ties at the same nanosecond resolve identically
//! on every run. The queue is a binary heap (`O(log n)` push/pop), the
//! classic discrete-event-simulation structure.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which leg of a closed-loop transaction an AM downlink frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownlinkKind {
    /// The carrier's poll, decoded by the tag's envelope detector.
    Poll,
    /// The sink's ack, decoded by the carrier's radio.
    Ack,
}

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A tag's application produced a packet.
    PacketArrival {
        /// Index of the tag.
        tag: usize,
    },
    /// A carrier activates and may grant its slot to a tag.
    CarrierSlot {
        /// Index of the carrier.
        carrier: usize,
    },
    /// A tag's transmission (started in a carrier slot) completes.
    TxEnd {
        /// Index of the tag.
        tag: usize,
        /// Identifier of the in-flight transmission in the medium.
        tx_id: u64,
        /// When the transmission went on the air.
        started: Time,
    },
    /// An AM-OFDM downlink frame of a closed-loop transaction completes:
    /// a carrier's poll or a sink's ack (see
    /// [`crate::mac`] for the transaction structure). Fires at the frame's
    /// end, when the addressed listener decides whether it decoded.
    DownlinkEmission {
        /// Poll or ack.
        kind: DownlinkKind,
        /// The tag whose transaction the frame belongs to.
        tag: usize,
        /// Identifier of the in-flight frame in the medium.
        tx_id: u64,
        /// When the frame went on the air.
        started: Time,
    },
    /// An external coexistence source ([`crate::coex::CoexSource`]) wants
    /// to start its next emission. CSMA-abiding sources re-schedule
    /// themselves with a backoff when the band is busy; the rest go
    /// straight on the air.
    CoexStart {
        /// Index of the source in the scenario's coex config.
        source: usize,
    },
    /// An external emission ends: the medium is released and the source
    /// draws its next arrival from its own RNG stream.
    CoexEnd {
        /// Index of the source in the scenario's coex config.
        source: usize,
        /// Identifier of the in-flight emission in the medium.
        tx_id: u64,
    },
    /// A mobility tick: every mobile entity advances one
    /// [`crate::mobility::Mobility::step`] and the engine refreshes the
    /// dirty [`crate::links::LinkMatrix`] rows. Scheduled on the
    /// integer-nanosecond grid (tick `k` fires at exactly `k · period`),
    /// so the cadence never drifts against the carrier slots.
    MobilityTick,
    /// End of the simulated horizon; processing stops here.
    Horizon,
}

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub at: Time,
    /// Scheduling order, used as a deterministic tie-break.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic binary-heap event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at time `at`.
    pub fn schedule(&mut self, at: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { at, seq, kind }));
    }

    /// Pops the earliest event; ties resolve in scheduling order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One line of the run's event trace.
///
/// Records are compact, fixed-format strings so two runs can be compared
/// byte-for-byte. Formatting floats is avoided: everything recorded is an
/// integer (times in ns, ids, counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the recorded step happened.
    pub at: Time,
    /// The formatted description of the step.
    pub what: String,
}

/// The ordered event trace of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventTrace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl EventTrace {
    /// Creates a trace; a disabled trace records nothing (used by the
    /// Monte-Carlo runner and benches, where only metrics matter).
    pub fn new(enabled: bool) -> Self {
        EventTrace {
            records: Vec::new(),
            enabled,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled).
    pub fn record(&mut self, at: Time, what: impl FnOnce() -> String) {
        if self.enabled {
            self.records.push(TraceRecord { at, what: what() });
        }
    }

    /// The recorded lines.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serializes the trace to one newline-separated byte string, the form
    /// the determinism tests compare.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for r in &self.records {
            out.extend_from_slice(format!("[{:>12}] {}\n", r.at.as_nanos(), r.what).as_bytes());
        }
        out
    }

    /// FNV-1a fingerprint of [`EventTrace::to_bytes`] — what the
    /// digest-checked examples print so two runs are easy to compare by
    /// eye, and what the regression tests pin across refactors. The hash
    /// itself lives in [`crate::trace_digest`], shared with every other
    /// digest-checked surface.
    pub fn digest(&self) -> u64 {
        crate::trace_digest::fnv1a(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(30), EventKind::Horizon);
        q.schedule(Time(10), EventKind::PacketArrival { tag: 0 });
        q.schedule(Time(20), EventKind::CarrierSlot { carrier: 1 });
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().at, Time(10));
        assert_eq!(q.pop().unwrap().at, Time(20));
        assert_eq!(q.pop().unwrap().at, Time(30));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_resolve_in_scheduling_order() {
        let mut q = EventQueue::new();
        for tag in 0..100 {
            q.schedule(Time(5), EventKind::PacketArrival { tag });
        }
        for expected in 0..100 {
            let e = q.pop().unwrap();
            assert_eq!(e.kind, EventKind::PacketArrival { tag: expected });
        }
    }

    #[test]
    fn trace_serializes_and_respects_enable() {
        let mut on = EventTrace::new(true);
        on.record(Time(7), || "tag 1 tx".to_string());
        assert_eq!(on.records().len(), 1);
        let bytes = on.to_bytes();
        assert!(String::from_utf8(bytes.clone())
            .unwrap()
            .contains("tag 1 tx"));

        let mut off = EventTrace::new(false);
        off.record(Time(7), || "tag 1 tx".to_string());
        assert!(off.records().is_empty());
        assert!(off.to_bytes().is_empty());
        assert_ne!(bytes, off.to_bytes());
    }
}
