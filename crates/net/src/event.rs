//! The event queue and the trace it leaves behind.
//!
//! Events are ordered by `(time, sequence)`: the sequence number is the
//! order of scheduling, so ties at the same nanosecond resolve identically
//! on every run. The queue is a **hierarchical timing wheel** over the
//! integer-nanosecond grid — `LEVELS` levels of 64 slots each, level `k`
//! bucketing by bit group `[6k, 6k+6)` of the absolute timestamp — with a
//! binary-heap overflow for events beyond the wheel's
//! `WHEEL_SPAN_NS` ≈ 68.7 s horizon. Scheduling is O(1); popping
//! cascades a higher-level slot down at most once per slot per window, so
//! a 100k-tag run pays amortized O(1) per event where the former
//! `BinaryHeap` paid O(log n) against a 100k-deep heap on every push and
//! pop. The pop order is *exactly* the `(at, seq)` total order the heap
//! produced — the byte-identical-trace contract pins it, and the
//! `wheel_matches_reference_heap` property test drives random streams
//! through both structures side by side.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Which leg of a closed-loop transaction an AM downlink frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownlinkKind {
    /// The carrier's poll, decoded by the tag's envelope detector.
    Poll,
    /// The sink's ack, decoded by the carrier's radio.
    Ack,
}

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A tag's application produced a packet.
    PacketArrival {
        /// Index of the tag.
        tag: usize,
    },
    /// A carrier activates and may grant its slot to a tag.
    CarrierSlot {
        /// Index of the carrier.
        carrier: usize,
    },
    /// A tag's transmission (started in a carrier slot) completes.
    TxEnd {
        /// Index of the tag.
        tag: usize,
        /// Identifier of the in-flight transmission in the medium.
        tx_id: u64,
        /// When the transmission went on the air.
        started: Time,
    },
    /// An AM-OFDM downlink frame of a closed-loop transaction completes:
    /// a carrier's poll or a sink's ack (see
    /// [`crate::mac`] for the transaction structure). Fires at the frame's
    /// end, when the addressed listener decides whether it decoded.
    DownlinkEmission {
        /// Poll or ack.
        kind: DownlinkKind,
        /// The tag whose transaction the frame belongs to.
        tag: usize,
        /// Identifier of the in-flight frame in the medium.
        tx_id: u64,
        /// When the frame went on the air.
        started: Time,
    },
    /// An external coexistence source ([`crate::coex::CoexSource`]) wants
    /// to start its next emission. CSMA-abiding sources re-schedule
    /// themselves with a backoff when the band is busy; the rest go
    /// straight on the air.
    CoexStart {
        /// Index of the source in the scenario's coex config.
        source: usize,
    },
    /// An external emission ends: the medium is released and the source
    /// draws its next arrival from its own RNG stream.
    CoexEnd {
        /// Index of the source in the scenario's coex config.
        source: usize,
        /// Identifier of the in-flight emission in the medium.
        tx_id: u64,
    },
    /// A mobility tick: every mobile entity advances one
    /// [`crate::mobility::Mobility::step`] and the engine refreshes the
    /// dirty [`crate::links::LinkMatrix`] rows. Scheduled on the
    /// integer-nanosecond grid (tick `k` fires at exactly `k · period`),
    /// so the cadence never drifts against the carrier slots.
    MobilityTick,
    /// Sharded execution only ([`crate::shard`]): a cross-cell ghost
    /// interference window starts. The executor injected the aggregate
    /// foreign-cell airtime observed over the previous epoch as one
    /// hidden emission; `ghost` indexes the engine's pending ghost-window
    /// table (band + end time), not a scenario entity.
    GhostStart {
        /// Index into the engine's pending ghost-window table.
        ghost: usize,
    },
    /// A ghost interference window ends: the hidden emission is taken off
    /// the air.
    GhostEnd {
        /// Index into the engine's pending ghost-window table.
        ghost: usize,
        /// Identifier of the in-flight hidden emission in the medium.
        tx_id: u64,
    },
    /// End of the simulated horizon; processing stops here.
    Horizon,
}

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub at: Time,
    /// Scheduling order, used as a deterministic tie-break.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bits per wheel level: 64 slots each.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `k` buckets by bit group `[6k, 6k+6)` of the
/// absolute nanosecond timestamp, so the wheel spans `2^36` ns.
const LEVELS: usize = 6;
/// The wheel's horizon, nanoseconds (≈ 68.7 s). Events further in the
/// future than this sit in the overflow heap until the wheel drains into
/// their 68.7 s window, then promote in one batch.
pub const WHEEL_SPAN_NS: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// A deterministic hierarchical-timing-wheel event queue.
///
/// The pop order is the exact `(at, seq)` total order of a binary heap
/// over the same stream: same-instant events resolve in scheduling order,
/// far-future events promote from the overflow heap without reordering.
/// Internally, `cur` is a monotone lower bound on every pending event;
/// level-`k` slots hold events whose timestamp agrees with `cur` above bit
/// `6(k+1)` and differs first in bit group `k`. Draining a level-0 slot
/// (one exact nanosecond) sorts it by sequence into a FIFO buffer; a
/// same-instant schedule during the drain appends, which preserves order
/// because sequence numbers are globally monotone.
#[derive(Debug)]
pub struct EventQueue {
    /// `slots[level][slot]`: pending events, unordered until drained.
    slots: Vec<Vec<Vec<Event>>>,
    /// One occupancy bit per slot per level, for next-slot scans.
    occupancy: [u64; LEVELS],
    /// Monotone lower bound (ns) on every pending wheel/overflow event.
    cur: u64,
    /// Events at exactly `cur`, sequence-sorted, ready to pop.
    buffer: VecDeque<Event>,
    /// Events scheduled *behind* `cur` (a DES engine never does this, but
    /// the queue contract tolerates it: they pop first, heap-ordered).
    past: BinaryHeap<Reverse<Event>>,
    /// Events beyond the wheel span from `cur`'s window.
    overflow: BinaryHeap<Reverse<Event>>,
    /// The event [`EventQueue::pop_before`] peeked but did not release
    /// (its time was at or past the limit). Still pending: counted by
    /// `len`, returned by the next pop. Only `past` can hold anything
    /// earlier, because the peek advanced `cur` to the stashed instant.
    stash: Option<Event>,
    /// Total pending events across all storage.
    len: usize,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            slots: vec![vec![Vec::new(); SLOTS]; LEVELS],
            occupancy: [0; LEVELS],
            cur: 0,
            buffer: VecDeque::new(),
            past: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            stash: None,
            len: 0,
            next_seq: 0,
        }
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The wheel window (bits above the span) an instant falls in.
    #[inline]
    fn window(ns: u64) -> u64 {
        ns >> (SLOT_BITS * LEVELS as u32)
    }

    /// Files an event into the wheel. Caller guarantees `e.at.0 >= cur`
    /// and `window(e.at.0) == window(cur)`.
    #[inline]
    fn wheel_insert(&mut self, e: Event) {
        let diff = e.at.0 ^ self.cur;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        let slot = ((e.at.0 >> (SLOT_BITS * level as u32)) as usize) & (SLOTS - 1);
        self.slots[level][slot].push(e);
        self.occupancy[level] |= 1 << slot;
    }

    /// Schedules `kind` at time `at`.
    pub fn schedule(&mut self, at: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = Event { at, seq, kind };
        self.len += 1;
        if !self.buffer.is_empty() && at.0 == self.cur {
            // Same instant as the slot being drained: the fresh sequence
            // number is larger than everything buffered, so FIFO append
            // keeps `(at, seq)` order.
            self.buffer.push_back(e);
        } else if at.0 < self.cur {
            self.past.push(Reverse(e));
        } else if Self::window(at.0) == Self::window(self.cur) {
            self.wheel_insert(e);
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    /// Pops the earliest event; ties resolve in scheduling order.
    pub fn pop(&mut self) -> Option<Event> {
        if let Some(s) = self.stash {
            // A stashed peek is the earliest thing in the wheel, but an
            // event scheduled *since* the peek can sit behind the cursor
            // in `past` and must pop first if it precedes the stash in
            // the `(at, seq)` total order.
            if let Some(&Reverse(p)) = self.past.peek() {
                if (p.at, p.seq) < (s.at, s.seq) {
                    self.past.pop();
                    self.len -= 1;
                    return Some(p);
                }
            }
            self.stash = None;
            self.len -= 1;
            return Some(s);
        }
        self.pop_inner()
    }

    /// Pops the earliest event only if it fires strictly before `limit`;
    /// otherwise leaves the queue intact (the event stays pending) and
    /// returns `None`. This is the epoch gate of the sharded executor
    /// ([`crate::shard`]): a shard drains its queue up to the epoch
    /// boundary, pauses for the cross-shard exchange, and resumes — with
    /// the pop order still the exact `(at, seq)` total order `pop` alone
    /// would produce, which is what keeps epoch chunking invisible in the
    /// trace.
    pub fn pop_before(&mut self, limit: Time) -> Option<Event> {
        if self.stash.is_none() {
            self.stash = self.pop_inner();
            if self.stash.is_some() {
                // The stashed event is still pending: pop_inner already
                // decremented `len`, but nothing left the queue yet.
                self.len += 1;
            }
        }
        let next_at = match (self.stash.as_ref(), self.past.peek()) {
            (Some(s), Some(&Reverse(p))) => s.at.min(p.at),
            (Some(s), None) => s.at,
            (None, _) => return None,
        };
        if next_at < limit {
            self.pop()
        } else {
            None
        }
    }

    /// The heap-order pop over every storage area except the stash.
    fn pop_inner(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // Late-scheduled events (at < cur) precede everything in the
        // wheel, which holds only times >= cur.
        if let Some(&Reverse(e)) = self.past.peek() {
            self.past.pop();
            return Some(e);
        }
        if let Some(e) = self.buffer.pop_front() {
            return Some(e);
        }
        loop {
            if self.occupancy.iter().all(|&b| b == 0) {
                // Only the overflow remains: jump to its earliest window
                // and promote that whole window into the wheel.
                let min_at = self.overflow.peek().expect("len > 0").0.at.0;
                self.cur = min_at;
                while let Some(&Reverse(e)) = self.overflow.peek() {
                    if Self::window(e.at.0) != Self::window(self.cur) {
                        break;
                    }
                    self.overflow.pop();
                    self.wheel_insert(e);
                }
            }
            // Level 0: the first occupied slot at or after cur's is one
            // exact nanosecond; drain it sequence-sorted and pop.
            let s0 = (self.cur as usize) & (SLOTS - 1);
            let masked = self.occupancy[0] & (!0u64 << s0);
            if masked != 0 {
                let s = masked.trailing_zeros() as usize;
                let mut v = std::mem::take(&mut self.slots[0][s]);
                self.occupancy[0] &= !(1u64 << s);
                v.sort_unstable_by_key(|e| e.seq);
                self.cur = v[0].at.0;
                self.buffer.extend(v);
                return self.buffer.pop_front();
            }
            // Cascade: redistribute the next occupied higher-level slot
            // down one level and retry from level 0.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let sk = ((self.cur >> shift) as usize) & (SLOTS - 1);
                let masked = self.occupancy[level] & (!0u64 << sk);
                if masked == 0 {
                    continue;
                }
                let s = masked.trailing_zeros() as usize;
                let v = std::mem::take(&mut self.slots[level][s]);
                self.occupancy[level] &= !(1u64 << s);
                let above = SLOT_BITS * (level as u32 + 1);
                let base = ((self.cur >> above) << above) | ((s as u64) << shift);
                self.cur = self.cur.max(base);
                for e in v {
                    self.wheel_insert(e);
                }
                cascaded = true;
                break;
            }
            // No cascade found means the wheel is empty (occupied slots
            // never sit behind `cur`'s indices), so the next iteration
            // promotes from the overflow — `len > 0` guarantees it holds
            // something.
            debug_assert!(
                cascaded || self.occupancy.iter().all(|&b| b == 0),
                "wheel slots must never sit behind the cursor"
            );
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One line of the run's event trace.
///
/// Records are compact, fixed-format strings so two runs can be compared
/// byte-for-byte. Formatting floats is avoided: everything recorded is an
/// integer (times in ns, ids, counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the recorded step happened.
    pub at: Time,
    /// The formatted description of the step.
    pub what: String,
}

/// The ordered event trace of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventTrace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl EventTrace {
    /// Creates a trace; a disabled trace records nothing (used by the
    /// Monte-Carlo runner and benches, where only metrics matter).
    pub fn new(enabled: bool) -> Self {
        EventTrace {
            records: Vec::new(),
            enabled,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record (no-op when disabled).
    pub fn record(&mut self, at: Time, what: impl FnOnce() -> String) {
        if self.enabled {
            self.records.push(TraceRecord { at, what: what() });
        }
    }

    /// The recorded lines.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the trace into its records (the sharded executor's merge
    /// input: per-cell traces are interleaved by `(at, cell, index)`).
    pub(crate) fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Rebuilds a trace from already-ordered records (the sharded
    /// executor's merge output).
    pub(crate) fn from_records(records: Vec<TraceRecord>, enabled: bool) -> Self {
        EventTrace { records, enabled }
    }

    /// Serializes the trace to one newline-separated byte string, the form
    /// the determinism tests compare.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for r in &self.records {
            out.extend_from_slice(format!("[{:>12}] {}\n", r.at.as_nanos(), r.what).as_bytes());
        }
        out
    }

    /// FNV-1a fingerprint of [`EventTrace::to_bytes`] — what the
    /// digest-checked examples print so two runs are easy to compare by
    /// eye, and what the regression tests pin across refactors. The hash
    /// itself lives in [`crate::trace_digest`], shared with every other
    /// digest-checked surface.
    pub fn digest(&self) -> u64 {
        crate::trace_digest::fnv1a(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(30), EventKind::Horizon);
        q.schedule(Time(10), EventKind::PacketArrival { tag: 0 });
        q.schedule(Time(20), EventKind::CarrierSlot { carrier: 1 });
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().at, Time(10));
        assert_eq!(q.pop().unwrap().at, Time(20));
        assert_eq!(q.pop().unwrap().at, Time(30));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_resolve_in_scheduling_order() {
        let mut q = EventQueue::new();
        for tag in 0..100 {
            q.schedule(Time(5), EventKind::PacketArrival { tag });
        }
        for expected in 0..100 {
            let e = q.pop().unwrap();
            assert_eq!(e.kind, EventKind::PacketArrival { tag: expected });
        }
    }

    /// A reference queue with the pre-wheel semantics: a binary heap over
    /// `(at, seq)` with the same monotone sequence assignment.
    #[derive(Default)]
    struct ReferenceQueue {
        heap: BinaryHeap<Reverse<Event>>,
        next_seq: u64,
    }

    impl ReferenceQueue {
        fn schedule(&mut self, at: Time, kind: EventKind) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Reverse(Event { at, seq, kind }));
        }

        fn pop(&mut self) -> Option<Event> {
            self.heap.pop().map(|Reverse(e)| e)
        }
    }

    #[test]
    fn wheel_matches_reference_heap() {
        // Random schedule/pop interleavings through the timing wheel and
        // the reference heap side by side: every pop must agree exactly,
        // including same-instant seq tie-breaks and far-future overflow
        // promotion. The time distribution is deliberately lumpy — exact
        // ties, near-future µs/ms deltas, and beyond-the-wheel jumps.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for trial in 0..20u64 {
            // detlint: allow(stray_rng): property-test stream fuzzing the wheel, not an engine entity
            let mut rng = SmallRng::seed_from_u64(0x57EE1 ^ trial);
            let mut wheel = EventQueue::new();
            let mut reference = ReferenceQueue::default();
            let mut now = 0u64;
            let mut last_at = Vec::new();
            for step in 0..4000usize {
                if rng.gen_bool(0.55) || wheel.is_empty() {
                    let at = match rng.gen_range(0u32..10) {
                        // Exact tie with a previously scheduled event.
                        0 if !last_at.is_empty() => last_at[rng.gen_range(0usize..last_at.len())],
                        // The current instant itself.
                        1 => now,
                        // Far future: beyond the wheel span → overflow.
                        2 => now + WHEEL_SPAN_NS + rng.gen_range(0u64..WHEEL_SPAN_NS),
                        // Behind the cursor (allowed, pops first).
                        3 if now > 0 => rng.gen_range(0u64..now),
                        // Near future across every wheel level.
                        _ => {
                            let magnitude = rng.gen_range(1u32..30);
                            now + rng.gen_range(1u64..1 << magnitude)
                        }
                    };
                    if last_at.len() < 64 {
                        last_at.push(at);
                    }
                    wheel.schedule(Time(at), EventKind::PacketArrival { tag: step });
                    reference.schedule(Time(at), EventKind::PacketArrival { tag: step });
                    assert_eq!(wheel.len(), reference.heap.len());
                } else {
                    let (a, b) = (wheel.pop(), reference.pop());
                    assert_eq!(a, b, "trial {trial} step {step} diverged");
                    if let Some(e) = a {
                        now = now.max(e.at.0);
                    }
                }
            }
            // Drain both to the end: the tails must agree too.
            loop {
                let (a, b) = (wheel.pop(), reference.pop());
                assert_eq!(a, b, "trial {trial} drain diverged");
                if a.is_none() {
                    break;
                }
            }
            assert!(wheel.is_empty());
        }
    }

    #[test]
    fn far_future_events_promote_from_overflow_in_order() {
        // A horizon far beyond the wheel span plus interleaved near events:
        // the overflow heap must hold the horizon without reordering, and
        // same-instant overflow events must promote in scheduling order.
        let mut q = EventQueue::new();
        let horizon = WHEEL_SPAN_NS * 3 + 17;
        q.schedule(Time(horizon), EventKind::Horizon);
        q.schedule(Time(horizon), EventKind::MobilityTick);
        q.schedule(Time(5), EventKind::PacketArrival { tag: 0 });
        q.schedule(Time(horizon - 1), EventKind::CarrierSlot { carrier: 9 });
        assert_eq!(q.pop().unwrap().kind, EventKind::PacketArrival { tag: 0 });
        assert_eq!(q.pop().unwrap().kind, EventKind::CarrierSlot { carrier: 9 });
        let first = q.pop().unwrap();
        assert_eq!((first.at, first.kind), (Time(horizon), EventKind::Horizon));
        let second = q.pop().unwrap();
        assert_eq!(second.kind, EventKind::MobilityTick);
        assert!(second.seq > first.seq, "ties promote in scheduling order");
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_before_gates_on_the_limit_and_resumes() {
        let mut q = EventQueue::new();
        q.schedule(Time(10), EventKind::PacketArrival { tag: 0 });
        q.schedule(Time(20), EventKind::PacketArrival { tag: 1 });
        q.schedule(Time(20), EventKind::PacketArrival { tag: 2 });
        q.schedule(Time(35), EventKind::Horizon);
        // Epoch [0, 20): only the t=10 event is released.
        assert_eq!(q.pop_before(Time(20)).unwrap().at, Time(10));
        assert!(q.pop_before(Time(20)).is_none());
        assert!(q.pop_before(Time(20)).is_none(), "repeat peeks are stable");
        assert_eq!(q.len(), 3, "gated events stay pending");
        // Epoch [20, 30): both t=20 events, in scheduling order.
        assert_eq!(
            q.pop_before(Time(30)).unwrap().kind,
            EventKind::PacketArrival { tag: 1 }
        );
        assert_eq!(
            q.pop_before(Time(30)).unwrap().kind,
            EventKind::PacketArrival { tag: 2 }
        );
        assert!(q.pop_before(Time(30)).is_none());
        // A plain pop releases the stashed peek.
        assert_eq!(q.pop().unwrap().at, Time(35));
        assert!(q.pop_before(Time(u64::MAX)).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_orders_late_schedules_against_the_stash() {
        let mut q = EventQueue::new();
        q.schedule(Time(100), EventKind::Horizon);
        // Peek stashes the t=100 horizon (limit not reached).
        assert!(q.pop_before(Time(50)).is_none());
        // Events scheduled while stashed — behind the cursor and at the
        // stashed instant — must still pop in (at, seq) order.
        q.schedule(Time(30), EventKind::PacketArrival { tag: 0 });
        q.schedule(Time(100), EventKind::PacketArrival { tag: 1 });
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_before(Time(50)).unwrap().at, Time(30));
        assert!(q.pop_before(Time(50)).is_none());
        let first = q.pop_before(Time(101)).unwrap();
        assert_eq!((first.at, first.kind), (Time(100), EventKind::Horizon));
        let second = q.pop_before(Time(101)).unwrap();
        assert_eq!(second.kind, EventKind::PacketArrival { tag: 1 });
        assert!(q.is_empty());
    }

    #[test]
    fn epoch_chunked_pops_match_plain_pops() {
        // Driving the queue through pop_before with arbitrary epoch
        // boundaries must release the exact same event sequence as plain
        // pops from the reference heap — chunking is invisible.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for trial in 0..10u64 {
            // detlint: allow(stray_rng): property-test stream fuzzing the epoch gate, not an engine entity
            let mut rng = SmallRng::seed_from_u64(0xE60C ^ trial);
            let mut wheel = EventQueue::new();
            let mut reference = ReferenceQueue::default();
            let mut now = 0u64;
            for step in 0..600usize {
                let at = now + rng.gen_range(0u64..200_000);
                wheel.schedule(Time(at), EventKind::PacketArrival { tag: step });
                reference.schedule(Time(at), EventKind::PacketArrival { tag: step });
                if rng.gen_bool(0.4) {
                    // Drain one epoch: everything before a random limit.
                    let limit = now + rng.gen_range(1u64..300_000);
                    while let Some(e) = wheel.pop_before(Time(limit)) {
                        assert!(e.at < Time(limit));
                        assert_eq!(Some(e), reference.pop(), "trial {trial} diverged");
                        now = now.max(e.at.0);
                    }
                    now = now.max(limit);
                }
            }
            loop {
                let (a, b) = (wheel.pop_before(Time(u64::MAX)), reference.pop());
                assert_eq!(a, b, "trial {trial} drain diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn schedule_behind_the_cursor_pops_first() {
        let mut q = EventQueue::new();
        q.schedule(Time(1000), EventKind::Horizon);
        q.schedule(Time(100), EventKind::PacketArrival { tag: 0 });
        assert_eq!(q.pop().unwrap().at, Time(100));
        // The cursor now sits at 100; a late event behind it still pops
        // before everything pending.
        q.schedule(Time(50), EventKind::PacketArrival { tag: 1 });
        q.schedule(Time(60), EventKind::PacketArrival { tag: 2 });
        assert_eq!(q.pop().unwrap().at, Time(50));
        assert_eq!(q.pop().unwrap().at, Time(60));
        assert_eq!(q.pop().unwrap().at, Time(1000));
    }

    #[test]
    fn trace_serializes_and_respects_enable() {
        let mut on = EventTrace::new(true);
        on.record(Time(7), || "tag 1 tx".to_string());
        assert_eq!(on.records().len(), 1);
        let bytes = on.to_bytes();
        assert!(String::from_utf8(bytes.clone())
            .unwrap()
            .contains("tag 1 tx"));

        let mut off = EventTrace::new(false);
        off.record(Time(7), || "tag 1 tx".to_string());
        assert!(off.records().is_empty());
        assert!(off.to_bytes().is_empty());
        assert_ne!(bytes, off.to_bytes());
    }
}
