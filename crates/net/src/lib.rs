//! # interscatter-net
//!
//! A deterministic, event-driven **network** engine for the Interscatter
//! reproduction: where `interscatter-sim` studies one link at a time (one
//! BLE carrier, one tag, one receiver — the regime of the paper's figures),
//! this crate simulates *fleets* of backscatter tags sharing the 2.4 GHz
//! medium with multiple BLE carrier providers and multiple Wi-Fi/ZigBee
//! receivers.
//!
//! ## Entity model
//!
//! A [`scenario::Scenario`] instantiates three kinds of entities, each with
//! a position in metres:
//!
//! * [`entities::CarrierSource`] — a Bluetooth device emitting the
//!   single-tone advertisement the tags modulate. Each carrier activates
//!   periodically (its *slot cadence*); one slot illuminates exactly one
//!   tag, selected round-robin among the tags assigned to that carrier
//!   that have traffic queued (§2.3.3's helper-device scheduling,
//!   generalized to N tags).
//! * [`entities::TagNode`] — a backscatter tag with an application traffic
//!   source (Poisson arrivals into a FIFO queue), an antenna/tissue profile
//!   (bench monopole, contact lens, neural implant, printed card), a
//!   sideband architecture (single or double) and a target PHY
//!   ([`entities::NetPhy`]: 802.11b at a Wi-Fi channel, ZigBee, or
//!   card-to-card OOK).
//! * [`entities::SinkReceiver`] — a commodity radio (Wi-Fi AP, ZigBee hub,
//!   or a peer card's envelope detector) that decodes what the tags
//!   synthesize. Each tag delivers to the receiver its scenario assigns
//!   (the builders use round-robin channel striping or nearest-hub
//!   assignment, per scenario).
//!
//! ## Event model
//!
//! The engine ([`engine::NetworkSim`]) is a classic discrete-event
//! simulation: a hierarchical timing-wheel [`event::EventQueue`] orders
//! [`event::EventKind`]s by integer-nanosecond timestamps
//! ([`time::Time`]), with a monotone sequence number breaking ties so the
//! execution order is total and reproducible (and byte-identical to the
//! binary-heap queue it replaced). Three event kinds drive
//! everything:
//!
//! * `PacketArrival` — a tag's application emits a packet and schedules the
//!   next arrival from its *own* seeded RNG stream.
//! * `CarrierSlot` — a carrier activates: the scenario's arbitration
//!   policy ([`sched::SchedPolicy`] — round-robin, proportional-fair,
//!   deadline-aware or margin-aware) picks a tag, the engine checks the
//!   medium (CSMA, optionally a CTS-to-Self reservation), and starts a
//!   transmission.
//! * `TxEnd` — a transmission completes: the [`medium::Medium`] reports
//!   tag-to-tag collisions (including the *mirror copies* double-sideband
//!   tags place on the opposite side of the carrier), the link budget
//!   ([`links::LinkMatrix`], built from `interscatter-channel`'s pathloss,
//!   tissue and noise models) draws per-packet shadowing, and the outcome
//!   lands in [`metrics::NetworkMetrics`].
//! * `DownlinkEmission` — in closed-loop scenarios
//!   ([`mac::MacMode::ClosedLoop`]), an AM-OFDM poll or ack frame
//!   completes and the addressed listener (the tag's envelope detector,
//!   or the carrier's radio) decides whether it decoded. The [`mac`]
//!   module documents the poll → backscatter response → ack transaction
//!   and the physics that assigns each leg its transmitter.
//!
//! * `MobilityTick` — when the scenario attaches a
//!   [`mobility::MobilityConfig`], every tag advances one step of its
//!   mobility model (random waypoint or random walk, each tag walking its
//!   own seeded stream) and the [`links::LinkMatrix`] recomputes **only the
//!   budget rows touching the moved entities** from cached
//!   position-independent terms — link quality tracks geometry tick by
//!   tick without rebuilding the matrix (the `net_mobility` bench anchors
//!   the row-level path against a full rebuild).
//! * `CoexStart` / `CoexEnd` — when the scenario attaches a
//!   [`coex::CoexConfig`], external traffic sources (bursty Wi-Fi, BLE
//!   advertising, ZigBee chatter, a microwave duty cycle) put *real timed
//!   emissions* on the medium from their own seeded streams, carriers
//!   sense per-channel occupancy, and an optional [`coex::ReStripe`]
//!   policy re-tunes congested carriers (and their tags) to the
//!   least-occupied sub-band mid-run.
//!
//! Every entity owns a `SmallRng` seeded from the scenario seed and its
//! entity id, so identical seeds reproduce byte-identical event traces and
//! metrics — see [`engine::NetRunResult::trace`] and the
//! `net_determinism` integration test — while different seeds decorrelate.
//!
//! ## Observability
//!
//! The [`telemetry`] module layers zero-cost **subscriptions** over the
//! event stream: a [`telemetry::Filter`] (tags, carriers, event kinds,
//! time window) compiled into a per-event-kind dispatch mask — one dead
//! branch per emit site when nothing is subscribed — feeding online
//! sketches ([`telemetry::LatencySketch`] streaming quantiles,
//! [`telemetry::P2Quantile`], windowed PRR/occupancy rings, counters)
//! instead of stored samples. [`telemetry::MetricsMode::Streaming`]
//! rebuilds the [`metrics::NetworkMetrics`] report on the same sketches so
//! soak runs hold memory O(subscriptions), not O(events), and
//! [`telemetry::TelemetryConfig::with_progress`] emits a deterministic
//! one-line status on a simulated-time cadence. Subscriptions never touch
//! the RNG streams, so the event trace stays byte-identical with any
//! number attached.
//!
//! ## Monte-Carlo runs
//!
//! [`runner::MonteCarlo`] fans trials out across threads (one derived seed
//! per trial) and aggregates throughput, PER, latency and Jain fairness
//! into a [`runner::MonteCarloReport`]. In streaming mode the per-trial
//! sketches are pooled by exact bucket-count merge, in trial order, so the
//! pooled quantiles are deterministic regardless of thread interleaving.
//!
//! ```
//! use interscatter_net::prelude::*;
//!
//! let scenario = Scenario::hospital_ward(8);
//! let result = NetworkSim::new(&scenario, 42).run().unwrap();
//! assert!(result.metrics.offered_packets() > 0);
//! let replay = NetworkSim::new(&scenario, 42).run().unwrap();
//! assert_eq!(result.trace.to_bytes(), replay.trace.to_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coex;
pub mod engine;
pub mod entities;
pub mod event;
pub mod links;
pub mod mac;
pub mod medium;
pub mod metrics;
pub mod mobility;
pub mod prof;
pub mod runner;
pub mod scenario;
pub mod sched;
pub mod shard;
pub mod telemetry;
pub mod time;
pub mod trace_digest;

/// Errors surfaced by the network engine.
///
/// Marked `#[non_exhaustive]`: future validation variants (say, a
/// dedicated geometry error) must not be breaking changes, so downstream
/// matches need a wildcard arm. [`std::error::Error::source`] chains to
/// the underlying channel- or sim-layer cause where one exists.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A scenario parameter was invalid.
    InvalidScenario(String),
    /// An error from the channel layer while building link budgets.
    Channel(interscatter_channel::ChannelError),
    /// An error from the simulation layer.
    Sim(interscatter_sim::SimError),
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::InvalidScenario(what) => write!(f, "invalid scenario: {what}"),
            NetError::Channel(e) => write!(f, "channel error: {e}"),
            NetError::Sim(e) => write!(f, "sim error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::InvalidScenario(_) => None,
            NetError::Channel(e) => Some(e),
            NetError::Sim(e) => Some(e),
        }
    }
}

impl From<interscatter_channel::ChannelError> for NetError {
    fn from(e: interscatter_channel::ChannelError) -> Self {
        NetError::Channel(e)
    }
}

impl From<interscatter_sim::SimError> for NetError {
    fn from(e: interscatter_sim::SimError) -> Self {
        NetError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::NetError;
    use std::error::Error;

    #[test]
    fn net_error_chains_to_its_cause() {
        assert!(NetError::InvalidScenario("x".into()).source().is_none());

        let channel = interscatter_channel::ChannelError::InvalidParameter("distance");
        let err = NetError::from(channel.clone());
        let source = err.source().expect("channel cause is chained");
        assert_eq!(source.to_string(), channel.to_string());

        let sim = interscatter_sim::SimError::InvalidScenario("bad");
        let err = NetError::from(sim.clone());
        let source = err.source().expect("sim cause is chained");
        assert_eq!(source.to_string(), sim.to_string());
    }
}

/// Runs `scenario` once with `seed` through the sharded executor and
/// returns its metrics, event trace and telemetry report.
///
/// This is the unified entrypoint behind every run shape: the execution
/// knobs — shard count, epoch length, trace recording — come from the
/// scenario's [`scenario::ExecutionConfig`], set through
/// [`scenario::ExecutionSection`] on the builder. The result is
/// byte-identical at any shard count (see [`shard`]), and on single-cell
/// scenarios byte-identical to the legacy
/// [`engine::NetworkSim::run`].
///
/// ```
/// use interscatter_net::prelude::*;
///
/// let scenario = Scenario::hospital_ward(8)
///     .builder()
///     .execution(ExecutionSection::new().shards(4))
///     .build()
///     .unwrap();
/// let result = interscatter_net::run(&scenario, 42).unwrap();
/// let legacy = NetworkSim::new(&Scenario::hospital_ward(8), 42).run().unwrap();
/// assert_eq!(result.trace.digest(), legacy.trace.digest());
/// ```
pub fn run(scenario: &scenario::Scenario, seed: u64) -> Result<engine::NetRunResult, NetError> {
    shard::execute(scenario, seed, scenario.execution.trace)
}

/// Runs the scenario's Monte-Carlo trials
/// ([`scenario::ExecutionConfig::trials`], one derived seed per trial,
/// traces disabled) through the sharded executor and aggregates them into
/// a [`runner::MonteCarloReport`].
///
/// ```
/// use interscatter_net::prelude::*;
///
/// let scenario = Scenario::hospital_ward(6)
///     .builder()
///     .execution(ExecutionSection::new().trials(4))
///     .build()
///     .unwrap();
/// let report = interscatter_net::run_trials(&scenario, 7).unwrap();
/// assert_eq!(report.trials.len(), 4);
/// ```
pub fn run_trials(
    scenario: &scenario::Scenario,
    base_seed: u64,
) -> Result<runner::MonteCarloReport, NetError> {
    scenario.validate()?;
    type TrialOut = (metrics::NetworkMetrics, Option<prof::ProfSummary>);
    let results: Vec<Result<TrialOut, NetError>> =
        rayon::det::map_indexed_ordered(scenario.execution.trials, |trial| {
            shard::execute(
                scenario,
                entities::streams::trial_seed(base_seed, trial),
                false,
            )
            .map(|r| {
                let prof = r.prof.map(|p| p.summary());
                (r.metrics, prof)
            })
        });
    let mut trials = Vec::with_capacity(results.len());
    let mut prof = Vec::new();
    for r in results {
        let (metrics, summary) = r?;
        trials.push(metrics);
        prof.extend(summary);
    }
    Ok(runner::MonteCarloReport::aggregate(scenario, trials, prof))
}

/// The commonly used types in one import.
pub mod prelude {
    pub use crate::coex::{CoexConfig, CoexModel, CoexSource, CoexTraffic, ReStripe, SenseConfig};
    pub use crate::engine::{NetRunResult, NetworkSim};
    pub use crate::entities::{CarrierSource, NetPhy, Position, SinkReceiver, TagNode, TagProfile};
    pub use crate::links::{EntityId, LinkMatrix};
    pub use crate::mac::{MacLoop, MacMode};
    pub use crate::metrics::{NetworkMetrics, ShardLoad};
    pub use crate::mobility::{Bounds, Mobility, MobilityConfig, MobilityModel};
    pub use crate::prof::{ProfReport, ProfSummary, Profiler};
    pub use crate::runner::{MonteCarlo, MonteCarloReport};
    pub use crate::scenario::{
        ExecutionConfig, ExecutionSection, RadioSection, Scenario, ScenarioBuilder,
    };
    pub use crate::sched::{CarrierSched, SchedPolicy, Scheduler};
    pub use crate::shard::Cell;
    pub use crate::telemetry::{
        Dataset, Filter, LatencySketch, MetricsMode, P2Quantile, SinkReport, SinkSpec,
        Subscription, TelemetryConfig, TelemetryEvent, TelemetryKind, TelemetryReport,
    };
    pub use crate::time::Time;
    pub use crate::NetError;
    pub use crate::{run, run_trials};
}
