//! Position-dependent link budgets, precomputed once per scenario.
//!
//! Every tag's uplink is the two-hop backscatter budget of
//! [`interscatter_channel::link::BackscatterLink`]: carrier → tag (at the
//! BLE tone frequency, through the tag's tissue) and tag → receiver (at the
//! synthesized packet's frequency). The engine draws per-packet lognormal
//! shadowing around the median, so packet success is a function of where
//! the entities sit — near tags see PER ≈ 0, far tags fall off the
//! sensitivity cliff, exactly like the range curves of Figs. 10/14/15/16
//! but evaluated across a whole fleet at once.
//!
//! The matrix also precomputes every tag's signal strength at every *other*
//! receiver: that is what turns an overlapping transmission into a
//! measurable interferer during collision arbitration (capture effect).

use crate::entities::TagProfile;
use crate::scenario::Scenario;
use crate::NetError;
use interscatter_backscatter::tag::SidebandMode;
use interscatter_channel::link::{BackscatterLink, ConversionLoss};
use interscatter_channel::pathloss::{gaussian, LogDistanceModel};
use rand::Rng;

/// The budget of one tag's uplink to its destination receiver.
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// Median RSSI at the destination receiver, dBm.
    pub median_rssi_dbm: f64,
    /// Combined lognormal shadowing standard deviation of both hops, dB.
    pub shadow_sigma_db: f64,
    /// The destination receiver's sensitivity, dBm.
    pub sensitivity_dbm: f64,
    /// The destination receiver's noise floor, dBm.
    pub noise_floor_dbm: f64,
}

impl LinkBudget {
    /// Median SNR at the destination receiver, dB.
    pub fn median_snr_db(&self) -> f64 {
        self.median_rssi_dbm - self.noise_floor_dbm
    }

    /// Median margin above the sensitivity cliff, dB.
    pub fn margin_db(&self) -> f64 {
        self.median_rssi_dbm - self.sensitivity_dbm
    }

    /// Draws one packet's shadowed RSSI and whether the receiver decodes
    /// it, `(ok, rssi_dbm)`.
    pub fn packet_outcome<R: Rng>(&self, rng: &mut R) -> (bool, f64) {
        let rssi = self.median_rssi_dbm + gaussian(rng) * self.shadow_sigma_db;
        (rssi >= self.sensitivity_dbm, rssi)
    }
}

/// Precomputed budgets for every tag, and every tag's interference power
/// at every receiver.
#[derive(Debug, Clone)]
pub struct LinkMatrix {
    budgets: Vec<LinkBudget>,
    /// `interference_dbm[tag][rx]`: median power of `tag`'s emission at
    /// receiver `rx`, dBm.
    interference_dbm: Vec<Vec<f64>>,
}

impl LinkMatrix {
    /// Builds the matrix for a validated scenario.
    pub fn build(scenario: &Scenario) -> Result<LinkMatrix, NetError> {
        let mut budgets = Vec::with_capacity(scenario.tags.len());
        let mut interference_dbm = Vec::with_capacity(scenario.tags.len());
        for tag in &scenario.tags {
            let carrier = &scenario.carriers[tag.carrier];
            let carrier_freq = carrier.carrier_freq_hz();
            let emission_freq = tag.phy.center_freq_hz(carrier_freq);
            let conversion = match (tag.profile, tag.sideband) {
                // Card-to-card OOK is energy detection of both sidebands.
                (TagProfile::Card, _) => ConversionLoss::double_sideband(),
                (_, SidebandMode::Single) => ConversionLoss::single_sideband(),
                (_, SidebandMode::Double) => ConversionLoss::double_sideband(),
            };
            let link = BackscatterLink {
                tx_power_dbm: carrier.tx_power_dbm,
                tx_antenna: interscatter_channel::antenna::Antenna::monopole_2dbi(),
                tag_antenna: tag.profile.antenna(),
                rx_antenna: interscatter_channel::antenna::Antenna::monopole_2dbi(),
                source_to_tag: LogDistanceModel::indoor_los(carrier_freq),
                tag_to_rx: LogDistanceModel::indoor_los(emission_freq),
                tissue_source_to_tag: tag.profile.tissue(),
                tissue_tag_to_rx: tag.profile.tissue(),
                conversion,
            };
            link.validate()?;
            let d_carrier_tag = carrier.position.distance_m(&tag.position);
            let noise = tag.phy.noise_model();

            let mut row = Vec::with_capacity(scenario.receivers.len());
            for rx in &scenario.receivers {
                let d_tag_rx = tag.position.distance_m(&rx.position);
                row.push(link.received_power_dbm(d_carrier_tag, d_tag_rx));
            }

            let destination = &scenario.receivers[tag.receiver];
            let s1 = link.source_to_tag.shadowing_sigma_db;
            let s2 = link.tag_to_rx.shadowing_sigma_db;
            budgets.push(LinkBudget {
                median_rssi_dbm: row[tag.receiver],
                shadow_sigma_db: (s1 * s1 + s2 * s2).sqrt(),
                sensitivity_dbm: destination.sensitivity_dbm,
                noise_floor_dbm: noise.noise_floor_dbm(),
            });
            interference_dbm.push(row);
        }
        Ok(LinkMatrix {
            budgets,
            interference_dbm,
        })
    }

    /// The budget of `tag`'s uplink.
    pub fn budget(&self, tag: usize) -> &LinkBudget {
        &self.budgets[tag]
    }

    /// Median power of `tag`'s emission at receiver `rx`, dBm.
    pub fn interference_dbm(&self, tag: usize, rx: usize) -> f64 {
        self.interference_dbm[tag][rx]
    }

    /// Number of tags covered.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// True when the scenario had no tags.
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn nearer_tags_have_stronger_links() {
        let scenario = Scenario::hospital_ward(16);
        let matrix = LinkMatrix::build(&scenario).unwrap();
        assert_eq!(matrix.len(), 16);
        assert!(!matrix.is_empty());
        // Budgets must be position-dependent: not all medians equal.
        let medians: Vec<f64> = (0..16).map(|t| matrix.budget(t).median_rssi_dbm).collect();
        let min = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1.0, "spread {min}..{max}");
    }

    #[test]
    fn interference_weakens_with_receiver_distance() {
        let scenario = Scenario::hospital_ward(4);
        let matrix = LinkMatrix::build(&scenario).unwrap();
        for t in 0..4 {
            let own = matrix.interference_dbm(t, scenario.tags[t].receiver);
            assert!((own - matrix.budget(t).median_rssi_dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn packet_outcomes_follow_the_margin() {
        let strong = LinkBudget {
            median_rssi_dbm: -60.0,
            shadow_sigma_db: 2.8,
            sensitivity_dbm: -88.0,
            noise_floor_dbm: -93.6,
        };
        let weak = LinkBudget {
            median_rssi_dbm: -95.0,
            ..strong
        };
        assert!(strong.margin_db() > 20.0);
        assert!(strong.median_snr_db() > strong.margin_db());
        let mut rng = SmallRng::seed_from_u64(1);
        let strong_ok = (0..200)
            .filter(|_| strong.packet_outcome(&mut rng).0)
            .count();
        let weak_ok = (0..200).filter(|_| weak.packet_outcome(&mut rng).0).count();
        assert_eq!(strong_ok, 200);
        assert!(weak_ok < 20, "weak link delivered {weak_ok}/200");
    }
}
