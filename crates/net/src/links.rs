//! Position-dependent link budgets with **row-level incremental update**.
//!
//! Every tag's uplink is the two-hop backscatter budget of
//! [`interscatter_channel::link::BackscatterLink`]: carrier → tag (at the
//! BLE tone frequency, through the tag's tissue) and tag → receiver (at the
//! synthesized packet's frequency). The engine draws per-packet lognormal
//! shadowing around the median, so packet success is a function of where
//! the entities sit — near tags see PER ≈ 0, far tags fall off the
//! sensitivity cliff, exactly like the range curves of Figs. 10/14/15/16
//! but evaluated across a whole fleet at once.
//!
//! The matrix also precomputes every tag's signal strength at every *other*
//! receiver: that is what turns an overlapping transmission into a
//! measurable interferer during collision arbitration (capture effect).
//!
//! For closed-loop scenarios ([`crate::mac::MacMode::ClosedLoop`]) the
//! matrix additionally holds the **downlink** budgets of the poll/ack MAC:
//!
//! * a *poll* budget per tag — the carrier's AM-OFDM frame, one
//!   conventional forward hop into the tag's passive envelope detector
//!   (−32 dBm sensitivity, §4.4 / Fig. 13, the regime `sim::downlink`
//!   reproduces at the waveform level), and
//! * an *ack* budget per tag — the sink device's AM-OFDM frame decoded by
//!   the carrier's conventional radio (the §2.3.3 helper device, which
//!   relays the outcome to its tag over the short illumination-range hop),
//!
//! plus the median power of **every** emitter kind (tag, carrier, sink) at
//! every listener kind (receiver, tag, carrier), so downlink collisions are
//! arbitrated with the same capture rule as the uplink.
//!
//! ## Live geometry and invalidation
//!
//! Since mobility landed ([`crate::mobility`]), the matrix owns the *live*
//! geometry: a position per entity, initialised from the scenario and
//! updated through [`LinkMatrix::set_position`]. Moving an entity marks its
//! rows dirty; [`LinkMatrix::flush`] then recomputes **only the uplink,
//! poll, ack and emitter × listener capture rows touching the moved
//! entities**, from position-independent terms (antenna gains, tissue
//! attenuations, conversion losses, per-frequency path-loss models) cached
//! once at build time. A mobility tick over a hundred tags therefore costs
//! a few `log10`s per affected row instead of rebuilding every table —
//! anchored by the `net_mobility` bench against a full
//! [`LinkMatrix::build`].
//!
//! The scenario's own entity positions are private (build-time inputs, see
//! [`crate::entities`]); they cannot be mutated behind the matrix's back,
//! which closes the stale-geometry bug where a caller repositioned a tag
//! and silently kept the old budgets.

use crate::entities::{NetPhy, Position, TagProfile};
use crate::mac::MacMode;
use crate::medium::Emitter;
use crate::scenario::Scenario;
use crate::NetError;
use interscatter_backscatter::envelope::EnvelopeDetector;
use interscatter_backscatter::tag::SidebandMode;
use interscatter_channel::antenna::Antenna;
use interscatter_channel::link::{BackscatterLink, ConversionLoss};
use interscatter_channel::noise::NoiseModel;
use interscatter_channel::pathloss::{gaussian, LogDistanceModel};
use interscatter_wifi::ofdm::OFDM_SAMPLE_RATE;
use rand::Rng;

/// The budget of one point-to-point reception: a tag's uplink to its
/// destination receiver, a poll into a tag's envelope detector, or an ack
/// into a carrier's radio.
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// Median RSSI at the destination, dBm.
    pub median_rssi_dbm: f64,
    /// Combined lognormal shadowing standard deviation of the path, dB.
    pub shadow_sigma_db: f64,
    /// The destination's sensitivity, dBm.
    pub sensitivity_dbm: f64,
    /// The destination's noise floor, dBm.
    pub noise_floor_dbm: f64,
}

impl LinkBudget {
    /// Median SNR at the destination receiver, dB.
    pub fn median_snr_db(&self) -> f64 {
        self.median_rssi_dbm - self.noise_floor_dbm
    }

    /// Median margin above the sensitivity cliff, dB.
    pub fn margin_db(&self) -> f64 {
        self.median_rssi_dbm - self.sensitivity_dbm
    }

    /// Draws one packet's shadowed RSSI and whether the receiver decodes
    /// it, `(ok, rssi_dbm)`.
    pub fn packet_outcome<R: Rng>(&self, rng: &mut R) -> (bool, f64) {
        let rssi = self.median_rssi_dbm + gaussian(rng) * self.shadow_sigma_db;
        (rssi >= self.sensitivity_dbm, rssi)
    }
}

/// Where a signal is being received during collision arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Listener {
    /// A sink receiver decoding a tag's uplink packet.
    Receiver(usize),
    /// A tag's envelope detector decoding a poll.
    Tag(usize),
    /// A carrier's radio decoding an ack.
    Carrier(usize),
}

/// One entity of the scenario, for geometry updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EntityId {
    /// A backscatter tag.
    Tag(usize),
    /// A carrier device.
    Carrier(usize),
    /// A sink receiver.
    Sink(usize),
}

/// A log-distance path-loss evaluator with the reference loss folded in:
/// one comparison and one `log10` per call. `LogDistanceModel::path_loss_db`
/// recomputes its reference Friis loss (a second `log10`, a `powi` and a
/// wavelength division) on every call — too slow for the mobility tick's
/// row refreshes, which evaluate tens of thousands of pairs.
#[derive(Debug, Clone, Copy)]
struct FastPathLoss {
    /// Friis loss at the 1 m reference distance, dB.
    ref_loss_db: f64,
    /// dB per decade of *squared* distance beyond the reference
    /// (10 × exponent / 2 — [`log_distance`] hands over `log10(d²)`).
    half_decade_db: f64,
}

impl FastPathLoss {
    fn new(model: &LogDistanceModel) -> Self {
        // The folded form below assumes the 1 m reference every model in
        // this crate uses (`LogDistanceModel::indoor_los`).
        debug_assert!((model.reference_m - 1.0).abs() < 1e-12);
        FastPathLoss {
            ref_loss_db: model.path_loss_db(model.reference_m),
            half_decade_db: 5.0 * model.exponent,
        }
    }

    /// Median path loss from a precomputed [`log_distance`] — the hottest
    /// pairs in a mobility tick evaluate two models (one per direction)
    /// over the same distance, and this shares the single `log10` between
    /// them.
    #[inline]
    fn db_at(&self, log10_q: f64, within_ref: bool) -> f64 {
        if within_ref {
            // Friis: 20·log10(d) = 10·log10(d²).
            self.ref_loss_db + 10.0 * log10_q
        } else {
            self.ref_loss_db + self.half_decade_db * log10_q
        }
    }
}

/// `(log10(d²), d ≤ reference)` between two positions, with the 1 cm floor
/// every path-loss model applies — the shared prefix of
/// [`FastPathLoss::db_at`]. Works on the *squared* distance
/// (`log10(d) = log10(d²) / 2`, folded into the slope), so the hot row
/// refreshes take neither a square root nor a division.
#[inline]
fn log_distance(a: &Position, b: &Position) -> (f64, bool) {
    let dx = a.x - b.x;
    let dy = a.y - b.y;
    let dz = a.z - b.z;
    let q = (dx * dx + dy * dy + dz * dz).max(1e-4);
    (q.log10(), q <= 1.0)
}

/// A dense 2-D power table in one flat row-major allocation — the
/// struct-of-arrays replacement for the old jagged `Vec<Vec<f64>>` layout:
/// one contiguous block instead of `rows + 1` allocations, `u32`
/// dimensions (dense-id tables never need more), and row access without
/// per-row pointer chasing in the refresh loops.
#[derive(Debug, Clone)]
struct Table2d {
    cols: u32,
    data: Vec<f64>,
}

impl Table2d {
    fn new(rows: usize, cols: usize, fill: f64) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "table ids are dense u32s"
        );
        Table2d {
            cols: cols as u32,
            data: vec![fill; rows * cols],
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols as usize + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols as usize + c] = v;
    }
}

/// Fleet size up to which the tag-pair tables are materialised densely.
/// Above it, [`PairTables::Lazy`] evaluates pair powers on demand: the
/// dense n² layout for a 100k-tag campus would need tens of gigabytes,
/// while the lazy path recomputes the *same expressions from the same
/// cached terms* — bitwise-identical f64 results, pinned by the
/// `lazy_pair_tables_match_dense_bitwise` test.
const DENSE_TAG_PAIR_LIMIT: usize = 4096;

/// The closed loop's tag-pair power tables, in one of two layouts chosen
/// by fleet size at build time.
#[derive(Debug, Clone)]
enum PairTables {
    /// Materialised tables, refreshed incrementally on motion/re-tunes —
    /// the O(n²)-memory layout every preset-sized scenario uses.
    Dense {
        /// `[u][t]`: tag `u`'s emission at tag `t`'s detector, dBm.
        tag_at_tag: Table2d,
        /// `[u][c]`: tag `u`'s emission at carrier `c`, dBm.
        tag_at_carrier: Table2d,
        /// `[t][c]`: carrier `c`'s poll at tag `t`'s detector, dBm —
        /// tag-major so a moved tag's refresh writes one contiguous row.
        carrier_at_tag: Table2d,
        /// `[u][t]`: tag `t`'s receive package (antenna gain − tissue) at
        /// tag `u`'s emission frequency, dB.
        pkg_at_tag_freq: Table2d,
        /// `[t][c]`: ditto at carrier `c`'s tone frequency (tag-major).
        pkg_at_carrier_freq: Table2d,
    },
    /// City-scale: pair powers evaluated on demand from the live geometry
    /// and the cached position-independent terms. A capture arbitration
    /// touches a handful of interferer pairs per reception, so paying one
    /// `log10` per query beats holding (and refreshing) n² cells.
    Lazy {
        /// Per tag: its emission frequency, Hz (follows re-tunes).
        emit_freq_hz: Vec<f64>,
        /// Per tag: its package profile (fixed for the run).
        profiles: Vec<TagProfile>,
        /// Per carrier: transmit power, dBm.
        carrier_tx_dbm: Vec<f64>,
        /// Per carrier: tone frequency, Hz.
        carrier_freq_hz: Vec<f64>,
    },
}

/// The closed-loop extension: downlink budgets plus the full emitter ×
/// listener power tables (only built for `MacMode::ClosedLoop` scenarios —
/// open-loop runs never arbitrate at tags or carriers).
#[derive(Debug, Clone)]
struct ClosedLoopTables {
    /// Per tag: carrier poll → the tag's envelope detector.
    poll_budgets: Vec<LinkBudget>,
    /// Per tag: sink ack → the tag's carrier radio.
    ack_budgets: Vec<LinkBudget>,
    /// The tag-pair tables (dense or lazy by fleet size).
    pairs: PairTables,
    /// `[c][r]`: carrier `c`'s poll at receiver `r`, dBm.
    carrier_at_rx: Table2d,
    /// `[c][c2]`: carrier `c`'s poll at carrier `c2`, dBm.
    carrier_at_carrier: Table2d,
    /// `[s][r]`: sink `s`'s ack at receiver `r`, dBm.
    sink_at_rx: Table2d,
    /// `[t][s]`: sink `s`'s ack at tag `t`'s detector, dBm (tag-major).
    sink_at_tag: Table2d,
    /// `[s][c]`: sink `s`'s ack at carrier `c`, dBm.
    sink_at_carrier: Table2d,
    // --- position-independent terms cached for row recomputes ---
    /// Per carrier: path-loss evaluator at its tone frequency.
    pl_carrier: Vec<FastPathLoss>,
    /// Per sink: path-loss evaluator at its downlink frequency.
    pl_sink: Vec<FastPathLoss>,
    /// `[t][s]`: tag `t`'s receive package at sink `s`'s downlink
    /// frequency, dB (tag-major).
    pkg_at_sink_freq: Table2d,
    /// Per sink: the shadowing sigma of its downlink path-loss model — the
    /// value a re-tuned tag's poll/ack budgets pick up.
    sink_sigma_db: Vec<f64>,
}

/// Power a silent external source contributes: effectively nothing.
const SILENT_DBM: f64 = -300.0;

/// Median power of every external coexistence source at every listener
/// kind (only built when the scenario attaches [`crate::coex::CoexSource`]s
/// with real emission bands). Sources never move, so these rows are only
/// refreshed when the *listener* moves.
#[derive(Debug, Clone)]
struct ExtTables {
    /// `at_rx[k][r]`: source `k`'s emission at receiver `r`, dBm.
    at_rx: Table2d,
    /// `at_tag[t][k]`: source `k`'s emission at tag `t`'s detector, dBm
    /// (tag-major, like the closed-loop tables).
    at_tag: Table2d,
    /// `at_carrier[k][c]`: source `k`'s emission at carrier `c`, dBm.
    at_carrier: Table2d,
    /// Per source: path-loss evaluator at its emission frequency (`None`
    /// for silent models).
    pl: Vec<Option<FastPathLoss>>,
    /// Per source: transmit power + antenna gain, dBm.
    eirp_dbm: Vec<f64>,
    /// `pkg_at_ext_freq[t][k]`: tag `t`'s receive package at source `k`'s
    /// emission frequency, dB.
    pkg_at_ext_freq: Table2d,
    /// Per source: where it sits (static for the whole run).
    pos: Vec<Position>,
}

/// Precomputed budgets for every tag, every emitter's interference power at
/// every listener, the live geometry they were computed from, and the
/// cached terms that make row-level recomputation cheap.
#[derive(Debug, Clone)]
pub struct LinkMatrix {
    budgets: Vec<LinkBudget>,
    /// `interference_dbm[tag][rx]`: median power of `tag`'s emission at
    /// receiver `rx`, dBm.
    interference_dbm: Table2d,
    closed_loop: Option<ClosedLoopTables>,
    ext: Option<ExtTables>,
    // --- live geometry ---
    tag_pos: Vec<Position>,
    carrier_pos: Vec<Position>,
    sink_pos: Vec<Position>,
    // --- live assignment ---
    /// Per tag: the receiver it currently delivers to. Initialised from
    /// the scenario; adaptive re-striping re-tunes it through
    /// [`LinkMatrix::retune_tag`].
    tag_rx: Vec<usize>,
    /// Per carrier: the tags it illuminates, hoisted once at build so a
    /// moved or re-tuned carrier refreshes exactly its own members instead
    /// of scanning O(carriers × sinks × tags) — the membership never
    /// changes during a run.
    carrier_tags: Vec<Vec<usize>>,
    /// Per sink: the tags currently delivering to it (in ascending tag
    /// order; follows `tag_rx` across re-stripes).
    sink_tags: Vec<Vec<usize>>,
    // --- position-independent uplink terms ---
    /// Per tag: every term of the two-hop uplink budget except the two
    /// path losses (with the standard 2 dBi listener package).
    up_fixed_db: Vec<f64>,
    /// Per tag: path-loss evaluator of the carrier → tag hop.
    up_pl_src: Vec<FastPathLoss>,
    /// Per tag: path-loss evaluator of the tag → listener hop.
    up_pl_emit: Vec<FastPathLoss>,
    /// Per tag: `up_fixed_db − pl_src(d(carrier, tag))` at the current
    /// geometry — the emitter base every row sharing this tag reuses.
    /// Maintained by `refresh_uplink_row`.
    up_base_db: Vec<f64>,
    /// Entities whose rows are stale, pending a [`LinkMatrix::flush`].
    dirty: Vec<EntityId>,
}

/// The two-hop backscatter model of tag `t`'s uplink, synthesizing `phy`
/// (the scenario's PHY at build time; possibly a re-tuned channel after a
/// re-stripe).
fn uplink_model(scenario: &Scenario, t: usize, phy: &NetPhy) -> BackscatterLink {
    let tag = &scenario.tags[t];
    let carrier = &scenario.carriers[tag.carrier];
    let carrier_freq = carrier.carrier_freq_hz();
    let emission_freq = phy.center_freq_hz(carrier_freq);
    let conversion = match (tag.profile, tag.sideband) {
        // Card-to-card OOK is energy detection of both sidebands.
        (TagProfile::Card, _) => ConversionLoss::double_sideband(),
        (_, SidebandMode::Single) => ConversionLoss::single_sideband(),
        (_, SidebandMode::Double) => ConversionLoss::double_sideband(),
    };
    BackscatterLink {
        tx_power_dbm: carrier.tx_power_dbm,
        tx_antenna: Antenna::monopole_2dbi(),
        tag_antenna: tag.profile.antenna(),
        rx_antenna: Antenna::monopole_2dbi(),
        source_to_tag: LogDistanceModel::indoor_los(carrier_freq),
        tag_to_rx: LogDistanceModel::indoor_los(emission_freq),
        tissue_source_to_tag: tag.profile.tissue(),
        tissue_tag_to_rx: tag.profile.tissue(),
        conversion,
    }
}

/// Every term of the uplink budget except the two path losses, plus the
/// combined shadowing sigma — shared by the build and by
/// [`LinkMatrix::retune_tag`]. Evaluating the full budget at the reference
/// geometry and adding the reference path losses back keeps the fixed part
/// consistent with `BackscatterLink::received_power_dbm` by construction.
fn uplink_fixed_terms(link: &BackscatterLink) -> (f64, f64) {
    let fixed = link.received_power_dbm(1.0, 1.0)
        + link.source_to_tag.path_loss_db(1.0)
        + link.tag_to_rx.path_loss_db(1.0);
    let s1 = link.source_to_tag.shadowing_sigma_db;
    let s2 = link.tag_to_rx.shadowing_sigma_db;
    (fixed, (s1 * s1 + s2 * s2).sqrt())
}

/// The frequency sink `s` transmits its AM downlink on: its own listening
/// band. Envelope-detector sinks (card peers) sit on the carrier tone; the
/// card scenario has a single carrier, so its tone stands in for them.
fn sink_freq_hz(scenario: &Scenario, s: usize) -> f64 {
    scenario.receivers[s].center_freq_hz(scenario.carriers[0].carrier_freq_hz())
}

/// A tag's receive package at `freq_hz`: effective antenna gain minus the
/// tissue covering it (one forward hop), dB — the shared kernel of the
/// dense table fills and the lazy on-demand pair evaluations.
fn rx_pkg_db(profile: TagProfile, freq_hz: f64) -> f64 {
    profile.antenna().effective_gain_dbi() - profile.tissue().attenuation_db(freq_hz)
}

/// Tag `t`'s receive package at `freq_hz`, dB.
fn tag_rx_pkg_db(scenario: &Scenario, t: usize, freq_hz: f64) -> f64 {
    rx_pkg_db(scenario.tags[t].profile, freq_hz)
}

/// Tag `t`'s position-independent uplink terms, one row of the parallel
/// fill in [`LinkMatrix::build`]: the budget skeleton, the fixed dB term
/// and the two cached path-loss models.
struct UplinkRowTerms {
    budget: LinkBudget,
    fixed_db: f64,
    pl_src: FastPathLoss,
    pl_emit: FastPathLoss,
    emit_freq_hz: f64,
}

fn uplink_row_terms(scenario: &Scenario, t: usize) -> Result<UplinkRowTerms, NetError> {
    let tag = &scenario.tags[t];
    let link = uplink_model(scenario, t, &tag.phy);
    link.validate()?;
    let (fixed, sigma) = uplink_fixed_terms(&link);
    let noise = tag.phy.noise_model();
    Ok(UplinkRowTerms {
        budget: LinkBudget {
            median_rssi_dbm: 0.0, // filled by refresh_tag during the build
            shadow_sigma_db: sigma,
            sensitivity_dbm: scenario.receivers[tag.receiver].sensitivity_dbm,
            noise_floor_dbm: noise.noise_floor_dbm(),
        },
        fixed_db: fixed,
        pl_src: FastPathLoss::new(&link.source_to_tag),
        pl_emit: FastPathLoss::new(&link.tag_to_rx),
        emit_freq_hz: link.tag_to_rx.freq_hz,
    })
}

/// Every tag's receive package at one emitter's frequency — one row of
/// the dense `pkg_at_tag_freq` table, filled in parallel by the build.
fn pkg_row(scenario: &Scenario, freq_hz: f64) -> Vec<f64> {
    (0..scenario.tags.len())
        .map(|t| tag_rx_pkg_db(scenario, t, freq_hz))
        .collect()
}

impl LinkMatrix {
    /// Builds the matrix for a validated scenario, caching the
    /// position-independent terms and filling every table through the same
    /// row functions [`LinkMatrix::flush`] uses — so an incremental update
    /// lands on exactly the values a fresh build would produce.
    pub fn build(scenario: &Scenario) -> Result<LinkMatrix, NetError> {
        Self::build_with_layout(scenario, scenario.tags.len() <= DENSE_TAG_PAIR_LIMIT)
    }

    /// [`LinkMatrix::build`] with the tag-pair layout forced — the lazy/
    /// dense equivalence test drives both layouts over the same fleet.
    fn build_with_layout(scenario: &Scenario, dense_pairs: bool) -> Result<LinkMatrix, NetError> {
        let n_tags = scenario.tags.len();
        let n_rx = scenario.receivers.len();
        let n_carriers = scenario.carriers.len();

        let tag_pos: Vec<Position> = scenario.tags.iter().map(|t| t.position()).collect();
        let carrier_pos: Vec<Position> = scenario.carriers.iter().map(|c| c.position()).collect();
        let sink_pos: Vec<Position> = scenario.receivers.iter().map(|r| r.position()).collect();

        // The per-tag rows are independent of each other, so they fill
        // across worker threads through the ordered merge — results come
        // back in tag order, bit-for-bit what the serial loop produced
        // (pinned by `parallel_build_matches_serial_bit_for_bit`).
        let mut budgets = Vec::with_capacity(n_tags);
        let mut up_fixed_db = Vec::with_capacity(n_tags);
        let mut up_pl_src = Vec::with_capacity(n_tags);
        let mut up_pl_emit = Vec::with_capacity(n_tags);
        let mut emit_freqs = Vec::with_capacity(n_tags);
        for row in rayon::det::map_indexed_ordered(n_tags, |t| uplink_row_terms(scenario, t)) {
            let row = row?;
            budgets.push(row.budget);
            up_fixed_db.push(row.fixed_db);
            up_pl_src.push(row.pl_src);
            up_pl_emit.push(row.pl_emit);
            emit_freqs.push(row.emit_freq_hz);
        }

        let closed_loop = match scenario.mac {
            MacMode::OpenLoop => None,
            MacMode::ClosedLoop => {
                let detector_sensitivity = EnvelopeDetector::new(OFDM_SAMPLE_RATE).sensitivity_dbm;
                let envelope_noise = NoiseModel::envelope_detector().noise_floor_dbm();
                let radio_noise = NoiseModel::wifi_dsss().noise_floor_dbm();
                let carrier_models: Vec<LogDistanceModel> = scenario
                    .carriers
                    .iter()
                    .map(|c| LogDistanceModel::indoor_los(c.carrier_freq_hz()))
                    .collect();
                let sink_models: Vec<LogDistanceModel> = (0..n_rx)
                    .map(|s| LogDistanceModel::indoor_los(sink_freq_hz(scenario, s)))
                    .collect();
                let pairs = if dense_pairs {
                    // The n² package-gain table is the expensive part of a
                    // dense build; each row depends only on its emitter's
                    // frequency, so rows fill in parallel and land in
                    // emitter order.
                    let mut pkg_at_tag_freq = Table2d::new(n_tags, n_tags, 0.0);
                    let rows = rayon::det::map_indexed_ordered(n_tags, |u| {
                        pkg_row(scenario, emit_freqs[u])
                    });
                    for (u, row) in rows.into_iter().enumerate() {
                        for (t, v) in row.into_iter().enumerate() {
                            pkg_at_tag_freq.set(u, t, v);
                        }
                    }
                    let mut pkg_at_carrier_freq = Table2d::new(n_tags, n_carriers, 0.0);
                    for t in 0..n_tags {
                        for (c, pl) in carrier_models.iter().enumerate() {
                            pkg_at_carrier_freq.set(t, c, tag_rx_pkg_db(scenario, t, pl.freq_hz));
                        }
                    }
                    PairTables::Dense {
                        tag_at_tag: Table2d::new(n_tags, n_tags, 0.0),
                        tag_at_carrier: Table2d::new(n_tags, n_carriers, 0.0),
                        carrier_at_tag: Table2d::new(n_tags, n_carriers, 0.0),
                        pkg_at_tag_freq,
                        pkg_at_carrier_freq,
                    }
                } else {
                    PairTables::Lazy {
                        emit_freq_hz: emit_freqs.clone(),
                        profiles: scenario.tags.iter().map(|t| t.profile).collect(),
                        carrier_tx_dbm: scenario.carriers.iter().map(|c| c.tx_power_dbm).collect(),
                        carrier_freq_hz: carrier_models.iter().map(|m| m.freq_hz).collect(),
                    }
                };
                let mut pkg_at_sink_freq = Table2d::new(n_tags, n_rx, 0.0);
                for t in 0..n_tags {
                    for (s, pl) in sink_models.iter().enumerate() {
                        pkg_at_sink_freq.set(t, s, tag_rx_pkg_db(scenario, t, pl.freq_hz));
                    }
                }
                let sink_sigma_db: Vec<f64> =
                    sink_models.iter().map(|m| m.shadowing_sigma_db).collect();
                let budget = |sensitivity_dbm: f64, noise_floor_dbm: f64, sigma: f64| LinkBudget {
                    median_rssi_dbm: 0.0, // filled by the row functions below
                    shadow_sigma_db: sigma,
                    sensitivity_dbm,
                    noise_floor_dbm,
                };
                Some(ClosedLoopTables {
                    poll_budgets: scenario
                        .tags
                        .iter()
                        .map(|tag| {
                            budget(
                                detector_sensitivity,
                                envelope_noise,
                                sink_sigma_db[tag.receiver],
                            )
                        })
                        .collect(),
                    ack_budgets: scenario
                        .tags
                        .iter()
                        .map(|tag| {
                            budget(
                                scenario.carriers[tag.carrier].ack_sensitivity_dbm,
                                radio_noise,
                                sink_sigma_db[tag.receiver],
                            )
                        })
                        .collect(),
                    pairs,
                    carrier_at_rx: Table2d::new(n_carriers, n_rx, 0.0),
                    carrier_at_carrier: Table2d::new(n_carriers, n_carriers, 0.0),
                    sink_at_rx: Table2d::new(n_rx, n_rx, 0.0),
                    sink_at_tag: Table2d::new(n_tags, n_rx, 0.0),
                    sink_at_carrier: Table2d::new(n_rx, n_carriers, 0.0),
                    pl_carrier: carrier_models.iter().map(FastPathLoss::new).collect(),
                    pl_sink: sink_models.iter().map(FastPathLoss::new).collect(),
                    pkg_at_sink_freq,
                    sink_sigma_db,
                })
            }
        };

        // External coexistence sources: static emitters whose power at
        // every listener feeds the same capture arbitration as in-model
        // traffic.
        let ext = scenario
            .coex
            .as_ref()
            .filter(|cfg| !cfg.sources.is_empty())
            .map(|cfg| {
                let n_src = cfg.sources.len();
                let mut pkg_at_ext_freq = Table2d::new(n_tags, n_src, 0.0);
                for t in 0..n_tags {
                    for (k, s) in cfg.sources.iter().enumerate() {
                        if let Some(b) = s.model.traffic().band() {
                            pkg_at_ext_freq.set(t, k, tag_rx_pkg_db(scenario, t, b.center_hz));
                        }
                    }
                }
                ExtTables {
                    at_rx: Table2d::new(n_src, n_rx, SILENT_DBM),
                    at_tag: Table2d::new(n_tags, n_src, SILENT_DBM),
                    at_carrier: Table2d::new(n_src, n_carriers, SILENT_DBM),
                    pl: cfg
                        .sources
                        .iter()
                        .map(|s| {
                            s.model.traffic().band().map(|b| {
                                FastPathLoss::new(&LogDistanceModel::indoor_los(b.center_hz))
                            })
                        })
                        .collect(),
                    eirp_dbm: cfg.sources.iter().map(|s| s.tx_power_dbm + 2.0).collect(),
                    pkg_at_ext_freq,
                    pos: cfg.sources.iter().map(|s| s.position).collect(),
                }
            });

        let mut carrier_tags: Vec<Vec<usize>> = vec![Vec::new(); n_carriers];
        for (t, tag) in scenario.tags.iter().enumerate() {
            carrier_tags[tag.carrier].push(t);
        }
        let mut sink_tags: Vec<Vec<usize>> = vec![Vec::new(); n_rx];
        for (t, tag) in scenario.tags.iter().enumerate() {
            sink_tags[tag.receiver].push(t);
        }

        let mut matrix = LinkMatrix {
            budgets,
            interference_dbm: Table2d::new(n_tags, n_rx, 0.0),
            closed_loop,
            ext,
            tag_pos,
            carrier_pos,
            sink_pos,
            tag_rx: scenario.tags.iter().map(|t| t.receiver).collect(),
            carrier_tags,
            sink_tags,
            up_fixed_db,
            up_pl_src,
            up_pl_emit,
            up_base_db: vec![0.0; n_tags],
            dirty: Vec::new(),
        };
        // Every tag's pass writes its own rows; with every peer marked as
        // having its own pass, the columns complete each other exactly
        // once.
        let everyone = vec![true; n_tags];
        for t in 0..n_tags {
            matrix.refresh_tag(scenario, t, &everyone);
        }
        for c in 0..n_carriers {
            matrix.refresh_carrier_rows(scenario, c);
        }
        for s in 0..n_rx {
            matrix.refresh_sink_rows(scenario, s);
        }
        Ok(matrix)
    }

    /// The live position of `id`.
    pub fn position(&self, id: EntityId) -> Position {
        match id {
            EntityId::Tag(t) => self.tag_pos[t],
            EntityId::Carrier(c) => self.carrier_pos[c],
            EntityId::Sink(s) => self.sink_pos[s],
        }
    }

    /// Moves `id` to `position` and marks every row touching it dirty. The
    /// tables keep their old values until [`LinkMatrix::flush`] runs.
    pub fn set_position(&mut self, id: EntityId, position: Position) {
        match id {
            EntityId::Tag(t) => self.tag_pos[t] = position,
            EntityId::Carrier(c) => self.carrier_pos[c] = position,
            EntityId::Sink(s) => self.sink_pos[s] = position,
        }
        self.invalidate_entity(id);
    }

    /// Marks every row touching `id` dirty without moving it (for callers
    /// that batch position writes themselves).
    pub fn invalidate_entity(&mut self, id: EntityId) {
        self.dirty.push(id);
    }

    /// Number of entities with stale rows.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Recomputes the rows of every dirty entity from the cached
    /// position-independent terms and the live geometry, returning how many
    /// entities were refreshed. Each affected row costs a handful of
    /// `log10`s; nothing else of the build is repeated.
    pub fn flush(&mut self, scenario: &Scenario) -> usize {
        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.sort_unstable();
        dirty.dedup();
        let refreshed = dirty.len();
        if refreshed == 0 {
            return 0;
        }
        // Expand the dirty set: a moved carrier changes both hops of every
        // tag it illuminates (uplink base, poll and ack geometry).
        let mut tag_dirty = vec![false; scenario.tags.len()];
        let mut carriers = Vec::new();
        let mut sinks = Vec::new();
        for id in dirty {
            match id {
                EntityId::Tag(t) => tag_dirty[t] = true,
                EntityId::Carrier(c) => {
                    // The hoisted member index: a moved carrier dirties
                    // exactly the tags it illuminates, no fleet scan.
                    for &t in &self.carrier_tags[c] {
                        tag_dirty[t] = true;
                    }
                    carriers.push(c);
                }
                EntityId::Sink(s) => sinks.push(s),
            }
        }
        // Dirty tags first (their passes refresh the cached bases the
        // carrier and sink rows reuse); each pass leaves the cells owned
        // by another dirty tag's pass to that pass, so when the whole
        // fleet moves in one tick no cell is computed twice.
        for t in 0..scenario.tags.len() {
            if tag_dirty[t] {
                self.refresh_tag(scenario, t, &tag_dirty);
            }
        }
        for c in carriers {
            self.refresh_carrier_rows(scenario, c);
        }
        for s in sinks {
            self.refresh_sink_rows(scenario, s);
        }
        refreshed
    }

    /// Tag `t` as **emitter and listener**: recomputes every row and
    /// column touching it — uplink interference and budget, and (closed
    /// loop) its power at every detector/radio, every emitter's power at
    /// its detector, and its poll/ack budgets. Each peer pair costs one
    /// distance and one `log10`, shared between the two directions.
    ///
    /// `peer_dirty[v]` marks tags whose own refresh runs in the same
    /// flush: their `[v][t]` cells are left to that refresh (and the
    /// cached base of a dirty peer may be stale, so it must not be read).
    fn refresh_tag(&mut self, scenario: &Scenario, t: usize, peer_dirty: &[bool]) {
        // The tag being refreshed must be marked as having its own pass —
        // the tag ↔ tag loop below relies on it to skip the self-cell
        // while its row is detached.
        debug_assert!(peer_dirty[t]);
        let tag = &scenario.tags[t];
        let pos = self.tag_pos[t];
        let pl_emit_t = self.up_pl_emit[t];
        // The tag's *live* destination: the scenario's assignment, unless a
        // re-stripe re-tuned it ([`LinkMatrix::retune_tag`]).
        let rx_s = self.tag_rx[t];
        // The carrier → tag hop: the base every cell of this emitter row
        // shares, and (closed loop) the poll distance.
        let hop1 = log_distance(&self.carrier_pos[tag.carrier], &pos);
        let base_t = self.up_fixed_db[t] - self.up_pl_src[t].db_at(hop1.0, hop1.1);
        self.up_base_db[t] = base_t;
        for (s, s_pos) in self.sink_pos.iter().enumerate() {
            let (l, near) = log_distance(&pos, s_pos);
            self.interference_dbm
                .set(t, s, base_t - pl_emit_t.db_at(l, near));
        }
        self.budgets[t].median_rssi_dbm = self.interference_dbm.at(t, rx_s);

        // External sources at this tag's detector (sources are static, so
        // only the tag's own motion dirties this row).
        if let Some(ext) = self.ext.as_mut() {
            for k in 0..ext.pos.len() {
                let Some(pl) = ext.pl[k] else { continue };
                let (l, near) = log_distance(&pos, &ext.pos[k]);
                ext.at_tag.set(
                    t,
                    k,
                    ext.eirp_dbm[k] + ext.pkg_at_ext_freq.at(t, k) - pl.db_at(l, near),
                );
            }
        }

        let Self {
            ref tag_pos,
            ref carrier_pos,
            ref sink_pos,
            up_base_db: ref up_base,
            up_pl_emit: ref pl_emit,
            ref mut closed_loop,
            ..
        } = *self;
        let Some(cl) = closed_loop.as_mut() else {
            return;
        };
        let s = rx_s;
        // Poll: the carrier's AM frame on the tag's service band, one
        // conventional hop into the envelope detector (same distance as
        // the illumination hop above).
        cl.poll_budgets[t].median_rssi_dbm =
            scenario.carriers[tag.carrier].tx_power_dbm + 2.0 + cl.pkg_at_sink_freq.at(t, s)
                - cl.pl_sink[s].db_at(hop1.0, hop1.1);
        // Ack: the sink's AM frame into the carrier's radio. Independent
        // of the tag's own position but cheap, and it keeps every budget
        // of tag `t` fresh through one entry point.
        let ack_hop = log_distance(&sink_pos[s], &carrier_pos[tag.carrier]);
        cl.ack_budgets[t].median_rssi_dbm = scenario.receivers[s].downlink_tx_power_dbm + 2.0 + 2.0
            - cl.pl_sink[s].db_at(ack_hop.0, ack_hop.1);
        // Tag ↔ tag and tag ↔ carrier: only the dense layout materialises
        // these; the lazy layout evaluates pairs on demand from the live
        // geometry, so there is nothing to refresh.
        if let PairTables::Dense {
            tag_at_tag,
            tag_at_carrier,
            carrier_at_tag,
            pkg_at_tag_freq,
            pkg_at_carrier_freq,
        } = &mut cl.pairs
        {
            // Tag ↔ tag: both directions of every pair this pass owns, one
            // log-distance each. A pair of tags that are *both* dirty in
            // this flush belongs to the higher-indexed tag's pass (passes
            // run in ascending order, so the lower peer's base is fresh by
            // then); pairs with an unmoved peer belong to the moved tag.
            // This is the hottest loop of a mobility tick.
            for ((v, v_pos), &dirty) in tag_pos.iter().enumerate().zip(peer_dirty.iter()) {
                if dirty && v > t {
                    continue; // v's own pass owns this pair
                }
                let (l, near) = log_distance(&pos, v_pos);
                tag_at_tag.set(
                    t,
                    v,
                    base_t - pl_emit_t.db_at(l, near) - 2.0 + pkg_at_tag_freq.at(t, v),
                );
                if v != t {
                    tag_at_tag.set(
                        v,
                        t,
                        up_base[v] - pl_emit[v].db_at(l, near) - 2.0 + pkg_at_tag_freq.at(v, t),
                    );
                }
            }
            // Tag ↔ carrier: t's emission at every radio, every poll at
            // t's detector (both tables are tag-major, so these are
            // contiguous row writes).
            for (c, ((c_spec, c_pos), pl_c)) in scenario
                .carriers
                .iter()
                .zip(carrier_pos.iter())
                .zip(cl.pl_carrier.iter())
                .enumerate()
            {
                let (l, near) = log_distance(&pos, c_pos);
                tag_at_carrier.set(t, c, base_t - pl_emit_t.db_at(l, near));
                carrier_at_tag.set(
                    t,
                    c,
                    c_spec.tx_power_dbm + 2.0 + pkg_at_carrier_freq.at(t, c) - pl_c.db_at(l, near),
                );
            }
        }
        // Sink → tag: every ack frame at t's detector.
        for (s2, s2_pos) in sink_pos.iter().enumerate() {
            let (l, near) = log_distance(&pos, s2_pos);
            cl.sink_at_tag.set(
                t,
                s2,
                scenario.receivers[s2].downlink_tx_power_dbm + 2.0 + cl.pkg_at_sink_freq.at(t, s2)
                    - cl.pl_sink[s2].db_at(l, near),
            );
        }
    }

    /// Carrier `c` as an **emitter and listener** (closed loop): its poll
    /// power at every listener, and every emitter's power at its radio.
    fn refresh_carrier_rows(&mut self, scenario: &Scenario, c: usize) {
        let pos = self.carrier_pos[c];
        // External sources at this carrier's radio.
        if let Some(ext) = self.ext.as_mut() {
            for k in 0..ext.pos.len() {
                let Some(pl) = ext.pl[k] else { continue };
                let (l, near) = log_distance(&pos, &ext.pos[k]);
                ext.at_carrier
                    .set(k, c, ext.eirp_dbm[k] + 2.0 - pl.db_at(l, near));
            }
        }
        let Self {
            ref tag_pos,
            ref carrier_pos,
            ref sink_pos,
            ref tag_rx,
            ref carrier_tags,
            up_base_db: ref up_base,
            up_pl_emit: ref pl_emit,
            ref mut closed_loop,
            ..
        } = *self;
        let Some(cl) = closed_loop.as_mut() else {
            return;
        };
        let spec = &scenario.carriers[c];
        // Carrier c's poll at every receiver, and tag ↔ carrier both ways
        // (one log-distance per pair, the same formulas `refresh_tag`
        // writes — bases are fresh: a carrier move marks its tags dirty
        // and their passes run first).
        for (r, r_pos) in sink_pos.iter().enumerate() {
            let (l, near) = log_distance(&pos, r_pos);
            cl.carrier_at_rx.set(
                c,
                r,
                spec.tx_power_dbm + 2.0 + 2.0 - cl.pl_carrier[c].db_at(l, near),
            );
        }
        // Tag ↔ carrier rows only exist in the dense layout (the lazy one
        // reads live geometry on demand).
        if let PairTables::Dense {
            tag_at_carrier,
            carrier_at_tag,
            pkg_at_carrier_freq,
            ..
        } = &mut cl.pairs
        {
            for (t, t_pos) in tag_pos.iter().enumerate() {
                let (l, near) = log_distance(&pos, t_pos);
                carrier_at_tag.set(
                    t,
                    c,
                    spec.tx_power_dbm + 2.0 + pkg_at_carrier_freq.at(t, c)
                        - cl.pl_carrier[c].db_at(l, near),
                );
                tag_at_carrier.set(t, c, up_base[t] - pl_emit[t].db_at(l, near));
            }
        }
        for (c2, c2_pos) in carrier_pos.iter().enumerate() {
            let (l, near) = log_distance(&pos, c2_pos);
            cl.carrier_at_carrier.set(
                c,
                c2,
                spec.tx_power_dbm + 2.0 + 2.0 - cl.pl_carrier[c].db_at(l, near),
            );
            // The reverse direction: c2's poll at the moved carrier c.
            cl.carrier_at_carrier.set(
                c2,
                c,
                scenario.carriers[c2].tx_power_dbm + 2.0 + 2.0 - cl.pl_carrier[c2].db_at(l, near),
            );
        }
        for (s, s_spec) in scenario.receivers.iter().enumerate() {
            let (l, near) = log_distance(&sink_pos[s], &pos);
            cl.sink_at_carrier.set(
                s,
                c,
                s_spec.downlink_tx_power_dbm + 2.0 + 2.0 - cl.pl_sink[s].db_at(l, near),
            );
        }
        // Ack budgets of the tags this carrier serves — the hoisted
        // member index replaces the old O(sinks × tags) fleet scan, which
        // re-striping turned into a hot path.
        for &t in &carrier_tags[c] {
            cl.ack_budgets[t].median_rssi_dbm = cl.sink_at_carrier.at(tag_rx[t], c);
        }
    }

    /// Sink `s` as an **emitter and listener**: every tag's uplink power at
    /// it, and — closed loop — its ack power at every listener.
    fn refresh_sink_rows(&mut self, scenario: &Scenario, s: usize) {
        let pos = self.sink_pos[s];
        for u in 0..scenario.tags.len() {
            let (l, near) = log_distance(&self.tag_pos[u], &pos);
            self.interference_dbm
                .set(u, s, self.up_base_db[u] - self.up_pl_emit[u].db_at(l, near));
            if self.tag_rx[u] == s {
                self.budgets[u].median_rssi_dbm = self.interference_dbm.at(u, s);
            }
        }
        // External sources at this receiver.
        if let Some(ext) = self.ext.as_mut() {
            for k in 0..ext.pos.len() {
                let Some(pl) = ext.pl[k] else { continue };
                let (l, near) = log_distance(&pos, &ext.pos[k]);
                ext.at_rx
                    .set(k, s, ext.eirp_dbm[k] + 2.0 - pl.db_at(l, near));
            }
        }
        let Self {
            ref tag_pos,
            ref carrier_pos,
            ref sink_pos,
            ref sink_tags,
            ref mut closed_loop,
            ..
        } = *self;
        let Some(cl) = closed_loop.as_mut() else {
            return;
        };
        let spec = &scenario.receivers[s];
        for (r, r_pos) in sink_pos.iter().enumerate() {
            let (l, near) = log_distance(&pos, r_pos);
            cl.sink_at_rx.set(
                s,
                r,
                spec.downlink_tx_power_dbm + 2.0 + 2.0 - cl.pl_sink[s].db_at(l, near),
            );
            // The reverse direction: r's ack at the moved sink s.
            cl.sink_at_rx.set(
                r,
                s,
                scenario.receivers[r].downlink_tx_power_dbm + 2.0 + 2.0
                    - cl.pl_sink[r].db_at(l, near),
            );
        }
        for (t, t_pos) in tag_pos.iter().enumerate() {
            let (l, near) = log_distance(&pos, t_pos);
            cl.sink_at_tag.set(
                t,
                s,
                spec.downlink_tx_power_dbm + 2.0 + cl.pkg_at_sink_freq.at(t, s)
                    - cl.pl_sink[s].db_at(l, near),
            );
        }
        for (c, c_pos) in carrier_pos.iter().enumerate() {
            let (l, near) = log_distance(&pos, c_pos);
            cl.sink_at_carrier.set(
                s,
                c,
                spec.downlink_tx_power_dbm + 2.0 + 2.0 - cl.pl_sink[s].db_at(l, near),
            );
            cl.carrier_at_rx.set(
                c,
                s,
                scenario.carriers[c].tx_power_dbm + 2.0 + 2.0 - cl.pl_carrier[c].db_at(l, near),
            );
        }
        // Ack budgets of every tag this sink currently serves (the live
        // assignment index, maintained across re-stripes).
        for &t in &sink_tags[s] {
            cl.ack_budgets[t].median_rssi_dbm = cl.sink_at_carrier.at(s, scenario.tags[t].carrier);
        }
    }

    /// Re-tunes tag `t` to deliver to `new_rx` synthesizing `new_phy` —
    /// the adaptive re-striping entry point ([`crate::coex::ReStripe`]).
    /// Recomputes the position-independent terms that depend on the
    /// emission frequency and destination (uplink fixed terms, path-loss
    /// evaluator, sensitivity/noise, the tag's `pkg_at_tag_freq` emitter
    /// row and the poll/ack shadowing sigmas), then marks the tag dirty:
    /// call [`LinkMatrix::flush`] afterwards to land the new budgets, the
    /// same way a mobility tick does.
    pub fn retune_tag(&mut self, scenario: &Scenario, t: usize, new_rx: usize, new_phy: NetPhy) {
        debug_assert!(
            scenario.receivers[new_rx].accepts(&new_phy),
            "tag {t}: receiver {new_rx} cannot decode the re-tuned PHY"
        );
        let old_rx = self.tag_rx[t];
        if old_rx != new_rx {
            self.sink_tags[old_rx].retain(|&u| u != t);
            let row = &mut self.sink_tags[new_rx];
            let at = row.partition_point(|&u| u < t);
            row.insert(at, t);
            self.tag_rx[t] = new_rx;
        }
        let link = uplink_model(scenario, t, &new_phy);
        let (fixed, sigma) = uplink_fixed_terms(&link);
        self.up_fixed_db[t] = fixed;
        self.up_pl_src[t] = FastPathLoss::new(&link.source_to_tag);
        self.up_pl_emit[t] = FastPathLoss::new(&link.tag_to_rx);
        self.budgets[t].shadow_sigma_db = sigma;
        self.budgets[t].sensitivity_dbm = scenario.receivers[new_rx].sensitivity_dbm;
        self.budgets[t].noise_floor_dbm = new_phy.noise_model().noise_floor_dbm();
        let emission_freq = link.tag_to_rx.freq_hz;
        if let Some(cl) = self.closed_loop.as_mut() {
            match &mut cl.pairs {
                // The tag's emitter row: every peer's receive package at
                // the *new* emission frequency. (The columns `[v][t]` —
                // this tag's package at the peers' frequencies — do not
                // depend on where this tag transmits.)
                PairTables::Dense {
                    pkg_at_tag_freq, ..
                } => {
                    for v in 0..scenario.tags.len() {
                        pkg_at_tag_freq.set(t, v, tag_rx_pkg_db(scenario, v, emission_freq));
                    }
                }
                // The lazy layout derives the packages from the emission
                // frequency at query time.
                PairTables::Lazy { emit_freq_hz, .. } => emit_freq_hz[t] = emission_freq,
            }
            cl.poll_budgets[t].shadow_sigma_db = cl.sink_sigma_db[new_rx];
            cl.ack_budgets[t].shadow_sigma_db = cl.sink_sigma_db[new_rx];
        }
        self.invalidate_entity(EntityId::Tag(t));
    }

    /// The receiver tag `t` currently delivers to (the scenario's
    /// assignment until a re-stripe re-tunes it).
    pub fn tag_receiver(&self, t: usize) -> usize {
        self.tag_rx[t]
    }

    /// The tags carrier `c` illuminates, in ascending index order — the
    /// hoisted membership index (fixed for the run).
    pub fn carrier_tags(&self, c: usize) -> &[usize] {
        &self.carrier_tags[c]
    }

    fn closed(&self) -> &ClosedLoopTables {
        self.closed_loop
            .as_ref()
            .expect("closed-loop tables are only built for MacMode::ClosedLoop scenarios")
    }

    fn ext(&self) -> &ExtTables {
        self.ext
            .as_ref()
            .expect("external power tables are only built for scenarios with coex sources")
    }

    /// The budget of `tag`'s uplink.
    pub fn budget(&self, tag: usize) -> &LinkBudget {
        &self.budgets[tag]
    }

    /// The budget of the poll downlink into `tag`'s envelope detector
    /// (closed-loop scenarios only).
    pub fn poll_budget(&self, tag: usize) -> &LinkBudget {
        &self.closed().poll_budgets[tag]
    }

    /// The budget of the ack downlink from `tag`'s sink into its carrier's
    /// radio (closed-loop scenarios only).
    pub fn ack_budget(&self, tag: usize) -> &LinkBudget {
        &self.closed().ack_budgets[tag]
    }

    /// Median power of `tag`'s emission at receiver `rx`, dBm.
    pub fn interference_dbm(&self, tag: usize, rx: usize) -> f64 {
        self.interference_dbm.at(tag, rx)
    }

    /// Tag `u`'s emission at tag `t`'s detector, dBm — dense table read or
    /// lazy on-demand evaluation of the *same expression* the dense
    /// refresh writes (bitwise-identical: `log_distance` is symmetric and
    /// every cached term is shared).
    fn tag_at_tag_dbm(&self, u: usize, t: usize) -> f64 {
        match &self.closed().pairs {
            PairTables::Dense { tag_at_tag, .. } => tag_at_tag.at(u, t),
            PairTables::Lazy {
                emit_freq_hz,
                profiles,
                ..
            } => {
                let (l, near) = log_distance(&self.tag_pos[u], &self.tag_pos[t]);
                self.up_base_db[u] - self.up_pl_emit[u].db_at(l, near) - 2.0
                    + rx_pkg_db(profiles[t], emit_freq_hz[u])
            }
        }
    }

    /// Tag `u`'s emission at carrier `c`'s radio, dBm.
    fn tag_at_carrier_dbm(&self, u: usize, c: usize) -> f64 {
        match &self.closed().pairs {
            PairTables::Dense { tag_at_carrier, .. } => tag_at_carrier.at(u, c),
            PairTables::Lazy { .. } => {
                let (l, near) = log_distance(&self.tag_pos[u], &self.carrier_pos[c]);
                self.up_base_db[u] - self.up_pl_emit[u].db_at(l, near)
            }
        }
    }

    /// Carrier `p`'s poll at tag `t`'s detector, dBm.
    fn carrier_at_tag_dbm(&self, p: usize, t: usize) -> f64 {
        let cl = self.closed();
        match &cl.pairs {
            PairTables::Dense { carrier_at_tag, .. } => carrier_at_tag.at(t, p),
            PairTables::Lazy {
                profiles,
                carrier_tx_dbm,
                carrier_freq_hz,
                ..
            } => {
                let (l, near) = log_distance(&self.tag_pos[t], &self.carrier_pos[p]);
                carrier_tx_dbm[p] + 2.0 + rx_pkg_db(profiles[t], carrier_freq_hz[p])
                    - cl.pl_carrier[p].db_at(l, near)
            }
        }
    }

    /// Live margin of `tag`'s uplink above its receiver's sensitivity
    /// cliff, dB — the signal [`crate::sched::SchedPolicy::MarginAware`]
    /// polls every carrier slot. Fresh after every mobility-tick
    /// [`LinkMatrix::flush`], so a walking tag's fade shows up within one
    /// tick.
    pub fn uplink_margin_db(&self, tag: usize) -> f64 {
        self.budgets[tag].margin_db()
    }

    /// Median power of emitter `from`'s signal at listener `at`, dBm. Used
    /// for capture arbitration; every pairing except tag → receiver needs
    /// the closed-loop tables.
    pub fn power_dbm(&self, from: Emitter, at: Listener) -> f64 {
        match (from, at) {
            (Emitter::Tag(u), Listener::Receiver(r)) => self.interference_dbm.at(u, r),
            (Emitter::Tag(u), Listener::Tag(t)) => self.tag_at_tag_dbm(u, t),
            (Emitter::Tag(u), Listener::Carrier(c)) => self.tag_at_carrier_dbm(u, c),
            (Emitter::Carrier(p), Listener::Receiver(r)) => self.closed().carrier_at_rx.at(p, r),
            (Emitter::Carrier(p), Listener::Tag(t)) => self.carrier_at_tag_dbm(p, t),
            (Emitter::Carrier(p), Listener::Carrier(c)) => {
                self.closed().carrier_at_carrier.at(p, c)
            }
            (Emitter::Sink(s), Listener::Receiver(r)) => self.closed().sink_at_rx.at(s, r),
            (Emitter::Sink(s), Listener::Tag(t)) => self.closed().sink_at_tag.at(t, s),
            (Emitter::Sink(s), Listener::Carrier(c)) => self.closed().sink_at_carrier.at(s, c),
            (Emitter::External(k), Listener::Receiver(r)) => self.ext().at_rx.at(k, r),
            (Emitter::External(k), Listener::Tag(t)) => self.ext().at_tag.at(t, k),
            (Emitter::External(k), Listener::Carrier(c)) => self.ext().at_carrier.at(k, c),
        }
    }

    /// Number of tags covered.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// True when the scenario had no tags.
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_build_matches_serial_bit_for_bit() {
        // The build's parallel row fills (per-tag uplink terms, dense
        // pkg table) must land exactly what the serial loops produced —
        // equal to the last mantissa bit, both layouts.
        for (scenario, dense) in [
            (Scenario::hospital_ward(24).closed_loop(), true),
            (Scenario::hospital_ward(24).closed_loop(), false),
            (Scenario::congested_ward(16), true),
        ] {
            let matrix = LinkMatrix::build_with_layout(&scenario, dense).unwrap();
            for t in 0..scenario.tags.len() {
                let row = uplink_row_terms(&scenario, t).unwrap();
                let b = (&matrix.budgets[t], &row.budget);
                assert_eq!(b.0.shadow_sigma_db.to_bits(), b.1.shadow_sigma_db.to_bits());
                assert_eq!(b.0.sensitivity_dbm.to_bits(), b.1.sensitivity_dbm.to_bits());
                assert_eq!(b.0.noise_floor_dbm.to_bits(), b.1.noise_floor_dbm.to_bits());
                assert_eq!(matrix.up_fixed_db[t].to_bits(), row.fixed_db.to_bits());
                assert_eq!(
                    matrix.up_pl_src[t].ref_loss_db.to_bits(),
                    row.pl_src.ref_loss_db.to_bits()
                );
                assert_eq!(
                    matrix.up_pl_src[t].half_decade_db.to_bits(),
                    row.pl_src.half_decade_db.to_bits()
                );
                assert_eq!(
                    matrix.up_pl_emit[t].ref_loss_db.to_bits(),
                    row.pl_emit.ref_loss_db.to_bits()
                );
                assert_eq!(
                    matrix.up_pl_emit[t].half_decade_db.to_bits(),
                    row.pl_emit.half_decade_db.to_bits()
                );
            }
            if let Some(PairTables::Dense {
                pkg_at_tag_freq, ..
            }) = matrix.closed_loop.as_ref().map(|cl| &cl.pairs)
            {
                assert!(dense);
                for u in 0..scenario.tags.len() {
                    let freq = uplink_row_terms(&scenario, u).unwrap().emit_freq_hz;
                    for (t, &v) in pkg_row(&scenario, freq).iter().enumerate() {
                        assert_eq!(pkg_at_tag_freq.at(u, t).to_bits(), v.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn nearer_tags_have_stronger_links() {
        let scenario = Scenario::hospital_ward(16);
        let matrix = LinkMatrix::build(&scenario).unwrap();
        assert_eq!(matrix.len(), 16);
        assert!(!matrix.is_empty());
        // Budgets must be position-dependent: not all medians equal.
        let medians: Vec<f64> = (0..16).map(|t| matrix.budget(t).median_rssi_dbm).collect();
        let min = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1.0, "spread {min}..{max}");
    }

    #[test]
    fn interference_weakens_with_receiver_distance() {
        let scenario = Scenario::hospital_ward(4);
        let matrix = LinkMatrix::build(&scenario).unwrap();
        for t in 0..4 {
            let own = matrix.interference_dbm(t, scenario.tags[t].receiver);
            assert!((own - matrix.budget(t).median_rssi_dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn packet_outcomes_follow_the_margin() {
        let strong = LinkBudget {
            median_rssi_dbm: -60.0,
            shadow_sigma_db: 2.8,
            sensitivity_dbm: -88.0,
            noise_floor_dbm: -93.6,
        };
        let weak = LinkBudget {
            median_rssi_dbm: -95.0,
            ..strong
        };
        assert!(strong.margin_db() > 20.0);
        assert!(strong.median_snr_db() > strong.margin_db());
        // detlint: allow(stray_rng): test-local stream sampling packet outcomes, not an engine entity
        let mut rng = SmallRng::seed_from_u64(1);
        let strong_ok = (0..200)
            .filter(|_| strong.packet_outcome(&mut rng).0)
            .count();
        let weak_ok = (0..200).filter(|_| weak.packet_outcome(&mut rng).0).count();
        assert_eq!(strong_ok, 200);
        assert!(weak_ok < 20, "weak link delivered {weak_ok}/200");
    }

    #[test]
    fn closed_loop_budgets_close_the_loop() {
        // The §2.3.3 geometry must make the loop viable: the bedside
        // carrier's poll reaches the implant's −32 dBm envelope detector,
        // and the AP's ack reaches the carrier's conventional radio — while
        // the AP's own AM frame is *below* the detector sensitivity at ward
        // distance, which is exactly why the carrier does the polling.
        let scenario = Scenario::hospital_ward(12).closed_loop();
        let matrix = LinkMatrix::build(&scenario).unwrap();
        for t in 0..scenario.tags.len() {
            let poll = matrix.poll_budget(t);
            assert!(
                poll.margin_db() > 3.0,
                "tag {t}: poll margin {:.1} dB",
                poll.margin_db()
            );
            let ack = matrix.ack_budget(t);
            assert!(
                ack.margin_db() > 10.0,
                "tag {t}: ack margin {:.1} dB",
                ack.margin_db()
            );
            // An AP cannot poll the implant directly across the ward.
            let ap_at_tag =
                matrix.power_dbm(Emitter::Sink(scenario.tags[t].receiver), Listener::Tag(t));
            assert!(
                ap_at_tag < poll.sensitivity_dbm,
                "tag {t}: AP downlink {ap_at_tag:.1} dBm would reach the detector"
            );
        }
    }

    #[test]
    fn power_tables_cover_every_emitter_listener_pair() {
        let scenario = Scenario::contact_lens_fleet(6).closed_loop();
        let matrix = LinkMatrix::build(&scenario).unwrap();
        for from in [Emitter::Tag(1), Emitter::Carrier(0), Emitter::Sink(0)] {
            for at in [
                Listener::Receiver(0),
                Listener::Tag(2),
                Listener::Carrier(1),
            ] {
                let p = matrix.power_dbm(from, at);
                assert!(p.is_finite() && p < 25.0, "{from:?} at {at:?}: {p} dBm");
            }
        }
        // A carrier is loudest at its own tags.
        let near = matrix.power_dbm(Emitter::Carrier(0), Listener::Tag(0));
        let far = matrix.power_dbm(Emitter::Carrier(2), Listener::Tag(0));
        assert!(near > far, "near {near} dBm vs far {far} dBm");
    }

    #[test]
    #[should_panic(expected = "closed-loop tables")]
    fn open_loop_matrices_have_no_downlink_tables() {
        let scenario = Scenario::hospital_ward(4);
        let matrix = LinkMatrix::build(&scenario).unwrap();
        let _ = matrix.poll_budget(0);
    }

    /// Every emitter × listener pairing of two matrices (and every budget)
    /// agrees to within floating-point noise, read through the public
    /// query surface so it covers both pair-table layouts.
    fn assert_tables_match(a: &LinkMatrix, b: &LinkMatrix, what: &str) {
        let close = |x: f64, y: f64| (x - y).abs() < 1e-9;
        let n_rx = a.sink_pos.len();
        let n_carriers = a.carrier_pos.len();
        for t in 0..a.len() {
            assert!(
                close(a.budget(t).median_rssi_dbm, b.budget(t).median_rssi_dbm),
                "{what}: uplink budget of tag {t}"
            );
            for r in 0..n_rx {
                assert!(
                    close(a.interference_dbm(t, r), b.interference_dbm(t, r)),
                    "{what}: interference {t}→{r}"
                );
            }
        }
        if a.closed_loop.is_none() {
            return;
        }
        for t in 0..a.len() {
            assert!(
                close(
                    a.poll_budget(t).median_rssi_dbm,
                    b.poll_budget(t).median_rssi_dbm
                ),
                "{what}: poll budget of tag {t}"
            );
            assert!(
                close(
                    a.ack_budget(t).median_rssi_dbm,
                    b.ack_budget(t).median_rssi_dbm
                ),
                "{what}: ack budget of tag {t}"
            );
        }
        let mut emitters: Vec<Emitter> = Vec::new();
        let mut listeners: Vec<Listener> = Vec::new();
        for t in 0..a.len() {
            emitters.push(Emitter::Tag(t));
            listeners.push(Listener::Tag(t));
        }
        for c in 0..n_carriers {
            emitters.push(Emitter::Carrier(c));
            listeners.push(Listener::Carrier(c));
        }
        for s in 0..n_rx {
            emitters.push(Emitter::Sink(s));
            listeners.push(Listener::Receiver(s));
        }
        for &from in &emitters {
            for &at in &listeners {
                let (pa, pb) = (a.power_dbm(from, at), b.power_dbm(from, at));
                assert!(close(pa, pb), "{what}: {from:?} at {at:?}: {pa} vs {pb}");
            }
        }
    }

    #[test]
    fn lazy_pair_tables_match_dense_bitwise() {
        use interscatter_wifi::dot11b::DsssRate;
        // The on-demand pair evaluation must reproduce the dense tables
        // bit for bit — same expressions over the same cached terms — and
        // keep doing so through motion and a re-stripe re-tune.
        for base in [
            Scenario::hospital_ward(10).closed_loop(),
            Scenario::congested_ward(12).closed_loop(),
        ] {
            let mut dense = LinkMatrix::build_with_layout(&base, true).unwrap();
            let mut lazy = LinkMatrix::build_with_layout(&base, false).unwrap();
            let check = |dense: &LinkMatrix, lazy: &LinkMatrix, when: &str| {
                for u in 0..base.tags.len() {
                    for t in 0..base.tags.len() {
                        let (d, l) = (
                            dense.power_dbm(Emitter::Tag(u), Listener::Tag(t)),
                            lazy.power_dbm(Emitter::Tag(u), Listener::Tag(t)),
                        );
                        assert_eq!(d.to_bits(), l.to_bits(), "{when}: tag {u} at tag {t}");
                    }
                    for c in 0..base.carriers.len() {
                        let (d, l) = (
                            dense.power_dbm(Emitter::Tag(u), Listener::Carrier(c)),
                            lazy.power_dbm(Emitter::Tag(u), Listener::Carrier(c)),
                        );
                        assert_eq!(d.to_bits(), l.to_bits(), "{when}: tag {u} at carrier {c}");
                        let (d, l) = (
                            dense.power_dbm(Emitter::Carrier(c), Listener::Tag(u)),
                            lazy.power_dbm(Emitter::Carrier(c), Listener::Tag(u)),
                        );
                        assert_eq!(d.to_bits(), l.to_bits(), "{when}: carrier {c} at tag {u}");
                    }
                }
            };
            check(&dense, &lazy, "fresh build");

            let moved = Position::new(4.5, 6.5, 1.1);
            dense.set_position(EntityId::Tag(0), moved);
            lazy.set_position(EntityId::Tag(0), moved);
            dense.flush(&base);
            lazy.flush(&base);
            check(&dense, &lazy, "after a move");

            let new_phy = NetPhy::Wifi {
                rate: DsssRate::Mbps2,
                channel: 1,
            };
            dense.retune_tag(&base, 1, 0, new_phy);
            lazy.retune_tag(&base, 1, 0, new_phy);
            dense.flush(&base);
            lazy.flush(&base);
            check(&dense, &lazy, "after a re-tune");
        }
    }

    #[test]
    fn incremental_update_matches_full_rebuild() {
        // Move a tag, a carrier and a sink through the incremental path and
        // through a from-scratch build of the moved scenario: every table
        // must agree.
        for base in [
            Scenario::hospital_ward(10),
            Scenario::hospital_ward(10).closed_loop(),
            Scenario::card_to_card_room(5).closed_loop(),
        ] {
            let mut matrix = LinkMatrix::build(&base).unwrap();
            let mut moved = base.clone();
            let new_tag_pos = Position::new(4.5, 6.5, 1.1);
            let new_carrier_pos = Position::new(2.0, 2.5, 1.0);
            let new_sink_pos = Position::new(9.0, 1.0, 2.0);
            moved.place_tag(0, new_tag_pos);
            moved.place_carrier(0, new_carrier_pos);
            moved.place_sink(0, new_sink_pos);

            matrix.set_position(EntityId::Tag(0), new_tag_pos);
            matrix.set_position(EntityId::Carrier(0), new_carrier_pos);
            matrix.set_position(EntityId::Sink(0), new_sink_pos);
            assert_eq!(matrix.dirty_len(), 3);
            assert_eq!(matrix.flush(&base), 3);
            assert_eq!(matrix.dirty_len(), 0);

            let rebuilt = LinkMatrix::build(&moved).unwrap();
            assert_tables_match(&matrix, &rebuilt, &base.name);
        }
    }

    #[test]
    fn moving_a_tag_changes_its_decode_probability() {
        // Regression for the stale-geometry bug: a repositioned tag must
        // see a different link budget (and hence decode probability) — the
        // matrix can no longer be silently reused with old geometry,
        // because positions are only reachable through the dirty-marking
        // setter.
        let scenario = Scenario::hospital_ward(4);
        let mut matrix = LinkMatrix::build(&scenario).unwrap();
        let before = *matrix.budget(0);
        // Walk the tag away from its carrier and across the ward.
        let far = Position::new(11.5, 0.5, 1.0);
        matrix.set_position(EntityId::Tag(0), far);
        matrix.flush(&scenario);
        let after = *matrix.budget(0);
        assert!(
            after.median_rssi_dbm < before.median_rssi_dbm - 10.0,
            "median {} → {} dBm",
            before.median_rssi_dbm,
            after.median_rssi_dbm
        );
        // The decode probability itself moves: the strong bedside link
        // delivers essentially always, the walked-away link does not.
        let decode_rate = |budget: &LinkBudget| {
            // detlint: allow(stray_rng): test-local stream sampling packet outcomes, not an engine entity
            let mut rng = SmallRng::seed_from_u64(9);
            (0..500)
                .filter(|_| budget.packet_outcome(&mut rng).0)
                .count() as f64
                / 500.0
        };
        let (p_before, p_after) = (decode_rate(&before), decode_rate(&after));
        assert!(
            p_before - p_after > 0.3,
            "decode probability {p_before} → {p_after}"
        );
    }

    #[test]
    fn retune_matches_a_rebuilt_scenario() {
        use interscatter_wifi::dot11b::DsssRate;
        // Re-tuning a tag through the incremental path (the re-striping
        // entry point) must land on exactly the tables a from-scratch
        // build of the re-tuned scenario produces — including after a
        // subsequent carrier move, which exercises the hoisted
        // carrier → tags index against live assignments.
        for base in [
            Scenario::hospital_ward(10),
            Scenario::hospital_ward(10).closed_loop(),
        ] {
            let mut matrix = LinkMatrix::build(&base).unwrap();
            // Tag 1 delivers to AP 1 (channel 6); re-tune it to AP 0
            // (channel 1), as a stripe-1 → stripe-0 re-stripe would.
            let new_phy = NetPhy::Wifi {
                rate: DsssRate::Mbps2,
                channel: 1,
            };
            matrix.retune_tag(&base, 1, 0, new_phy);
            assert_eq!(matrix.tag_receiver(1), 0);
            let moved = Position::new(3.0, 2.0, 1.0);
            matrix.set_position(EntityId::Carrier(0), moved);
            matrix.flush(&base);

            let mut retuned = base.clone();
            retuned.tags[1].receiver = 0;
            retuned.tags[1].phy = new_phy;
            retuned.place_carrier(0, moved);
            retuned.validate().unwrap();
            let rebuilt = LinkMatrix::build(&retuned).unwrap();
            assert_tables_match(&matrix, &rebuilt, &base.name);
            // The sigma/sensitivity terms re-derive too, not just medians.
            let (a, b) = (matrix.budget(1), rebuilt.budget(1));
            assert!((a.shadow_sigma_db - b.shadow_sigma_db).abs() < 1e-9);
            assert!((a.sensitivity_dbm - b.sensitivity_dbm).abs() < 1e-9);
            assert!((a.noise_floor_dbm - b.noise_floor_dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn carrier_tags_index_matches_the_fleet_scan() {
        let scenario = Scenario::hospital_ward(11);
        let matrix = LinkMatrix::build(&scenario).unwrap();
        for c in 0..scenario.carriers.len() {
            let scanned: Vec<usize> = scenario
                .tags
                .iter()
                .enumerate()
                .filter(|(_, tag)| tag.carrier == c)
                .map(|(t, _)| t)
                .collect();
            assert_eq!(matrix.carrier_tags(c), scanned.as_slice());
        }
        for (t, tag) in scenario.tags.iter().enumerate() {
            assert_eq!(matrix.tag_receiver(t), tag.receiver);
        }
    }

    #[test]
    fn external_sources_feed_the_power_tables() {
        let scenario = Scenario::congested_ward(12).closed_loop();
        let matrix = LinkMatrix::build(&scenario).unwrap();
        // The hidden source sits beside the channel-6 AP (index 1): its
        // power there dwarfs its power at the far channel-1 AP.
        let near = matrix.power_dbm(Emitter::External(0), Listener::Receiver(1));
        let far = matrix.power_dbm(Emitter::External(0), Listener::Receiver(0));
        assert!(near.is_finite() && far.is_finite());
        assert!(near > far + 3.0, "near {near} dBm vs far {far} dBm");
        // Tag and carrier listeners are covered too (closed loop).
        for at in [Listener::Tag(0), Listener::Carrier(0)] {
            let p = matrix.power_dbm(Emitter::External(0), at);
            assert!(p.is_finite() && p < 25.0, "{at:?}: {p} dBm");
        }
        // A silent (constant) source contributes effectively nothing.
        let silent = Scenario::hospital_ward(4).with_constant_coex();
        let m2 = LinkMatrix::build(&silent).unwrap();
        let p = m2.power_dbm(Emitter::External(1), Listener::Receiver(1));
        assert!(p < -250.0, "silent source at {p} dBm");
    }

    #[test]
    fn flush_without_moves_is_a_no_op() {
        let scenario = Scenario::contact_lens_fleet(4).closed_loop();
        let mut matrix = LinkMatrix::build(&scenario).unwrap();
        let reference = matrix.clone();
        assert_eq!(matrix.flush(&scenario), 0);
        // Invalidating without moving recomputes in place to the same
        // values.
        matrix.invalidate_entity(EntityId::Tag(1));
        matrix.invalidate_entity(EntityId::Tag(1));
        assert_eq!(matrix.flush(&scenario), 1, "duplicates must dedup");
        assert_tables_match(&matrix, &reference, "no-op flush");
    }
}
