//! Position-dependent link budgets, precomputed once per scenario.
//!
//! Every tag's uplink is the two-hop backscatter budget of
//! [`interscatter_channel::link::BackscatterLink`]: carrier → tag (at the
//! BLE tone frequency, through the tag's tissue) and tag → receiver (at the
//! synthesized packet's frequency). The engine draws per-packet lognormal
//! shadowing around the median, so packet success is a function of where
//! the entities sit — near tags see PER ≈ 0, far tags fall off the
//! sensitivity cliff, exactly like the range curves of Figs. 10/14/15/16
//! but evaluated across a whole fleet at once.
//!
//! The matrix also precomputes every tag's signal strength at every *other*
//! receiver: that is what turns an overlapping transmission into a
//! measurable interferer during collision arbitration (capture effect).
//!
//! For closed-loop scenarios ([`crate::mac::MacMode::ClosedLoop`]) the
//! matrix additionally holds the **downlink** budgets of the poll/ack MAC:
//!
//! * a *poll* budget per tag — the carrier's AM-OFDM frame, one
//!   conventional forward hop into the tag's passive envelope detector
//!   (−32 dBm sensitivity, §4.4 / Fig. 13, the regime `sim::downlink`
//!   reproduces at the waveform level), and
//! * an *ack* budget per tag — the sink device's AM-OFDM frame decoded by
//!   the carrier's conventional radio (the §2.3.3 helper device, which
//!   relays the outcome to its tag over the short illumination-range hop),
//!
//! plus the median power of **every** emitter kind (tag, carrier, sink) at
//! every listener kind (receiver, tag, carrier), so downlink collisions are
//! arbitrated with the same capture rule as the uplink.

use crate::entities::TagProfile;
use crate::mac::MacMode;
use crate::medium::Emitter;
use crate::scenario::Scenario;
use crate::NetError;
use interscatter_backscatter::envelope::EnvelopeDetector;
use interscatter_backscatter::tag::SidebandMode;
use interscatter_channel::antenna::Antenna;
use interscatter_channel::link::{BackscatterLink, ConversionLoss};
use interscatter_channel::noise::NoiseModel;
use interscatter_channel::pathloss::{gaussian, LogDistanceModel};
use interscatter_wifi::ofdm::OFDM_SAMPLE_RATE;
use rand::Rng;

/// The budget of one point-to-point reception: a tag's uplink to its
/// destination receiver, a poll into a tag's envelope detector, or an ack
/// into a carrier's radio.
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// Median RSSI at the destination, dBm.
    pub median_rssi_dbm: f64,
    /// Combined lognormal shadowing standard deviation of the path, dB.
    pub shadow_sigma_db: f64,
    /// The destination's sensitivity, dBm.
    pub sensitivity_dbm: f64,
    /// The destination's noise floor, dBm.
    pub noise_floor_dbm: f64,
}

impl LinkBudget {
    /// Median SNR at the destination receiver, dB.
    pub fn median_snr_db(&self) -> f64 {
        self.median_rssi_dbm - self.noise_floor_dbm
    }

    /// Median margin above the sensitivity cliff, dB.
    pub fn margin_db(&self) -> f64 {
        self.median_rssi_dbm - self.sensitivity_dbm
    }

    /// Draws one packet's shadowed RSSI and whether the receiver decodes
    /// it, `(ok, rssi_dbm)`.
    pub fn packet_outcome<R: Rng>(&self, rng: &mut R) -> (bool, f64) {
        let rssi = self.median_rssi_dbm + gaussian(rng) * self.shadow_sigma_db;
        (rssi >= self.sensitivity_dbm, rssi)
    }
}

/// Where a signal is being received during collision arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Listener {
    /// A sink receiver decoding a tag's uplink packet.
    Receiver(usize),
    /// A tag's envelope detector decoding a poll.
    Tag(usize),
    /// A carrier's radio decoding an ack.
    Carrier(usize),
}

/// The closed-loop extension: downlink budgets plus the full emitter ×
/// listener power tables (only built for `MacMode::ClosedLoop` scenarios —
/// open-loop runs never arbitrate at tags or carriers).
#[derive(Debug, Clone)]
struct ClosedLoopTables {
    /// Per tag: carrier poll → the tag's envelope detector.
    poll_budgets: Vec<LinkBudget>,
    /// Per tag: sink ack → the tag's carrier radio.
    ack_budgets: Vec<LinkBudget>,
    /// `tag_at_tag[u][t]`: tag `u`'s emission at tag `t`'s detector, dBm.
    tag_at_tag: Vec<Vec<f64>>,
    /// `tag_at_carrier[u][c]`: tag `u`'s emission at carrier `c`, dBm.
    tag_at_carrier: Vec<Vec<f64>>,
    /// `carrier_at[c][..]`: carrier `c`'s poll at every listener, dBm.
    carrier_at_rx: Vec<Vec<f64>>,
    carrier_at_tag: Vec<Vec<f64>>,
    carrier_at_carrier: Vec<Vec<f64>>,
    /// `sink_at[s][..]`: sink `s`'s ack at every listener, dBm.
    sink_at_rx: Vec<Vec<f64>>,
    sink_at_tag: Vec<Vec<f64>>,
    sink_at_carrier: Vec<Vec<f64>>,
}

/// Precomputed budgets for every tag, and every emitter's interference
/// power at every listener.
#[derive(Debug, Clone)]
pub struct LinkMatrix {
    budgets: Vec<LinkBudget>,
    /// `interference_dbm[tag][rx]`: median power of `tag`'s emission at
    /// receiver `rx`, dBm.
    interference_dbm: Vec<Vec<f64>>,
    closed_loop: Option<ClosedLoopTables>,
}

/// The two-hop backscatter model of tag `t`'s uplink.
fn uplink_model(scenario: &Scenario, t: usize) -> BackscatterLink {
    let tag = &scenario.tags[t];
    let carrier = &scenario.carriers[tag.carrier];
    let carrier_freq = carrier.carrier_freq_hz();
    let emission_freq = tag.phy.center_freq_hz(carrier_freq);
    let conversion = match (tag.profile, tag.sideband) {
        // Card-to-card OOK is energy detection of both sidebands.
        (TagProfile::Card, _) => ConversionLoss::double_sideband(),
        (_, SidebandMode::Single) => ConversionLoss::single_sideband(),
        (_, SidebandMode::Double) => ConversionLoss::double_sideband(),
    };
    BackscatterLink {
        tx_power_dbm: carrier.tx_power_dbm,
        tx_antenna: Antenna::monopole_2dbi(),
        tag_antenna: tag.profile.antenna(),
        rx_antenna: Antenna::monopole_2dbi(),
        source_to_tag: LogDistanceModel::indoor_los(carrier_freq),
        tag_to_rx: LogDistanceModel::indoor_los(emission_freq),
        tissue_source_to_tag: tag.profile.tissue(),
        tissue_tag_to_rx: tag.profile.tissue(),
        conversion,
    }
}

/// Median power of a conventional one-hop transmission (2 dBi transmit
/// antenna) at a listener with the given receive package, dBm.
fn one_hop_dbm(
    tx_power_dbm: f64,
    freq_hz: f64,
    distance_m: f64,
    rx_gain_dbi: f64,
    rx_tissue_db: f64,
) -> f64 {
    tx_power_dbm + 2.0 + rx_gain_dbi
        - LogDistanceModel::indoor_los(freq_hz).path_loss_db(distance_m)
        - rx_tissue_db
}

/// The frequency sink `s` transmits its AM downlink on: its own listening
/// band. Envelope-detector sinks (card peers) sit on the carrier tone; the
/// card scenario has a single carrier, so its tone stands in for them.
fn sink_freq_hz(scenario: &Scenario, s: usize) -> f64 {
    scenario.receivers[s].center_freq_hz(scenario.carriers[0].carrier_freq_hz())
}

impl LinkMatrix {
    /// Builds the matrix for a validated scenario.
    pub fn build(scenario: &Scenario) -> Result<LinkMatrix, NetError> {
        let mut budgets = Vec::with_capacity(scenario.tags.len());
        let mut interference_dbm = Vec::with_capacity(scenario.tags.len());
        for (t, tag) in scenario.tags.iter().enumerate() {
            let carrier = &scenario.carriers[tag.carrier];
            let link = uplink_model(scenario, t);
            link.validate()?;
            let d_carrier_tag = carrier.position.distance_m(&tag.position);
            let noise = tag.phy.noise_model();

            let mut row = Vec::with_capacity(scenario.receivers.len());
            for rx in &scenario.receivers {
                let d_tag_rx = tag.position.distance_m(&rx.position);
                row.push(link.received_power_dbm(d_carrier_tag, d_tag_rx));
            }

            let destination = &scenario.receivers[tag.receiver];
            let s1 = link.source_to_tag.shadowing_sigma_db;
            let s2 = link.tag_to_rx.shadowing_sigma_db;
            budgets.push(LinkBudget {
                median_rssi_dbm: row[tag.receiver],
                shadow_sigma_db: (s1 * s1 + s2 * s2).sqrt(),
                sensitivity_dbm: destination.sensitivity_dbm,
                noise_floor_dbm: noise.noise_floor_dbm(),
            });
            interference_dbm.push(row);
        }
        let closed_loop = match scenario.mac {
            MacMode::OpenLoop => None,
            MacMode::ClosedLoop => Some(Self::build_closed_loop(scenario)),
        };
        Ok(LinkMatrix {
            budgets,
            interference_dbm,
            closed_loop,
        })
    }

    /// Builds the downlink budgets and the emitter × listener power tables.
    fn build_closed_loop(scenario: &Scenario) -> ClosedLoopTables {
        let detector_sensitivity = EnvelopeDetector::new(OFDM_SAMPLE_RATE).sensitivity_dbm;
        let envelope_noise = NoiseModel::envelope_detector().noise_floor_dbm();
        let radio_noise = NoiseModel::wifi_dsss().noise_floor_dbm();
        // Per-tag receive package: the antenna the envelope detector hangs
        // off, plus the tissue covering it (one forward hop).
        let tag_rx = |t: usize, freq_hz: f64| -> (f64, f64) {
            let profile = scenario.tags[t].profile;
            (
                profile.antenna().effective_gain_dbi(),
                profile.tissue().attenuation_db(freq_hz),
            )
        };

        let mut poll_budgets = Vec::with_capacity(scenario.tags.len());
        let mut ack_budgets = Vec::with_capacity(scenario.tags.len());
        for (t, tag) in scenario.tags.iter().enumerate() {
            let carrier = &scenario.carriers[tag.carrier];
            let sink = &scenario.receivers[tag.receiver];
            let freq = sink_freq_hz(scenario, tag.receiver);
            let sigma = LogDistanceModel::indoor_los(freq).shadowing_sigma_db;
            let (gain, tissue) = tag_rx(t, freq);
            poll_budgets.push(LinkBudget {
                median_rssi_dbm: one_hop_dbm(
                    carrier.tx_power_dbm,
                    freq,
                    carrier.position.distance_m(&tag.position),
                    gain,
                    tissue,
                ),
                shadow_sigma_db: sigma,
                sensitivity_dbm: detector_sensitivity,
                noise_floor_dbm: envelope_noise,
            });
            ack_budgets.push(LinkBudget {
                median_rssi_dbm: one_hop_dbm(
                    sink.downlink_tx_power_dbm,
                    freq,
                    sink.position.distance_m(&carrier.position),
                    2.0,
                    0.0,
                ),
                shadow_sigma_db: sigma,
                sensitivity_dbm: carrier.ack_sensitivity_dbm,
                noise_floor_dbm: radio_noise,
            });
        }

        // Tag emissions at tags and carriers: the two-hop backscatter model
        // with the victim's receive package swapped in for the built-in
        // 2 dBi monopole.
        let mut tag_at_tag = Vec::with_capacity(scenario.tags.len());
        let mut tag_at_carrier = Vec::with_capacity(scenario.tags.len());
        for (u, tag) in scenario.tags.iter().enumerate() {
            let link = uplink_model(scenario, u);
            let d1 = scenario.carriers[tag.carrier]
                .position
                .distance_m(&tag.position);
            let freq = link.tag_to_rx.freq_hz;
            tag_at_tag.push(
                (0..scenario.tags.len())
                    .map(|t| {
                        let d2 = tag.position.distance_m(&scenario.tags[t].position);
                        let (gain, tissue) = tag_rx(t, freq);
                        link.received_power_dbm(d1, d2) - 2.0 + gain - tissue
                    })
                    .collect(),
            );
            tag_at_carrier.push(
                scenario
                    .carriers
                    .iter()
                    .map(|c| link.received_power_dbm(d1, tag.position.distance_m(&c.position)))
                    .collect(),
            );
        }

        // Poll and ack frames are conventional one-hop emissions; the tone
        // (respectively sink) frequency stands in for the per-poll channel,
        // an error well under a dB across the 2.4 GHz band.
        let one_hop_rows = |tx_power: f64, freq: f64, from: crate::entities::Position| {
            let at_rx: Vec<f64> = scenario
                .receivers
                .iter()
                .map(|r| one_hop_dbm(tx_power, freq, from.distance_m(&r.position), 2.0, 0.0))
                .collect();
            let at_tag: Vec<f64> = (0..scenario.tags.len())
                .map(|t| {
                    let (gain, tissue) = tag_rx(t, freq);
                    one_hop_dbm(
                        tx_power,
                        freq,
                        from.distance_m(&scenario.tags[t].position),
                        gain,
                        tissue,
                    )
                })
                .collect();
            let at_carrier: Vec<f64> = scenario
                .carriers
                .iter()
                .map(|c| one_hop_dbm(tx_power, freq, from.distance_m(&c.position), 2.0, 0.0))
                .collect();
            (at_rx, at_tag, at_carrier)
        };

        let mut carrier_at_rx = Vec::new();
        let mut carrier_at_tag = Vec::new();
        let mut carrier_at_carrier = Vec::new();
        for c in &scenario.carriers {
            let (rx, tag, carrier) = one_hop_rows(c.tx_power_dbm, c.carrier_freq_hz(), c.position);
            carrier_at_rx.push(rx);
            carrier_at_tag.push(tag);
            carrier_at_carrier.push(carrier);
        }
        let mut sink_at_rx = Vec::new();
        let mut sink_at_tag = Vec::new();
        let mut sink_at_carrier = Vec::new();
        for (s, sink) in scenario.receivers.iter().enumerate() {
            let (rx, tag, carrier) = one_hop_rows(
                sink.downlink_tx_power_dbm,
                sink_freq_hz(scenario, s),
                sink.position,
            );
            sink_at_rx.push(rx);
            sink_at_tag.push(tag);
            sink_at_carrier.push(carrier);
        }

        ClosedLoopTables {
            poll_budgets,
            ack_budgets,
            tag_at_tag,
            tag_at_carrier,
            carrier_at_rx,
            carrier_at_tag,
            carrier_at_carrier,
            sink_at_rx,
            sink_at_tag,
            sink_at_carrier,
        }
    }

    fn closed(&self) -> &ClosedLoopTables {
        self.closed_loop
            .as_ref()
            .expect("closed-loop tables are only built for MacMode::ClosedLoop scenarios")
    }

    /// The budget of `tag`'s uplink.
    pub fn budget(&self, tag: usize) -> &LinkBudget {
        &self.budgets[tag]
    }

    /// The budget of the poll downlink into `tag`'s envelope detector
    /// (closed-loop scenarios only).
    pub fn poll_budget(&self, tag: usize) -> &LinkBudget {
        &self.closed().poll_budgets[tag]
    }

    /// The budget of the ack downlink from `tag`'s sink into its carrier's
    /// radio (closed-loop scenarios only).
    pub fn ack_budget(&self, tag: usize) -> &LinkBudget {
        &self.closed().ack_budgets[tag]
    }

    /// Median power of `tag`'s emission at receiver `rx`, dBm.
    pub fn interference_dbm(&self, tag: usize, rx: usize) -> f64 {
        self.interference_dbm[tag][rx]
    }

    /// Median power of emitter `from`'s signal at listener `at`, dBm. Used
    /// for capture arbitration; every pairing except tag → receiver needs
    /// the closed-loop tables.
    pub fn power_dbm(&self, from: Emitter, at: Listener) -> f64 {
        match (from, at) {
            (Emitter::Tag(u), Listener::Receiver(r)) => self.interference_dbm[u][r],
            (Emitter::Tag(u), Listener::Tag(t)) => self.closed().tag_at_tag[u][t],
            (Emitter::Tag(u), Listener::Carrier(c)) => self.closed().tag_at_carrier[u][c],
            (Emitter::Carrier(p), Listener::Receiver(r)) => self.closed().carrier_at_rx[p][r],
            (Emitter::Carrier(p), Listener::Tag(t)) => self.closed().carrier_at_tag[p][t],
            (Emitter::Carrier(p), Listener::Carrier(c)) => self.closed().carrier_at_carrier[p][c],
            (Emitter::Sink(s), Listener::Receiver(r)) => self.closed().sink_at_rx[s][r],
            (Emitter::Sink(s), Listener::Tag(t)) => self.closed().sink_at_tag[s][t],
            (Emitter::Sink(s), Listener::Carrier(c)) => self.closed().sink_at_carrier[s][c],
        }
    }

    /// Number of tags covered.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// True when the scenario had no tags.
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn nearer_tags_have_stronger_links() {
        let scenario = Scenario::hospital_ward(16);
        let matrix = LinkMatrix::build(&scenario).unwrap();
        assert_eq!(matrix.len(), 16);
        assert!(!matrix.is_empty());
        // Budgets must be position-dependent: not all medians equal.
        let medians: Vec<f64> = (0..16).map(|t| matrix.budget(t).median_rssi_dbm).collect();
        let min = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1.0, "spread {min}..{max}");
    }

    #[test]
    fn interference_weakens_with_receiver_distance() {
        let scenario = Scenario::hospital_ward(4);
        let matrix = LinkMatrix::build(&scenario).unwrap();
        for t in 0..4 {
            let own = matrix.interference_dbm(t, scenario.tags[t].receiver);
            assert!((own - matrix.budget(t).median_rssi_dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn packet_outcomes_follow_the_margin() {
        let strong = LinkBudget {
            median_rssi_dbm: -60.0,
            shadow_sigma_db: 2.8,
            sensitivity_dbm: -88.0,
            noise_floor_dbm: -93.6,
        };
        let weak = LinkBudget {
            median_rssi_dbm: -95.0,
            ..strong
        };
        assert!(strong.margin_db() > 20.0);
        assert!(strong.median_snr_db() > strong.margin_db());
        let mut rng = SmallRng::seed_from_u64(1);
        let strong_ok = (0..200)
            .filter(|_| strong.packet_outcome(&mut rng).0)
            .count();
        let weak_ok = (0..200).filter(|_| weak.packet_outcome(&mut rng).0).count();
        assert_eq!(strong_ok, 200);
        assert!(weak_ok < 20, "weak link delivered {weak_ok}/200");
    }

    #[test]
    fn closed_loop_budgets_close_the_loop() {
        // The §2.3.3 geometry must make the loop viable: the bedside
        // carrier's poll reaches the implant's −32 dBm envelope detector,
        // and the AP's ack reaches the carrier's conventional radio — while
        // the AP's own AM frame is *below* the detector sensitivity at ward
        // distance, which is exactly why the carrier does the polling.
        let scenario = Scenario::hospital_ward(12).closed_loop();
        let matrix = LinkMatrix::build(&scenario).unwrap();
        for t in 0..scenario.tags.len() {
            let poll = matrix.poll_budget(t);
            assert!(
                poll.margin_db() > 3.0,
                "tag {t}: poll margin {:.1} dB",
                poll.margin_db()
            );
            let ack = matrix.ack_budget(t);
            assert!(
                ack.margin_db() > 10.0,
                "tag {t}: ack margin {:.1} dB",
                ack.margin_db()
            );
            // An AP cannot poll the implant directly across the ward.
            let ap_at_tag =
                matrix.power_dbm(Emitter::Sink(scenario.tags[t].receiver), Listener::Tag(t));
            assert!(
                ap_at_tag < poll.sensitivity_dbm,
                "tag {t}: AP downlink {ap_at_tag:.1} dBm would reach the detector"
            );
        }
    }

    #[test]
    fn power_tables_cover_every_emitter_listener_pair() {
        let scenario = Scenario::contact_lens_fleet(6).closed_loop();
        let matrix = LinkMatrix::build(&scenario).unwrap();
        for from in [Emitter::Tag(1), Emitter::Carrier(0), Emitter::Sink(0)] {
            for at in [
                Listener::Receiver(0),
                Listener::Tag(2),
                Listener::Carrier(1),
            ] {
                let p = matrix.power_dbm(from, at);
                assert!(p.is_finite() && p < 25.0, "{from:?} at {at:?}: {p} dBm");
            }
        }
        // A carrier is loudest at its own tags.
        let near = matrix.power_dbm(Emitter::Carrier(0), Listener::Tag(0));
        let far = matrix.power_dbm(Emitter::Carrier(2), Listener::Tag(0));
        assert!(near > far, "near {near} dBm vs far {far} dBm");
    }

    #[test]
    #[should_panic(expected = "closed-loop tables")]
    fn open_loop_matrices_have_no_downlink_tables() {
        let scenario = Scenario::hospital_ward(4);
        let matrix = LinkMatrix::build(&scenario).unwrap();
        let _ = matrix.poll_budget(0);
    }
}
