//! The closed-loop poll/ack MAC (§2.3.3 + §2.4 combined at network scale).
//!
//! The Interscatter paper's full system is bidirectional: the tag's only
//! receiver is a passive envelope detector (−32 dBm, Fig. 13), so the AM
//! downlink of §2.4 is what closes the control loop. Physics dictates the
//! roles — an access point across the room is below the detector's
//! sensitivity, but the bedside carrier (the §2.3.3 helper device, within
//! the ~1 m illumination range anyway) is not. One **transaction** is:
//!
//! 1. **Poll** — the carrier transmits an AM-OFDM frame addressed to one of
//!    its tags on that tag's service band. The tag decodes it (or not) with
//!    its envelope detector.
//! 2. **Response** — a SIFS later the polled tag backscatters its queued
//!    packet while the carrier holds the illuminating tone (the uplink path,
//!    unchanged: collisions, capture, external traffic, link shadowing).
//! 3. **Ack** — if the sink decodes the response it transmits an AM-OFDM
//!    ack a SIFS later. The *carrier's* conventional radio decodes the ack
//!    (≈ −85 dBm sensitivity) and clears the tag's pending packet via its
//!    next poll — modelled as immediate queue cleanup, since the carrier-tag
//!    hop is the strong sub-metre link.
//!
//! Any failed stage leaves the packet at the head of the tag's queue and
//! burns one retry; `max_retries` exhausts into a drop, exactly like the
//! open-loop path. [`MacLoop`] is the bookkeeping state machine: one
//! [`LoopPhase`] per tag, advanced by the engine as the poll, response and
//! ack events resolve. Per-tag retries, AP timeouts and transaction
//! latencies land in [`crate::metrics::TagStats`].

use crate::time::Time;
use interscatter_wifi::ofdm::am::am_frame_airtime_s;

/// Whether the engine runs the uplink-only schedule or the closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MacMode {
    /// PR 1 behaviour: carriers grant slots blindly, delivery is decided at
    /// the receiver, tags learn nothing.
    #[default]
    OpenLoop,
    /// Poll → backscatter response → ack transactions.
    ClosedLoop,
}

/// Downlink bits in a poll frame: an 8-bit tag address, a 4-bit control
/// field and a 4-bit checksum.
pub const POLL_BITS: usize = 16;

/// Downlink bits in an ack frame: the echoed address.
pub const ACK_BITS: usize = 8;

/// Inter-frame gap between poll → response → ack, seconds (802.11 SIFS).
pub const SIFS_S: f64 = interscatter_wifi::mac::SIFS_S;

/// On-air duration of a poll frame, seconds (preamble + 16 AM bits).
pub fn poll_airtime_s() -> f64 {
    am_frame_airtime_s(POLL_BITS)
}

/// On-air duration of an ack frame, seconds (preamble + 8 AM bits).
pub fn ack_airtime_s() -> f64 {
    am_frame_airtime_s(ACK_BITS)
}

/// Worst-case on-air span of one whole transaction around a response of
/// `response_airtime_s` seconds — what a CTS-to-Self reservation must
/// cover so other carriers keep off the band mid-transaction.
pub fn transaction_airtime_s(response_airtime_s: f64) -> f64 {
    poll_airtime_s() + SIFS_S + response_airtime_s + SIFS_S + ack_airtime_s()
}

/// Where one tag stands in its current transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopPhase {
    /// No transaction outstanding; the tag is eligible for a poll.
    #[default]
    Idle,
    /// A poll frame addressed to this tag is on the air.
    Polled,
    /// The tag decoded the poll and its backscattered response is on the
    /// air (the carrier is holding the tone).
    Responding,
    /// The sink decoded the response and its ack frame is on the air.
    AckInFlight,
}

/// Per-tag transaction state.
#[derive(Debug, Clone, Copy, Default)]
struct Transaction {
    phase: LoopPhase,
    poll_started: Time,
}

/// The closed-loop MAC state machine: tracks every tag's transaction phase
/// so carriers only poll idle tags and the engine can attribute each
/// poll/response/ack outcome to the right transaction.
#[derive(Debug, Clone)]
pub struct MacLoop {
    transactions: Vec<Transaction>,
}

impl MacLoop {
    /// All tags idle.
    pub fn new(n_tags: usize) -> Self {
        MacLoop {
            transactions: vec![Transaction::default(); n_tags],
        }
    }

    /// The tag's current phase.
    pub fn phase(&self, tag: usize) -> LoopPhase {
        self.transactions[tag].phase
    }

    /// Whether the tag can be polled.
    pub fn is_idle(&self, tag: usize) -> bool {
        self.transactions[tag].phase == LoopPhase::Idle
    }

    /// A poll for `tag` went on the air at `now`.
    pub fn poll_started(&mut self, tag: usize, now: Time) {
        debug_assert!(self.is_idle(tag), "tag {tag} polled mid-transaction");
        self.transactions[tag] = Transaction {
            phase: LoopPhase::Polled,
            poll_started: now,
        };
    }

    /// The tag decoded its poll and its response went on the air.
    pub fn response_started(&mut self, tag: usize) {
        debug_assert_eq!(self.transactions[tag].phase, LoopPhase::Polled);
        self.transactions[tag].phase = LoopPhase::Responding;
    }

    /// The sink decoded the response and its ack went on the air.
    pub fn ack_started(&mut self, tag: usize) {
        debug_assert_eq!(self.transactions[tag].phase, LoopPhase::Responding);
        self.transactions[tag].phase = LoopPhase::AckInFlight;
    }

    /// Ends the tag's transaction (completed or failed at any stage) and
    /// returns when its poll started — the transaction latency reference.
    pub fn finish(&mut self, tag: usize) -> Time {
        let started = self.transactions[tag].poll_started;
        self.transactions[tag] = Transaction::default();
        started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_airtimes_are_am_shaped() {
        // Poll: 20 µs preamble + 16 bits × 8 µs = 148 µs; ack: 84 µs. Both
        // fit comfortably between two 5 ms carrier slots.
        assert!((poll_airtime_s() - 148e-6).abs() < 1e-9);
        assert!((ack_airtime_s() - 84e-6).abs() < 1e-9);
        let span = transaction_airtime_s(220e-6);
        assert!((span - (148e-6 + 220e-6 + 84e-6 + 2.0 * SIFS_S)).abs() < 1e-9);
    }

    #[test]
    fn transaction_walks_the_phases() {
        let mut mac = MacLoop::new(3);
        assert!(mac.is_idle(1));
        mac.poll_started(1, Time(5_000));
        assert_eq!(mac.phase(1), LoopPhase::Polled);
        assert!(!mac.is_idle(1));
        // Other tags are untouched.
        assert!(mac.is_idle(0) && mac.is_idle(2));
        mac.response_started(1);
        assert_eq!(mac.phase(1), LoopPhase::Responding);
        mac.ack_started(1);
        assert_eq!(mac.phase(1), LoopPhase::AckInFlight);
        assert_eq!(mac.finish(1), Time(5_000));
        assert!(mac.is_idle(1));
    }

    #[test]
    fn failed_transactions_reset_from_any_phase() {
        let mut mac = MacLoop::new(1);
        mac.poll_started(0, Time(77));
        // A poll loss aborts straight from Polled.
        assert_eq!(mac.finish(0), Time(77));
        assert!(mac.is_idle(0));
        // And the next transaction gets a fresh reference time.
        mac.poll_started(0, Time(99));
        mac.response_started(0);
        assert_eq!(mac.finish(0), Time(99));
    }
}
