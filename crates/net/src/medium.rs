//! The shared 2.4 GHz medium: who is on the air where, and who overlaps
//! whom.
//!
//! The medium tracks every in-flight emission as one or two frequency
//! bands: the synthesized packet itself, and — for double-sideband tags —
//! the *mirror copy* at `2·f_carrier − f_packet` (§2.3.1: the unwanted
//! sideband single-sideband backscatter exists to eliminate). Two emissions
//! interfere when any of their bands overlap in frequency while both are on
//! the air; the engine then applies a capture margin at the victim's
//! receiver to decide who survives.
//!
//! CSMA and the §2.3.3 CTS-to-Self optimisation are modelled here too: a
//! carrier checks [`Medium::busy`] before granting a slot (carrier-sense),
//! and may place a [`Medium::reserve`] entry that keeps *other* in-model
//! tags off the band for the packet's duration.

use crate::time::Time;

/// A frequency band, centre ± half the bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Centre frequency, Hz.
    pub center_hz: f64,
    /// Occupied bandwidth, Hz.
    pub bandwidth_hz: f64,
}

impl Band {
    /// Builds a band.
    pub fn new(center_hz: f64, bandwidth_hz: f64) -> Self {
        Band {
            center_hz,
            bandwidth_hz,
        }
    }

    /// True when the two bands' occupied spectra overlap.
    pub fn overlaps(&self, other: &Band) -> bool {
        (self.center_hz - other.center_hz).abs() < (self.bandwidth_hz + other.bandwidth_hz) / 2.0
    }
}

/// One in-flight tag transmission.
#[derive(Debug, Clone)]
struct Emission {
    tx_id: u64,
    tag: usize,
    primary: Band,
    mirror: Option<Band>,
    end: Time,
    /// Tags whose emissions overlapped this one while it was on the air.
    interferers: Vec<usize>,
}

impl Emission {
    fn bands(&self) -> impl Iterator<Item = &Band> {
        std::iter::once(&self.primary).chain(self.mirror.as_ref())
    }

    fn overlaps(&self, other: &Emission) -> bool {
        self.bands().any(|a| other.bands().any(|b| a.overlaps(b)))
    }
}

/// A CTS-to-Self reservation keeping other tags off a band.
#[derive(Debug, Clone, Copy)]
struct Reservation {
    band: Band,
    end: Time,
}

/// What the medium observed about a finished transmission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxReport {
    /// Tags whose emissions overlapped this one (dedup'd, in first-overlap
    /// order).
    pub interferers: Vec<usize>,
}

/// The shared-medium arbiter.
#[derive(Debug, Default)]
pub struct Medium {
    active: Vec<Emission>,
    reservations: Vec<Reservation>,
    next_tx_id: u64,
}

impl Medium {
    /// An idle medium.
    pub fn new() -> Self {
        Medium::default()
    }

    /// Drops emissions and reservations that ended at or before `now`.
    ///
    /// Finished emissions are only pruned after [`Medium::finish`] collects
    /// them, so this keeps `active` sized to the true in-flight set.
    fn prune(&mut self, now: Time) {
        self.reservations.retain(|r| r.end > now);
    }

    /// Carrier-sense: is any emission or reservation occupying a band that
    /// overlaps `band` at time `now`?
    pub fn busy(&mut self, band: Band, now: Time) -> bool {
        self.prune(now);
        self.active
            .iter()
            .filter(|e| e.end > now)
            .any(|e| e.bands().any(|b| b.overlaps(&band)))
            || self.reservations.iter().any(|r| r.band.overlaps(&band))
    }

    /// Places a CTS-to-Self reservation on `band` until `end`.
    pub fn reserve(&mut self, band: Band, end: Time) {
        self.reservations.push(Reservation { band, end });
    }

    /// Puts a transmission on the air and returns its id. Any already
    /// active overlapping emission is recorded as interference on *both*
    /// sides.
    pub fn start(
        &mut self,
        tag: usize,
        primary: Band,
        mirror: Option<Band>,
        now: Time,
        end: Time,
    ) -> u64 {
        self.prune(now);
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let mut emission = Emission {
            tx_id,
            tag,
            primary,
            mirror,
            end,
            interferers: Vec::new(),
        };
        for other in self.active.iter_mut().filter(|e| e.end > now) {
            if other.overlaps(&emission) {
                if !emission.interferers.contains(&other.tag) {
                    emission.interferers.push(other.tag);
                }
                if !other.interferers.contains(&tag) {
                    other.interferers.push(tag);
                }
            }
        }
        self.active.push(emission);
        tx_id
    }

    /// Takes a finished transmission off the air, returning what the
    /// medium observed about it.
    pub fn finish(&mut self, tx_id: u64) -> TxReport {
        let Some(idx) = self.active.iter().position(|e| e.tx_id == tx_id) else {
            return TxReport::default();
        };
        let emission = self.active.swap_remove(idx);
        TxReport {
            interferers: emission.interferers,
        }
    }

    /// Number of transmissions currently on the air.
    pub fn on_air(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH6: f64 = 2.437e9;
    const CH11: f64 = 2.462e9;

    fn wifi(center: f64) -> Band {
        Band::new(center, 22e6)
    }

    #[test]
    fn band_overlap_geometry() {
        // Adjacent Wi-Fi channels (25 MHz apart, 22 MHz wide) do not
        // overlap at their centres' separation ≥ 22 MHz.
        assert!(!wifi(CH6).overlaps(&wifi(CH11)));
        assert!(wifi(CH6).overlaps(&wifi(2.442e9)));
        // A narrow ZigBee band inside a Wi-Fi channel overlaps it.
        assert!(wifi(CH6).overlaps(&Band::new(2.430e9, 2e6)));
    }

    #[test]
    fn overlapping_transmissions_interfere_both_ways() {
        let mut medium = Medium::new();
        let a = medium.start(0, wifi(CH11), None, Time(0), Time(200_000));
        let b = medium.start(1, wifi(CH11), None, Time(50_000), Time(250_000));
        assert_eq!(medium.on_air(), 2);
        assert_eq!(medium.finish(a).interferers, vec![1]);
        assert_eq!(medium.finish(b).interferers, vec![0]);
        assert_eq!(medium.on_air(), 0);
    }

    #[test]
    fn disjoint_channels_do_not_interfere() {
        let mut medium = Medium::new();
        let a = medium.start(0, wifi(CH11), None, Time(0), Time(200_000));
        let b = medium.start(1, wifi(CH6), None, Time(0), Time(200_000));
        assert!(medium.finish(a).interferers.is_empty());
        assert!(medium.finish(b).interferers.is_empty());
    }

    #[test]
    fn mirror_copy_collides_on_the_mirror_channel() {
        let mut medium = Medium::new();
        // DSB tag: primary on ch 1 (2.412 GHz), mirror at 2.440 GHz
        // (carrier 2.426 GHz), which lands inside channel 6.
        let dsb = medium.start(
            0,
            wifi(2.412e9),
            Some(wifi(2.440e9)),
            Time(0),
            Time(200_000),
        );
        let victim = medium.start(1, wifi(CH6), None, Time(0), Time(200_000));
        assert_eq!(medium.finish(victim).interferers, vec![0]);
        assert_eq!(medium.finish(dsb).interferers, vec![1]);
    }

    #[test]
    fn csma_sees_emissions_and_reservations() {
        let mut medium = Medium::new();
        assert!(!medium.busy(wifi(CH11), Time(0)));
        medium.start(0, wifi(CH11), None, Time(0), Time(100_000));
        assert!(medium.busy(wifi(CH11), Time(50_000)));
        assert!(!medium.busy(wifi(CH6), Time(50_000)));
        // After the emission ends it no longer blocks the band (even while
        // un-finished, i.e. still awaiting its TxEnd event).
        assert!(!medium.busy(wifi(CH11), Time(150_000)));

        medium.reserve(wifi(CH6), Time(300_000));
        assert!(medium.busy(wifi(CH6), Time(200_000)));
        // Reservations expire.
        assert!(!medium.busy(wifi(CH6), Time(300_000)));
    }
}
