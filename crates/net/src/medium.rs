//! The shared 2.4 GHz medium: who is on the air where, and who overlaps
//! whom.
//!
//! The medium tracks every in-flight emission as one or two frequency
//! bands: the synthesized packet itself, and — for double-sideband tags —
//! the *mirror copy* at `2·f_carrier − f_packet` (§2.3.1: the unwanted
//! sideband single-sideband backscatter exists to eliminate). Since the
//! closed-loop MAC landed, not only tags emit: carriers transmit AM-OFDM
//! *poll* frames, sink devices transmit AM-OFDM *ack* frames, and — since
//! the coex subsystem ([`crate::coex`]) — external sources inject other
//! people's Wi-Fi/BLE/ZigBee traffic as real emissions
//! ([`Emitter`] names who owns an emission). Two emissions interfere when
//! any of their bands overlap in frequency while both are on the air; the
//! engine then applies a capture margin at the victim's receiver to decide
//! who survives.
//!
//! CSMA and the §2.3.3 CTS-to-Self optimisation are modelled here too: a
//! carrier checks [`Medium::busy`] before granting a slot (carrier-sense),
//! and may place a [`Medium::reserve`] entry that keeps *other* in-model
//! tags off the band for the packet's duration.
//!
//! ## Boundary semantics
//!
//! Time intervals at the medium follow two pinned conventions (see the
//! `boundary_instants_are_exact` test):
//!
//! * An **emission** occupies the half-open window `[start, end)`: at the
//!   instant `end` its energy is gone, so an emission starting exactly at
//!   another's `end` neither defers to it nor collides with it. SIFS-
//!   chained transaction frames rely on this — consecutive frames may
//!   share a boundary nanosecond without interfering.
//! * A **reservation** (CTS-to-Self NAV) protects `[placement, end]`,
//!   *inclusive* of its final instant: 802.11's NAV duration means "the
//!   medium is busy through this instant; access may begin strictly
//!   after". An emission starting exactly at `end` still sees the channel
//!   busy; the first free instant is `end + 1` ns. A tie between a NAV
//!   boundary and a carrier-sense check therefore always resolves in the
//!   reservation holder's favour.

use crate::time::Time;

/// A frequency band, centre ± half the bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Centre frequency, Hz.
    pub center_hz: f64,
    /// Occupied bandwidth, Hz.
    pub bandwidth_hz: f64,
}

impl Band {
    /// Builds a band.
    pub fn new(center_hz: f64, bandwidth_hz: f64) -> Self {
        Band {
            center_hz,
            bandwidth_hz,
        }
    }

    /// True when the two bands' occupied spectra overlap.
    pub fn overlaps(&self, other: &Band) -> bool {
        (self.center_hz - other.center_hz).abs() < (self.bandwidth_hz + other.bandwidth_hz) / 2.0
    }
}

/// Who put an emission on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emitter {
    /// A backscatter tag's synthesized uplink packet.
    Tag(usize),
    /// A carrier device's AM-OFDM downlink poll frame.
    Carrier(usize),
    /// A sink device's AM-OFDM downlink ack frame.
    Sink(usize),
    /// An external coexistence source's emission
    /// ([`crate::coex::CoexSource`], by its index in the scenario's coex
    /// config) — other people's Wi-Fi, BLE, ZigBee or a microwave oven.
    External(usize),
}

/// One in-flight transmission.
#[derive(Debug, Clone)]
struct Emission {
    tx_id: u64,
    who: Emitter,
    primary: Band,
    mirror: Option<Band>,
    /// Index of `primary` in the medium's distinct-band registry.
    primary_bid: u32,
    /// Index of `mirror` in the registry (`None` for single-sideband).
    mirror_bid: Option<u32>,
    end: Time,
    /// A hidden-terminal emission: invisible to [`Medium::busy`]
    /// (carrier-sense at the transmitting side cannot hear it) but still
    /// interfering and still counted by [`Medium::occupied`].
    hidden: bool,
    /// Emissions that overlapped this one while it was on the air.
    interferers: Vec<Interferer>,
}

impl Emission {
    fn bands(&self) -> impl Iterator<Item = &Band> {
        std::iter::once(&self.primary).chain(self.mirror.as_ref())
    }

    fn overlaps(&self, other: &Emission) -> bool {
        self.bands().any(|a| other.bands().any(|b| a.overlaps(b)))
    }

    fn as_interferer(&self) -> Interferer {
        Interferer {
            who: self.who,
            primary: self.primary,
            mirror: self.mirror,
        }
    }
}

/// A CTS-to-Self reservation keeping other tags off a band through `end`
/// *inclusive* (the NAV convention — see the module docs).
#[derive(Debug, Clone, Copy)]
struct Reservation {
    band: Band,
    end: Time,
}

/// One emission that overlapped a finished transmission, with the bands it
/// occupied — enough for the engine to decide whether the interference
/// actually landed in a victim's listening band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// Who the interfering emission belonged to.
    pub who: Emitter,
    /// The interferer's primary band.
    pub primary: Band,
    /// The interferer's double-sideband mirror copy, if it had one.
    pub mirror: Option<Band>,
}

impl Interferer {
    /// True when any of the interferer's bands lands in `band`.
    pub fn lands_in(&self, band: &Band) -> bool {
        self.primary.overlaps(band) || self.mirror.as_ref().is_some_and(|m| m.overlaps(band))
    }
}

/// What the medium observed about a finished transmission.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TxReport {
    /// Emissions that overlapped this one (dedup'd by owner, in
    /// first-overlap order).
    pub interferers: Vec<Interferer>,
}

/// The shared-medium arbiter.
///
/// The active-emission set is **indexed by band**: every distinct band
/// value ever emitted on gets a registry id, and each id keeps the list of
/// on-air transmissions occupying it. Carrier-sense ([`Medium::busy`]),
/// occupancy sensing ([`Medium::occupied`]) and capture resolution
/// (interferer recording in [`Medium::start`]) walk only the lists of
/// bands that overlap the query band, instead of scanning every on-air
/// source — with coex sources raising the on-air population and carriers
/// sensing every channel every slot, the same-band walk is what keeps a
/// 100k-tag run's medium cost proportional to actual contention. The set
/// of distinct bands is small (Wi-Fi/ZigBee/BLE channels plus the mirror
/// images DSB tags add), so the per-query registry sweep is a handful of
/// float compares.
///
/// Interferer lists record in the *storage order* of the active set
/// (positions, sorted), which is exactly the scan order of the pre-index
/// linear implementation — the engine sums interferer powers in list
/// order, so this is what keeps trace digests byte-identical across the
/// index swap.
#[derive(Debug, Default)]
pub struct Medium {
    active: Vec<Emission>,
    reservations: Vec<Reservation>,
    next_tx_id: u64,
    /// Distinct band values seen so far, identified bit-exactly. Never
    /// shrinks; bounded by the scenario's channel plan.
    bands: Vec<Band>,
    /// Per distinct band: tx ids of the active emissions occupying it.
    members: Vec<Vec<u64>>,
    /// Active tx id → position in `active` (maintained across the
    /// swap-removes of [`Medium::finish`]). A `Vec` sorted by tx id, not a
    /// hash table: ids are allocated monotonically so insertion is a push,
    /// lookups binary-search, and — the reason it matters — there is no
    /// seeded iteration order anywhere near the hot path (detlint's
    /// `hash_iter` rule keeps it that way).
    index: Vec<(u64, usize)>,
}

impl Medium {
    /// Position in `active` of the emission with `tx_id`. Panics when the
    /// id is not on the air (same contract as the indexing it replaced).
    fn slot(&self, tx_id: u64) -> usize {
        let i = self
            .index
            .binary_search_by_key(&tx_id, |&(tx, _)| tx)
            .expect("tx id not on the air");
        self.index[i].1
    }
}

impl Medium {
    /// An idle medium.
    pub fn new() -> Self {
        Medium::default()
    }

    /// The registry id of `band`, inserting it on first sight. Identity is
    /// bit-exact: band values come from the same deterministic frequency
    /// arithmetic on every run, so equal bands compare equal.
    fn band_id(&mut self, band: Band) -> u32 {
        if let Some(i) = self
            .bands
            .iter()
            .position(|b| b.center_hz == band.center_hz && b.bandwidth_hz == band.bandwidth_hz)
        {
            return i as u32;
        }
        self.bands.push(band);
        self.members.push(Vec::new());
        (self.bands.len() - 1) as u32
    }

    /// Drops reservations whose protected window `[.., end]` has passed.
    /// A reservation ending exactly at `now` is *kept*: it still blocks an
    /// emission starting at `now` (NAV is inclusive of its final instant).
    ///
    /// Finished emissions are only pruned after [`Medium::finish`] collects
    /// them, so this keeps `active` sized to the true in-flight set.
    fn prune(&mut self, now: Time) {
        self.reservations.retain(|r| r.end >= now);
    }

    /// Carrier-sense: is any emission (`[start, end)`) or reservation
    /// (`[start, end]`) occupying a band that overlaps `band` at time
    /// `now`? Hidden-terminal emissions are *not* heard here — carrier-
    /// sense happens at the transmitting side, which by definition cannot
    /// hear a hidden node (use [`Medium::occupied`] for the receive-side
    /// truth).
    pub fn busy(&mut self, band: Band, now: Time) -> bool {
        self.prune(now);
        for (bid, b) in self.bands.iter().enumerate() {
            if !b.overlaps(&band) {
                continue;
            }
            for tx in &self.members[bid] {
                let e = &self.active[self.slot(*tx)];
                if !e.hidden && e.end > now {
                    return true;
                }
            }
        }
        self.reservations.iter().any(|r| r.band.overlaps(&band))
    }

    /// Occupancy sensing: is any emission — hidden or not — on a band
    /// overlapping `band` at `now`? This is the *receive-side* channel
    /// load an AP measures and reports (802.11's QBSS load element), which
    /// is what the coex subsystem's per-carrier EWMA estimators sample:
    /// unlike [`Medium::busy`] it hears hidden terminals, and it ignores
    /// NAV reservations (a reservation is protocol state, not energy).
    pub fn occupied(&self, band: Band, now: Time) -> bool {
        for (bid, b) in self.bands.iter().enumerate() {
            if !b.overlaps(&band) {
                continue;
            }
            for tx in &self.members[bid] {
                if self.active[self.slot(*tx)].end > now {
                    return true;
                }
            }
        }
        false
    }

    /// Places a CTS-to-Self reservation on `band` protecting every instant
    /// up to and including `end`.
    pub fn reserve(&mut self, band: Band, end: Time) {
        self.reservations.push(Reservation { band, end });
    }

    /// Puts a transmission on the air and returns its id. Any already
    /// active overlapping emission is recorded as interference on *both*
    /// sides.
    pub fn start(
        &mut self,
        who: Emitter,
        primary: Band,
        mirror: Option<Band>,
        now: Time,
        end: Time,
    ) -> u64 {
        self.start_with(who, primary, mirror, now, end, false)
    }

    /// [`Medium::start`] for a hidden-terminal emission: it interferes and
    /// counts toward [`Medium::occupied`], but [`Medium::busy`] cannot
    /// hear it.
    pub fn start_hidden(
        &mut self,
        who: Emitter,
        primary: Band,
        mirror: Option<Band>,
        now: Time,
        end: Time,
    ) -> u64 {
        self.start_with(who, primary, mirror, now, end, true)
    }

    fn start_with(
        &mut self,
        who: Emitter,
        primary: Band,
        mirror: Option<Band>,
        now: Time,
        end: Time,
        hidden: bool,
    ) -> u64 {
        self.prune(now);
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let primary_bid = self.band_id(primary);
        let mirror_bid = mirror.map(|m| self.band_id(m));
        let mut emission = Emission {
            tx_id,
            who,
            primary,
            mirror,
            primary_bid,
            mirror_bid,
            end,
            hidden,
            interferers: Vec::new(),
        };
        // Gather candidates from every band list overlapping ours, then
        // visit them in storage order (sorted positions) so the recorded
        // interferer order matches the old full linear scan exactly.
        let mut candidates: Vec<usize> = Vec::new();
        for (bid, b) in self.bands.iter().enumerate() {
            if emission.bands().any(|eb| eb.overlaps(b)) {
                candidates.extend(self.members[bid].iter().map(|tx| self.slot(*tx)));
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for idx in candidates {
            let other = &mut self.active[idx];
            if other.end > now && other.overlaps(&emission) {
                if !emission.interferers.iter().any(|i| i.who == other.who) {
                    emission.interferers.push(other.as_interferer());
                }
                if !other.interferers.iter().any(|i| i.who == who) {
                    other.interferers.push(emission.as_interferer());
                }
            }
        }
        // tx ids are monotonic, so appending keeps the index sorted.
        debug_assert!(self.index.last().is_none_or(|&(tx, _)| tx < tx_id));
        self.index.push((tx_id, self.active.len()));
        self.members[primary_bid as usize].push(tx_id);
        if let Some(mb) = mirror_bid {
            if mb != primary_bid {
                self.members[mb as usize].push(tx_id);
            }
        }
        self.active.push(emission);
        tx_id
    }

    /// Takes a finished transmission off the air, returning what the
    /// medium observed about it.
    pub fn finish(&mut self, tx_id: u64) -> TxReport {
        let Ok(at) = self.index.binary_search_by_key(&tx_id, |&(tx, _)| tx) else {
            return TxReport::default();
        };
        let (_, idx) = self.index.remove(at);
        let emission = self.active.swap_remove(idx);
        if idx < self.active.len() {
            let moved = self.active[idx].tx_id;
            let slot = self
                .index
                .binary_search_by_key(&moved, |&(tx, _)| tx)
                .expect("moved tx id stays indexed");
            self.index[slot].1 = idx;
        }
        let mut drop_member = |bid: u32| {
            let list = &mut self.members[bid as usize];
            if let Some(pos) = list.iter().position(|&tx| tx == tx_id) {
                list.swap_remove(pos);
            }
        };
        drop_member(emission.primary_bid);
        if let Some(mb) = emission.mirror_bid {
            if mb != emission.primary_bid {
                drop_member(mb);
            }
        }
        TxReport {
            interferers: emission.interferers,
        }
    }

    /// Number of transmissions currently on the air.
    pub fn on_air(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH6: f64 = 2.437e9;
    const CH11: f64 = 2.462e9;

    fn wifi(center: f64) -> Band {
        Band::new(center, 22e6)
    }

    fn who(report: &TxReport) -> Vec<Emitter> {
        report.interferers.iter().map(|i| i.who).collect()
    }

    #[test]
    fn band_overlap_geometry() {
        // Adjacent Wi-Fi channels (25 MHz apart, 22 MHz wide) do not
        // overlap at their centres' separation ≥ 22 MHz.
        assert!(!wifi(CH6).overlaps(&wifi(CH11)));
        assert!(wifi(CH6).overlaps(&wifi(2.442e9)));
        // A narrow ZigBee band inside a Wi-Fi channel overlaps it.
        assert!(wifi(CH6).overlaps(&Band::new(2.430e9, 2e6)));
    }

    #[test]
    fn overlapping_transmissions_interfere_both_ways() {
        let mut medium = Medium::new();
        let a = medium.start(Emitter::Tag(0), wifi(CH11), None, Time(0), Time(200_000));
        let b = medium.start(
            Emitter::Tag(1),
            wifi(CH11),
            None,
            Time(50_000),
            Time(250_000),
        );
        assert_eq!(medium.on_air(), 2);
        assert_eq!(who(&medium.finish(a)), vec![Emitter::Tag(1)]);
        assert_eq!(who(&medium.finish(b)), vec![Emitter::Tag(0)]);
        assert_eq!(medium.on_air(), 0);
    }

    #[test]
    fn disjoint_channels_do_not_interfere() {
        let mut medium = Medium::new();
        let a = medium.start(Emitter::Tag(0), wifi(CH11), None, Time(0), Time(200_000));
        let b = medium.start(Emitter::Tag(1), wifi(CH6), None, Time(0), Time(200_000));
        assert!(medium.finish(a).interferers.is_empty());
        assert!(medium.finish(b).interferers.is_empty());
    }

    #[test]
    fn mirror_copy_collides_on_the_mirror_channel() {
        let mut medium = Medium::new();
        // DSB tag: primary on ch 1 (2.412 GHz), mirror at 2.440 GHz
        // (carrier 2.426 GHz), which lands inside channel 6.
        let dsb = medium.start(
            Emitter::Tag(0),
            wifi(2.412e9),
            Some(wifi(2.440e9)),
            Time(0),
            Time(200_000),
        );
        let victim = medium.start(Emitter::Tag(1), wifi(CH6), None, Time(0), Time(200_000));
        let victim_report = medium.finish(victim);
        assert_eq!(who(&victim_report), vec![Emitter::Tag(0)]);
        // The victim can tell the hit came from the mirror copy, not the
        // interferer's primary band.
        let hit = &victim_report.interferers[0];
        assert!(!hit.primary.overlaps(&wifi(CH6)));
        assert!(hit.lands_in(&wifi(CH6)));
        assert_eq!(who(&medium.finish(dsb)), vec![Emitter::Tag(1)]);
    }

    #[test]
    fn downlink_emitters_are_distinguished_from_tags() {
        let mut medium = Medium::new();
        // A carrier's poll and a sink's ack collide with a tag's packet on
        // the same channel; the reports identify each emitter kind.
        let poll = medium.start(Emitter::Carrier(2), wifi(CH6), None, Time(0), Time(150_000));
        let data = medium.start(
            Emitter::Tag(7),
            wifi(CH6),
            None,
            Time(10_000),
            Time(230_000),
        );
        let ack = medium.start(
            Emitter::Sink(1),
            wifi(CH6),
            None,
            Time(20_000),
            Time(100_000),
        );
        assert_eq!(
            who(&medium.finish(poll)),
            vec![Emitter::Tag(7), Emitter::Sink(1)]
        );
        assert_eq!(
            who(&medium.finish(data)),
            vec![Emitter::Carrier(2), Emitter::Sink(1)]
        );
        assert_eq!(
            who(&medium.finish(ack)),
            vec![Emitter::Carrier(2), Emitter::Tag(7)]
        );
    }

    #[test]
    fn csma_sees_emissions_and_reservations() {
        let mut medium = Medium::new();
        assert!(!medium.busy(wifi(CH11), Time(0)));
        medium.start(Emitter::Tag(0), wifi(CH11), None, Time(0), Time(100_000));
        assert!(medium.busy(wifi(CH11), Time(50_000)));
        assert!(!medium.busy(wifi(CH6), Time(50_000)));
        // After the emission ends it no longer blocks the band (even while
        // un-finished, i.e. still awaiting its TxEnd event).
        assert!(!medium.busy(wifi(CH11), Time(150_000)));

        medium.reserve(wifi(CH6), Time(300_000));
        assert!(medium.busy(wifi(CH6), Time(200_000)));
        // Reservations expire strictly after their final protected instant.
        assert!(!medium.busy(wifi(CH6), Time(300_001)));
    }

    #[test]
    fn hidden_emissions_collide_but_escape_carrier_sense() {
        let mut medium = Medium::new();
        // A hidden external burst occupies channel 6 for the AP…
        let ext = medium.start_hidden(
            Emitter::External(0),
            wifi(CH6),
            None,
            Time(0),
            Time(500_000),
        );
        // …but the transmitting side cannot hear it: carrier-sense says
        // idle while receive-side occupancy says busy.
        assert!(!medium.busy(wifi(CH6), Time(100_000)));
        assert!(medium.occupied(wifi(CH6), Time(100_000)));
        assert!(!medium.occupied(wifi(CH11), Time(100_000)));
        // A tag transmission launched into the hidden burst collides with
        // it, both ways.
        let tag = medium.start(
            Emitter::Tag(3),
            wifi(CH6),
            None,
            Time(100_000),
            Time(300_000),
        );
        assert_eq!(who(&medium.finish(tag)), vec![Emitter::External(0)]);
        assert_eq!(who(&medium.finish(ext)), vec![Emitter::Tag(3)]);

        // A visible (non-hidden) external emission trips carrier-sense
        // like any in-model emission, while reservations stay invisible to
        // occupancy sensing (protocol state, not energy).
        medium.start(Emitter::External(1), wifi(CH6), None, Time(0), Time(50_000));
        assert!(medium.busy(wifi(CH6), Time(10_000)));
        medium.reserve(wifi(CH11), Time(400_000));
        assert!(medium.busy(wifi(CH11), Time(350_000)));
        assert!(!medium.occupied(wifi(CH11), Time(350_000)));
    }

    /// The pre-index linear implementation, kept as a reference oracle:
    /// every query scans the whole active set in storage order.
    #[derive(Default)]
    struct LinearMedium {
        active: Vec<Emission>,
        reservations: Vec<Reservation>,
        next_tx_id: u64,
    }

    impl LinearMedium {
        fn busy(&mut self, band: Band, now: Time) -> bool {
            self.reservations.retain(|r| r.end >= now);
            self.active
                .iter()
                .filter(|e| !e.hidden && e.end > now)
                .any(|e| e.bands().any(|b| b.overlaps(&band)))
                || self.reservations.iter().any(|r| r.band.overlaps(&band))
        }

        fn occupied(&self, band: Band, now: Time) -> bool {
            self.active
                .iter()
                .filter(|e| e.end > now)
                .any(|e| e.bands().any(|b| b.overlaps(&band)))
        }

        fn start(
            &mut self,
            who: Emitter,
            primary: Band,
            mirror: Option<Band>,
            now: Time,
            end: Time,
            hidden: bool,
        ) -> u64 {
            self.reservations.retain(|r| r.end >= now);
            let tx_id = self.next_tx_id;
            self.next_tx_id += 1;
            let mut emission = Emission {
                tx_id,
                who,
                primary,
                mirror,
                primary_bid: 0,
                mirror_bid: None,
                end,
                hidden,
                interferers: Vec::new(),
            };
            for other in self.active.iter_mut().filter(|e| e.end > now) {
                if other.overlaps(&emission) {
                    if !emission.interferers.iter().any(|i| i.who == other.who) {
                        emission.interferers.push(other.as_interferer());
                    }
                    if !other.interferers.iter().any(|i| i.who == who) {
                        other.interferers.push(emission.as_interferer());
                    }
                }
            }
            self.active.push(emission);
            tx_id
        }

        fn finish(&mut self, tx_id: u64) -> TxReport {
            let Some(idx) = self.active.iter().position(|e| e.tx_id == tx_id) else {
                return TxReport::default();
            };
            let emission = self.active.swap_remove(idx);
            TxReport {
                interferers: emission.interferers,
            }
        }
    }

    #[test]
    fn band_index_matches_linear_reference() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};

        // The scenario channel plan: a handful of Wi-Fi channels, two
        // ZigBee slivers, and a DSB mirror landing spot.
        let plan = [
            wifi(2.412e9),
            wifi(CH6),
            wifi(CH11),
            Band::new(2.430e9, 2e6),
            Band::new(2.480e9, 2e6),
            wifi(2.440e9),
        ];
        for trial in 0..10u64 {
            // detlint: allow(stray_rng): property-test stream fuzzing the band index, not an engine entity
            let mut rng = SmallRng::seed_from_u64(0xBA2D ^ trial);
            let mut indexed = Medium::new();
            let mut linear = LinearMedium::default();
            let mut live: Vec<u64> = Vec::new();
            let mut now = 0u64;
            for _ in 0..2_000 {
                now += rng.gen_range(0u64..50_000);
                let t = Time(now);
                let band = plan[rng.gen_range(0usize..plan.len())];
                match rng.gen_range(0u32..10) {
                    0..=3 => {
                        let mirror = if rng.gen_bool(0.3) {
                            Some(plan[rng.gen_range(0usize..plan.len())])
                        } else {
                            None
                        };
                        let who = Emitter::Tag(rng.gen_range(0usize..32));
                        let hidden = rng.gen_bool(0.2);
                        let end = Time(now + rng.gen_range(1u64..200_000));
                        let a = indexed.start_with(who, band, mirror, t, end, hidden);
                        let b = linear.start(who, band, mirror, t, end, hidden);
                        assert_eq!(a, b, "tx id allocation must match");
                        live.push(a);
                    }
                    4..=6 => {
                        if !live.is_empty() {
                            let tx = live.swap_remove(rng.gen_range(0usize..live.len()));
                            assert_eq!(
                                indexed.finish(tx),
                                linear.finish(tx),
                                "interferer reports must match in content and order"
                            );
                        }
                    }
                    7 => {
                        let end = Time(now + rng.gen_range(1u64..100_000));
                        indexed.reserve(band, end);
                        linear.reservations.push(Reservation { band, end });
                    }
                    8 => assert_eq!(indexed.busy(band, t), linear.busy(band, t)),
                    _ => assert_eq!(indexed.occupied(band, t), linear.occupied(band, t)),
                }
            }
            // Drain everything still on the air; reports must agree.
            for tx in live {
                assert_eq!(indexed.finish(tx), linear.finish(tx));
            }
            assert_eq!(indexed.on_air(), 0);
        }
    }

    #[test]
    fn boundary_instants_are_exact() {
        // Emissions are half-open [start, end): at the exact end instant
        // the band is free, and a new start at that instant records no
        // interference against the ended emission — SIFS-chained frames
        // may share a boundary nanosecond.
        let mut medium = Medium::new();
        let first = medium.start(Emitter::Tag(0), wifi(CH11), None, Time(0), Time(100_000));
        assert!(medium.busy(wifi(CH11), Time(99_999)));
        assert!(!medium.busy(wifi(CH11), Time(100_000)));
        let second = medium.start(
            Emitter::Tag(1),
            wifi(CH11),
            None,
            Time(100_000),
            Time(200_000),
        );
        assert!(medium.finish(first).interferers.is_empty());
        assert!(medium.finish(second).interferers.is_empty());

        // Reservations protect [start, end] inclusive: an emission
        // starting exactly when the NAV ends must still see the channel
        // busy — the tie goes to the reservation holder. The first free
        // instant is one nanosecond later.
        medium.reserve(wifi(CH6), Time(300_000));
        assert!(medium.busy(wifi(CH6), Time(299_999)));
        assert!(
            medium.busy(wifi(CH6), Time(300_000)),
            "an emission starting at the NAV's end instant must defer"
        );
        assert!(!medium.busy(wifi(CH6), Time(300_001)));
        // And once expired it stays expired (prune is monotone).
        assert!(!medium.busy(wifi(CH6), Time(400_000)));
    }
}
