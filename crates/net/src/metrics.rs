//! Network-level bookkeeping: per-tag counters, aggregate throughput/PER,
//! latency distribution and Jain fairness, built on the statistics toolkit
//! of `interscatter-sim`'s [`measurements`](interscatter_sim::measurements).
//!
//! Two storage modes ([`crate::telemetry::MetricsMode`]): the default
//! **stored** mode keeps every latency sample and every per-tick
//! mobility/occupancy sample (exact, O(events) memory, report paths
//! byte-identical across PRs), while **streaming** mode routes the same
//! samples into [`crate::telemetry::LatencySketch`]es and fixed-width
//! [`crate::telemetry::RateBins`] — O(tags + carriers) memory however long
//! the run, quantiles within the sketch's ±0.25 % bucket bound. The engine
//! records through the `record_*` methods, which route by mode; the
//! report and band accessors consult whichever side holds the data.

use crate::telemetry::{LatencySketch, RateBins};
use interscatter_sim::measurements::Cdf;

/// Width of the streaming displacement bins, metres.
pub const DISPLACEMENT_BIN_M: f64 = 0.25;

/// Width of the streaming occupancy bins (occupancy is in [0, 1]).
pub const OCCUPANCY_BIN: f64 = 0.05;

/// The streaming-mode substitute for the stored sample series: sketches
/// for the three latency distributions, fixed-width rate bins for the
/// displacement/occupancy band queries, and scalar peaks. Memory is
/// O(tags + carriers + log-buckets), independent of run length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamingSeries {
    /// Delivery-latency sketch (streams what `latency_ms` would store).
    pub latency_ms: LatencySketch,
    /// Transaction-span sketch.
    pub transaction_latency_ms: LatencySketch,
    /// Poll-latency sketch.
    pub poll_latency_ms: LatencySketch,
    /// Attempts/deliveries binned by displacement ([`DISPLACEMENT_BIN_M`]).
    pub displacement_bins: Option<RateBins>,
    /// Attempts/deliveries binned by sensed occupancy ([`OCCUPANCY_BIN`]).
    pub occupancy_bins: Option<RateBins>,
    /// Largest displacement any tag reached, metres.
    pub max_displacement_m: f64,
    /// Per-carrier peak sensed occupancy (`None` before the first sample).
    pub peak_occupancy: Vec<Option<f64>>,
    /// Mobility samples streamed through (the stored mode's series length).
    pub mobility_samples: usize,
    /// Occupancy samples streamed through.
    pub occupancy_samples: usize,
}

impl StreamingSeries {
    /// Merges another run's streaming series in (Monte-Carlo pooling;
    /// exact, so merge order cannot change any readout).
    pub fn merge(&mut self, other: &StreamingSeries) {
        self.latency_ms.merge(&other.latency_ms);
        self.transaction_latency_ms
            .merge(&other.transaction_latency_ms);
        self.poll_latency_ms.merge(&other.poll_latency_ms);
        self.max_displacement_m = self.max_displacement_m.max(other.max_displacement_m);
        self.mobility_samples += other.mobility_samples;
        self.occupancy_samples += other.occupancy_samples;
    }
}

/// Counters for one tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagStats {
    /// Packets the application generated.
    pub offered: usize,
    /// Packets delivered to the destination receiver.
    pub delivered: usize,
    /// Packets dropped (queue overflow or retry budget exhausted).
    pub dropped: usize,
    /// Transmission attempts (grants that went on the air).
    pub attempts: usize,
    /// Attempts lost to tag-to-tag (or mirror-copy) collisions.
    pub collided: usize,
    /// Attempts lost to external traffic: collisions whose in-band
    /// interferers were all coex-source emissions ([`crate::coex`]), or
    /// the legacy occupancy-scalar fold.
    pub external_collisions: usize,
    /// Attempts lost to the link budget (shadowed RSSI under sensitivity).
    pub link_losses: usize,
    /// Carrier slots skipped because carrier-sense found the band busy.
    pub csma_defers: usize,
    /// Carrier slots the scheduler granted to this tag (open loop: grants
    /// become transmissions; closed loop: grants become polls).
    pub grants: usize,
    /// Grants whose head-of-queue packet had already outlived the
    /// scheduler's service deadline
    /// ([`crate::sched::SchedPolicy::DeadlineAware`]; always 0 for
    /// deadline-blind policies).
    pub deadline_misses: usize,
    /// Application bits delivered.
    pub delivered_bits: usize,
    /// Closed loop: poll frames addressed to this tag.
    pub polls: usize,
    /// Closed loop: polls the tag's envelope detector failed to decode
    /// (collision, external traffic or the downlink link budget).
    pub poll_losses: usize,
    /// Closed loop: polls decoded whose backscattered response was lost —
    /// the sink waited out the response window for nothing.
    pub timeouts: usize,
    /// Closed loop: responses the sink decoded whose ack the carrier failed
    /// to decode, forcing a retransmission of delivered data.
    pub ack_losses: usize,
    /// Closed loop: completed poll → response → ack transactions.
    pub transactions: usize,
    /// Closed loop: summed poll-start → ack-decode spans of completed
    /// transactions, nanoseconds (kept integral so metrics stay `Eq`).
    pub transaction_ns: u64,
}

impl TagStats {
    /// Mean completed-transaction span, milliseconds.
    pub fn mean_transaction_ms(&self) -> f64 {
        if self.transactions == 0 {
            return 0.0;
        }
        self.transaction_ns as f64 / self.transactions as f64 / 1e6
    }
}

/// Struct-of-arrays twin of [`TagStats`]: one dense column per counter,
/// indexed by tag id. The engine's hot path bumps these columns — one
/// 8-byte cell in a contiguous per-counter array instead of a full
/// [`TagStats`] row — and materialises the public
/// [`NetworkMetrics::tags`] view once at the end of the run. Ids are
/// dense `u32`s: the constructor rejects larger fleets.
#[derive(Debug, Clone, Default)]
pub struct TagTable {
    /// Column of [`TagStats::offered`].
    pub offered: Vec<u64>,
    /// Column of [`TagStats::delivered`].
    pub delivered: Vec<u64>,
    /// Column of [`TagStats::dropped`].
    pub dropped: Vec<u64>,
    /// Column of [`TagStats::attempts`].
    pub attempts: Vec<u64>,
    /// Column of [`TagStats::collided`].
    pub collided: Vec<u64>,
    /// Column of [`TagStats::external_collisions`].
    pub external_collisions: Vec<u64>,
    /// Column of [`TagStats::link_losses`].
    pub link_losses: Vec<u64>,
    /// Column of [`TagStats::csma_defers`].
    pub csma_defers: Vec<u64>,
    /// Column of [`TagStats::grants`].
    pub grants: Vec<u64>,
    /// Column of [`TagStats::deadline_misses`].
    pub deadline_misses: Vec<u64>,
    /// Column of [`TagStats::delivered_bits`].
    pub delivered_bits: Vec<u64>,
    /// Column of [`TagStats::polls`].
    pub polls: Vec<u64>,
    /// Column of [`TagStats::poll_losses`].
    pub poll_losses: Vec<u64>,
    /// Column of [`TagStats::timeouts`].
    pub timeouts: Vec<u64>,
    /// Column of [`TagStats::ack_losses`].
    pub ack_losses: Vec<u64>,
    /// Column of [`TagStats::transactions`].
    pub transactions: Vec<u64>,
    /// Column of [`TagStats::transaction_ns`].
    pub transaction_ns: Vec<u64>,
}

impl TagTable {
    /// A zeroed table covering `n_tags` dense ids.
    pub fn new(n_tags: usize) -> TagTable {
        assert!(n_tags <= u32::MAX as usize, "tag ids are dense u32s");
        TagTable {
            offered: vec![0; n_tags],
            delivered: vec![0; n_tags],
            dropped: vec![0; n_tags],
            attempts: vec![0; n_tags],
            collided: vec![0; n_tags],
            external_collisions: vec![0; n_tags],
            link_losses: vec![0; n_tags],
            csma_defers: vec![0; n_tags],
            grants: vec![0; n_tags],
            deadline_misses: vec![0; n_tags],
            delivered_bits: vec![0; n_tags],
            polls: vec![0; n_tags],
            poll_losses: vec![0; n_tags],
            timeouts: vec![0; n_tags],
            ack_losses: vec![0; n_tags],
            transactions: vec![0; n_tags],
            transaction_ns: vec![0; n_tags],
        }
    }

    /// Number of tags covered.
    pub fn len(&self) -> usize {
        self.offered.len()
    }

    /// True when the table covers no tags.
    pub fn is_empty(&self) -> bool {
        self.offered.is_empty()
    }

    /// Writes every column back into the row-per-tag view (`tags` must
    /// have the table's length).
    pub fn materialize_into(&self, tags: &mut [TagStats]) {
        assert_eq!(tags.len(), self.len());
        for (t, out) in tags.iter_mut().enumerate() {
            *out = TagStats {
                offered: self.offered[t] as usize,
                delivered: self.delivered[t] as usize,
                dropped: self.dropped[t] as usize,
                attempts: self.attempts[t] as usize,
                collided: self.collided[t] as usize,
                external_collisions: self.external_collisions[t] as usize,
                link_losses: self.link_losses[t] as usize,
                csma_defers: self.csma_defers[t] as usize,
                grants: self.grants[t] as usize,
                deadline_misses: self.deadline_misses[t] as usize,
                delivered_bits: self.delivered_bits[t] as usize,
                polls: self.polls[t] as usize,
                poll_losses: self.poll_losses[t] as usize,
                timeouts: self.timeouts[t] as usize,
                ack_losses: self.ack_losses[t] as usize,
                transactions: self.transactions[t] as usize,
                transaction_ns: self.transaction_ns[t],
            };
        }
    }
}

/// One point of a tag's PRR-vs-displacement series, recorded at a mobility
/// tick: where the tag was relative to its starting position, and how its
/// attempts fared since the previous tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilitySample {
    /// Simulated time of the tick, seconds.
    pub at_s: f64,
    /// Straight-line distance from the tag's starting position, metres.
    pub displacement_m: f64,
    /// Transmission attempts since the previous tick.
    pub attempts: usize,
    /// Deliveries since the previous tick.
    pub delivered: usize,
}

impl MobilitySample {
    /// Packet reception ratio over the tick's attempts (`None` when the
    /// tag did not transmit in this tick).
    pub fn prr(&self) -> Option<f64> {
        (self.attempts > 0).then(|| self.delivered as f64 / self.attempts as f64)
    }
}

/// One point of a carrier's sensed-occupancy series, recorded on the
/// [`crate::coex::SenseConfig`] cadence: what the carrier's EWMA busy
/// estimator reads on its own stripe, and how its member tags' attempts
/// fared since the previous sample — the raw material of the
/// PRR-under-congestion readout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySample {
    /// Simulated time of the sample, seconds.
    pub at_s: f64,
    /// The sub-band stripe the carrier was tuned to when sampling.
    pub subband: usize,
    /// EWMA busy-airtime estimate of the carrier's own channel, in [0, 1].
    pub occupancy: f64,
    /// Member-tag transmission attempts since the previous sample.
    pub attempts: usize,
    /// Member-tag deliveries since the previous sample.
    pub delivered: usize,
}

/// One adaptive re-striping decision ([`crate::coex::ReStripe`]): a
/// carrier — and every Wi-Fi tag it illuminates — re-tuned from one
/// sub-band stripe to another because its sensed occupancy spiked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReStripeEvent {
    /// Simulated time of the decision (slot-aligned), seconds.
    pub at_s: f64,
    /// The carrier that re-tuned.
    pub carrier: usize,
    /// The stripe it left.
    pub from_subband: usize,
    /// The stripe it re-tuned to (the least-occupied candidate).
    pub to_subband: usize,
}

/// Deterministic shard-load telemetry from a multi-cell sharded run:
/// how the event load spread over the partition's interference cells and
/// epochs. Every count is derived from simulation state (events handled,
/// ghost windows injected) — never the wall clock — so the values are
/// byte-identical at any shard count and with profiling on or off; the
/// wall-clock side of the same story lives in [`crate::prof`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Total engine events handled per cell, in cell (partition) order.
    pub cell_events: Vec<u64>,
    /// Events handled per epoch per cell: `epoch_events[e][cell]`. The
    /// final epoch is the partial one in which the last cell reached its
    /// horizon.
    pub epoch_events: Vec<Vec<u64>>,
    /// Hidden ghost interference windows injected *into* each cell by the
    /// epoch-boundary exchange.
    pub ghost_windows: Vec<u64>,
}

impl ShardLoad {
    /// Number of epochs the run took (including the final partial one).
    pub fn epochs(&self) -> usize {
        self.epoch_events.len()
    }

    /// Jain's fairness index over per-cell event totals: 1 when the
    /// partition balanced perfectly, → 1/cells when one cell carried the
    /// whole run.
    pub fn load_fairness(&self) -> f64 {
        let xs: Vec<f64> = self.cell_events.iter().map(|&e| e as f64).collect();
        jain_index(&xs)
    }

    /// Per-epoch load skew — the busiest cell's event count over the mean
    /// cell's, for each epoch that handled any events — reduced to
    /// `(max, mean)` over epochs. 1.0 means perfectly level epochs; the
    /// max bounds how much the lockstep epoch barrier can idle workers.
    pub fn epoch_skew(&self) -> (f64, f64) {
        let mut max_skew = 0.0f64;
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for row in &self.epoch_events {
            let total: u64 = row.iter().sum();
            if total == 0 || row.is_empty() {
                continue;
            }
            let mean = total as f64 / row.len() as f64;
            let peak = row.iter().copied().max().unwrap_or(0) as f64;
            let skew = peak / mean;
            max_skew = max_skew.max(skew);
            sum += skew;
            n += 1;
        }
        if n == 0 {
            return (0.0, 0.0);
        }
        (max_skew, sum / n as f64)
    }

    /// The epoch that handled the most events in its busiest cell (ties
    /// break to the earliest) — the deterministic proxy for the
    /// wall-clock critical path [`crate::prof::ProfSummary`] measures.
    pub fn busiest_epoch(&self) -> Option<usize> {
        self.epoch_events
            .iter()
            .enumerate()
            .map(|(e, row)| (e, row.iter().copied().max().unwrap_or(0)))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .filter(|&(_, peak)| peak > 0)
            .map(|(e, _)| e)
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct NetworkMetrics {
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Per-tag counters, indexed like the scenario's tag list.
    pub tags: Vec<TagStats>,
    /// Delivery latency samples, milliseconds (arrival → delivery).
    pub latency_ms: Cdf,
    /// Closed loop: completed-transaction spans (poll start → ack decode),
    /// milliseconds.
    pub transaction_latency_ms: Cdf,
    /// Per-grant poll latency, milliseconds: how long the granted packet
    /// sat at the head of its tag's queue before the scheduler gave it a
    /// slot — the queueing delay the arbitration policy controls, one
    /// sample per grant.
    pub poll_latency_ms: Cdf,
    /// Per-receiver airtime punctured by double-sideband mirror copies,
    /// seconds — the coexistence cost the §2.3.1 single-sideband design
    /// removes (cf. Fig. 12).
    pub mirror_airtime_s: Vec<f64>,
    /// Per-tag PRR-vs-displacement series, one entry per mobility tick
    /// (empty vectors for static runs) — how link quality tracks motion,
    /// indexed like the scenario's tag list.
    pub mobility_series: Vec<Vec<MobilitySample>>,
    /// Per-carrier sensed-occupancy series (empty unless the scenario
    /// attaches a [`crate::coex::CoexConfig`]), indexed like the
    /// scenario's carrier list.
    pub occupancy_series: Vec<Vec<OccupancySample>>,
    /// Every adaptive re-striping decision of the run, in time order.
    pub restripe_events: Vec<ReStripeEvent>,
    /// Per external source: emissions put on the air, indexed like the
    /// coex config's source list.
    pub coex_emissions: Vec<usize>,
    /// Per external source: summed on-air time, seconds.
    pub coex_airtime_s: Vec<f64>,
    /// Per external source: CSMA deferrals (busy band or NAV honoured).
    pub coex_defers: Vec<usize>,
    /// Streaming-mode sketches and bins
    /// ([`crate::telemetry::MetricsMode::Streaming`]); `None` in the
    /// default stored mode. When set, the sample `Vec`s above stay empty
    /// and every accessor below routes here.
    pub streaming: Option<StreamingSeries>,
    /// Deterministic shard-load telemetry: set by the sharded executor on
    /// every **multi-cell** run (profiling on or off — the counts come
    /// from simulation state, so they are digest-neutral and
    /// shard-count-invariant). `None` on single-cell runs, which stay
    /// byte-identical to the legacy unsharded engine.
    pub shard_load: Option<ShardLoad>,
}

impl NetworkMetrics {
    /// Creates zeroed metrics for `n_tags` tags and `n_receivers`
    /// receivers over `duration_s` simulated seconds.
    pub fn new(n_tags: usize, n_receivers: usize, duration_s: f64) -> Self {
        NetworkMetrics {
            duration_s,
            tags: vec![TagStats::default(); n_tags],
            latency_ms: Cdf::new(),
            transaction_latency_ms: Cdf::new(),
            poll_latency_ms: Cdf::new(),
            mirror_airtime_s: vec![0.0; n_receivers],
            mobility_series: vec![Vec::new(); n_tags],
            occupancy_series: Vec::new(),
            restripe_events: Vec::new(),
            coex_emissions: Vec::new(),
            coex_airtime_s: Vec::new(),
            coex_defers: Vec::new(),
            streaming: None,
            shard_load: None,
        }
    }

    /// Switches this run's metrics to streaming mode: samples recorded
    /// through the `record_*` methods land in sketches and bins instead of
    /// the sample `Vec`s. Call before the run starts (the engine does this
    /// when the scenario's telemetry config asks for
    /// [`crate::telemetry::MetricsMode::Streaming`]).
    pub fn enable_streaming(&mut self) {
        self.streaming = Some(StreamingSeries::default());
    }

    /// Sizes the coexistence series for `n_carriers` carriers and
    /// `n_sources` external sources (called by the engine when the
    /// scenario attaches a coex config).
    pub fn init_coex(&mut self, n_carriers: usize, n_sources: usize) {
        self.occupancy_series = vec![Vec::new(); n_carriers];
        self.coex_emissions = vec![0; n_sources];
        self.coex_airtime_s = vec![0.0; n_sources];
        self.coex_defers = vec![0; n_sources];
        if let Some(s) = &mut self.streaming {
            s.occupancy_bins = Some(RateBins::new(OCCUPANCY_BIN));
            s.peak_occupancy = vec![None; n_carriers];
        }
    }

    /// Records one arrival → delivery latency sample, milliseconds
    /// (stored: pushed to the `latency_ms` CDF; streaming: sketched).
    pub fn record_latency_ms(&mut self, ms: f64) {
        match &mut self.streaming {
            Some(s) => s.latency_ms.add(ms),
            None => self.latency_ms.push(ms),
        }
    }

    /// Records one completed-transaction span, milliseconds.
    pub fn record_transaction_ms(&mut self, ms: f64) {
        match &mut self.streaming {
            Some(s) => s.transaction_latency_ms.add(ms),
            None => self.transaction_latency_ms.push(ms),
        }
    }

    /// Records one per-grant poll-latency sample, milliseconds.
    pub fn record_poll_latency_ms(&mut self, ms: f64) {
        match &mut self.streaming {
            Some(s) => s.poll_latency_ms.add(ms),
            None => self.poll_latency_ms.push(ms),
        }
    }

    /// Records one mobility-tick sample for `tag` (stored: appended to the
    /// tag's series; streaming: folded into the displacement bins).
    pub fn record_mobility_sample(&mut self, tag: usize, sample: MobilitySample) {
        match &mut self.streaming {
            Some(s) => {
                s.max_displacement_m = s.max_displacement_m.max(sample.displacement_m);
                s.mobility_samples += 1;
                s.displacement_bins
                    .get_or_insert_with(|| RateBins::new(DISPLACEMENT_BIN_M))
                    .add(sample.displacement_m, sample.attempts, sample.delivered);
            }
            None => self.mobility_series[tag].push(sample),
        }
    }

    /// Records one sensed-occupancy sample for `carrier` (stored: appended
    /// to the carrier's series; streaming: folded into the occupancy bins
    /// and the carrier's peak).
    pub fn record_occupancy_sample(&mut self, carrier: usize, sample: OccupancySample) {
        match &mut self.streaming {
            Some(s) => {
                s.occupancy_samples += 1;
                if let Some(peak) = s.peak_occupancy.get_mut(carrier) {
                    *peak = Some(peak.map_or(sample.occupancy, |p| p.max(sample.occupancy)));
                }
                s.occupancy_bins
                    .get_or_insert_with(|| RateBins::new(OCCUPANCY_BIN))
                    .add(sample.occupancy, sample.attempts, sample.delivered);
            }
            None => self.occupancy_series[carrier].push(sample),
        }
    }

    /// The `q`-quantile of the delivery-latency distribution, from
    /// whichever mode holds the samples.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        match &self.streaming {
            Some(s) => s.latency_ms.quantile(q),
            None => self.latency_ms.quantile(q),
        }
    }

    /// The `q`-quantile of the poll-latency distribution.
    pub fn poll_latency_quantile(&self, q: f64) -> Option<f64> {
        match &self.streaming {
            Some(s) => s.poll_latency_ms.quantile(q),
            None => self.poll_latency_ms.quantile(q),
        }
    }

    /// The `q`-quantile of the transaction-span distribution.
    pub fn transaction_quantile(&self, q: f64) -> Option<f64> {
        match &self.streaming {
            Some(s) => s.transaction_latency_ms.quantile(q),
            None => self.transaction_latency_ms.quantile(q),
        }
    }

    /// Pooled PRR of all mobility samples whose displacement falls in
    /// `[min_m, max_m)`, with the number of attempts it is based on —
    /// the paper-style "how far can the tag wander before the link dies"
    /// readout. `None` when no attempts landed in the band.
    pub fn prr_in_displacement_band(&self, min_m: f64, max_m: f64) -> Option<(f64, usize)> {
        if let Some(s) = &self.streaming {
            return s.displacement_bins.as_ref()?.band(min_m, max_m);
        }
        let (mut attempts, mut delivered) = (0usize, 0usize);
        for series in &self.mobility_series {
            for s in series {
                if s.displacement_m >= min_m && s.displacement_m < max_m {
                    attempts += s.attempts;
                    delivered += s.delivered;
                }
            }
        }
        (attempts > 0).then(|| (delivered as f64 / attempts as f64, attempts))
    }

    /// Pooled member-tag PRR of all occupancy samples whose sensed
    /// occupancy falls in `[min_occ, max_occ)`, with the number of
    /// attempts it is based on — the PRR-under-congestion readout: how the
    /// fleet fares while its channels are externally loaded vs. quiet.
    /// `None` when no attempts landed in the band.
    pub fn prr_in_occupancy_band(&self, min_occ: f64, max_occ: f64) -> Option<(f64, usize)> {
        if let Some(s) = &self.streaming {
            return s.occupancy_bins.as_ref()?.band(min_occ, max_occ);
        }
        let (mut attempts, mut delivered) = (0usize, 0usize);
        for series in &self.occupancy_series {
            for s in series {
                if s.occupancy >= min_occ && s.occupancy < max_occ {
                    attempts += s.attempts;
                    delivered += s.delivered;
                }
            }
        }
        (attempts > 0).then(|| (delivered as f64 / attempts as f64, attempts))
    }

    /// Highest occupancy carrier `c` ever sensed on its own stripe
    /// (`None` without a coex config or before the first sample).
    pub fn peak_occupancy(&self, c: usize) -> Option<f64> {
        if let Some(s) = &self.streaming {
            return s.peak_occupancy.get(c).copied().flatten();
        }
        self.occupancy_series
            .get(c)?
            .iter()
            .map(|s| s.occupancy)
            .fold(None, |acc: Option<f64>, o| {
                Some(acc.map_or(o, |a| a.max(o)))
            })
    }

    /// Total adaptive re-striping decisions of the run.
    pub fn restripes(&self) -> usize {
        self.restripe_events.len()
    }

    /// Total external emissions the coex sources put on the air.
    pub fn external_emissions(&self) -> usize {
        self.coex_emissions.iter().sum()
    }

    /// Total external on-air time across sources, seconds.
    pub fn external_airtime_s(&self) -> f64 {
        self.coex_airtime_s.iter().sum()
    }

    /// Largest displacement any tag reached, metres (0 for static runs).
    pub fn max_displacement_m(&self) -> f64 {
        if let Some(s) = &self.streaming {
            return s.max_displacement_m;
        }
        self.mobility_series
            .iter()
            .flatten()
            .map(|s| s.displacement_m)
            .fold(0.0, f64::max)
    }

    /// Total packets the applications offered.
    pub fn offered_packets(&self) -> usize {
        self.tags.iter().map(|t| t.offered).sum()
    }

    /// Total packets delivered.
    pub fn delivered_packets(&self) -> usize {
        self.tags.iter().map(|t| t.delivered).sum()
    }

    /// Total transmission attempts.
    pub fn attempts(&self) -> usize {
        self.tags.iter().map(|t| t.attempts).sum()
    }

    /// Aggregate network throughput, application bits per second.
    pub fn throughput_bps(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.tags.iter().map(|t| t.delivered_bits).sum::<usize>() as f64 / self.duration_s
    }

    /// Packet error rate over the air: failed attempts / attempts.
    pub fn per(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            return 0.0;
        }
        1.0 - self.delivered_packets() as f64 / attempts as f64
    }

    /// End-to-end delivery ratio: delivered / offered (includes queue and
    /// retry drops, unlike [`NetworkMetrics::per`]).
    pub fn delivery_ratio(&self) -> f64 {
        let offered = self.offered_packets();
        if offered == 0 {
            return 1.0;
        }
        self.delivered_packets() as f64 / offered as f64
    }

    /// Closed loop: total poll frames sent.
    pub fn polls(&self) -> usize {
        self.tags.iter().map(|t| t.polls).sum()
    }

    /// Closed loop: total completed transactions.
    pub fn completed_transactions(&self) -> usize {
        self.tags.iter().map(|t| t.transactions).sum()
    }

    /// Closed loop: completed transactions per poll sent — how often a poll
    /// turns into an acked delivery (1.0 when nothing sent yet).
    pub fn transaction_completion_rate(&self) -> f64 {
        let polls = self.polls();
        if polls == 0 {
            return 1.0;
        }
        self.completed_transactions() as f64 / polls as f64
    }

    /// Closed loop: completed transactions per simulated second.
    pub fn transactions_per_sec(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.completed_transactions() as f64 / self.duration_s
    }

    /// Total carrier slots the schedulers granted.
    pub fn grants(&self) -> usize {
        self.tags.iter().map(|t| t.grants).sum()
    }

    /// Total grants that missed their scheduler deadline.
    pub fn deadline_misses(&self) -> usize {
        self.tags.iter().map(|t| t.deadline_misses).sum()
    }

    /// Deadline misses per grant (0 when nothing was granted, or for
    /// deadline-blind policies).
    pub fn deadline_miss_rate(&self) -> f64 {
        let grants = self.grants();
        if grants == 0 {
            return 0.0;
        }
        self.deadline_misses() as f64 / grants as f64
    }

    /// Jain's fairness index over per-tag delivered bits: 1 when every tag
    /// got the same throughput, → 1/n when one tag starved the rest.
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self.tags.iter().map(|t| t.delivered_bits as f64).collect();
        jain_index(&xs)
    }

    /// Jain's fairness index over per-tag *grants* — how evenly the
    /// scheduler spread slots, regardless of whether the attempts
    /// delivered (a margin-aware policy may be grant-unfair on purpose
    /// while a fade lasts; the starvation bound caps how unfair).
    pub fn grant_fairness(&self) -> f64 {
        let xs: Vec<f64> = self.tags.iter().map(|t| t.grants as f64).collect();
        jain_index(&xs)
    }

    /// Mirror-copy duty cycle at receiver `rx`: the fraction of airtime
    /// punctured by double-sideband mirror copies.
    pub fn mirror_duty(&self, rx: usize) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.mirror_airtime_s.get(rx).copied().unwrap_or(0.0) / self.duration_s
    }

    /// A plain-text report of the aggregates.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "tags {}  duration {:.1}s  offered {}  attempts {}  delivered {}\n",
            self.tags.len(),
            self.duration_s,
            self.offered_packets(),
            self.attempts(),
            self.delivered_packets(),
        ));
        out.push_str(&format!(
            "throughput {:.1} bit/s  PER {:.3}  delivery {:.3}  fairness {:.3}\n",
            self.throughput_bps(),
            self.per(),
            self.delivery_ratio(),
            self.jain_fairness(),
        ));
        if let (Some(p50), Some(p95)) = (self.latency_quantile(0.5), self.latency_quantile(0.95)) {
            out.push_str(&format!("latency p50 {p50:.2} ms  p95 {p95:.2} ms\n"));
        }
        if self.grants() > 0 {
            out.push_str(&format!(
                "scheduler: {} grants  grant fairness {:.3}",
                self.grants(),
                self.grant_fairness(),
            ));
            if let (Some(p50), Some(p95)) = (
                self.poll_latency_quantile(0.5),
                self.poll_latency_quantile(0.95),
            ) {
                out.push_str(&format!("  poll latency p50 {p50:.2} ms  p95 {p95:.2} ms"));
            }
            if self.deadline_misses() > 0 {
                out.push_str(&format!(
                    "  deadline misses {} (rate {:.3})",
                    self.deadline_misses(),
                    self.deadline_miss_rate(),
                ));
            }
            out.push('\n');
        }
        let collided: usize = self.tags.iter().map(|t| t.collided).sum();
        let external: usize = self.tags.iter().map(|t| t.external_collisions).sum();
        let link: usize = self.tags.iter().map(|t| t.link_losses).sum();
        let defers: usize = self.tags.iter().map(|t| t.csma_defers).sum();
        out.push_str(&format!(
            "losses: {collided} tag-tag, {external} external, {link} link; {defers} CSMA defers\n"
        ));
        if self.polls() > 0 {
            let poll_losses: usize = self.tags.iter().map(|t| t.poll_losses).sum();
            let timeouts: usize = self.tags.iter().map(|t| t.timeouts).sum();
            let ack_losses: usize = self.tags.iter().map(|t| t.ack_losses).sum();
            out.push_str(&format!(
                "closed loop: {} polls, {poll_losses} poll losses, {timeouts} timeouts, \
                 {ack_losses} ack losses, {} transactions (completion {:.3})\n",
                self.polls(),
                self.completed_transactions(),
                self.transaction_completion_rate(),
            ));
            if let (Some(p50), Some(p95)) = (
                self.transaction_quantile(0.5),
                self.transaction_quantile(0.95),
            ) {
                out.push_str(&format!(
                    "transaction span p50 {p50:.3} ms  p95 {p95:.3} ms\n"
                ));
            }
        }
        for (rx, _) in self
            .mirror_airtime_s
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > 0.0)
        {
            out.push_str(&format!(
                "receiver {rx}: mirror-copy duty {:.4}\n",
                self.mirror_duty(rx)
            ));
        }
        if self.external_emissions() > 0 || self.restripes() > 0 {
            let defers: usize = self.coex_defers.iter().sum();
            out.push_str(&format!(
                "coex: {} external emissions ({:.3} s on air, {defers} defers), {} re-stripes\n",
                self.external_emissions(),
                self.external_airtime_s(),
                self.restripes(),
            ));
            if let (Some((quiet, _)), Some((busy, _))) = (
                self.prr_in_occupancy_band(0.0, 0.3),
                self.prr_in_occupancy_band(0.3, f64::INFINITY),
            ) {
                out.push_str(&format!(
                    "PRR under occupancy <0.3: {quiet:.3}  ≥0.3: {busy:.3}\n"
                ));
            }
        }
        if let Some(load) = &self.shard_load {
            let (skew_max, skew_mean) = load.epoch_skew();
            let ghosts: u64 = load.ghost_windows.iter().sum();
            out.push_str(&format!(
                "shards: {} cells over {} epochs  load fairness {:.3}  \
                 ghost windows {ghosts}  epoch skew max {skew_max:.2} mean {skew_mean:.2}\n",
                load.cell_events.len(),
                load.epochs(),
                load.load_fairness(),
            ));
        }
        let max_disp = self.max_displacement_m();
        if max_disp > 0.0 {
            out.push_str(&format!("mobility: max displacement {max_disp:.2} m"));
            let half = max_disp / 2.0;
            if let (Some((near, _)), Some((far, _))) = (
                self.prr_in_displacement_band(0.0, half),
                self.prr_in_displacement_band(half, f64::INFINITY),
            ) {
                out.push_str(&format!(
                    "  PRR near (<{half:.1} m) {near:.3}  far (≥{half:.1} m) {far:.3}"
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// Jain's fairness index of a sample set; 1.0 for empty or all-zero input.
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_from_tag_stats() {
        let mut m = NetworkMetrics::new(2, 1, 10.0);
        m.tags[0] = TagStats {
            offered: 10,
            delivered: 8,
            attempts: 10,
            collided: 1,
            link_losses: 1,
            delivered_bits: 8 * 248,
            ..Default::default()
        };
        m.tags[1] = TagStats {
            offered: 10,
            delivered: 8,
            attempts: 10,
            external_collisions: 2,
            delivered_bits: 8 * 248,
            ..Default::default()
        };
        assert_eq!(m.offered_packets(), 20);
        assert_eq!(m.delivered_packets(), 16);
        assert_eq!(m.attempts(), 20);
        assert!((m.per() - 0.2).abs() < 1e-12);
        assert!((m.delivery_ratio() - 0.8).abs() < 1e-12);
        assert!((m.throughput_bps() - 2.0 * 8.0 * 248.0 / 10.0).abs() < 1e-9);
        // Equal split → perfectly fair.
        assert!((m.jain_fairness() - 1.0).abs() < 1e-12);
        let report = m.report();
        assert!(report.contains("PER 0.200"));
        assert!(report.contains("fairness 1.000"));
    }

    #[test]
    fn fairness_detects_starvation() {
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One tag hogs everything: index → 1/n.
        let hog = jain_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((hog - 0.25).abs() < 1e-12);
        let skew = jain_index(&[4.0, 1.0]);
        assert!(skew < 0.8 && skew > 0.25 + 1e-12, "skew {skew}");
    }

    #[test]
    fn scheduler_metrics_aggregate() {
        let mut m = NetworkMetrics::new(3, 1, 10.0);
        m.tags[0] = TagStats {
            grants: 40,
            deadline_misses: 10,
            ..Default::default()
        };
        m.tags[1] = TagStats {
            grants: 40,
            ..Default::default()
        };
        m.tags[2] = TagStats {
            grants: 20,
            deadline_misses: 5,
            ..Default::default()
        };
        m.poll_latency_ms.push(2.0);
        m.poll_latency_ms.push(4.0);
        m.poll_latency_ms.push(6.0);
        assert_eq!(m.grants(), 100);
        assert_eq!(m.deadline_misses(), 15);
        assert!((m.deadline_miss_rate() - 0.15).abs() < 1e-12);
        // Jain over (40, 40, 20): (100²)/(3·3600) = 0.9259…
        assert!((m.grant_fairness() - 100.0 * 100.0 / (3.0 * 3600.0)).abs() < 1e-12);
        assert_eq!(m.poll_latency_ms.median(), Some(4.0));
        let report = m.report();
        assert!(report.contains("scheduler: 100 grants"), "{report}");
        assert!(
            report.contains("deadline misses 15 (rate 0.150)"),
            "{report}"
        );
        assert!(report.contains("poll latency p50 4.00 ms"), "{report}");
    }

    #[test]
    fn scheduler_metrics_empty_cases() {
        let empty = NetworkMetrics::default();
        assert_eq!(empty.grants(), 0);
        assert_eq!(empty.deadline_miss_rate(), 0.0);
        assert_eq!(empty.grant_fairness(), 1.0);
        assert!(!empty.report().contains("scheduler"));
        // Grants without misses keep the miss clause out of the report.
        let mut m = NetworkMetrics::new(1, 1, 1.0);
        m.tags[0].grants = 3;
        assert_eq!(m.deadline_miss_rate(), 0.0);
        assert!(m.report().contains("scheduler: 3 grants"));
        assert!(!m.report().contains("deadline misses"));
    }

    #[test]
    fn mirror_duty_and_empty_cases() {
        let mut m = NetworkMetrics::new(1, 2, 10.0);
        m.mirror_airtime_s[1] = 0.5;
        assert_eq!(m.mirror_duty(0), 0.0);
        assert!((m.mirror_duty(1) - 0.05).abs() < 1e-12);
        assert_eq!(m.mirror_duty(99), 0.0);

        let empty = NetworkMetrics::default();
        assert_eq!(empty.per(), 0.0);
        assert_eq!(empty.delivery_ratio(), 1.0);
        assert_eq!(empty.throughput_bps(), 0.0);
        assert_eq!(empty.jain_fairness(), 1.0);
    }

    #[test]
    fn mobility_series_aggregates_prr_by_displacement() {
        let mut m = NetworkMetrics::new(2, 1, 10.0);
        assert_eq!(m.max_displacement_m(), 0.0);
        assert!(m.prr_in_displacement_band(0.0, f64::INFINITY).is_none());
        assert!(!m.report().contains("mobility"));

        let sample = |d: f64, attempts: usize, delivered: usize| MobilitySample {
            at_s: 0.1,
            displacement_m: d,
            attempts,
            delivered,
        };
        m.mobility_series[0] = vec![sample(0.5, 4, 4), sample(3.0, 4, 1)];
        m.mobility_series[1] = vec![sample(1.0, 2, 2), sample(0.0, 0, 0)];
        assert_eq!(m.max_displacement_m(), 3.0);
        let (near, near_n) = m.prr_in_displacement_band(0.0, 1.5).unwrap();
        assert!((near - 1.0).abs() < 1e-12 && near_n == 6);
        let (far, far_n) = m.prr_in_displacement_band(1.5, f64::INFINITY).unwrap();
        assert!((far - 0.25).abs() < 1e-12 && far_n == 4);
        assert_eq!(sample(0.0, 0, 0).prr(), None);
        assert_eq!(sample(1.0, 4, 3).prr(), Some(0.75));
        let report = m.report();
        assert!(
            report.contains("mobility: max displacement 3.00 m"),
            "{report}"
        );
    }

    #[test]
    fn coex_series_aggregate_and_report() {
        let mut m = NetworkMetrics::new(2, 1, 10.0);
        assert_eq!(m.restripes(), 0);
        assert_eq!(m.external_emissions(), 0);
        assert!(m.peak_occupancy(0).is_none());
        assert!(m.prr_in_occupancy_band(0.0, 1.0).is_none());
        assert!(!m.report().contains("coex"));

        m.init_coex(2, 3);
        assert_eq!(m.occupancy_series.len(), 2);
        assert!(m.peak_occupancy(0).is_none(), "no samples yet");
        let sample = |occ: f64, attempts: usize, delivered: usize| OccupancySample {
            at_s: 1.0,
            subband: 0,
            occupancy: occ,
            attempts,
            delivered,
        };
        m.occupancy_series[0] = vec![sample(0.05, 10, 10), sample(0.6, 10, 3)];
        m.occupancy_series[1] = vec![sample(0.1, 4, 4)];
        assert_eq!(m.peak_occupancy(0), Some(0.6));
        assert_eq!(m.peak_occupancy(1), Some(0.1));
        let (quiet, quiet_n) = m.prr_in_occupancy_band(0.0, 0.3).unwrap();
        assert!((quiet - 1.0).abs() < 1e-12 && quiet_n == 14);
        let (busy, busy_n) = m.prr_in_occupancy_band(0.3, f64::INFINITY).unwrap();
        assert!((busy - 0.3).abs() < 1e-12 && busy_n == 10);

        m.coex_emissions = vec![100, 0, 5];
        m.coex_airtime_s = vec![0.4, 0.0, 0.1];
        m.coex_defers = vec![7, 0, 0];
        m.restripe_events.push(ReStripeEvent {
            at_s: 3.1,
            carrier: 1,
            from_subband: 1,
            to_subband: 0,
        });
        assert_eq!(m.external_emissions(), 105);
        assert!((m.external_airtime_s() - 0.5).abs() < 1e-12);
        assert_eq!(m.restripes(), 1);
        let report = m.report();
        assert!(
            report
                .contains("coex: 105 external emissions (0.500 s on air, 7 defers), 1 re-stripes"),
            "{report}"
        );
        assert!(
            report.contains("PRR under occupancy <0.3: 1.000"),
            "{report}"
        );
    }

    #[test]
    fn streaming_mode_routes_samples_into_sketches() {
        let mut m = NetworkMetrics::new(2, 1, 10.0);
        m.enable_streaming();
        m.init_coex(2, 1);
        for i in 0..1000 {
            m.record_latency_ms(1.0 + i as f64 * 0.01);
            m.record_poll_latency_ms(2.0 + i as f64 * 0.01);
            m.record_transaction_ms(3.0 + i as f64 * 0.01);
        }
        m.record_mobility_sample(
            0,
            MobilitySample {
                at_s: 0.1,
                displacement_m: 0.1,
                attempts: 10,
                delivered: 10,
            },
        );
        m.record_mobility_sample(
            1,
            MobilitySample {
                at_s: 0.1,
                displacement_m: 3.0,
                attempts: 10,
                delivered: 2,
            },
        );
        m.record_occupancy_sample(
            0,
            OccupancySample {
                at_s: 1.0,
                subband: 0,
                occupancy: 0.6,
                attempts: 10,
                delivered: 3,
            },
        );
        // The sample Vecs stayed empty: memory is O(entities), not O(events).
        assert!(m.latency_ms.is_empty());
        assert!(m.poll_latency_ms.is_empty());
        assert!(m.transaction_latency_ms.is_empty());
        assert!(m.mobility_series.iter().all(Vec::is_empty));
        assert!(m.occupancy_series.iter().all(Vec::is_empty));
        // …but the readouts still answer, within the sketch bound.
        let p50 = m.latency_quantile(0.5).unwrap();
        assert!((p50 - 6.0).abs() / 6.0 < 0.01, "p50 {p50}");
        assert!((m.poll_latency_quantile(0.5).unwrap() - 7.0).abs() / 7.0 < 0.01);
        assert!((m.transaction_quantile(0.5).unwrap() - 8.0).abs() / 8.0 < 0.01);
        assert_eq!(m.max_displacement_m(), 3.0);
        let (near, n) = m.prr_in_displacement_band(0.0, 1.5).unwrap();
        assert!((near - 1.0).abs() < 1e-12 && n == 10);
        assert_eq!(m.peak_occupancy(0), Some(0.6));
        assert_eq!(m.peak_occupancy(1), None);
        let (busy, bn) = m.prr_in_occupancy_band(0.3, f64::INFINITY).unwrap();
        assert!((busy - 0.3).abs() < 1e-12 && bn == 10);
        // The report still renders its latency lines from the sketches.
        m.tags[0].attempts = 10;
        m.tags[0].grants = 10;
        let report = m.report();
        assert!(report.contains("latency p50"), "{report}");
        assert!(report.contains("poll latency p50"), "{report}");
    }

    #[test]
    fn streaming_series_merge_pools_trials() {
        let mut a = StreamingSeries::default();
        let mut b = StreamingSeries::default();
        for i in 0..100 {
            a.latency_ms.add(1.0 + i as f64);
            b.latency_ms.add(101.0 + i as f64);
        }
        a.max_displacement_m = 2.0;
        b.max_displacement_m = 5.0;
        b.mobility_samples = 7;
        a.merge(&b);
        assert_eq!(a.latency_ms.count(), 200);
        assert_eq!(a.max_displacement_m, 5.0);
        assert_eq!(a.mobility_samples, 7);
        // Nearest-rank p50 over the pooled 1..=200 is the 101st sample.
        let p50 = a.latency_ms.quantile(0.5).unwrap();
        assert!((p50 - 101.0).abs() / 101.0 < 0.01, "pooled p50 {p50}");
    }

    #[test]
    fn closed_loop_counters_aggregate() {
        let mut m = NetworkMetrics::new(2, 1, 10.0);
        m.tags[0] = TagStats {
            polls: 10,
            poll_losses: 2,
            timeouts: 1,
            ack_losses: 1,
            transactions: 6,
            transaction_ns: 6 * 600_000,
            ..Default::default()
        };
        m.tags[1] = TagStats {
            polls: 6,
            transactions: 6,
            transaction_ns: 6 * 500_000,
            ..Default::default()
        };
        assert_eq!(m.polls(), 16);
        assert_eq!(m.completed_transactions(), 12);
        assert!((m.transaction_completion_rate() - 12.0 / 16.0).abs() < 1e-12);
        assert!((m.transactions_per_sec() - 1.2).abs() < 1e-12);
        assert!((m.tags[0].mean_transaction_ms() - 0.6).abs() < 1e-12);
        assert_eq!(TagStats::default().mean_transaction_ms(), 0.0);
        let report = m.report();
        assert!(report.contains("closed loop: 16 polls"));
        assert!(report.contains("12 transactions"));
        // Open-loop metrics stay silent about the closed loop.
        assert!(!NetworkMetrics::new(1, 1, 1.0).report().contains("closed"));
    }
}
