//! Mobility models: how entities move between [`crate::engine`] mobility
//! ticks.
//!
//! The paper's deployments are inherently mobile — contact lenses on moving
//! heads, implants on walking patients, cards carried across a room — so a
//! scenario may attach a [`MobilityConfig`] that drives a periodic
//! `MobilityTick` event. Each tick advances every tag's [`MotionState`] by
//! one [`Mobility::step`] and pushes the new geometry into the
//! [`crate::links::LinkMatrix`] through its row-level invalidation API, so
//! link budgets always reflect where the entities *currently* are.
//!
//! Determinism: a model draws randomness only from the RNG handed to
//! `step`, which the engine seeds per entity from `(scenario seed, mobility
//! stream, entity index)`. Two runs with the same seed therefore trace the
//! identical walk, tick for tick — the same contract every other random
//! draw in the engine honours.

use crate::entities::Position;
use rand::rngs::SmallRng;
use rand::Rng;
use std::f64::consts::TAU;

/// Axis-aligned box the mobile entities roam, metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Lowest corner (inclusive).
    pub min: Position,
    /// Highest corner (inclusive). A degenerate axis (`min == max`) pins
    /// motion to that plane — the usual case for `z`, since people walk on
    /// the floor.
    pub max: Position,
}

impl Bounds {
    /// Builds a box from two corners.
    pub fn new(min: Position, max: Position) -> Self {
        Bounds { min, max }
    }

    /// A room of `width × depth` metres on the floor plane `z`.
    pub fn room(width: f64, depth: f64, z: f64) -> Self {
        Bounds {
            min: Position::new(0.0, 0.0, z),
            max: Position::new(width, depth, z),
        }
    }

    /// True when every coordinate of `p` lies inside the box.
    pub fn contains(&self, p: &Position) -> bool {
        (self.min.x..=self.max.x).contains(&p.x)
            && (self.min.y..=self.max.y).contains(&p.y)
            && (self.min.z..=self.max.z).contains(&p.z)
    }

    /// `p` with every coordinate clamped into the box.
    pub fn clamp(&self, p: Position) -> Position {
        Position::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
            p.z.clamp(self.min.z, self.max.z),
        )
    }

    /// Checks the box is non-empty on every axis.
    pub fn validate(&self) -> Result<(), String> {
        for (lo, hi, axis) in [
            (self.min.x, self.max.x, "x"),
            (self.min.y, self.max.y, "y"),
            (self.min.z, self.max.z, "z"),
        ] {
            if lo.is_nan() || hi.is_nan() || lo > hi {
                return Err(format!("bounds empty on {axis}: {lo} > {hi}"));
            }
        }
        Ok(())
    }

    /// A uniform draw inside the box.
    fn sample<R: Rng>(&self, rng: &mut R) -> Position {
        Position::new(
            rng.gen_range(self.min.x..=self.max.x),
            rng.gen_range(self.min.y..=self.max.y),
            rng.gen_range(self.min.z..=self.max.z),
        )
    }
}

/// One entity's kinematic state between ticks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionState {
    /// Where the entity currently is.
    pub position: Position,
    /// Where it started — the displacement reference for the
    /// PRR-vs-displacement series in [`crate::metrics::NetworkMetrics`].
    pub origin: Position,
    /// Current waypoint (random-waypoint model), if one is in progress.
    target: Option<Position>,
    /// Speed toward the current waypoint, m/s.
    speed_mps: f64,
    /// Remaining pause at a reached waypoint, seconds.
    pause_left_s: f64,
    /// Current heading (random-walk model), radians.
    heading_rad: f64,
    /// Whether the walk has drawn its initial heading yet.
    started: bool,
}

impl MotionState {
    /// A state at rest at `position`.
    pub fn at(position: Position) -> Self {
        MotionState {
            position,
            origin: position,
            target: None,
            speed_mps: 0.0,
            pause_left_s: 0.0,
            heading_rad: 0.0,
            started: false,
        }
    }

    /// Straight-line distance from the origin, metres (no floor — a
    /// stationary entity reports exactly zero, unlike
    /// [`Position::distance_m`]).
    pub fn displacement_m(&self) -> f64 {
        let dx = self.position.x - self.origin.x;
        let dy = self.position.y - self.origin.y;
        let dz = self.position.z - self.origin.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// A mobility model: advances one entity's motion state by one tick.
pub trait Mobility {
    /// Moves `state` forward `dt_s` seconds inside `bounds`, drawing any
    /// randomness from the entity's own stream.
    fn step(&self, state: &mut MotionState, bounds: &Bounds, dt_s: f64, rng: &mut SmallRng);

    /// True when the model never moves anything (lets the engine skip
    /// scheduling ticks entirely).
    fn is_static(&self) -> bool {
        false
    }
}

/// The null model: entities stay where the scenario placed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Static;

impl Mobility for Static {
    fn step(&self, _state: &mut MotionState, _bounds: &Bounds, _dt_s: f64, _rng: &mut SmallRng) {}

    fn is_static(&self) -> bool {
        true
    }
}

/// Random waypoint: pick a uniform point in the bounds, walk toward it at a
/// uniformly drawn speed, pause on arrival, repeat — the classic ad-hoc
/// networking mobility model, here standing in for patients and lens
/// wearers moving about a room.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypoint {
    /// Minimum walking speed, m/s.
    pub speed_min_mps: f64,
    /// Maximum walking speed, m/s.
    pub speed_max_mps: f64,
    /// Pause at each reached waypoint, seconds.
    pub pause_s: f64,
}

impl Mobility for RandomWaypoint {
    fn step(&self, state: &mut MotionState, bounds: &Bounds, dt_s: f64, rng: &mut SmallRng) {
        if state.pause_left_s > 0.0 {
            state.pause_left_s = (state.pause_left_s - dt_s).max(0.0);
            return;
        }
        let target = match state.target {
            Some(t) => t,
            None => {
                let t = bounds.sample(rng);
                state.target = Some(t);
                state.speed_mps = rng.gen_range(self.speed_min_mps..=self.speed_max_mps);
                t
            }
        };
        let dx = target.x - state.position.x;
        let dy = target.y - state.position.y;
        let dz = target.z - state.position.z;
        let remaining = (dx * dx + dy * dy + dz * dz).sqrt();
        let stride = state.speed_mps * dt_s;
        if remaining <= stride || remaining == 0.0 {
            state.position = target;
            state.target = None;
            state.pause_left_s = self.pause_s;
        } else {
            let f = stride / remaining;
            state.position = Position::new(
                state.position.x + dx * f,
                state.position.y + dy * f,
                state.position.z + dz * f,
            );
        }
    }
}

/// Random walk: a constant speed with a heading that wanders a bounded
/// amount per tick, reflecting off the bounds — jitter-style motion for
/// entities that drift rather than commute (heads wearing lenses, cards
/// shuffled on a table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalk {
    /// Walking speed, m/s.
    pub speed_mps: f64,
    /// Maximum per-tick heading change, radians (drawn uniformly in
    /// `±turn_rad`).
    pub turn_rad: f64,
}

impl Mobility for RandomWalk {
    fn step(&self, state: &mut MotionState, bounds: &Bounds, dt_s: f64, rng: &mut SmallRng) {
        if !state.started {
            state.heading_rad = rng.gen_range(0.0..=TAU);
            state.started = true;
        } else {
            state.heading_rad += rng.gen_range(-self.turn_rad..=self.turn_rad);
        }
        let stride = self.speed_mps * dt_s;
        let next = Position::new(
            state.position.x + stride * state.heading_rad.cos(),
            state.position.y + stride * state.heading_rad.sin(),
            state.position.z,
        );
        if bounds.contains(&next) {
            state.position = next;
        } else {
            // Bounce: clamp to the wall and turn around.
            state.position = bounds.clamp(next);
            state.heading_rad += TAU / 2.0;
        }
    }
}

/// The model catalogue a scenario can attach: each variant *holds* the
/// corresponding [`Mobility`] implementation (no duplicated field sets),
/// and [`MobilityModel::step`] borrows it for dispatch. The enum exists so
/// a `Scenario` stays `Clone + Copy`-configurable; the trait is the
/// implementation seam the three models share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityModel {
    /// Entities never move.
    Static,
    /// Walk → pause → walk between uniform waypoints.
    RandomWaypoint(RandomWaypoint),
    /// Bounded-turn constant-speed drift.
    RandomWalk(RandomWalk),
}

impl MobilityModel {
    /// The [`Mobility`] implementation this variant holds.
    fn as_mobility(&self) -> &dyn Mobility {
        match self {
            MobilityModel::Static => &Static,
            MobilityModel::RandomWaypoint(model) => model,
            MobilityModel::RandomWalk(model) => model,
        }
    }

    /// Advances `state` by one tick under this model.
    pub fn step(&self, state: &mut MotionState, bounds: &Bounds, dt_s: f64, rng: &mut SmallRng) {
        self.as_mobility().step(state, bounds, dt_s, rng)
    }

    /// True when the model never moves anything.
    pub fn is_static(&self) -> bool {
        self.as_mobility().is_static()
    }

    /// Checks speeds and turn limits are sane.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            MobilityModel::Static => Ok(()),
            MobilityModel::RandomWaypoint(RandomWaypoint {
                speed_min_mps,
                speed_max_mps,
                pause_s,
            }) => {
                if !(speed_min_mps > 0.0 && speed_max_mps >= speed_min_mps) {
                    return Err(format!(
                        "waypoint speeds must satisfy 0 < min <= max, got {speed_min_mps}..{speed_max_mps}"
                    ));
                }
                if pause_s < 0.0 {
                    return Err("waypoint pause must be non-negative".into());
                }
                Ok(())
            }
            MobilityModel::RandomWalk(RandomWalk {
                speed_mps,
                turn_rad,
            }) => {
                if speed_mps <= 0.0 {
                    return Err("walk speed must be positive".into());
                }
                if !(0.0..=TAU).contains(&turn_rad) {
                    return Err("turn limit must be in [0, 2π]".into());
                }
                Ok(())
            }
        }
    }
}

/// A scenario's mobility attachment: which model moves the tags, how often
/// the engine ticks it, and where the tags may go.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityConfig {
    /// The model every tag moves under.
    pub model: MobilityModel,
    /// Tick period, seconds. The engine schedules ticks on the integer-ns
    /// grid (`period` rounded once), so tick `k` fires at exactly
    /// `k · round(period)` — no accumulated float drift.
    pub tick_interval_s: f64,
    /// Where the tags may go.
    pub bounds: Bounds,
    /// When true, each carrier with exactly one assigned tag follows that
    /// tag rigidly (its scenario offset preserved) — a body-worn helper
    /// device walking with its patient. Carriers shared by several tags
    /// stay put.
    pub carriers_follow: bool,
}

impl MobilityConfig {
    /// Checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.tick_interval_s.is_nan() || self.tick_interval_s <= 0.0 {
            return Err("mobility tick interval must be positive".into());
        }
        self.bounds.validate()?;
        self.model.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        // detlint: allow(stray_rng): test-local stream stepping models directly, not an engine entity
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn bounds_contain_clamp_and_validate() {
        let b = Bounds::room(10.0, 5.0, 1.0);
        assert!(b.contains(&Position::new(3.0, 2.0, 1.0)));
        assert!(!b.contains(&Position::new(3.0, 2.0, 1.5)));
        assert!(!b.contains(&Position::new(-0.1, 2.0, 1.0)));
        let c = b.clamp(Position::new(12.0, -1.0, 0.0));
        assert_eq!(c, Position::new(10.0, 0.0, 1.0));
        assert!(b.validate().is_ok());
        assert!(
            Bounds::new(Position::new(1.0, 0.0, 0.0), Position::default())
                .validate()
                .is_err()
        );
    }

    #[test]
    fn static_model_never_moves() {
        let b = Bounds::room(10.0, 10.0, 0.0);
        let mut state = MotionState::at(Position::new(5.0, 5.0, 0.0));
        let mut r = rng(7);
        for _ in 0..100 {
            MobilityModel::Static.step(&mut state, &b, 0.1, &mut r);
        }
        assert_eq!(state.position, Position::new(5.0, 5.0, 0.0));
        assert_eq!(state.displacement_m(), 0.0);
        assert!(MobilityModel::Static.is_static());
    }

    #[test]
    fn waypoint_walks_pauses_and_stays_in_bounds() {
        let b = Bounds::room(8.0, 6.0, 1.0);
        let model = MobilityModel::RandomWaypoint(RandomWaypoint {
            speed_min_mps: 1.0,
            speed_max_mps: 1.0,
            pause_s: 0.5,
        });
        let mut state = MotionState::at(Position::new(4.0, 3.0, 1.0));
        let mut r = rng(11);
        let mut moved_ticks = 0;
        let mut paused_ticks = 0;
        for _ in 0..400 {
            let before = state.position;
            model.step(&mut state, &b, 0.1, &mut r);
            assert!(
                b.contains(&state.position),
                "escaped at {:?}",
                state.position
            );
            if state.position == before {
                paused_ticks += 1;
            } else {
                moved_ticks += 1;
                // At 1 m/s and 100 ms ticks a stride is at most 10 cm.
                let dx = state.position.x - before.x;
                let dy = state.position.y - before.y;
                assert!((dx * dx + dy * dy).sqrt() < 0.1 + 1e-9);
            }
        }
        assert!(moved_ticks > 100, "moved {moved_ticks}");
        assert!(paused_ticks > 0, "never paused");
    }

    #[test]
    fn walk_reflects_off_walls() {
        let b = Bounds::room(2.0, 2.0, 0.5);
        let model = MobilityModel::RandomWalk(RandomWalk {
            speed_mps: 1.5,
            turn_rad: 0.3,
        });
        let mut state = MotionState::at(Position::new(1.0, 1.0, 0.5));
        let mut r = rng(3);
        for _ in 0..500 {
            model.step(&mut state, &b, 0.2, &mut r);
            assert!(b.contains(&state.position));
        }
        // A 1.5 m/s walk in a 2 m room must have hit walls and kept moving.
        assert!(state.displacement_m() <= 3.0);
    }

    #[test]
    fn same_stream_same_walk() {
        let b = Bounds::room(10.0, 10.0, 1.0);
        let model = MobilityModel::RandomWaypoint(RandomWaypoint {
            speed_min_mps: 0.5,
            speed_max_mps: 1.5,
            pause_s: 1.0,
        });
        let walk = |seed: u64| {
            let mut state = MotionState::at(Position::new(5.0, 5.0, 1.0));
            let mut r = rng(seed);
            (0..200).for_each(|_| model.step(&mut state, &b, 0.1, &mut r));
            state.position
        };
        assert_eq!(walk(42), walk(42));
        assert_ne!(walk(42), walk(43));
    }

    #[test]
    fn configs_validate() {
        let good = MobilityConfig {
            model: MobilityModel::RandomWalk(RandomWalk {
                speed_mps: 1.0,
                turn_rad: 0.5,
            }),
            tick_interval_s: 0.1,
            bounds: Bounds::room(5.0, 5.0, 1.0),
            carriers_follow: true,
        };
        assert!(good.validate().is_ok());
        assert!(MobilityConfig {
            tick_interval_s: 0.0,
            ..good
        }
        .validate()
        .is_err());
        assert!(MobilityConfig {
            model: MobilityModel::RandomWaypoint(RandomWaypoint {
                speed_min_mps: 2.0,
                speed_max_mps: 1.0,
                pause_s: 0.0,
            }),
            ..good
        }
        .validate()
        .is_err());
        assert!(MobilityConfig {
            model: MobilityModel::RandomWalk(RandomWalk {
                speed_mps: -1.0,
                turn_rad: 0.5,
            }),
            ..good
        }
        .validate()
        .is_err());
        assert!(MobilityModel::Static.validate().is_ok());
    }
}
