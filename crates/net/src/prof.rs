//! The execution observatory: span-based self-profiling for the run
//! pipeline itself.
//!
//! Where [`crate::telemetry`] observes the *simulation* (PRR, latency,
//! occupancy — simulated-time quantities), this module observes the
//! *executor*: how long scenario validation, link-matrix construction,
//! engine-core init, each cell's per-epoch event loop, the boundary ghost
//! exchange and the final merge actually take on the host. The ROADMAP's
//! claim that setup dominates the 100k-tag wall clock becomes a measured,
//! attributable time budget instead of folklore.
//!
//! ## Determinism contract
//!
//! Profiling is **digest-neutral**: enabling
//! [`crate::scenario::ExecutionConfig::profile`] must not change the event
//! trace, the metrics report or the telemetry output by a single byte, at
//! any shard count. Three rules enforce that:
//!
//! * Wall-clock values live **only** in the prof output
//!   ([`crate::engine::NetRunResult::prof`], `PROF_net.json`, the Chrome
//!   trace) — never in simulation state, never on digest-checked stdout.
//! * This file is the one sanctioned home for [`std::time::Instant`] in
//!   `crates/net`; detlint's `wall_clock` rule scopes its allowance to
//!   exactly this path and still fails the build anywhere else.
//! * No cross-shard side channels: each cell records spans into its own
//!   [`CellProf`] ring buffer (riding its engine core through the ordered
//!   chunking of `rayon::det`), and the buffers are merged **in fixed cell
//!   order** after the run — no locks, no atomics, per detlint's
//!   `shard_exchange` rule.
//!
//! Tests swap the monotonic [`WallClock`] for the deterministic
//! [`FakeClock`] through the [`ProfClock`] trait, pinning span nesting,
//! merge order and the Chrome-trace JSON shape without touching the host
//! clock.
//!
//! ## Exports
//!
//! A finished [`ProfReport`] exports two ways:
//!
//! * [`ProfReport::to_chrome_trace`] — Chrome/Perfetto trace-event JSON
//!   (`ph: "X"` complete events, one `tid` per cell), loadable at
//!   `ui.perfetto.dev` or `chrome://tracing`.
//! * [`ProfReport::summary`] — a machine-readable [`ProfSummary`] (phase
//!   totals, per-cell per-epoch busy time, the critical-path epoch,
//!   exchange/merge overhead) whose [`ProfSummary::to_json`] is what
//!   `PROF_net.json` holds, optionally joined with the *deterministic*
//!   shard-load telemetry ([`crate::metrics::ShardLoad`]).

use crate::metrics::ShardLoad;
use std::collections::BTreeMap;
use std::time::Instant;

/// Spans a [`CellProf`] ring buffer holds before wrapping: generous enough
/// for a soak run's epochs (100 s / 10 ms = 10 000) with headroom, small
/// enough that a profiled campus run stays O(MB).
pub const SPAN_RING_CAPACITY: usize = 1 << 16;

/// A monotonic time source for span timestamps. Real runs use
/// [`WallClock`]; tests use [`FakeClock`] so span geometry is a pure
/// function of the call sequence.
pub trait ProfClock {
    /// Nanoseconds since this clock's anchor. Must be monotone
    /// non-decreasing across calls.
    fn now_ns(&mut self) -> u64;
}

/// The real profiling clock: a monotonic [`Instant`] anchor captured at
/// construction, read as elapsed nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    anchor: Instant,
}

impl WallClock {
    /// Anchors a wall clock at the current instant.
    #[allow(clippy::new_without_default)]
    pub fn new() -> WallClock {
        WallClock {
            anchor: Instant::now(),
        }
    }
}

impl ProfClock for WallClock {
    fn now_ns(&mut self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// The deterministic test clock: a counter advancing by a fixed step per
/// read, so expected span geometry can be written down exactly.
#[derive(Debug, Clone, Copy)]
pub struct FakeClock {
    next: u64,
    step: u64,
}

impl FakeClock {
    /// A fake clock returning `0, step, 2·step, …` on successive reads.
    pub fn stepping(step: u64) -> FakeClock {
        FakeClock { next: 0, step }
    }
}

impl Default for FakeClock {
    /// One nanosecond per read.
    fn default() -> FakeClock {
        FakeClock::stepping(1)
    }
}

impl ProfClock for FakeClock {
    fn now_ns(&mut self) -> u64 {
        let t = self.next;
        self.next = self.next.saturating_add(self.step);
        t
    }
}

/// Enum dispatch over the two clock kinds, so [`CellProf`] stays a plain
/// `Send` value that rides its engine core across the ordered chunking.
#[derive(Debug, Clone, Copy)]
pub enum Clock {
    /// The monotonic host clock (real runs).
    Wall(WallClock),
    /// The deterministic counter (tests).
    Fake(FakeClock),
}

impl Clock {
    /// Offset of this clock's anchor past `base`'s, nanoseconds — how far
    /// into `base`'s timeline this clock's zero sits. Zero for fake
    /// clocks (tests share one timeline) and for mismatched kinds.
    fn offset_since(&self, base: &Clock) -> u64 {
        match (self, base) {
            (Clock::Wall(w), Clock::Wall(b)) => {
                u64::try_from(w.anchor.saturating_duration_since(b.anchor).as_nanos())
                    .unwrap_or(u64::MAX)
            }
            _ => 0,
        }
    }
}

impl ProfClock for Clock {
    fn now_ns(&mut self) -> u64 {
        match self {
            Clock::Wall(c) => c.now_ns(),
            Clock::Fake(c) => c.now_ns(),
        }
    }
}

/// One closed span: a named phase of the pipeline on one track (track 0 is
/// the executor's main thread, track `c + 1` is cell `c`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase name, from the fixed vocabulary the instrumentation sites
    /// use (`"scenario_build"`, `"partition"`, `"engine_init"`,
    /// `"link_build"`, `"epoch"`, `"link_flush"`, `"exchange"`,
    /// `"finalize"`, `"merge_finalize"`).
    pub name: &'static str,
    /// Optional argument — the epoch index for `"epoch"` spans.
    pub arg: Option<u64>,
    /// Track id: 0 for the executor, `cell + 1` for cell-local spans.
    pub track: u32,
    /// Start, nanoseconds on the merged timeline.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at which the span was open (0 = top level).
    pub depth: u32,
}

/// A bounded span ring: fixed capacity, oldest spans overwritten once
/// full, with a drop counter so the summary can say what it lost.
#[derive(Debug, Clone)]
struct SpanRing {
    spans: Vec<Span>,
    cap: usize,
    /// Next overwrite position once `spans.len() == cap`.
    head: usize,
    dropped: u64,
}

impl SpanRing {
    fn new(cap: usize) -> SpanRing {
        SpanRing {
            spans: Vec::new(),
            cap: cap.max(1),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, span: Span) {
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// The retained spans, oldest first.
    fn into_ordered(mut self) -> (Vec<Span>, u64) {
        if self.dropped > 0 {
            self.spans.rotate_left(self.head);
        }
        (self.spans, self.dropped)
    }
}

/// One track's recorder: a clock, an open-span stack and a bounded ring of
/// closed spans. Each engine core owns one (when profiling is on), so the
/// parallel epoch step needs no shared state — the executor collects the
/// rings afterwards, in cell order.
#[derive(Debug, Clone)]
pub struct CellProf {
    clock: Clock,
    track: u32,
    ring: SpanRing,
    /// Open spans, innermost last: `(name, arg, start_ns)`.
    open: Vec<(&'static str, Option<u64>, u64)>,
    /// Epoch spans recorded so far — numbers [`CellProf::begin_epoch`].
    epochs: u64,
}

/// An opaque token returned by [`CellProf::begin`]: the open-stack depth
/// to unwind back to at [`CellProf::end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(usize);

impl CellProf {
    /// A recorder over `clock` on `track`, with the default ring capacity.
    pub fn new(clock: Clock, track: u32) -> CellProf {
        CellProf::with_capacity(clock, track, SPAN_RING_CAPACITY)
    }

    /// A recorder with an explicit ring capacity (tests pin the wrap
    /// behaviour with tiny rings).
    pub fn with_capacity(clock: Clock, track: u32, cap: usize) -> CellProf {
        CellProf {
            clock,
            track,
            ring: SpanRing::new(cap),
            open: Vec::new(),
            epochs: 0,
        }
    }

    /// A wall-clock recorder anchored now.
    pub fn wall(track: u32) -> CellProf {
        CellProf::new(Clock::Wall(WallClock::new()), track)
    }

    /// A fake-clock recorder (1 ns per read).
    pub fn fake(track: u32) -> CellProf {
        CellProf::new(Clock::Fake(FakeClock::default()), track)
    }

    /// Opens a span; close it with [`CellProf::end`] and the returned
    /// token.
    pub fn begin(&mut self, name: &'static str) -> SpanToken {
        self.begin_arg(name, None)
    }

    /// Opens a span carrying an argument (the epoch index).
    pub fn begin_arg(&mut self, name: &'static str, arg: Option<u64>) -> SpanToken {
        let token = SpanToken(self.open.len());
        let now = self.clock.now_ns();
        self.open.push((name, arg, now));
        token
    }

    /// Opens the next `"epoch"` span, auto-numbered from 0.
    pub fn begin_epoch(&mut self) -> SpanToken {
        let epoch = self.epochs;
        self.epochs += 1;
        self.begin_arg("epoch", Some(epoch))
    }

    /// Closes spans down to (and including) the one `token` opened.
    /// Closing is tolerant: any spans left open above the token close at
    /// the same instant, so a panicking phase still yields a well-formed
    /// profile.
    pub fn end(&mut self, token: SpanToken) {
        let now = self.clock.now_ns();
        while self.open.len() > token.0 {
            let (name, arg, start_ns) = self.open.pop().expect("open stack is non-empty");
            let depth = self.open.len() as u32;
            self.ring.push(Span {
                name,
                arg,
                track: self.track,
                start_ns,
                dur_ns: now.saturating_sub(start_ns),
                depth,
            });
        }
    }

    /// Opens a span closed automatically when the guard drops — the
    /// scoped form of [`CellProf::begin`]/[`CellProf::end`].
    pub fn scope(&mut self, name: &'static str) -> SpanGuard<'_> {
        let token = self.begin(name);
        SpanGuard { prof: self, token }
    }

    /// Re-tags every span (recorded and open) onto `track`. The sharded
    /// executor calls this right after constructing a cell's core: the
    /// core records its init spans before it learns which cell it is.
    pub fn set_track(&mut self, track: u32) {
        self.track = track;
        for span in &mut self.ring.spans {
            span.track = track;
        }
    }

    /// Closes any still-open spans and finishes into a single-track
    /// [`ProfReport`] carrying this recorder's clock anchor (so the
    /// executor can rebase it onto the run timeline).
    pub fn finish(mut self) -> ProfReport {
        self.end(SpanToken(0));
        let clock = self.clock;
        let (spans, dropped) = self.ring.into_ordered();
        ProfReport {
            scenario: String::new(),
            spans,
            dropped,
            clock,
        }
    }
}

/// RAII guard from [`CellProf::scope`]: closes its span on drop.
pub struct SpanGuard<'a> {
    prof: &'a mut CellProf,
    token: SpanToken,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.prof.end(self.token);
    }
}

/// The run-level profiling handle the sharded executor owns: a main-track
/// recorder (partition, exchange, merge spans) plus the cell reports it
/// absorbs after the run, merged **in fixed cell order** into one
/// [`ProfReport`].
#[derive(Debug)]
pub struct Profiler {
    main: CellProf,
    cells: Vec<ProfReport>,
    /// [`crate::scenario::ScenarioBuilder::build`]'s measured duration,
    /// replayed as a synthetic `"scenario_build"` span at the head of the
    /// merged timeline.
    build_ns: Option<u64>,
}

impl Profiler {
    /// A wall-clock profiler; `build_ns` is the scenario-build duration
    /// measured at [`crate::scenario::ScenarioBuilder::build`] time, if
    /// the builder ran with profiling enabled.
    pub fn wall(build_ns: Option<u64>) -> Profiler {
        Profiler {
            main: CellProf::wall(0),
            cells: Vec::new(),
            build_ns,
        }
    }

    /// A fake-clock profiler for tests.
    pub fn fake(build_ns: Option<u64>) -> Profiler {
        Profiler {
            main: CellProf::fake(0),
            cells: Vec::new(),
            build_ns,
        }
    }

    /// Opens a span on the main track.
    pub fn begin(&mut self, name: &'static str) -> SpanToken {
        self.main.begin(name)
    }

    /// Closes a main-track span.
    pub fn end(&mut self, token: SpanToken) {
        self.main.end(token);
    }

    /// Opens a scoped main-track span.
    pub fn scope(&mut self, name: &'static str) -> SpanGuard<'_> {
        self.main.scope(name)
    }

    /// Absorbs one cell's finished report. Call in cell order — the merge
    /// preserves it, which is what makes the merged profile
    /// deterministic under a fake clock.
    pub fn absorb(&mut self, report: ProfReport) {
        self.cells.push(report);
    }

    /// Closes the main track, rebases every absorbed cell report onto the
    /// main clock's timeline (each cell's anchor was captured later, at
    /// its core's construction), prepends the synthetic
    /// `"scenario_build"` span, and returns the merged report.
    pub fn finish(self, scenario: &str) -> ProfReport {
        let Profiler {
            main,
            cells,
            build_ns,
        } = self;
        let base = build_ns.unwrap_or(0);
        let main_clock = main.clock;
        let mut report = main.finish();
        let mut dropped = report.dropped;
        let mut spans = Vec::with_capacity(report.spans.len());
        if let Some(ns) = build_ns {
            spans.push(Span {
                name: "scenario_build",
                arg: None,
                track: 0,
                start_ns: 0,
                dur_ns: ns,
                depth: 0,
            });
        }
        for span in &mut report.spans {
            span.start_ns = span.start_ns.saturating_add(base);
        }
        spans.append(&mut report.spans);
        for cell in cells {
            let offset = cell.clock.offset_since(&main_clock).saturating_add(base);
            dropped += cell.dropped;
            for mut span in cell.spans {
                span.start_ns = span.start_ns.saturating_add(offset);
                spans.push(span);
            }
        }
        // A stable sort on (start, track): simultaneous spans keep the
        // absorb (= cell) order, so the merged sequence is total.
        spans.sort_by_key(|s| (s.start_ns, s.track, s.depth));
        ProfReport {
            scenario: scenario.to_string(),
            spans,
            dropped,
            clock: main_clock,
        }
    }
}

/// A finished profile: the merged (or single-track) span sequence plus
/// its exports. Attached to [`crate::engine::NetRunResult::prof`] when
/// [`crate::scenario::ExecutionConfig::profile`] is set.
#[derive(Debug, Clone)]
pub struct ProfReport {
    /// Scenario name (empty on an unmerged single-core report).
    pub scenario: String,
    /// Closed spans, ordered by `(start_ns, track, depth)` after a merge.
    pub spans: Vec<Span>,
    /// Spans lost to ring wrap-around across all tracks.
    pub dropped: u64,
    /// The timeline's anchor clock (rebasing; fake in tests).
    clock: Clock,
}

impl ProfReport {
    /// Chrome/Perfetto trace-event JSON: one `ph: "X"` complete event per
    /// span, timestamps in microseconds, one `tid` per track. Load the
    /// string (saved as a `.json` file) in `ui.perfetto.dev` or
    /// `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"net\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
                span.name,
                span.start_ns as f64 / 1e3,
                span.dur_ns as f64 / 1e3,
                span.track,
            ));
            if let Some(arg) = span.arg {
                out.push_str(&format!(",\"args\":{{\"epoch\":{arg}}}"));
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"scenario\":\"{}\",\"droppedSpans\":{}}}}}",
            json_escape(&self.scenario),
            self.dropped,
        ));
        out
    }

    /// Reduces the span sequence to the machine-readable [`ProfSummary`]:
    /// phase totals, per-cell per-epoch busy time, the critical-path
    /// epoch and the exchange/merge overhead.
    pub fn summary(&self) -> ProfSummary {
        let mut phase_totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for span in &self.spans {
            *phase_totals.entry(span.name).or_insert(0) += span.dur_ns;
        }

        // Per-cell epoch busy time: cell tracks (>= 1) when the run was
        // sharded, the lone track 0 otherwise.
        let epoch_spans: Vec<&Span> = self.spans.iter().filter(|s| s.name == "epoch").collect();
        let sharded = epoch_spans.iter().any(|s| s.track > 0);
        let mut cells: BTreeMap<u32, CellBusy> = BTreeMap::new();
        for span in &epoch_spans {
            if sharded && span.track == 0 {
                continue;
            }
            let cell = if sharded { span.track - 1 } else { 0 };
            let entry = cells.entry(cell).or_insert_with(|| CellBusy {
                cell,
                busy_ns: 0,
                epochs: Vec::new(),
            });
            entry.busy_ns += span.dur_ns;
            if let Some(epoch) = span.arg {
                entry.epochs.push((epoch, span.dur_ns));
            }
        }
        for cell in cells.values_mut() {
            cell.epochs.sort_by_key(|&(epoch, _)| epoch);
        }

        // Critical-path epoch: the epoch whose slowest cell was slowest —
        // the wall-clock bound of the lockstep epoch barrier.
        let mut worst: BTreeMap<u64, u64> = BTreeMap::new();
        for span in &epoch_spans {
            if let Some(epoch) = span.arg {
                let w = worst.entry(epoch).or_insert(0);
                *w = (*w).max(span.dur_ns);
            }
        }
        let critical_path_epoch = worst
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&epoch, _)| epoch);

        ProfSummary {
            scenario: self.scenario.clone(),
            exchange_ns: phase_totals.get("exchange").copied().unwrap_or(0),
            merge_ns: phase_totals.get("merge_finalize").copied().unwrap_or(0),
            phase_totals_ns: phase_totals
                .into_iter()
                .map(|(name, ns)| (name.to_string(), ns))
                .collect(),
            cells: cells.into_values().collect(),
            critical_path_epoch,
            dropped: self.dropped,
        }
    }
}

/// One cell's wall-clock busy time, from its `"epoch"` spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellBusy {
    /// Cell index (partition order).
    pub cell: u32,
    /// Total busy time across epochs, nanoseconds.
    pub busy_ns: u64,
    /// `(epoch index, busy ns)` pairs, ascending by epoch.
    pub epochs: Vec<(u64, u64)>,
}

/// The machine-readable reduction of a profile — what `PROF_net.json`
/// holds (via [`ProfSummary::to_json`], optionally joined with the
/// deterministic [`ShardLoad`] telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfSummary {
    /// Scenario name.
    pub scenario: String,
    /// Total nanoseconds per phase name, ascending by name.
    pub phase_totals_ns: Vec<(String, u64)>,
    /// Per-cell busy time, ascending by cell.
    pub cells: Vec<CellBusy>,
    /// The epoch whose slowest cell took longest — the run's wall-clock
    /// critical path under the lockstep epoch barrier.
    pub critical_path_epoch: Option<u64>,
    /// Total `"exchange"` time (the ghost drain/merge/inject step).
    pub exchange_ns: u64,
    /// Total `"merge_finalize"` time (trace/metrics/telemetry merge).
    pub merge_ns: u64,
    /// Spans lost to ring wrap-around.
    pub dropped: u64,
}

impl ProfSummary {
    /// Serialises the summary — plus the deterministic shard-load
    /// telemetry when the run produced it — as the `PROF_net.json`
    /// document. Hand-rolled JSON, like every serialiser in this
    /// offline workspace.
    pub fn to_json(&self, load: Option<&ShardLoad>) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"scenario\":\"{}\",",
            json_escape(&self.scenario)
        ));
        out.push_str("\"phase_totals_ns\":{");
        for (i, (name, ns)) in self.phase_totals_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), ns));
        }
        out.push_str("},");
        out.push_str(&format!(
            "\"critical_path_epoch\":{},",
            self.critical_path_epoch
                .map_or("null".to_string(), |e| e.to_string())
        ));
        out.push_str(&format!(
            "\"exchange_ns\":{},\"merge_ns\":{},\"dropped_spans\":{},",
            self.exchange_ns, self.merge_ns, self.dropped
        ));
        out.push_str("\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"cell\":{},\"busy_ns\":{},\"epoch_busy_ns\":[",
                cell.cell, cell.busy_ns
            ));
            for (j, (epoch, ns)) in cell.epochs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{epoch},{ns}]"));
            }
            out.push_str("]}");
        }
        out.push(']');
        if let Some(load) = load {
            let (skew_max, skew_mean) = load.epoch_skew();
            out.push_str(&format!(
                ",\"load\":{{\"cells\":{},\"epochs\":{},\"fairness\":{:.6},\"epoch_skew_max\":{:.6},\"epoch_skew_mean\":{:.6},\"cell_events\":[",
                load.cell_events.len(),
                load.epochs(),
                load.load_fairness(),
                skew_max,
                skew_mean,
            ));
            for (i, events) in load.cell_events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&events.to_string());
            }
            out.push_str("],\"ghost_windows\":[");
            for (i, ghosts) in load.ghost_windows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&ghosts.to_string());
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// Times a closure on the wall clock: `(result, elapsed_ns)`. The one
/// sanctioned stopwatch for call sites outside this module (the scenario
/// builder times its validation pass through this, keeping the `Instant`
/// token inside prof.rs where detlint's allowance is scoped).
pub fn measure_ns<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let mut clock = WallClock::new();
    let result = f();
    (result, clock.now_ns())
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) for
/// the hand-rolled writers above.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(track: u32) -> CellProf {
        CellProf::new(Clock::Fake(FakeClock::default()), track)
    }

    #[test]
    fn spans_nest_and_close_in_stack_order() {
        // Fake clock: one tick per read. begin a (t=0), begin b (t=1),
        // end b (t=2), end a (t=3).
        let mut p = fake(0);
        let a = p.begin("engine_init");
        let b = p.begin("link_build");
        p.end(b);
        p.end(a);
        let report = p.finish();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(
            report.spans[0],
            Span {
                name: "link_build",
                arg: None,
                track: 0,
                start_ns: 1,
                dur_ns: 1,
                depth: 1,
            }
        );
        assert_eq!(
            report.spans[1],
            Span {
                name: "engine_init",
                arg: None,
                track: 0,
                start_ns: 0,
                dur_ns: 3,
                depth: 0,
            }
        );
    }

    #[test]
    fn end_unwinds_everything_above_its_token() {
        let mut p = fake(0);
        let outer = p.begin("epoch");
        p.begin("link_flush");
        p.begin("link_build");
        p.end(outer); // closes all three at the same instant
        let report = p.finish();
        assert_eq!(report.spans.len(), 3);
        // Innermost closes first; all three share the close timestamp.
        assert_eq!(report.spans[0].name, "link_build");
        assert_eq!(report.spans[1].name, "link_flush");
        assert_eq!(report.spans[2].name, "epoch");
        let close = report.spans[2].start_ns + report.spans[2].dur_ns;
        for s in &report.spans {
            assert_eq!(s.start_ns + s.dur_ns, close);
        }
        assert_eq!(report.spans[0].depth, 2);
        assert_eq!(report.spans[2].depth, 0);
    }

    #[test]
    fn scoped_guard_closes_on_drop() {
        let mut p = fake(0);
        {
            let _guard = p.scope("partition");
        }
        let report = p.finish();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "partition");
        assert_eq!(report.spans[0].dur_ns, 1);
    }

    #[test]
    fn epoch_spans_auto_number() {
        let mut p = fake(3);
        for _ in 0..3 {
            let t = p.begin_epoch();
            p.end(t);
        }
        let report = p.finish();
        let args: Vec<Option<u64>> = report.spans.iter().map(|s| s.arg).collect();
        assert_eq!(args, vec![Some(0), Some(1), Some(2)]);
        assert!(report.spans.iter().all(|s| s.track == 3));
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut p = CellProf::with_capacity(Clock::Fake(FakeClock::default()), 0, 2);
        for _ in 0..3 {
            let t = p.begin("epoch");
            p.end(t);
        }
        let report = p.finish();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.dropped, 1);
        // Oldest-first after the wrap: the survivors are spans 2 and 3.
        assert!(report.spans[0].start_ns < report.spans[1].start_ns);
        assert_eq!(report.spans[0].start_ns, 2);
    }

    #[test]
    fn set_track_retags_recorded_spans() {
        let mut p = fake(0);
        let t = p.begin("engine_init");
        p.end(t);
        p.set_track(5);
        let t = p.begin_epoch();
        p.end(t);
        let report = p.finish();
        assert!(report.spans.iter().all(|s| s.track == 5));
    }

    #[test]
    fn profiler_merges_cell_reports_in_cell_order() {
        let mut profiler = Profiler::fake(Some(100));
        let t = profiler.begin("partition");
        profiler.end(t);
        for cell in 0..2u32 {
            let mut p = fake(cell + 1);
            let t = p.begin_epoch();
            p.end(t);
            profiler.absorb(p.finish());
        }
        let report = profiler.finish("ward");
        assert_eq!(report.scenario, "ward");
        // scenario_build synthesized at the head, everything else shifted
        // past it; cell spans keep absorb order on the start tie.
        let names: Vec<&str> = report.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["scenario_build", "partition", "epoch", "epoch"]);
        assert_eq!(report.spans[0].start_ns, 0);
        assert_eq!(report.spans[0].dur_ns, 100);
        assert_eq!(report.spans[1].start_ns, 100);
        assert_eq!(report.spans[2].track, 1);
        assert_eq!(report.spans[3].track, 2);
    }

    #[test]
    fn chrome_trace_has_the_trace_event_shape() {
        let mut profiler = Profiler::fake(None);
        let t = profiler.begin("partition");
        profiler.end(t);
        let mut cell = fake(1);
        let t = cell.begin_epoch();
        cell.end(t);
        profiler.absorb(cell.finish());
        let json = profiler.finish("ward").to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"partition\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"args\":{\"epoch\":0}"));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"scenario\":\"ward\""));
        // Every event object carries the complete-event fields.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ts\":").count(), 2);
        assert_eq!(json.matches("\"dur\":").count(), 2);
    }

    #[test]
    fn summary_reduces_phases_cells_and_critical_path() {
        let mut profiler = Profiler::fake(Some(10));
        let t = profiler.begin("partition");
        profiler.end(t);
        // Cell 1: two epochs, the second slower (fake clock can't vary
        // span length, so stretch it with a nested span's extra reads).
        let mut c1 = fake(1);
        let t = c1.begin_epoch();
        c1.end(t);
        let t = c1.begin_epoch();
        let inner = c1.begin("link_flush");
        c1.end(inner);
        c1.end(t);
        profiler.absorb(c1.finish());
        let mut c2 = fake(2);
        let t = c2.begin_epoch();
        c2.end(t);
        profiler.absorb(c2.finish());

        let summary = profiler.finish("ward").summary();
        assert_eq!(summary.scenario, "ward");
        let phases: Vec<&str> = summary
            .phase_totals_ns
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            phases,
            vec!["epoch", "link_flush", "partition", "scenario_build"]
        );
        assert_eq!(summary.cells.len(), 2);
        assert_eq!(summary.cells[0].cell, 0);
        assert_eq!(summary.cells[0].epochs.len(), 2);
        assert_eq!(summary.cells[1].epochs.len(), 1);
        // Cell 1's epoch 1 ran 3 fake ticks vs 1 everywhere else.
        assert_eq!(summary.critical_path_epoch, Some(1));
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn summary_json_carries_phases_and_load() {
        let mut p = fake(0);
        let t = p.begin_epoch();
        p.end(t);
        let summary = Profiler {
            main: p,
            cells: Vec::new(),
            build_ns: Some(7),
        }
        .finish("ward \"q\"")
        .summary();
        let load = ShardLoad {
            cell_events: vec![10, 30],
            epoch_events: vec![vec![4, 12], vec![6, 18]],
            ghost_windows: vec![2, 1],
        };
        let json = summary.to_json(Some(&load));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scenario\":\"ward \\\"q\\\"\""));
        assert!(json.contains("\"phase_totals_ns\":{\"epoch\":"));
        assert!(json.contains("\"scenario_build\":7"));
        assert!(json.contains("\"cell_events\":[10,30]"));
        assert!(json.contains("\"ghost_windows\":[2,1]"));
        assert!(json.contains("\"fairness\":0.8"));
        // Without the load block the key is absent entirely.
        assert!(!summary.to_json(None).contains("\"load\""));
    }

    #[test]
    fn wall_clock_is_monotone() {
        let mut clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        let (value, ns) = measure_ns(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(ns < 60_000_000_000, "a closure took a minute?");
    }
}
