//! The parallel Monte-Carlo runner: many independent trials of one
//! scenario, one derived seed per trial, fanned out across worker threads
//! and aggregated into a fleet-level report.

use crate::entities::streams;
use crate::metrics::{NetworkMetrics, StreamingSeries};
use crate::prof::ProfSummary;
use crate::scenario::Scenario;
use crate::NetError;
use interscatter_sim::measurements::{mean, Cdf};

/// A Monte-Carlo experiment over one scenario.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// The scenario every trial runs.
    pub scenario: Scenario,
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `i` runs with a seed derived from `(base_seed, i)`.
    pub base_seed: u64,
}

impl MonteCarlo {
    /// Builds a runner with the given trial count and base seed.
    pub fn new(scenario: Scenario, trials: usize, base_seed: u64) -> Self {
        MonteCarlo {
            scenario,
            trials,
            base_seed,
        }
    }

    /// The seed trial `i` runs with: the named trial stream (stream 0) of
    /// the entity-seed derivation, so neighbouring trials get decorrelated
    /// streams.
    pub fn trial_seed(&self, trial: usize) -> u64 {
        streams::trial_seed(self.base_seed, trial)
    }

    /// Runs every trial (in parallel, traces disabled) and aggregates.
    ///
    /// Legacy shim over the sharded executor: each trial now runs through
    /// [`crate::run`]'s engine, honouring
    /// [`crate::scenario::ExecutionConfig::shards`]. Prefer
    /// [`crate::run_trials`] with the trial count set through
    /// [`crate::scenario::ExecutionSection::trials`]; this entrypoint
    /// stays for source compatibility and produces identical reports.
    pub fn run(&self) -> Result<MonteCarloReport, NetError> {
        self.scenario.validate()?;
        let results: Vec<Result<(NetworkMetrics, Option<ProfSummary>), NetError>> =
            rayon::det::map_indexed_ordered(self.trials, |trial| {
                crate::shard::execute(&self.scenario, self.trial_seed(trial), false).map(|r| {
                    let prof = r.prof.map(|p| p.summary());
                    (r.metrics, prof)
                })
            });
        let mut trials = Vec::with_capacity(results.len());
        let mut prof = Vec::new();
        for r in results {
            let (metrics, summary) = r?;
            trials.push(metrics);
            prof.extend(summary);
        }
        Ok(MonteCarloReport::aggregate(&self.scenario, trials, prof))
    }
}

/// Aggregates over a set of Monte-Carlo trials.
#[derive(Debug, Clone)]
pub struct MonteCarloReport {
    /// Scenario name the trials ran.
    pub scenario_name: String,
    /// Per-trial metrics, in trial order.
    pub trials: Vec<NetworkMetrics>,
    /// Per-trial aggregate throughput samples, bits per second.
    pub throughput_bps: Cdf,
    /// Per-trial packet-error-rate samples.
    pub per: Cdf,
    /// Per-trial Jain fairness samples.
    pub fairness: Cdf,
    /// Pooled delivery-latency samples across all trials, milliseconds.
    pub latency_ms: Cdf,
    /// Pooled per-grant poll-latency samples across all trials,
    /// milliseconds — the queueing delay the arbitration policy controls.
    pub poll_latency_ms: Cdf,
    /// Per-trial deadline-miss-rate samples (all zero unless the scenario
    /// runs a deadline-aware scheduler).
    pub deadline_miss_rate: Cdf,
    /// Pooled streaming sketches when the scenario ran in
    /// [`crate::telemetry::MetricsMode::Streaming`]: the per-trial
    /// [`StreamingSeries`] merged **in trial order** by exact bucket-count
    /// addition, so the pooled quantiles are deterministic regardless of
    /// which worker thread finished first. `None` in stored mode.
    pub streaming: Option<StreamingSeries>,
    /// Per-trial self-profiling summaries, **in trial order**, when the
    /// scenario ran with [`crate::scenario::ExecutionConfig::profile`]
    /// set. Empty otherwise — and never consulted by the aggregates
    /// above, so reports are identical with profiling on or off.
    pub prof: Vec<ProfSummary>,
}

impl MonteCarloReport {
    pub(crate) fn aggregate(
        scenario: &Scenario,
        trials: Vec<NetworkMetrics>,
        prof: Vec<ProfSummary>,
    ) -> Self {
        let mut throughput = Cdf::new();
        let mut per = Cdf::new();
        let mut fairness = Cdf::new();
        let mut latency = Cdf::new();
        let mut poll_latency = Cdf::new();
        let mut miss_rate = Cdf::new();
        let mut streaming: Option<StreamingSeries> = None;
        for m in &trials {
            throughput.push(m.throughput_bps());
            per.push(m.per());
            fairness.push(m.jain_fairness());
            for &sample in m.latency_ms.samples() {
                latency.push(sample);
            }
            for &sample in m.poll_latency_ms.samples() {
                poll_latency.push(sample);
            }
            miss_rate.push(m.deadline_miss_rate());
            // Trials arrive in index order (`rayon::det::map_indexed_ordered`
            // is the deterministic merge), so this pooling is deterministic
            // by construction — and exact, so order would not change the
            // pooled values anyway.
            if let Some(s) = &m.streaming {
                streaming
                    .get_or_insert_with(StreamingSeries::default)
                    .merge(s);
            }
        }
        MonteCarloReport {
            scenario_name: scenario.name.clone(),
            trials,
            throughput_bps: throughput,
            per,
            fairness,
            latency_ms: latency,
            poll_latency_ms: poll_latency,
            deadline_miss_rate: miss_rate,
            streaming,
            prof,
        }
    }

    /// Pooled delivery-latency quantile: the stored-sample Cdf when trials
    /// ran in stored mode, the pooled [`StreamingSeries`] sketch otherwise.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if let Some(s) = &self.streaming {
            return s.latency_ms.quantile(q);
        }
        self.latency_ms.quantile(q)
    }

    /// Pooled poll-latency quantile, with the same stored/streaming routing
    /// as [`MonteCarloReport::latency_quantile`].
    pub fn poll_latency_quantile(&self, q: f64) -> Option<f64> {
        if let Some(s) = &self.streaming {
            return s.poll_latency_ms.quantile(q);
        }
        self.poll_latency_ms.quantile(q)
    }

    /// Mean aggregate throughput across trials, bits per second.
    pub fn mean_throughput_bps(&self) -> f64 {
        mean(
            &self
                .trials
                .iter()
                .map(|m| m.throughput_bps())
                .collect::<Vec<_>>(),
        )
    }

    /// Mean packet error rate across trials.
    pub fn mean_per(&self) -> f64 {
        mean(&self.trials.iter().map(|m| m.per()).collect::<Vec<_>>())
    }

    /// Mean Jain fairness across trials.
    pub fn mean_fairness(&self) -> f64 {
        mean(
            &self
                .trials
                .iter()
                .map(|m| m.jain_fairness())
                .collect::<Vec<_>>(),
        )
    }

    /// A plain-text summary table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== {} ({} trials) ===\n",
            self.scenario_name,
            self.trials.len()
        ));
        out.push_str(&format!(
            "throughput {:.1} bit/s (median {:.1})\n",
            self.mean_throughput_bps(),
            self.throughput_bps.median().unwrap_or(0.0),
        ));
        out.push_str(&format!(
            "PER {:.3} (median {:.3})  fairness {:.3}\n",
            self.mean_per(),
            self.per.median().unwrap_or(0.0),
            self.mean_fairness(),
        ));
        if let (Some(p50), Some(p95)) = (self.latency_quantile(0.5), self.latency_quantile(0.95)) {
            out.push_str(&format!("latency p50 {p50:.2} ms  p95 {p95:.2} ms\n"));
        }
        if let Some(p50) = self.poll_latency_quantile(0.5) {
            out.push_str(&format!(
                "poll latency p50 {p50:.2} ms  p95 {:.2} ms\n",
                self.poll_latency_quantile(0.95).unwrap_or(0.0)
            ));
        }
        let mean_miss = mean(self.deadline_miss_rate.samples());
        if mean_miss > 0.0 {
            out.push_str(&format!("deadline miss rate {mean_miss:.3}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_are_reproducible_and_decorrelated() {
        let mc = MonteCarlo::new(Scenario::hospital_ward(6), 4, 1234);
        let a = mc.run().unwrap();
        let b = mc.run().unwrap();
        assert_eq!(a.trials.len(), 4);
        assert_eq!(format!("{:?}", a.trials), format!("{:?}", b.trials));
        // Different trials are different runs.
        assert_ne!(format!("{:?}", a.trials[0]), format!("{:?}", a.trials[1]));
        // Different base seed, different results.
        let c = MonteCarlo::new(Scenario::hospital_ward(6), 4, 999)
            .run()
            .unwrap();
        assert_ne!(format!("{:?}", a.trials), format!("{:?}", c.trials));
    }

    #[test]
    fn report_summarizes() {
        let mc = MonteCarlo::new(Scenario::card_to_card_room(4), 3, 7);
        let report = mc.run().unwrap();
        assert!(report.mean_throughput_bps() >= 0.0);
        assert!((0.0..=1.0).contains(&report.mean_per()));
        assert!((0.0..=1.0).contains(&report.mean_fairness()));
        let text = report.report();
        assert!(text.contains("card-to-card-4"));
        assert!(text.contains("throughput"));
    }

    #[test]
    fn report_pools_scheduler_aggregates() {
        let mc = MonteCarlo::new(
            Scenario::hospital_ward(6).with_scheduler(crate::sched::SchedPolicy::deadline_aware()),
            3,
            7,
        );
        let report = mc.run().unwrap();
        // Every granted slot contributed a poll-latency sample, pooled
        // across trials; the miss-rate Cdf holds one sample per trial.
        assert!(report.poll_latency_ms.median().is_some());
        assert_eq!(report.deadline_miss_rate.samples().len(), 3);
        assert!(report.report().contains("poll latency p50"));
    }

    #[test]
    fn streaming_trials_pool_sketches_deterministically() {
        let mc = MonteCarlo::new(Scenario::hospital_ward(6).with_streaming_metrics(), 4, 1234);
        let a = mc.run().unwrap();
        let b = mc.run().unwrap();
        assert_eq!(a.streaming, b.streaming);
        let pooled = a.streaming.as_ref().expect("streaming trials pool");
        // Exact merge: the pooled sketch holds every trial's samples.
        let total: u64 = a
            .trials
            .iter()
            .map(|m| m.streaming.as_ref().unwrap().latency_ms.count())
            .sum();
        assert_eq!(pooled.latency_ms.count(), total);
        assert!(total > 0);
        // Stored Cdfs stay empty; report falls back to sketch quantiles.
        assert!(a.latency_ms.is_empty());
        assert!(a.latency_quantile(0.5).is_some());
        assert!(a.report().contains("latency p50"));
    }

    #[test]
    fn trial_seeds_differ() {
        let mc = MonteCarlo::new(Scenario::hospital_ward(2), 2, 42);
        assert_ne!(mc.trial_seed(0), mc.trial_seed(1));
    }
}
