//! The scenario library: deployments of many tags, carriers and receivers,
//! built on the application profiles of `interscatter-sim`'s §5 scenarios.
//!
//! All builders are pure functions of their arguments — positions and
//! assignments are laid out deterministically, so a scenario plus a seed
//! fully determines a run. Layouts respect the paper's link geometry: a
//! backscatter tag must sit within roughly a metre of its illuminating
//! carrier (Figs. 10/15/16 place the Bluetooth source inches to feet from
//! the tag), while the receiver can be across the room.

use crate::coex::{CoexConfig, CoexSource, ReStripe};
use crate::entities::{
    CarrierSource, NetPhy, Position, SinkKind, SinkReceiver, TagNode, TagProfile,
};
use crate::mac::MacMode;
use crate::mobility::{Bounds, MobilityConfig, MobilityModel, RandomWaypoint};
use crate::sched::SchedPolicy;
use crate::telemetry::{MetricsMode, Subscription, TelemetryConfig};
use crate::NetError;
use interscatter_backscatter::tag::SidebandMode;
use interscatter_wifi::dot11b::DsssRate;

/// A complete network scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name, used in reports.
    pub name: String,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// The BLE carrier providers.
    pub carriers: Vec<CarrierSource>,
    /// The backscatter tags.
    pub tags: Vec<TagNode>,
    /// The receivers.
    pub receivers: Vec<SinkReceiver>,
    /// Whether carriers place CTS-to-Self reservations before triggering a
    /// tag (§2.3.3).
    pub cts_to_self: bool,
    /// Per-tag queue capacity; arrivals beyond this are dropped.
    pub max_queue: usize,
    /// Open-loop slot granting or the closed poll/ack loop
    /// ([`crate::mac`]).
    pub mac: MacMode,
    /// How (and whether) the tags move during the run
    /// ([`crate::mobility`]). `None` keeps every entity where the builder
    /// placed it.
    pub mobility: Option<MobilityConfig>,
    /// Which tag each carrier slot illuminates ([`crate::sched`]). The
    /// default [`SchedPolicy::RoundRobin`] reproduces the pre-extraction
    /// engine byte for byte.
    pub scheduler: SchedPolicy,
    /// External coexistence traffic, occupancy sensing and (optionally)
    /// adaptive sub-band re-striping ([`crate::coex`]). `None` keeps the
    /// legacy behaviour: each sink's static `external_occupancy` scalar is
    /// folded into its delivery probability and nothing external ever
    /// touches the medium.
    pub coex: Option<CoexConfig>,
    /// Streaming-telemetry configuration ([`crate::telemetry`]):
    /// subscriptions over the event stream, the metrics storage mode and
    /// the soak-run progress cadence. The default (no subscriptions,
    /// stored metrics, no progress) reproduces the pre-telemetry engine
    /// byte for byte — and so does any other value, since telemetry never
    /// consumes RNG draws or touches the medium. Telemetry deliberately
    /// does **not** rename the scenario: observing a run must not change
    /// what the run reports itself as.
    pub telemetry: TelemetryConfig,
    /// Run-shape knobs ([`ExecutionConfig`]): shard count, epoch length,
    /// Monte-Carlo trial count and trace recording. The default (one
    /// shard, tracing on) reproduces the unsharded engine byte for byte;
    /// the sharded executor ([`crate::shard`]) guarantees byte-identical
    /// trace digests at *any* shard count, so this section never changes
    /// what a run computes — only how it is scheduled onto cores.
    pub execution: ExecutionConfig,
}

/// How a scenario is executed ([`Scenario::execution`]): the run-shape
/// knobs that do not change *what* is simulated, only how the work is
/// scheduled and what is recorded.
///
/// The sharded executor partitions the scenario into interference cells
/// and chunks the fixed cell list into `shards` worker groups, exchanging
/// cross-cell interference at `epoch_s` boundaries — the cell structure
/// (and therefore every digest and metric) depends only on the scenario,
/// never on `shards`. See [`crate::shard`] for the determinism contract.
#[derive(Debug, Clone)]
pub struct ExecutionConfig {
    /// Worker groups the partitioned cells are chunked into (≥ 1). One
    /// shard runs every cell on the calling thread; the digest is
    /// byte-identical at any value.
    pub shards: usize,
    /// Epoch length of the cross-shard interference exchange, simulated
    /// seconds (> 0). Only multi-cell runs consult it: cells run
    /// independently inside an epoch and exchange foreign-airtime
    /// summaries at each boundary.
    pub epoch_s: f64,
    /// Monte-Carlo trial count used by [`crate::run_trials`] (≥ 1).
    pub trials: usize,
    /// Whether the run records its event trace ([`crate::event::EventTrace`]).
    /// [`crate::run_trials`] always disables tracing per trial, matching
    /// the legacy [`crate::runner::MonteCarlo`] behaviour.
    pub trace: bool,
    /// Whether the run records a self-profile ([`crate::prof`]): wall-clock
    /// span timelines and a phase/shard-load summary. Digest-neutral —
    /// traces, metrics reports and telemetry are byte-identical with
    /// profiling on or off; wall time lives only in the prof output.
    pub profile: bool,
    /// Wall time [`ScenarioBuilder::build`] took, nanoseconds, stashed here
    /// when `profile` is set so the executor can prepend a
    /// `scenario_build` span. Never affects simulation state, and is
    /// ignored by `PartialEq` so wall-clock jitter cannot leak into
    /// scenario comparisons.
    pub build_ns: Option<u64>,
}

impl PartialEq for ExecutionConfig {
    fn eq(&self, other: &Self) -> bool {
        // build_ns is a wall-clock measurement, not configuration: two
        // scenarios with the same run shape must compare equal even when
        // one was timed and the other was not.
        self.shards == other.shards
            && self.epoch_s == other.epoch_s
            && self.trials == other.trials
            && self.trace == other.trace
            && self.profile == other.profile
    }
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            shards: 1,
            epoch_s: 0.01,
            trials: 1,
            trace: true,
            profile: false,
            build_ns: None,
        }
    }
}

impl ExecutionConfig {
    /// Checks the run-shape knobs are usable.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        if !(self.epoch_s > 0.0 && self.epoch_s.is_finite()) {
            return Err(format!(
                "epoch {} s must be positive and finite",
                self.epoch_s
            ));
        }
        if self.trials == 0 {
            return Err("trials must be at least 1".into());
        }
        Ok(())
    }
}

impl Scenario {
    /// Checks indices, capacities and timing so the engine can assume a
    /// well-formed scenario.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.duration_s <= 0.0 {
            return Err(NetError::InvalidScenario(
                "duration must be positive".into(),
            ));
        }
        if self.carriers.is_empty() || self.tags.is_empty() || self.receivers.is_empty() {
            return Err(NetError::InvalidScenario(
                "need at least one carrier, tag and receiver".into(),
            ));
        }
        if self.max_queue == 0 {
            return Err(NetError::InvalidScenario(
                "max_queue must be at least 1".into(),
            ));
        }
        for (c, carrier) in self.carriers.iter().enumerate() {
            if carrier.slot_interval_s <= 0.0 || carrier.slot_window_s <= 0.0 {
                return Err(NetError::InvalidScenario(format!(
                    "carrier {c}: slot interval and window must be positive"
                )));
            }
        }
        for (t, tag) in self.tags.iter().enumerate() {
            let Some(carrier) = self.carriers.get(tag.carrier) else {
                return Err(NetError::InvalidScenario(format!(
                    "tag {t}: carrier index {} out of range",
                    tag.carrier
                )));
            };
            let Some(receiver) = self.receivers.get(tag.receiver) else {
                return Err(NetError::InvalidScenario(format!(
                    "tag {t}: receiver index {} out of range",
                    tag.receiver
                )));
            };
            if !receiver.accepts(&tag.phy) {
                return Err(NetError::InvalidScenario(format!(
                    "tag {t}: receiver {} cannot decode its PHY",
                    tag.receiver
                )));
            }
            if tag.arrival_rate_pps <= 0.0 {
                return Err(NetError::InvalidScenario(format!(
                    "tag {t}: arrival rate must be positive"
                )));
            }
            if tag.payload_bytes == 0 {
                return Err(NetError::InvalidScenario(format!("tag {t}: empty payload")));
            }
            let airtime = tag.phy.airtime_s(tag.payload_bytes);
            if airtime > carrier.slot_window_s {
                return Err(NetError::InvalidScenario(format!(
                    "tag {t}: airtime {airtime:.1e}s exceeds carrier {}'s window {:.1e}s",
                    tag.carrier, carrier.slot_window_s
                )));
            }
        }
        if let Some(mobility) = &self.mobility {
            mobility
                .validate()
                .map_err(|e| NetError::InvalidScenario(format!("mobility: {e}")))?;
        }
        self.scheduler
            .validate()
            .map_err(|e| NetError::InvalidScenario(format!("scheduler: {e}")))?;
        if let Some(coex) = &self.coex {
            coex.validate(self.receivers.len())
                .map_err(|e| NetError::InvalidScenario(format!("coex: {e}")))?;
        }
        self.telemetry
            .validate(self.tags.len(), self.carriers.len())
            .map_err(|e| NetError::InvalidScenario(format!("telemetry: {e}")))?;
        self.execution
            .validate()
            .map_err(|e| NetError::InvalidScenario(format!("execution: {e}")))?;
        Ok(())
    }

    /// Repositions tag `t` before the run. Positions are private — this is
    /// the only way to move a tag between building a scenario and running
    /// it, so a [`crate::links::LinkMatrix`] can never be built from one
    /// geometry and silently reused with another.
    pub fn place_tag(&mut self, t: usize, position: Position) {
        self.tags[t].position = position;
    }

    /// Repositions carrier `c` before the run (see [`Scenario::place_tag`]).
    pub fn place_carrier(&mut self, c: usize, position: Position) {
        self.carriers[c].position = position;
    }

    /// Repositions sink `s` before the run (see [`Scenario::place_tag`]).
    pub fn place_sink(&mut self, s: usize, position: Position) {
        self.receivers[s].position = position;
    }

    /// A hospital ward of implanted sensors (cf. the in-body sub-network
    /// regime): `n_tags` neural-implant tags in beds across a 16 m × 12 m
    /// ward. Every pair of adjacent beds shares a bedside 20 dBm helper
    /// beacon (§2.3.3) about 1 m from each implant, and three Wi-Fi APs on
    /// channels 1, 6 and 11 line the far wall.
    ///
    /// Tags cycle through the three AP channels; every fifth tag is a
    /// legacy double-sideband tag, whose mirror copy from the BLE-38
    /// carrier lands near an adjacent channel (ch 1 → mirror in ch 6,
    /// ch 6 → mirror in ch 1) — the coexistence problem §2.3.1
    /// quantifies.
    pub fn hospital_ward(n_tags: usize) -> Scenario {
        let n = n_tags.max(1);
        let (width, depth) = (12.0, 9.0);
        let (beds, bedsides) = couple_positions(n, width, depth, 1.0, 1.0);

        // One helper beacon between each pair of beds (5 ms cadence: 200
        // crafted advertisements per second per helper).
        let carriers: Vec<CarrierSource> = bedsides
            .into_iter()
            .map(|p| CarrierSource::helper(p, 5e-3))
            .collect();

        let ap_channels = [1u8, 6, 11];
        let receivers: Vec<SinkReceiver> = ap_channels
            .iter()
            .enumerate()
            .map(|(i, &ch)| {
                let x = width * (i as f64 + 0.5) / 3.0;
                let mut ap = SinkReceiver::wifi_ap(Position::new(x, depth - 0.5, 2.5), ch);
                // Hospital Wi-Fi keeps channel 6 the busiest.
                ap.external_occupancy = if ch == 6 { 0.2 } else { 0.05 };
                ap
            })
            .collect();

        let tags: Vec<TagNode> = beds
            .iter()
            .enumerate()
            .map(|(t, &position)| {
                let rx = t % receivers.len();
                TagNode {
                    position,
                    profile: TagProfile::NeuralImplant,
                    sideband: if t % 5 == 4 {
                        SidebandMode::Double
                    } else {
                        SidebandMode::Single
                    },
                    phy: NetPhy::Wifi {
                        rate: DsssRate::Mbps2,
                        channel: ap_channels[rx],
                    },
                    carrier: t / 2,
                    receiver: rx,
                    payload_bytes: 31,
                    arrival_rate_pps: 2.0,
                    max_retries: 8,
                }
            })
            .collect();

        Scenario {
            name: format!("hospital-ward-{n}"),
            duration_s: 10.0,
            carriers,
            tags,
            receivers,
            cts_to_self: true,
            max_queue: 64,
            mac: MacMode::OpenLoop,
            mobility: None,
            scheduler: SchedPolicy::RoundRobin,
            coex: None,
            telemetry: TelemetryConfig::default(),
            execution: ExecutionConfig::default(),
        }
    }

    /// A fleet of smart contact lenses (§5.1) in a 5 m × 5 m clinic room:
    /// pairs of patients share a 20 dBm desk hub ~0.6 m from each lens,
    /// all backscattering 2 Mbps Wi-Fi to a single channel-11 AP on the
    /// ceiling.
    pub fn contact_lens_fleet(n_tags: usize) -> Scenario {
        let n = n_tags.max(1);
        let side = 3.0;
        let (seats, desks) = couple_positions(n, side, side, 1.2, 0.6);
        let carriers: Vec<CarrierSource> = desks
            .into_iter()
            .map(|p| CarrierSource::helper(p, 10e-3))
            .collect();
        let receivers = vec![SinkReceiver::wifi_ap(
            Position::new(side / 2.0, side / 2.0, 2.0),
            11,
        )];
        let tags: Vec<TagNode> = seats
            .iter()
            .enumerate()
            .map(|(t, &position)| TagNode {
                position,
                profile: TagProfile::ContactLens,
                sideband: SidebandMode::Single,
                phy: NetPhy::Wifi {
                    rate: DsssRate::Mbps2,
                    channel: 11,
                },
                carrier: t / 2,
                receiver: 0,
                payload_bytes: 16,
                arrival_rate_pps: 1.0,
                max_retries: 8,
            })
            .collect();
        Scenario {
            name: format!("contact-lens-fleet-{n}"),
            duration_s: 10.0,
            carriers,
            tags,
            receivers,
            cts_to_self: true,
            max_queue: 32,
            mac: MacMode::OpenLoop,
            mobility: None,
            scheduler: SchedPolicy::RoundRobin,
            coex: None,
            telemetry: TelemetryConfig::default(),
            execution: ExecutionConfig::default(),
        }
    }

    /// A table of card-to-card pairs (§5.3): `n_pairs` transmitting cards
    /// ringed around one smartphone carrier, each 0.25 m from its
    /// receiving card's envelope detector. OOK does not shift the carrier,
    /// so every pair contends for the same spectrum — carrier-slot
    /// scheduling is what keeps them apart.
    pub fn card_to_card_room(n_pairs: usize) -> Scenario {
        let n = n_pairs.max(1);
        let center = Position::new(1.0, 1.0, 0.8);
        let carriers = vec![CarrierSource {
            slot_window_s: 1.2e-3,
            ..CarrierSource::phone(center, 2e-3)
        }];
        let mut receivers = Vec::with_capacity(n);
        let tags: Vec<TagNode> = (0..n)
            .map(|t| {
                // Cards fan out on the table: radius grows slowly with the
                // index so far pairs see a weaker tone (position-dependent
                // PER, like Fig. 17's distance sweep).
                let angle = std::f64::consts::TAU * t as f64 / n as f64;
                let radius = 0.10 + 0.02 * t as f64;
                let position = Position::new(
                    center.x + radius * angle.cos(),
                    center.y + radius * angle.sin(),
                    0.8,
                );
                receivers.push(SinkReceiver::card_detector(Position::new(
                    center.x + (radius + 0.25) * angle.cos(),
                    center.y + (radius + 0.25) * angle.sin(),
                    0.8,
                )));
                TagNode {
                    position,
                    profile: TagProfile::Card,
                    sideband: SidebandMode::Double,
                    phy: NetPhy::CardOok {
                        bit_rate_bps: 100e3,
                    },
                    carrier: 0,
                    receiver: t,
                    payload_bytes: 8,
                    arrival_rate_pps: 0.5,
                    max_retries: 4,
                }
            })
            .collect();
        Scenario {
            name: format!("card-to-card-{n}"),
            duration_s: 10.0,
            carriers,
            tags,
            receivers,
            cts_to_self: false,
            max_queue: 16,
            mac: MacMode::OpenLoop,
            mobility: None,
            scheduler: SchedPolicy::RoundRobin,
            coex: None,
            telemetry: TelemetryConfig::default(),
            execution: ExecutionConfig::default(),
        }
    }

    /// A ZigBee sensor wing: implant tags generating 802.15.4 frames on
    /// ZigBee channel 14 for hubs along the wall, with bedside helpers
    /// configured for an extended 2 ms tone window to fit the 250 kbps
    /// frames (§4.5's rate mismatch).
    pub fn zigbee_wing(n_tags: usize) -> Scenario {
        let n = n_tags.max(1);
        let (width, depth) = (14.0, 10.0);
        let (beds, bedsides) = couple_positions(n, width, depth, 1.0, 1.0);
        let carriers: Vec<CarrierSource> = bedsides
            .into_iter()
            .map(|p| CarrierSource {
                slot_window_s: 2e-3,
                ..CarrierSource::helper(p, 8e-3)
            })
            .collect();
        let n_hubs = n / 25 + 1;
        let receivers: Vec<SinkReceiver> = (0..n_hubs)
            .map(|h| {
                let x = width * (h as f64 + 0.5) / n_hubs as f64;
                SinkReceiver::zigbee_hub(Position::new(x, depth - 0.5, 2.0), 14)
            })
            .collect();
        let tags: Vec<TagNode> = beds
            .iter()
            .enumerate()
            .map(|(t, &position)| TagNode {
                position,
                profile: TagProfile::NeuralImplant,
                sideband: SidebandMode::Single,
                phy: NetPhy::Zigbee { channel: 14 },
                carrier: t / 2,
                receiver: nearest_index(&receivers, &position),
                payload_bytes: 20,
                arrival_rate_pps: 1.0,
                max_retries: 6,
            })
            .collect();
        Scenario {
            name: format!("zigbee-wing-{n}"),
            duration_s: 10.0,
            carriers,
            tags,
            receivers,
            cts_to_self: false,
            max_queue: 32,
            mac: MacMode::OpenLoop,
            mobility: None,
            scheduler: SchedPolicy::RoundRobin,
            coex: None,
            telemetry: TelemetryConfig::default(),
            execution: ExecutionConfig::default(),
        }
    }

    /// The closed-loop variant of any preset: carriers poll their tags with
    /// AM-OFDM downlink frames, tags respond with backscattered uplink, and
    /// the sink acks — see [`crate::mac`]. Works on all four builders:
    ///
    /// ```
    /// use interscatter_net::scenario::Scenario;
    /// let ward = Scenario::hospital_ward(8).closed_loop();
    /// assert!(ward.name.ends_with("closed-loop"));
    /// ward.validate().unwrap();
    /// ```
    ///
    /// *Legacy shim* over [`ScenarioBuilder::radio`] (via
    /// [`RadioSection::mac`]); prefer the builder for eager validation.
    /// This combinator additionally renames the scenario and keeps
    /// validation deferred, so existing call sites behave unchanged.
    pub fn closed_loop(mut self) -> Scenario {
        self.name = format!("{}-closed-loop", self.name);
        let radio = RadioSection::new(
            std::mem::take(&mut self.carriers),
            std::mem::take(&mut self.tags),
            std::mem::take(&mut self.receivers),
        )
        .cts_to_self(self.cts_to_self)
        .max_queue(self.max_queue)
        .mac(MacMode::ClosedLoop);
        self.builder().radio(radio).finish_deferred()
    }

    /// The mobile variant of any preset: attaches a mobility model that
    /// moves every tag during the run, with the engine re-deriving the
    /// affected [`crate::links::LinkMatrix`] rows at every tick. Works on
    /// all builders and composes with [`Scenario::closed_loop`]:
    ///
    /// ```
    /// use interscatter_net::mobility::{Bounds, MobilityConfig, MobilityModel, RandomWalk};
    /// use interscatter_net::scenario::Scenario;
    /// let ward = Scenario::contact_lens_fleet(8).with_mobility(MobilityConfig {
    ///     model: MobilityModel::RandomWalk(RandomWalk { speed_mps: 0.3, turn_rad: 0.8 }),
    ///     tick_interval_s: 0.1,
    ///     bounds: Bounds::room(3.0, 3.0, 1.2),
    ///     carriers_follow: false,
    /// });
    /// assert!(ward.name.ends_with("mobile"));
    /// ward.validate().unwrap();
    /// ```
    ///
    /// *Legacy shim* over [`ScenarioBuilder::mobility`]; prefer
    /// `.builder().mobility(config).build()` for eager validation. This
    /// combinator additionally renames the scenario and keeps validation
    /// deferred, so existing call sites behave unchanged.
    pub fn with_mobility(mut self, config: MobilityConfig) -> Scenario {
        self.name = format!("{}-mobile", self.name);
        self.builder().mobility(config).finish_deferred()
    }

    /// Swaps the carrier arbitration policy of any preset
    /// ([`crate::sched`]): which backlogged tag a carrier slot illuminates.
    /// Works on all builders and composes with [`Scenario::closed_loop`]
    /// and [`Scenario::with_mobility`]:
    ///
    /// ```
    /// use interscatter_net::sched::SchedPolicy;
    /// use interscatter_net::scenario::Scenario;
    /// let ward = Scenario::hospital_ward(8).with_scheduler(SchedPolicy::margin_aware());
    /// assert!(ward.name.ends_with("margin-aware"));
    /// ward.validate().unwrap();
    /// ```
    ///
    /// *Legacy shim* over [`ScenarioBuilder::scheduling`]; prefer
    /// `.builder().scheduling(policy).build()` for eager validation.
    /// This combinator additionally renames the scenario and keeps
    /// validation deferred, so existing call sites behave unchanged.
    pub fn with_scheduler(mut self, policy: SchedPolicy) -> Scenario {
        self.name = format!("{}-{}", self.name, policy.slug());
        self.builder().scheduling(policy).finish_deferred()
    }

    /// Stripes the carriers across the scenario's Wi-Fi channels, making
    /// spectrum a scheduler-visible axis (cf. Wi-Fi 6 resource-unit
    /// sharing and the in-body sub-band allocation comparison): carrier
    /// `c` is assigned sub-band `c mod n_wifi_aps`, and every Wi-Fi tag it
    /// illuminates is retuned to that sub-band's AP and channel. Adjacent
    /// carriers — the ones whose slots actually overlap in space — then
    /// synthesize onto *different* channels, so their tags stop colliding
    /// with each other and only contend within their stripe.
    ///
    /// Scenarios without at least two Wi-Fi APs (card table, ZigBee wing)
    /// are returned unchanged apart from the name.
    pub fn with_subband_striping(mut self) -> Scenario {
        let wifi_rx: Vec<usize> = self
            .receivers
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.kind, SinkKind::Wifi { .. }))
            .map(|(i, _)| i)
            .collect();
        if wifi_rx.len() > 1 {
            for (c, carrier) in self.carriers.iter_mut().enumerate() {
                carrier.subband = c % wifi_rx.len();
            }
            for tag in &mut self.tags {
                let NetPhy::Wifi { rate, .. } = tag.phy else {
                    continue;
                };
                let rx = wifi_rx[self.carriers[tag.carrier].subband];
                let SinkKind::Wifi { channel } = self.receivers[rx].kind else {
                    unreachable!("wifi_rx only holds Wi-Fi sinks");
                };
                tag.receiver = rx;
                tag.phy = NetPhy::Wifi { rate, channel };
            }
        }
        self.name = format!("{}-striped", self.name);
        self
    }

    /// Attaches a coexistence configuration ([`crate::coex`]): external
    /// traffic sources sharing the band, per-carrier occupancy sensing,
    /// and (optionally) adaptive re-striping. Works on all builders and
    /// composes with every other combinator:
    ///
    /// ```
    /// use interscatter_net::coex::{CoexConfig, CoexSource};
    /// use interscatter_net::entities::Position;
    /// use interscatter_net::scenario::Scenario;
    /// let ward = Scenario::hospital_ward(8).with_coex(CoexConfig::with_sources(vec![
    ///     CoexSource::wifi_neighbor(Position::new(6.0, 4.0, 2.0), 6, 0.3),
    /// ]));
    /// assert!(ward.name.ends_with("coex"));
    /// ward.validate().unwrap();
    /// ```
    ///
    /// *Legacy shim* over [`ScenarioBuilder::coex`]; prefer
    /// `.builder().coex(config).build()` for eager validation. This
    /// combinator additionally renames the scenario and keeps validation
    /// deferred, so existing call sites behave unchanged.
    pub fn with_coex(mut self, config: CoexConfig) -> Scenario {
        self.name = format!("{}-coex", self.name);
        self.builder().coex(config).finish_deferred()
    }

    /// The backward-compatibility bridge: attaches a coex config whose
    /// only sources are [`crate::coex::CoexModel::Constant`] scalars
    /// mirroring each sink's legacy `external_occupancy`. The engine then
    /// takes the *same* per-sink delivery-probability fold with the same
    /// RNG draws, so trace digests reproduce the pre-coex engine byte for
    /// byte (pinned by `constant_coex_reproduces_legacy_digests`).
    pub fn with_constant_coex(self) -> Scenario {
        let sources = self
            .receivers
            .iter()
            .enumerate()
            .map(|(s, rx)| CoexSource::constant(s, rx.external_occupancy))
            .collect();
        self.with_coex(CoexConfig::with_sources(sources))
    }

    /// Attaches (or swaps) the adaptive re-striping policy on a scenario
    /// that already carries a coex config. A scenario without one gets the
    /// [`Scenario::with_constant_coex`] bridge config first (each sink's
    /// legacy scalar mirrored as a `Constant` source), so attaching the
    /// policy alone never changes the external-loss baseline — any
    /// adaptive-vs-static difference is the re-striping, not a silently
    /// zeroed occupancy fold.
    pub fn with_restripe(mut self, policy: ReStripe) -> Scenario {
        let config = self.coex.take().unwrap_or_else(|| {
            CoexConfig::with_sources(
                self.receivers
                    .iter()
                    .enumerate()
                    .map(|(s, rx)| CoexSource::constant(s, rx.external_occupancy))
                    .collect(),
            )
        });
        self.name = format!("{}-adaptive", self.name);
        self.builder()
            .coex(config.with_restripe(policy))
            .finish_deferred()
    }

    /// Replaces the whole telemetry configuration ([`crate::telemetry`]).
    /// Unlike every other combinator this does **not** rename the
    /// scenario: observing a run must not change what the run reports
    /// itself as, and the trace stays byte-identical either way.
    ///
    /// ```
    /// use interscatter_net::prelude::*;
    /// let ward = Scenario::hospital_ward(8).with_telemetry(
    ///     TelemetryConfig::new()
    ///         .subscribe(Subscription::new(
    ///             "poll-tail",
    ///             Filter::all(),
    ///             SinkSpec::Quantiles(Dataset::PollLatencyMs),
    ///         ))
    ///         .with_progress(1.0),
    /// );
    /// assert_eq!(ward.name, Scenario::hospital_ward(8).name);
    /// ward.validate().unwrap();
    /// ```
    ///
    /// *Legacy shim* over [`ScenarioBuilder::telemetry`]; prefer
    /// `.builder().telemetry(config).build()` for eager validation.
    pub fn with_telemetry(self, config: TelemetryConfig) -> Scenario {
        self.builder().telemetry(config).finish_deferred()
    }

    /// Registers one telemetry subscription on top of whatever the
    /// scenario already carries (see [`Scenario::with_telemetry`]).
    pub fn subscribe(mut self, sub: Subscription) -> Scenario {
        let telemetry = std::mem::take(&mut self.telemetry).subscribe(sub);
        self.builder().telemetry(telemetry).finish_deferred()
    }

    /// Switches the metrics pipeline to streaming sketches
    /// ([`crate::telemetry::MetricsMode::Streaming`]): sample `Vec`s stay
    /// empty, quantiles come from mergeable sketches, memory stays
    /// O(entities + subscriptions) however long the run.
    ///
    /// *Legacy shim* over the execution section; prefer
    /// `.builder().execution(ExecutionSection::new().metrics(MetricsMode::Streaming)).build()`
    /// ([`ExecutionSection::metrics`]) for eager validation. This
    /// combinator keeps validation deferred, so existing call sites
    /// behave unchanged.
    pub fn with_streaming_metrics(mut self) -> Scenario {
        let telemetry = std::mem::take(&mut self.telemetry).streaming();
        self.builder().telemetry(telemetry).finish_deferred()
    }

    /// Emits a one-line run status every `every_s` simulated seconds
    /// (collected into [`crate::engine::NetRunResult::telemetry`]; pass
    /// `live` to also mirror each line to stderr as the run executes).
    ///
    /// *Legacy shim* over the execution section; prefer
    /// `.builder().execution(ExecutionSection::new().progress(every_s, live)).build()`
    /// ([`ExecutionSection::progress`]) for eager validation. This
    /// combinator keeps validation deferred, so existing call sites
    /// behave unchanged.
    pub fn with_progress(mut self, every_s: f64, live: bool) -> Scenario {
        let mut telemetry = std::mem::take(&mut self.telemetry).with_progress(every_s);
        telemetry.live_progress = live;
        self.builder().telemetry(telemetry).finish_deferred()
    }

    /// The congestion-stress ward: the striped hospital ward (carriers and
    /// tags spread across the three AP channels), except that from `t =
    /// 3 s` a **hidden** Wi-Fi transmitter hammers channel 6 at ~60% load
    /// — too far to trip the helpers' carrier-sense, close enough to the
    /// wall APs to collide with everything the stripe-1 tags send. Static
    /// striping rides the collapse out; attach
    /// [`Scenario::with_restripe`] and the stripe-1 carriers sense the
    /// spike and re-tune themselves (and their tags) to the quietest
    /// sub-band. This is the geometry the `coex_shootout` example and the
    /// re-striping regression tests compare policies on.
    pub fn congested_ward(n_tags: usize) -> Scenario {
        let n = n_tags.max(1);
        let mut ward = Scenario::hospital_ward(n)
            .with_subband_striping()
            .with_coex(CoexConfig::with_sources(vec![CoexSource::hidden_wifi(
                // Beside the channel-6 AP on the far wall: loud at the
                // APs, unheard at the bedside helpers.
                Position::new(6.0, 8.0, 2.0),
                6,
                0.6,
            )
            .active(3.0, f64::INFINITY)]));
        ward.name = format!("congested-ward-{n}");
        ward
    }

    /// An ambulatory hospital ward: `n_tags` implanted patients *walking*
    /// a 12 m × 9 m ward under a random-waypoint model, each wearing their
    /// own 20 dBm helper beacon 0.3 m from the implant (the §2.3.3 helper
    /// device, body-worn so it stays inside the ~1 m illumination range
    /// while the patient moves). The three wall APs are fixed, so the
    /// tag → AP leg sweeps metres of path loss as patients wander — the
    /// regime where link budgets must track geometry tick by tick.
    pub fn ambulatory_ward(n_tags: usize) -> Scenario {
        let n = n_tags.max(1);
        let (width, depth) = (12.0, 9.0);
        let (patients, _) = couple_positions(n, width, depth, 1.0, 1.0);

        // One body-worn helper per patient, polled on a 5 ms cadence.
        let carriers: Vec<CarrierSource> = patients
            .iter()
            .map(|p| CarrierSource::helper(Position::new(p.x + 0.3, p.y, p.z), 5e-3))
            .collect();

        let ap_channels = [1u8, 6, 11];
        let receivers: Vec<SinkReceiver> = ap_channels
            .iter()
            .enumerate()
            .map(|(i, &ch)| {
                let x = width * (i as f64 + 0.5) / 3.0;
                let mut ap = SinkReceiver::wifi_ap(Position::new(x, depth - 0.5, 2.5), ch);
                ap.external_occupancy = if ch == 6 { 0.2 } else { 0.05 };
                ap
            })
            .collect();

        let tags: Vec<TagNode> = patients
            .iter()
            .enumerate()
            .map(|(t, &position)| {
                let rx = t % receivers.len();
                TagNode {
                    position,
                    profile: TagProfile::NeuralImplant,
                    sideband: SidebandMode::Single,
                    phy: NetPhy::Wifi {
                        rate: DsssRate::Mbps2,
                        channel: ap_channels[rx],
                    },
                    carrier: t,
                    receiver: rx,
                    payload_bytes: 31,
                    arrival_rate_pps: 2.0,
                    max_retries: 8,
                }
            })
            .collect();

        Scenario {
            name: format!("ambulatory-ward-{n}"),
            duration_s: 10.0,
            carriers,
            tags,
            receivers,
            cts_to_self: true,
            max_queue: 64,
            mac: MacMode::OpenLoop,
            mobility: None,
            scheduler: SchedPolicy::RoundRobin,
            coex: None,
            telemetry: TelemetryConfig::default(),
            execution: ExecutionConfig::default(),
        }
        .with_mobility(MobilityConfig {
            model: MobilityModel::RandomWaypoint(RandomWaypoint {
                speed_min_mps: 0.6,
                speed_max_mps: 1.2,
                pause_s: 2.0,
            }),
            tick_interval_s: 0.1,
            bounds: Bounds::room(width, depth, 1.0),
            carriers_follow: true,
        })
    }

    /// The arbitration-stress ward: `n_tags` implanted patients *walking*
    /// the 12 m × 9 m hospital ward while the **shared bedside helpers
    /// stay put** — the opposite trade of [`Scenario::ambulatory_ward`].
    /// Every carrier keeps two members to arbitrate between, and each
    /// tag's uplink margin sweeps tens of dB per walk, so which tag a
    /// slot illuminates actually matters: this is the geometry the
    /// `scheduler_shootout` example and the scheduler regression tests
    /// compare policies on.
    pub fn walking_ward(n_tags: usize) -> Scenario {
        Scenario::hospital_ward(n_tags).with_mobility(MobilityConfig {
            model: MobilityModel::RandomWaypoint(RandomWaypoint {
                speed_min_mps: 0.8,
                speed_max_mps: 1.5,
                pause_s: 0.5,
            }),
            tick_interval_s: 0.1,
            bounds: Bounds::room(12.0, 9.0, 1.0),
            carriers_follow: false,
        })
    }

    /// The city-scale stress preset: `n_tags` implants clustered around
    /// **shared** 20 dBm helper beacons on a campus quad, polled closed
    /// loop with streaming metrics — the deployment regime the paper's
    /// "internet connectivity for implanted devices" vision implies, and
    /// the scale target of the engine-core work (timing wheel, band
    /// index, SoA link tables).
    ///
    /// Layout: clusters of up to 256 implants ring one helper each (every
    /// tag inside the ~1 m illumination range), cluster centres on an
    /// 8 m grid. A 4 × 4 lattice of Wi-Fi APs covers the quad, channels
    /// cycling 1/6/11; each helper is *striped* onto the sub-band of its
    /// nearest AP and its implants are tuned to that AP's channel, so
    /// adjacent clusters synthesize onto different channels — the
    /// campus-scale version of [`Scenario::with_subband_striping`].
    /// Three neighbour Wi-Fi networks (one per channel) load the band
    /// through [`crate::coex`].
    ///
    /// Carrier count stays O(`n_tags` / 256): the only dense
    /// carrier × carrier link table then stays tiny while the per-tag
    /// pair tables switch to the lazy layout above
    /// [`crate::links`]' dense-pair limit.
    ///
    /// ```
    /// use interscatter_net::scenario::Scenario;
    /// let quad = Scenario::campus(5_000);
    /// assert_eq!(quad.tags.len(), 5_000);
    /// quad.validate().unwrap();
    /// ```
    pub fn campus(n_tags: usize) -> Scenario {
        let n = n_tags.max(1);
        const TAGS_PER_CLUSTER: usize = 256;
        let clusters = n.div_ceil(TAGS_PER_CLUSTER);
        let cols = (clusters as f64).sqrt().ceil() as usize;
        let rows = clusters.div_ceil(cols);
        // 3 m between cluster centres: the 4 × 4 AP lattice then keeps
        // every cluster within ward-like range (~11 m) of its AP even at
        // the 100k-tag quad (~60 m a side).
        let pitch = 3.0;
        let (width, depth) = (cols as f64 * pitch, rows as f64 * pitch);

        // One shared helper per cluster, cycling the three BLE
        // advertising channels so the tones spread over three collision
        // domains. The 50 ms cadence keeps the aggregate tone duty near
        // 60% of those domains at 100k tags — any faster and every slot
        // carrier-senses busy: at this scale spectrum, not airtime, is
        // the bottleneck.
        let mut carriers: Vec<CarrierSource> = (0..clusters)
            .map(|c| {
                let centre = Position::new(
                    pitch * ((c % cols) as f64 + 0.5),
                    pitch * ((c / cols) as f64 + 0.5),
                    1.0,
                );
                CarrierSource {
                    ble_channel: interscatter_ble::channels::ADVERTISING_CHANNELS[c % 3],
                    ..CarrierSource::helper(centre, 50e-3)
                }
            })
            .collect();

        let ap_channels = [1u8, 6, 11];
        let receivers: Vec<SinkReceiver> = (0..16)
            .map(|a| {
                let ch = ap_channels[a % ap_channels.len()];
                let position = Position::new(
                    width * ((a % 4) as f64 + 0.5) / 4.0,
                    depth * ((a / 4) as f64 + 0.5) / 4.0,
                    3.0,
                );
                let mut ap = SinkReceiver::wifi_ap(position, ch);
                ap.external_occupancy = if ch == 6 { 0.2 } else { 0.05 };
                ap
            })
            .collect();

        // Stripe each helper onto its nearest AP's sub-band; the channel
        // cycle along the AP lattice then puts adjacent clusters on
        // different channels.
        for carrier in &mut carriers {
            carrier.subband = nearest_index(&receivers, &carrier.position);
        }

        let tags: Vec<TagNode> = (0..n)
            .map(|t| {
                let cluster = t / TAGS_PER_CLUSTER;
                let centre = carriers[cluster].position;
                // Golden-angle ring keeps every implant 0.4–0.9 m from
                // its helper, deterministically spread.
                let k = (t % TAGS_PER_CLUSTER) as f64;
                let angle = 2.399_963_229_728_653 * k;
                let radius = 0.4 + 0.5 * (k / TAGS_PER_CLUSTER as f64);
                let rx = carriers[cluster].subband;
                let SinkKind::Wifi { channel } = receivers[rx].kind else {
                    unreachable!("campus sinks are all Wi-Fi APs");
                };
                TagNode {
                    position: Position::new(
                        centre.x + radius * angle.cos(),
                        centre.y + radius * angle.sin(),
                        1.0,
                    ),
                    profile: TagProfile::NeuralImplant,
                    sideband: SidebandMode::Single,
                    phy: NetPhy::Wifi {
                        rate: DsssRate::Mbps2,
                        channel,
                    },
                    carrier: cluster,
                    receiver: rx,
                    payload_bytes: 31,
                    arrival_rate_pps: 0.2,
                    max_retries: 4,
                }
            })
            .collect();

        let coex = CoexConfig::with_sources(
            ap_channels
                .iter()
                .enumerate()
                .map(|(i, &ch)| {
                    CoexSource::wifi_neighbor(
                        Position::new(width * (i as f64 + 0.5) / 3.0, depth / 2.0, 6.0),
                        ch,
                        if ch == 6 { 0.3 } else { 0.15 },
                    )
                })
                .collect(),
        );

        Scenario {
            name: format!("campus-{n}"),
            duration_s: 2.0,
            carriers,
            tags,
            receivers,
            cts_to_self: true,
            max_queue: 8,
            mac: MacMode::ClosedLoop,
            mobility: None,
            scheduler: SchedPolicy::RoundRobin,
            coex: Some(coex),
            telemetry: TelemetryConfig::default(),
            execution: ExecutionConfig::default(),
        }
        .with_streaming_metrics()
    }

    /// Opens the typed builder API on this scenario: section setters
    /// ([`ScenarioBuilder::radio`], [`ScenarioBuilder::mobility`],
    /// [`ScenarioBuilder::scheduling`], [`ScenarioBuilder::coex`],
    /// [`ScenarioBuilder::telemetry`]) and **eager** validation on
    /// [`ScenarioBuilder::build`]. Start from a preset to reconfigure a
    /// deployment, or from [`ScenarioBuilder::new`] to assemble one from
    /// scratch:
    ///
    /// ```
    /// use interscatter_net::prelude::*;
    /// let ward = Scenario::hospital_ward(8)
    ///     .builder()
    ///     .scheduling(SchedPolicy::margin_aware())
    ///     .coex(CoexConfig::with_sources(vec![CoexSource::ble_beacon(
    ///         Position::new(1.0, 1.0, 1.0),
    ///         0.1,
    ///     )]))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(ward.name, Scenario::hospital_ward(8).name);
    /// ```
    ///
    /// Unlike the legacy `.with_*()` combinators the builder never
    /// renames the scenario, and a configuration `validate()` would
    /// reject is refused at `build()` time instead of at run time.
    pub fn builder(self) -> ScenarioBuilder {
        ScenarioBuilder { scenario: self }
    }
}

/// The deployment section of a [`ScenarioBuilder`]: who is on the air —
/// carriers, tags, sinks — plus the MAC parameters governing how they
/// share it (CTS-to-Self, queue depth, open vs closed loop).
#[derive(Debug, Clone)]
pub struct RadioSection {
    carriers: Vec<CarrierSource>,
    tags: Vec<TagNode>,
    receivers: Vec<SinkReceiver>,
    cts_to_self: bool,
    max_queue: usize,
    mac: MacMode,
}

impl RadioSection {
    /// A radio section over the given entities with the ward defaults:
    /// CTS-to-Self on, 64-deep tag queues, open-loop MAC.
    pub fn new(
        carriers: Vec<CarrierSource>,
        tags: Vec<TagNode>,
        receivers: Vec<SinkReceiver>,
    ) -> RadioSection {
        RadioSection {
            carriers,
            tags,
            receivers,
            cts_to_self: true,
            max_queue: 64,
            mac: MacMode::OpenLoop,
        }
    }

    /// Whether carriers place CTS-to-Self reservations before triggering
    /// a tag (§2.3.3).
    pub fn cts_to_self(mut self, on: bool) -> RadioSection {
        self.cts_to_self = on;
        self
    }

    /// Per-tag queue capacity; arrivals beyond this are dropped.
    pub fn max_queue(mut self, depth: usize) -> RadioSection {
        self.max_queue = depth;
        self
    }

    /// Open-loop slot granting or the closed poll/ack loop
    /// ([`crate::mac`]).
    pub fn mac(mut self, mode: MacMode) -> RadioSection {
        self.mac = mode;
        self
    }
}

/// The execution section of a [`ScenarioBuilder`]: every run-shape knob in
/// one typed value — shard count, exchange epoch, Monte-Carlo trial count,
/// trace recording, the metrics storage mode and the progress cadence.
///
/// The first four land in [`Scenario::execution`]; the metrics mode and
/// progress cadence are *applied onto* the scenario's telemetry section
/// (they have always lived in [`TelemetryConfig`]) so the section
/// subsumes the scattered legacy knobs — `.with_streaming_metrics()`,
/// `.with_progress(..)`, `NetworkSim::with_trace(..)` and
/// `MonteCarlo::new(.., trials, ..)` — without forking their storage.
/// Leaving [`ExecutionSection::metrics`]/[`ExecutionSection::progress`]
/// unset keeps whatever the telemetry section already configured, so
/// `.execution(..)` composes with `.telemetry(..)` in either order.
///
/// ```
/// use interscatter_net::prelude::*;
/// use interscatter_net::scenario::ExecutionSection;
/// let quad = Scenario::campus(1_000)
///     .builder()
///     .execution(ExecutionSection::new().shards(4).trials(8).trace(false))
///     .build()
///     .unwrap();
/// assert_eq!(quad.execution.shards, 4);
/// // Ill-formed run shapes are refused eagerly, at build() time:
/// assert!(Scenario::campus(1_000)
///     .builder()
///     .execution(ExecutionSection::new().epoch_s(0.0))
///     .build()
///     .is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExecutionSection {
    config: ExecutionConfig,
    metrics: Option<MetricsMode>,
    progress: Option<(f64, bool)>,
}

impl ExecutionSection {
    /// The default run shape: one shard, a 10 ms exchange epoch, one
    /// trial, tracing on, telemetry section untouched.
    pub fn new() -> ExecutionSection {
        ExecutionSection::default()
    }

    /// Worker groups the partitioned cells are chunked into
    /// ([`ExecutionConfig::shards`]).
    pub fn shards(mut self, shards: usize) -> ExecutionSection {
        self.config.shards = shards;
        self
    }

    /// Epoch length of the cross-shard interference exchange, simulated
    /// seconds ([`ExecutionConfig::epoch_s`]).
    pub fn epoch_s(mut self, epoch_s: f64) -> ExecutionSection {
        self.config.epoch_s = epoch_s;
        self
    }

    /// Monte-Carlo trial count for [`crate::run_trials`]
    /// ([`ExecutionConfig::trials`]).
    pub fn trials(mut self, trials: usize) -> ExecutionSection {
        self.config.trials = trials;
        self
    }

    /// Whether the run records its event trace
    /// ([`ExecutionConfig::trace`]).
    pub fn trace(mut self, on: bool) -> ExecutionSection {
        self.config.trace = on;
        self
    }

    /// Whether the run records a self-profile
    /// ([`ExecutionConfig::profile`]): span timelines and a shard-load
    /// summary, exported via [`crate::engine::NetRunResult::prof`].
    /// Digest-neutral.
    pub fn profile(mut self, on: bool) -> ExecutionSection {
        self.config.profile = on;
        self
    }

    /// Metrics storage mode, applied onto the telemetry section
    /// ([`TelemetryConfig::mode`]): stored samples or streaming sketches.
    pub fn metrics(mut self, mode: MetricsMode) -> ExecutionSection {
        self.metrics = Some(mode);
        self
    }

    /// Progress cadence, applied onto the telemetry section: one status
    /// line every `every_s` simulated seconds, mirrored to stderr when
    /// `live` is set.
    pub fn progress(mut self, every_s: f64, live: bool) -> ExecutionSection {
        self.progress = Some((every_s, live));
        self
    }
}

/// Assembles a [`Scenario`] out of cohesive sections — radio, mobility,
/// scheduling, coex, telemetry — with **eager** validation:
/// [`ScenarioBuilder::build`] runs [`Scenario::validate`] and refuses an
/// ill-formed configuration at construction time, where the legacy
/// `.with_*()` combinators deferred the error to run time.
///
/// ```
/// use interscatter_net::prelude::*;
/// use interscatter_net::scenario::{RadioSection, ScenarioBuilder};
///
/// // From scratch: an empty deployment is rejected at build time...
/// assert!(ScenarioBuilder::new().build().is_err());
///
/// // ...and a well-formed one comes back validated.
/// let donor = Scenario::contact_lens_fleet(4);
/// let built = ScenarioBuilder::new()
///     .name("clinic")
///     .duration_s(5.0)
///     .radio(RadioSection::new(
///         donor.carriers.clone(),
///         donor.tags.clone(),
///         donor.receivers.clone(),
///     ))
///     .telemetry(TelemetryConfig::new().streaming())
///     .build()
///     .unwrap();
/// assert_eq!(built.name, "clinic");
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder::new()
    }
}

impl ScenarioBuilder {
    /// A blank builder: no entities yet (so [`ScenarioBuilder::build`]
    /// fails until a [`ScenarioBuilder::radio`] section is supplied),
    /// 1 s duration, round-robin scheduling, no mobility, no coex, the
    /// default telemetry.
    pub fn new() -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: "scenario".into(),
                duration_s: 1.0,
                carriers: Vec::new(),
                tags: Vec::new(),
                receivers: Vec::new(),
                cts_to_self: true,
                max_queue: 64,
                mac: MacMode::OpenLoop,
                mobility: None,
                scheduler: SchedPolicy::RoundRobin,
                coex: None,
                telemetry: TelemetryConfig::default(),
                execution: ExecutionConfig::default(),
            },
        }
    }

    /// Human-readable name, used in reports. The builder never renames
    /// implicitly — what you set here is what the run reports itself as.
    pub fn name(mut self, name: impl Into<String>) -> ScenarioBuilder {
        self.scenario.name = name.into();
        self
    }

    /// Simulated duration, seconds.
    pub fn duration_s(mut self, duration_s: f64) -> ScenarioBuilder {
        self.scenario.duration_s = duration_s;
        self
    }

    /// Replaces the deployment section: entities on the air and the MAC
    /// parameters that govern how they share it.
    pub fn radio(mut self, radio: RadioSection) -> ScenarioBuilder {
        self.scenario.carriers = radio.carriers;
        self.scenario.tags = radio.tags;
        self.scenario.receivers = radio.receivers;
        self.scenario.cts_to_self = radio.cts_to_self;
        self.scenario.max_queue = radio.max_queue;
        self.scenario.mac = radio.mac;
        self
    }

    /// Sets the mobility section ([`crate::mobility`]): how (and
    /// whether) the tags move during the run.
    pub fn mobility(mut self, config: MobilityConfig) -> ScenarioBuilder {
        self.scenario.mobility = Some(config);
        self
    }

    /// Sets the scheduling section ([`crate::sched`]): which backlogged
    /// tag a carrier slot illuminates.
    pub fn scheduling(mut self, policy: SchedPolicy) -> ScenarioBuilder {
        self.scenario.scheduler = policy;
        self
    }

    /// Sets the coexistence section ([`crate::coex`]): external traffic
    /// sources, occupancy sensing and (optionally) adaptive re-striping.
    pub fn coex(mut self, config: CoexConfig) -> ScenarioBuilder {
        self.scenario.coex = Some(config);
        self
    }

    /// Sets the telemetry section ([`crate::telemetry`]): subscriptions,
    /// the metrics storage mode and the progress cadence.
    pub fn telemetry(mut self, config: TelemetryConfig) -> ScenarioBuilder {
        self.scenario.telemetry = config;
        self
    }

    /// Sets the execution section ([`ExecutionSection`]): shard count,
    /// exchange epoch, trial count, trace recording — plus the metrics
    /// mode and progress cadence, which it applies onto the telemetry
    /// section. Like every section it is validated eagerly at
    /// [`ScenarioBuilder::build`].
    pub fn execution(mut self, section: ExecutionSection) -> ScenarioBuilder {
        self.scenario.execution = section.config;
        if let Some(mode) = section.metrics {
            self.scenario.telemetry.mode = mode;
        }
        if let Some((every_s, live)) = section.progress {
            self.scenario.telemetry.progress_every_s = Some(every_s);
            self.scenario.telemetry.live_progress = live;
        }
        self
    }

    /// Validates eagerly and returns the finished scenario — every check
    /// [`Scenario::validate`] performs, but at construction time. When the
    /// execution section enables profiling, the validation wall time is
    /// stashed in [`ExecutionConfig::build_ns`] so the run's profile can
    /// open with a `scenario_build` span.
    pub fn build(mut self) -> Result<Scenario, NetError> {
        if self.scenario.execution.profile {
            let (res, ns) = crate::prof::measure_ns(|| self.scenario.validate());
            res?;
            self.scenario.execution.build_ns = Some(ns);
        } else {
            self.scenario.validate()?;
        }
        Ok(self.scenario)
    }

    /// The legacy escape hatch the `.with_*()` shims delegate through:
    /// returns the scenario with validation still deferred to
    /// [`Scenario::validate`] / run time, preserving those combinators'
    /// long-standing contract.
    pub(crate) fn finish_deferred(self) -> Scenario {
        self.scenario
    }
}

/// Lays `n` tag positions out as *couples*: `ceil(n/2)` couple centres on
/// a grid filling `width × depth`, each couple's two tags `gap` metres
/// apart in x. Returns `(tag_positions, couple_centres)`; tag `t` belongs
/// to couple `t / 2`, so a carrier at each centre sits `gap / 2` from its
/// tags — inside the ~1 m illumination range backscatter needs.
fn couple_positions(
    n: usize,
    width: f64,
    depth: f64,
    z: f64,
    gap: f64,
) -> (Vec<Position>, Vec<Position>) {
    let couples = n.div_ceil(2);
    let cols = (couples as f64).sqrt().ceil() as usize;
    let rows = couples.div_ceil(cols);
    let centres: Vec<Position> = (0..couples)
        .map(|c| {
            Position::new(
                width * ((c % cols) as f64 + 0.5) / cols as f64,
                depth * ((c / cols) as f64 + 0.5) / rows as f64,
                z,
            )
        })
        .collect();
    let tags = (0..n)
        .map(|t| {
            let centre = centres[t / 2];
            let side = if t % 2 == 0 { -1.0 } else { 1.0 };
            Position::new(centre.x + side * gap / 2.0, centre.y, centre.z)
        })
        .collect();
    (tags, centres)
}

/// Index of the receiver nearest to `position`.
fn nearest_index(receivers: &[SinkReceiver], position: &Position) -> usize {
    receivers
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            // total_cmp, not partial_cmp: distances are finite here, so the
            // order is identical — but the comparator stays consistent (and
            // detlint-clean) even if a NaN ever leaks in.
            a.position
                .distance_m(position)
                .total_cmp(&b.position.distance_m(position))
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::RandomWalk;

    #[test]
    fn builders_produce_valid_scenarios() {
        for scenario in [
            Scenario::hospital_ward(1),
            Scenario::hospital_ward(50),
            Scenario::contact_lens_fleet(12),
            Scenario::card_to_card_room(9),
            Scenario::zigbee_wing(30),
            Scenario::walking_ward(12),
        ] {
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        }
    }

    #[test]
    fn every_preset_has_a_closed_loop_variant() {
        for scenario in [
            Scenario::hospital_ward(10).closed_loop(),
            Scenario::contact_lens_fleet(8).closed_loop(),
            Scenario::card_to_card_room(5).closed_loop(),
            Scenario::zigbee_wing(12).closed_loop(),
        ] {
            assert_eq!(scenario.mac, MacMode::ClosedLoop);
            assert!(
                scenario.name.ends_with("closed-loop"),
                "name {}",
                scenario.name
            );
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        }
        // The combinator changes the MAC mode and nothing else about the
        // deployment.
        let open = Scenario::hospital_ward(10);
        let closed = Scenario::hospital_ward(10).closed_loop();
        assert_eq!(open.tags.len(), closed.tags.len());
        assert_eq!(open.carriers.len(), closed.carriers.len());
        assert_eq!(open.mac, MacMode::OpenLoop);
    }

    #[test]
    fn hospital_ward_scales_entities() {
        let small = Scenario::hospital_ward(8);
        let large = Scenario::hospital_ward(64);
        assert_eq!(small.tags.len(), 8);
        assert_eq!(large.tags.len(), 64);
        assert!(large.carriers.len() > small.carriers.len());
        assert_eq!(large.receivers.len(), 3);
        // The legacy fraction exists and is the minority.
        let dsb = large
            .tags
            .iter()
            .filter(|t| t.sideband == SidebandMode::Double)
            .count();
        assert!(dsb > 0 && dsb < large.tags.len() / 3, "dsb {dsb}");
    }

    #[test]
    fn tags_sit_close_to_their_carriers() {
        for scenario in [
            Scenario::hospital_ward(50),
            Scenario::contact_lens_fleet(16),
            Scenario::zigbee_wing(24),
        ] {
            for (t, tag) in scenario.tags.iter().enumerate() {
                let d = scenario.carriers[tag.carrier]
                    .position
                    .distance_m(&tag.position);
                assert!(
                    d < 1.6,
                    "{}: tag {t} is {d:.2} m from its carrier",
                    scenario.name
                );
            }
        }
    }

    #[test]
    fn builders_are_deterministic() {
        let a = Scenario::hospital_ward(20);
        let b = Scenario::hospital_ward(20);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = Scenario::ambulatory_ward(20);
        let d = Scenario::ambulatory_ward(20);
        assert_eq!(format!("{c:?}"), format!("{d:?}"));
    }

    #[test]
    fn ambulatory_ward_wears_its_helpers() {
        let ward = Scenario::ambulatory_ward(12);
        ward.validate().unwrap();
        assert!(ward.name.starts_with("ambulatory-ward-12"));
        let mobility = ward.mobility.expect("preset attaches mobility");
        assert!(mobility.carriers_follow);
        assert!(!mobility.model.is_static());
        // One body-worn helper per patient, 0.3 m from the implant.
        assert_eq!(ward.carriers.len(), ward.tags.len());
        for (t, tag) in ward.tags.iter().enumerate() {
            assert_eq!(tag.carrier, t);
            let d = ward.carriers[t].position().distance_m(&tag.position());
            assert!((d - 0.3).abs() < 1e-9, "tag {t} helper at {d} m");
        }
        // Composes with the closed loop.
        let closed = Scenario::ambulatory_ward(6).closed_loop();
        closed.validate().unwrap();
        assert_eq!(closed.mac, MacMode::ClosedLoop);
        assert!(closed.mobility.is_some());
    }

    #[test]
    fn every_preset_takes_mobility() {
        let config = MobilityConfig {
            model: MobilityModel::RandomWalk(RandomWalk {
                speed_mps: 0.2,
                turn_rad: 0.5,
            }),
            tick_interval_s: 0.2,
            bounds: Bounds::room(12.0, 9.0, 1.0),
            carriers_follow: false,
        };
        for scenario in [
            Scenario::hospital_ward(8).with_mobility(config),
            Scenario::contact_lens_fleet(6).with_mobility(config),
            Scenario::card_to_card_room(4).with_mobility(config),
            Scenario::zigbee_wing(8).with_mobility(config),
        ] {
            assert!(scenario.name.ends_with("mobile"), "name {}", scenario.name);
            assert_eq!(scenario.mobility, Some(config));
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        }
        // Invalid mobility configs are rejected at validation.
        let mut bad = Scenario::hospital_ward(4).with_mobility(config);
        bad.mobility = Some(MobilityConfig {
            tick_interval_s: 0.0,
            ..config
        });
        assert!(matches!(bad.validate(), Err(NetError::InvalidScenario(_))));
    }

    #[test]
    fn every_preset_takes_a_scheduler() {
        use crate::sched::{DeadlineAware, SchedPolicy};
        for scenario in [
            Scenario::hospital_ward(8).with_scheduler(SchedPolicy::proportional_fair()),
            Scenario::contact_lens_fleet(6).with_scheduler(SchedPolicy::deadline_aware()),
            Scenario::card_to_card_room(4).with_scheduler(SchedPolicy::margin_aware()),
            Scenario::zigbee_wing(8).with_scheduler(SchedPolicy::RoundRobin),
            Scenario::ambulatory_ward(4)
                .closed_loop()
                .with_scheduler(SchedPolicy::margin_aware()),
        ] {
            assert!(
                scenario.name.ends_with(scenario.scheduler.slug()),
                "name {} vs policy {}",
                scenario.name,
                scenario.scheduler.slug()
            );
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        }
        // Presets default to the baseline, and bad parameters are caught
        // at validation.
        assert_eq!(
            Scenario::hospital_ward(4).scheduler,
            SchedPolicy::RoundRobin
        );
        let bad =
            Scenario::hospital_ward(4).with_scheduler(SchedPolicy::DeadlineAware(DeadlineAware {
                deadline_s: -1.0,
            }));
        assert!(matches!(bad.validate(), Err(NetError::InvalidScenario(_))));
    }

    #[test]
    fn subband_striping_retunes_wifi_tags_only() {
        let striped = Scenario::hospital_ward(20).with_subband_striping();
        striped.validate().unwrap();
        for tag in &striped.tags {
            let subband = striped.carriers[tag.carrier].subband;
            assert_eq!(tag.receiver, subband);
            let NetPhy::Wifi { channel, .. } = tag.phy else {
                panic!("ward tags are Wi-Fi")
            };
            let SinkKind::Wifi { channel: rx_ch } = striped.receivers[tag.receiver].kind else {
                panic!("ward sinks are Wi-Fi")
            };
            assert_eq!(channel, rx_ch);
        }
        // Adjacent carriers land on different stripes.
        assert_ne!(striped.carriers[0].subband, striped.carriers[1].subband);

        // Single-AP and non-Wi-Fi scenarios pass through unchanged (but
        // for the name).
        for scenario in [
            Scenario::contact_lens_fleet(6).with_subband_striping(),
            Scenario::card_to_card_room(4).with_subband_striping(),
            Scenario::zigbee_wing(8).with_subband_striping(),
        ] {
            assert!(scenario.name.ends_with("striped"));
            assert!(scenario.carriers.iter().all(|c| c.subband == 0));
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        }
    }

    #[test]
    fn every_preset_takes_coex() {
        use crate::coex::{CoexConfig, CoexSource, ReStripe};
        let config = CoexConfig::with_sources(vec![
            CoexSource::microwave_oven(Position::new(5.0, 5.0, 1.0)),
            CoexSource::ble_beacon(Position::new(1.0, 1.0, 1.0), 0.1),
        ]);
        for scenario in [
            Scenario::hospital_ward(8).with_coex(config.clone()),
            Scenario::contact_lens_fleet(6).with_coex(config.clone()),
            Scenario::card_to_card_room(4).with_coex(config.clone()),
            Scenario::zigbee_wing(8).with_coex(config.clone()),
            Scenario::ambulatory_ward(4)
                .closed_loop()
                .with_coex(config.clone()),
        ] {
            assert!(scenario.name.ends_with("coex"), "name {}", scenario.name);
            assert_eq!(scenario.coex, Some(config.clone()));
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        }
        // The constant bridge mirrors each sink's legacy scalar.
        let bridged = Scenario::hospital_ward(8).with_constant_coex();
        let cfg = bridged.coex.as_ref().unwrap();
        assert_eq!(cfg.sources.len(), bridged.receivers.len());
        for (s, rx) in bridged.receivers.iter().enumerate() {
            assert_eq!(cfg.constant_occupancy(s), rx.external_occupancy);
        }
        bridged.validate().unwrap();
        // with_restripe composes (and bootstraps a config when absent).
        let adaptive = Scenario::hospital_ward(8)
            .with_subband_striping()
            .with_restripe(ReStripe::default());
        assert!(adaptive.name.ends_with("adaptive"));
        assert_eq!(
            adaptive.coex.as_ref().and_then(|c| c.restripe),
            Some(ReStripe::default())
        );
        // The bootstrap mirrors the legacy scalars (it must not silently
        // zero the external-loss baseline the policy is compared against).
        let cfg = adaptive.coex.as_ref().unwrap();
        for (s, rx) in adaptive.receivers.iter().enumerate() {
            assert_eq!(cfg.constant_occupancy(s), rx.external_occupancy);
        }
        adaptive.validate().unwrap();
        // Bad coex parameters are rejected at validation.
        let bad = Scenario::hospital_ward(4)
            .with_coex(CoexConfig::with_sources(vec![CoexSource::constant(9, 0.1)]));
        assert!(matches!(bad.validate(), Err(NetError::InvalidScenario(_))));
    }

    #[test]
    fn congested_ward_hammers_channel_6_mid_run() {
        let ward = Scenario::congested_ward(12);
        ward.validate().unwrap();
        assert!(ward.name.starts_with("congested-ward-12"));
        // Striped deployment: carriers spread over the three APs.
        assert_ne!(ward.carriers[0].subband, ward.carriers[1].subband);
        let cfg = ward.coex.as_ref().expect("preset attaches coex");
        assert_eq!(cfg.sources.len(), 1);
        let source = &cfg.sources[0];
        assert_eq!(source.start_s, 3.0, "the hammer starts mid-run");
        assert!(matches!(
            source.model,
            crate::coex::CoexModel::WifiBursty(w) if w.channel == 6
                && w.access == crate::coex::MediumAccess::Hidden
        ));
        // Scalars are out of the picture: no constant sources.
        for s in 0..ward.receivers.len() {
            assert_eq!(cfg.constant_occupancy(s), 0.0);
        }
        assert!(cfg.restripe.is_none(), "static striping by default");
        // Composes with the closed loop and the adaptive policy.
        Scenario::congested_ward(8)
            .closed_loop()
            .validate()
            .unwrap();
        Scenario::congested_ward(8)
            .with_restripe(ReStripe::default())
            .validate()
            .unwrap();
    }

    #[test]
    fn every_preset_takes_telemetry() {
        use crate::telemetry::{Dataset, Filter, SinkSpec, Subscription, TelemetryConfig};
        let config = TelemetryConfig::new()
            .subscribe(Subscription::new(
                "tail",
                Filter::all(),
                SinkSpec::Quantiles(Dataset::PollLatencyMs),
            ))
            .streaming()
            .with_progress(1.0);
        for scenario in [
            Scenario::hospital_ward(8).with_telemetry(config.clone()),
            Scenario::contact_lens_fleet(6).with_telemetry(config.clone()),
            Scenario::card_to_card_room(4).with_telemetry(config.clone()),
            Scenario::zigbee_wing(8).with_telemetry(config.clone()),
            Scenario::congested_ward(8)
                .closed_loop()
                .with_telemetry(config.clone()),
        ] {
            assert_eq!(scenario.telemetry, config);
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        }
        // Telemetry never renames: observation is invisible to reports.
        assert_eq!(
            Scenario::hospital_ward(8).with_telemetry(config).name,
            Scenario::hospital_ward(8).name
        );
        // Incremental combinators compose.
        let ward = Scenario::hospital_ward(4)
            .subscribe(Subscription::new("c", Filter::all(), SinkSpec::Counters))
            .with_streaming_metrics()
            .with_progress(0.5, false);
        assert_eq!(ward.telemetry.subscriptions.len(), 1);
        assert_eq!(
            ward.telemetry.mode,
            crate::telemetry::MetricsMode::Streaming
        );
        assert_eq!(ward.telemetry.progress_every_s, Some(0.5));
        ward.validate().unwrap();
        // Out-of-range filters are rejected at validation.
        let bad = Scenario::hospital_ward(4).subscribe(Subscription::new(
            "bad",
            Filter::all().tags([99]),
            SinkSpec::Counters,
        ));
        assert!(matches!(bad.validate(), Err(NetError::InvalidScenario(_))));
    }

    #[test]
    fn builder_reconstructs_presets_digest_identically() {
        use crate::engine::NetworkSim;
        let presets = [
            Scenario::hospital_ward(10),
            Scenario::contact_lens_fleet(8).closed_loop(),
            Scenario::card_to_card_room(5),
            Scenario::zigbee_wing(12),
            Scenario::walking_ward(8),
            Scenario::congested_ward(12).with_restripe(ReStripe::default()),
        ];
        for mut preset in presets {
            preset.duration_s = 2.0;
            let mut builder = ScenarioBuilder::new()
                .name(preset.name.clone())
                .duration_s(preset.duration_s)
                .radio(
                    RadioSection::new(
                        preset.carriers.clone(),
                        preset.tags.clone(),
                        preset.receivers.clone(),
                    )
                    .cts_to_self(preset.cts_to_self)
                    .max_queue(preset.max_queue)
                    .mac(preset.mac),
                )
                .scheduling(preset.scheduler)
                .telemetry(preset.telemetry.clone());
            if let Some(mobility) = preset.mobility {
                builder = builder.mobility(mobility);
            }
            if let Some(coex) = preset.coex.clone() {
                builder = builder.coex(coex);
            }
            let rebuilt = builder
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
            let original = NetworkSim::new(&preset, 42).run().unwrap();
            let replayed = NetworkSim::new(&rebuilt, 42).run().unwrap();
            assert_eq!(
                original.trace.to_bytes(),
                replayed.trace.to_bytes(),
                "{}: builder reconstruction diverges",
                preset.name
            );
        }
    }

    #[test]
    fn builder_rejects_invalid_configs_at_build_time() {
        use crate::coex::{CoexConfig, CoexSource};
        use crate::sched::DeadlineAware;
        use crate::telemetry::{Filter, SinkSpec};
        let donor = Scenario::hospital_ward(4);

        // build() surfaces exactly the validate() error, eagerly.
        let mut bad = donor.clone();
        bad.tags[0].carrier = 99;
        assert_eq!(
            bad.validate().unwrap_err(),
            bad.clone().builder().build().unwrap_err()
        );

        assert!(matches!(
            ScenarioBuilder::new().build(),
            Err(NetError::InvalidScenario(_))
        ));
        assert!(donor.clone().builder().duration_s(0.0).build().is_err());
        let radio = RadioSection::new(
            donor.carriers.clone(),
            donor.tags.clone(),
            donor.receivers.clone(),
        )
        .max_queue(0);
        assert!(donor.clone().builder().radio(radio).build().is_err());
        assert!(donor
            .clone()
            .builder()
            .scheduling(SchedPolicy::DeadlineAware(DeadlineAware {
                deadline_s: -1.0
            }))
            .build()
            .is_err());
        assert!(donor
            .clone()
            .builder()
            .coex(CoexConfig::with_sources(vec![CoexSource::constant(9, 0.1)]))
            .build()
            .is_err());
        assert!(donor
            .clone()
            .builder()
            .mobility(MobilityConfig {
                model: MobilityModel::RandomWalk(RandomWalk {
                    speed_mps: 0.2,
                    turn_rad: 0.5,
                }),
                tick_interval_s: 0.0,
                bounds: Bounds::room(12.0, 9.0, 1.0),
                carriers_follow: false,
            })
            .build()
            .is_err());
        assert!(donor
            .clone()
            .builder()
            .telemetry(TelemetryConfig::new().subscribe(Subscription::new(
                "bad",
                Filter::all().tags([99]),
                SinkSpec::Counters,
            )))
            .build()
            .is_err());

        // And an untouched preset round-trips through build().
        assert!(donor.builder().build().is_ok());
    }

    #[test]
    fn campus_preset_is_city_scale_and_striped() {
        let quad = Scenario::campus(100_000);
        quad.validate().unwrap();
        assert_eq!(quad.tags.len(), 100_000);
        assert_eq!(quad.mac, MacMode::ClosedLoop);
        assert_eq!(
            quad.telemetry.mode,
            crate::telemetry::MetricsMode::Streaming,
            "city scale requires streaming metrics"
        );
        assert!(quad.coex.is_some(), "preset attaches coex load");
        // Shared helpers, O(n / 256): the one dense carrier × carrier
        // link table stays tiny while the per-tag pair tables go lazy.
        assert_eq!(quad.carriers.len(), 100_000usize.div_ceil(256));
        // Striped: the helpers spread across several sub-bands, and each
        // implant is tuned to its helper's stripe.
        // Sorted + deduped, not a hash set: any future iteration (say an
        // error message listing stripes) reads in stripe order.
        let mut subbands: Vec<usize> = quad.carriers.iter().map(|c| c.subband).collect();
        subbands.sort_unstable();
        subbands.dedup();
        assert!(subbands.len() > 1, "campus helpers use one sub-band");
        for (t, tag) in quad.tags.iter().enumerate().step_by(9973) {
            assert_eq!(tag.receiver, quad.carriers[tag.carrier].subband);
            let d = quad.carriers[tag.carrier]
                .position
                .distance_m(&tag.position);
            assert!(d < 1.0, "tag {t} is {d:.2} m from its helper");
        }
    }

    #[test]
    fn campus_closed_loop_runs_above_the_dense_pair_limit() {
        use crate::engine::NetworkSim;
        // 4200 tags: past the dense-pair limit, so this run exercises the
        // lazy link-table layout end to end.
        let quad = Scenario::campus(4_200);
        let run = |seed| {
            NetworkSim::new(&quad, seed)
                .with_trace(false)
                .run()
                .unwrap()
        };
        let a = run(42);
        assert!(a.metrics.delivered_packets() > 0, "campus delivers nothing");
        // Streaming contract: no per-event samples at this scale.
        assert!(a.metrics.latency_ms.is_empty());
        assert!(a.metrics.poll_latency_ms.is_empty());
        // Same seed, same report — the campus smoke example's CI contract.
        let b = run(42);
        assert_eq!(a.metrics.report(), b.metrics.report());
        assert_eq!(
            format!("{:?}", a.metrics.tags),
            format!("{:?}", b.metrics.tags)
        );
    }

    #[test]
    fn placement_setters_move_entities_before_the_run() {
        let mut s = Scenario::hospital_ward(4);
        let p = Position::new(1.5, 2.5, 1.0);
        s.place_tag(0, p);
        s.place_carrier(1, p);
        s.place_sink(2, p);
        assert_eq!(s.tags[0].position(), p);
        assert_eq!(s.carriers[1].position(), p);
        assert_eq!(s.receivers[2].position(), p);
        s.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_indices_and_timing() {
        let mut s = Scenario::hospital_ward(4);
        s.tags[0].carrier = 99;
        assert!(matches!(s.validate(), Err(NetError::InvalidScenario(_))));

        let mut s = Scenario::hospital_ward(4);
        s.tags[1].receiver = 99;
        assert!(s.validate().is_err());

        // A ZigBee frame cannot fit the default 248 µs tone window (and a
        // Wi-Fi AP cannot decode it either way).
        let mut s = Scenario::hospital_ward(4);
        s.tags[2].phy = NetPhy::Zigbee { channel: 14 };
        assert!(
            s.validate().is_err(),
            "zigbee tag in a wifi ward must be rejected"
        );

        // A fitting PHY but an overlong airtime is rejected by the window
        // check.
        let mut s = Scenario::zigbee_wing(4);
        s.tags[0].payload_bytes = 127;
        assert!(
            s.validate().is_err(),
            "127-byte zigbee frame exceeds the 2 ms window"
        );

        let mut s = Scenario::hospital_ward(4);
        s.duration_s = 0.0;
        assert!(s.validate().is_err());

        let mut s = Scenario::hospital_ward(4);
        s.max_queue = 0;
        assert!(s.validate().is_err());

        let mut s = Scenario::hospital_ward(4);
        s.tags[0].arrival_rate_pps = 0.0;
        assert!(s.validate().is_err());
    }
}
