//! Carrier arbitration: which backlogged tag a carrier slot illuminates.
//!
//! Until this module existed the round-robin cursor was hard-coded in
//! [`crate::engine`]; it is now one of four pluggable policies behind the
//! [`Scheduler`] trait, enum-dispatched like [`crate::mobility::Mobility`]
//! so a [`crate::scenario::Scenario`] stays plain-data configurable:
//!
//! * [`SchedPolicy::RoundRobin`] — the PR 1 baseline, bit-for-bit: a cursor
//!   into the carrier's member list advances past each granted tag, and the
//!   pick scans from the cursor for the first backlogged member. A
//!   regression test pins its traces byte-identically against the
//!   pre-extraction engine.
//! * [`SchedPolicy::ProportionalFair`] — the cellular-style PF rule:
//!   grant the member maximizing *instantaneous link quality ÷ EWMA
//!   throughput*, so tags with momentarily good links are preferred but a
//!   starved tag's shrinking average eventually wins a slot (cf. Wi-Fi 6
//!   dynamic resource-unit sharing).
//! * [`SchedPolicy::DeadlineAware`] — earliest-deadline-first over the
//!   head-of-queue packet: every packet should be served within
//!   `deadline_s` of arriving, the pick orders eligible members by that
//!   deadline, and grants past the deadline are counted as **deadline
//!   misses** ([`crate::metrics::TagStats::deadline_misses`]).
//! * [`SchedPolicy::MarginAware`] — mobility-aware polling: skip members
//!   whose live uplink margin (from the [`crate::links::LinkMatrix`],
//!   refreshed every mobility tick) is below `min_margin_db` — they are
//!   mid-fade and the attempt would most likely burn a retry — but with a
//!   **starvation bound**: a member not granted for `max_skip_slots` of its
//!   carrier's slots becomes eligible regardless of margin, so a tag parked
//!   in a null is still polled within K slots.
//!
//! Determinism: no policy draws randomness. Every pick is a pure function
//! of the member order, the queues, the link matrix and the policy's own
//! counters, and ties break toward the lower member position — so traces
//! stay byte-identical per seed for *every* policy, not just the baseline
//! (`tests/net_determinism.rs` runs one case per policy).

use crate::links::LinkMatrix;
use crate::time::Time;

/// What a policy may inspect while picking: the simulated instant, the
/// live link matrix (fresh margins every mobility tick) and the carrier's
/// sensed channel occupancy.
#[derive(Debug, Clone, Copy)]
pub struct SlotView<'a> {
    /// When the carrier slot fires.
    pub now: Time,
    /// Live link budgets; [`LinkMatrix::uplink_margin_db`] is the signal
    /// the margin-aware policy keys on.
    pub links: &'a LinkMatrix,
    /// The carrier's live EWMA busy-airtime estimate of its own stripe
    /// ([`crate::coex`]), in [0, 1] — 0.0 when the scenario attaches no
    /// coex config. None of the built-in policies key on it yet; it is
    /// here so occupancy-aware arbitration needs no new plumbing.
    pub occupancy: f64,
}

/// Eligibility oracle the engine hands to a pick: `Some(arrived)` with the
/// head-of-queue packet's arrival time when the tag can be granted this
/// slot (backlogged, and — closed loop — no transaction in flight),
/// `None` otherwise.
pub type Backlog<'a> = dyn Fn(usize) -> Option<Time> + 'a;

/// A carrier arbitration policy: picks the member tag a slot illuminates
/// and accounts each grant. Implementations are enum-dispatched behind
/// [`CarrierSched`]; they must be deterministic (no RNG) and break ties
/// toward the lower member position.
pub trait Scheduler {
    /// Picks the member to grant this slot, or `None` when no member is
    /// eligible. May update per-slot state (EWMA decay, skip counters) —
    /// the engine calls this exactly once per carrier slot.
    fn pick(&mut self, members: &[usize], backlog: &Backlog, view: &SlotView) -> Option<usize>;

    /// Records that `tag` was granted a slot at `view.now` whose
    /// head-of-queue packet arrived at `head_arrived`. Returns `true` when
    /// the grant missed the policy's deadline (deadline-aware only).
    ///
    /// Grants happen strictly *after* a successful pick and carrier-sense:
    /// a slot whose band was busy picks but never grants, and must leave
    /// the cursor/counters where they were — the invariant the baseline's
    /// pre-extraction engine enforced and this seam preserves.
    fn granted(
        &mut self,
        members: &[usize],
        tag: usize,
        head_arrived: Time,
        view: &SlotView,
    ) -> bool;

    /// Credits `bits` of delivered payload to `tag` (proportional-fair
    /// bookkeeping; a no-op elsewhere).
    fn delivered(&mut self, _members: &[usize], _tag: usize, _bits: usize) {}
}

/// Proportional-fair parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionalFair {
    /// EWMA smoothing factor per carrier slot, in (0, 1]: the weight of
    /// the newest slot's delivered bits in the throughput average.
    pub ewma_alpha: f64,
}

impl Default for ProportionalFair {
    fn default() -> Self {
        ProportionalFair { ewma_alpha: 0.05 }
    }
}

/// Deadline-aware (EDF) parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineAware {
    /// Service deadline per packet, seconds: the head-of-queue packet
    /// should be granted a slot within this long of arriving.
    pub deadline_s: f64,
}

impl Default for DeadlineAware {
    fn default() -> Self {
        // Ten slot periods at the presets' 5 ms cadence: tight enough
        // that congestion actually registers as misses, loose enough
        // that an idle ward serves everything in time.
        DeadlineAware { deadline_s: 0.05 }
    }
}

/// Margin-aware parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginAware {
    /// Members below this live uplink margin are considered mid-fade and
    /// skipped, dB.
    pub min_margin_db: f64,
    /// Starvation bound: a member not granted for this many of its
    /// carrier's slots becomes eligible regardless of margin.
    pub max_skip_slots: u32,
}

impl Default for MarginAware {
    fn default() -> Self {
        MarginAware {
            // Fades in a walking ward swing tens of dB; 6 dB of headroom
            // keeps attempts comfortably above the shadowing sigma, and a
            // 40-slot bound re-polls a parked-in-a-null tag within 200 ms
            // at the presets' 5 ms slot cadence.
            min_margin_db: 6.0,
            max_skip_slots: 40,
        }
    }
}

/// The policy catalogue a scenario can attach (plain data, `Copy`, like
/// [`crate::mobility::MobilityModel`]); [`CarrierSched::new`] instantiates
/// the per-carrier state that actually runs it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SchedPolicy {
    /// The baseline cursor: grant members in order, skipping the idle.
    #[default]
    RoundRobin,
    /// Instantaneous link quality ÷ EWMA throughput.
    ProportionalFair(ProportionalFair),
    /// Earliest head-of-queue deadline first, with miss accounting.
    DeadlineAware(DeadlineAware),
    /// Skip mid-fade members, bounded by `max_skip_slots`.
    MarginAware(MarginAware),
}

impl SchedPolicy {
    /// Proportional fair with default smoothing.
    pub fn proportional_fair() -> Self {
        SchedPolicy::ProportionalFair(ProportionalFair::default())
    }

    /// Deadline-aware with the default 50 ms packet deadline.
    pub fn deadline_aware() -> Self {
        SchedPolicy::DeadlineAware(DeadlineAware::default())
    }

    /// Margin-aware with the default 6 dB fade threshold and 40-slot
    /// starvation bound.
    pub fn margin_aware() -> Self {
        SchedPolicy::MarginAware(MarginAware::default())
    }

    /// A short name for scenario labels and report tables.
    pub fn slug(&self) -> &'static str {
        match self {
            SchedPolicy::RoundRobin => "round-robin",
            SchedPolicy::ProportionalFair(_) => "proportional-fair",
            SchedPolicy::DeadlineAware(_) => "deadline-aware",
            SchedPolicy::MarginAware(_) => "margin-aware",
        }
    }

    /// Checks the policy's parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SchedPolicy::RoundRobin => Ok(()),
            SchedPolicy::ProportionalFair(ProportionalFair { ewma_alpha }) => {
                if !(ewma_alpha > 0.0 && ewma_alpha <= 1.0) {
                    return Err(format!("PF ewma_alpha must be in (0, 1], got {ewma_alpha}"));
                }
                Ok(())
            }
            SchedPolicy::DeadlineAware(DeadlineAware { deadline_s }) => {
                if !deadline_s.is_finite() || deadline_s <= 0.0 {
                    return Err(format!("EDF deadline must be positive, got {deadline_s}"));
                }
                Ok(())
            }
            SchedPolicy::MarginAware(MarginAware {
                min_margin_db,
                max_skip_slots,
            }) => {
                if !min_margin_db.is_finite() {
                    return Err(format!(
                        "margin threshold must be finite, got {min_margin_db}"
                    ));
                }
                if max_skip_slots == 0 {
                    return Err("starvation bound must be at least 1 slot".into());
                }
                Ok(())
            }
        }
    }

    /// Instantiates the per-carrier scheduler state for a member list of
    /// `n_members` tags.
    fn new_state(&self, n_members: usize) -> SchedState {
        match *self {
            SchedPolicy::RoundRobin => SchedState::RoundRobin(RoundRobinState::default()),
            SchedPolicy::ProportionalFair(params) => SchedState::ProportionalFair(PfState {
                params,
                ewma_bits: vec![0.0; n_members],
                pending_bits: vec![0.0; n_members],
            }),
            SchedPolicy::DeadlineAware(params) => SchedState::DeadlineAware(EdfState {
                deadline_ns: Time::from_secs(params.deadline_s).as_nanos().max(1),
            }),
            SchedPolicy::MarginAware(params) => SchedState::MarginAware(MarginState {
                params,
                cursor: RoundRobinState::default(),
                slots_since_grant: vec![0; n_members],
            }),
        }
    }
}

/// The baseline cursor, extracted verbatim from the pre-refactor engine so
/// the invariant lives in exactly one place: `cursor` indexes the member
/// *after* the last granted tag; a pick scans `members[cursor..]` wrapping
/// around; a deferred slot (carrier-sense busy) leaves it untouched.
#[derive(Debug, Clone, Default)]
struct RoundRobinState {
    cursor: usize,
}

impl RoundRobinState {
    /// First member from the cursor on for which `eligible(position, tag)`
    /// holds.
    fn pick_from_cursor(
        &self,
        members: &[usize],
        mut eligible: impl FnMut(usize, usize) -> bool,
    ) -> Option<usize> {
        let n = members.len();
        (0..n)
            .map(|k| (self.cursor + k) % n.max(1))
            .find(|&i| eligible(i, members[i]))
            .map(|i| members[i])
    }

    /// Moves the cursor to the member after `granted`.
    fn advance(&mut self, members: &[usize], granted: usize) {
        if let Some(pos) = members.iter().position(|&t| t == granted) {
            self.cursor = (pos + 1) % members.len();
        }
    }
}

impl Scheduler for RoundRobinState {
    fn pick(&mut self, members: &[usize], backlog: &Backlog, _view: &SlotView) -> Option<usize> {
        self.pick_from_cursor(members, |_, t| backlog(t).is_some())
    }

    fn granted(
        &mut self,
        members: &[usize],
        tag: usize,
        _head_arrived: Time,
        _view: &SlotView,
    ) -> bool {
        self.advance(members, tag);
        false
    }
}

/// Proportional-fair state: per-member EWMA of delivered bits per slot,
/// decayed once per pick, credited by the engine's delivery hook.
#[derive(Debug, Clone)]
struct PfState {
    params: ProportionalFair,
    /// EWMA of delivered bits per carrier slot, indexed like the member
    /// list.
    ewma_bits: Vec<f64>,
    /// Bits delivered since the last pick, folded into the EWMA then.
    pending_bits: Vec<f64>,
}

impl PfState {
    /// The PF score of member `i` holding tag `t`: instantaneous link
    /// quality over average throughput. Quality is the uplink margin in dB
    /// floored at 0 (a faded link rates ≈ equal-quality), +1 so a zero
    /// margin still scores; the +1 bit floor on the average keeps fresh
    /// tags finite yet maximal.
    fn score(&self, i: usize, t: usize, view: &SlotView) -> f64 {
        let quality = 1.0 + view.links.uplink_margin_db(t).max(0.0);
        quality / (self.ewma_bits[i] + 1.0)
    }
}

impl Scheduler for PfState {
    fn pick(&mut self, members: &[usize], backlog: &Backlog, view: &SlotView) -> Option<usize> {
        // One EWMA step per slot: fold in whatever was delivered since the
        // previous slot (zero for idle members — their average decays, so
        // their score recovers).
        let a = self.params.ewma_alpha;
        for (ewma, pending) in self.ewma_bits.iter_mut().zip(self.pending_bits.iter_mut()) {
            *ewma = (1.0 - a) * *ewma + a * *pending;
            *pending = 0.0;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, &t) in members.iter().enumerate() {
            if backlog(t).is_none() {
                continue;
            }
            let score = self.score(i, t, view);
            // Strictly-greater keeps ties at the lower member position.
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((t, score));
            }
        }
        best.map(|(t, _)| t)
    }

    fn granted(
        &mut self,
        _members: &[usize],
        _tag: usize,
        _head_arrived: Time,
        _view: &SlotView,
    ) -> bool {
        false
    }

    fn delivered(&mut self, members: &[usize], tag: usize, bits: usize) {
        if let Some(i) = members.iter().position(|&t| t == tag) {
            self.pending_bits[i] += bits as f64;
        }
    }
}

/// Deadline-aware state: stateless beyond the quantized deadline — the
/// ordering key is the head-of-queue arrival the backlog oracle reports.
#[derive(Debug, Clone)]
struct EdfState {
    /// The packet deadline on the integer-ns grid (quantized once).
    deadline_ns: u64,
}

impl Scheduler for EdfState {
    fn pick(&mut self, members: &[usize], backlog: &Backlog, _view: &SlotView) -> Option<usize> {
        let mut best: Option<(usize, Time)> = None;
        for &t in members {
            let Some(arrived) = backlog(t) else { continue };
            // Earliest deadline = earliest head-of-queue arrival (the
            // deadline offset is constant per carrier). Strictly-less
            // keeps ties at the lower member position.
            if best.is_none_or(|(_, d)| arrived < d) {
                best = Some((t, arrived));
            }
        }
        best.map(|(t, _)| t)
    }

    fn granted(
        &mut self,
        _members: &[usize],
        _tag: usize,
        head_arrived: Time,
        view: &SlotView,
    ) -> bool {
        view.now > head_arrived.after_nanos(self.deadline_ns)
    }
}

/// Margin-aware state: the baseline cursor over the members whose live
/// margin clears the threshold, with per-member skip counters enforcing
/// the starvation bound.
#[derive(Debug, Clone)]
struct MarginState {
    params: MarginAware,
    cursor: RoundRobinState,
    /// Slots of this carrier since each member was last granted, indexed
    /// like the member list. Saturating — a never-granted member stays
    /// starved rather than wrapping back to fresh.
    slots_since_grant: Vec<u32>,
}

impl Scheduler for MarginState {
    fn pick(&mut self, members: &[usize], backlog: &Backlog, view: &SlotView) -> Option<usize> {
        for slots in &mut self.slots_since_grant {
            *slots = slots.saturating_add(1);
        }
        let Self {
            params,
            cursor,
            slots_since_grant,
        } = self;
        cursor.pick_from_cursor(members, |i, t| {
            backlog(t).is_some()
                && (slots_since_grant[i] >= params.max_skip_slots
                    || view.links.uplink_margin_db(t) >= params.min_margin_db)
        })
    }

    fn granted(
        &mut self,
        members: &[usize],
        tag: usize,
        _head_arrived: Time,
        _view: &SlotView,
    ) -> bool {
        self.cursor.advance(members, tag);
        if let Some(i) = members.iter().position(|&t| t == tag) {
            self.slots_since_grant[i] = 0;
        }
        false
    }
}

/// Per-policy runtime state, enum-dispatched to the [`Scheduler`] impls.
#[derive(Debug, Clone)]
enum SchedState {
    /// Baseline cursor state.
    RoundRobin(RoundRobinState),
    /// PF EWMA state.
    ProportionalFair(PfState),
    /// EDF state.
    DeadlineAware(EdfState),
    /// Margin filter + cursor + skip counters.
    MarginAware(MarginState),
}

impl SchedState {
    fn as_scheduler(&mut self) -> &mut dyn Scheduler {
        match self {
            SchedState::RoundRobin(s) => s,
            SchedState::ProportionalFair(s) => s,
            SchedState::DeadlineAware(s) => s,
            SchedState::MarginAware(s) => s,
        }
    }
}

/// One carrier's arbitration runtime: the member tags it illuminates (in
/// index order, fixed for the run), the sub-band the scenario striped it
/// onto, and the policy state. This is what [`crate::engine::NetworkSim`]
/// consults on every `CarrierSlot`.
#[derive(Debug, Clone)]
pub struct CarrierSched {
    members: Vec<usize>,
    subband: usize,
    state: SchedState,
}

impl CarrierSched {
    /// Builds the runtime for one carrier: `members` are the tag indices
    /// assigned to it, `subband` its scenario-assigned stripe (see
    /// [`crate::scenario::Scenario::with_subband_striping`]).
    pub fn new(policy: SchedPolicy, members: Vec<usize>, subband: usize) -> Self {
        let state = policy.new_state(members.len());
        CarrierSched {
            members,
            subband,
            state,
        }
    }

    /// The member tags, in index order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The Wi-Fi sub-band stripe this carrier was assigned (0 when the
    /// scenario does not stripe) — the scheduler-visible spectrum axis.
    pub fn subband(&self) -> usize {
        self.subband
    }

    /// Re-tunes the carrier to `subband` — the adaptive re-striping hook
    /// ([`crate::coex::ReStripe`]): the stripe stays scheduler-visible
    /// after a mid-run move.
    pub fn set_subband(&mut self, subband: usize) {
        self.subband = subband;
    }

    /// Picks the member to grant this slot (see [`Scheduler::pick`]).
    pub fn pick(&mut self, backlog: &Backlog, view: &SlotView) -> Option<usize> {
        let Self { members, state, .. } = self;
        state.as_scheduler().pick(members, backlog, view)
    }

    /// Accounts a grant; `true` when it missed the policy's deadline (see
    /// [`Scheduler::granted`]).
    pub fn granted(&mut self, tag: usize, head_arrived: Time, view: &SlotView) -> bool {
        let Self { members, state, .. } = self;
        state
            .as_scheduler()
            .granted(members, tag, head_arrived, view)
    }

    /// Credits delivered payload bits (see [`Scheduler::delivered`]).
    pub fn delivered(&mut self, tag: usize, bits: usize) {
        let Self { members, state, .. } = self;
        state.as_scheduler().delivered(members, tag, bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::LinkMatrix;
    use crate::scenario::Scenario;

    /// A matrix + view over the 4-tag ward for policies that read margins.
    fn fixture() -> (Scenario, LinkMatrix) {
        let scenario = Scenario::hospital_ward(4);
        let links = LinkMatrix::build(&scenario).unwrap();
        (scenario, links)
    }

    /// A backlog oracle where every listed tag queued a packet at `t_ns`.
    fn backlog_at(tags: &[usize], t_ns: u64) -> impl Fn(usize) -> Option<Time> + '_ {
        move |t| tags.contains(&t).then_some(Time(t_ns))
    }

    #[test]
    fn policies_validate_their_parameters() {
        assert!(SchedPolicy::RoundRobin.validate().is_ok());
        assert!(SchedPolicy::proportional_fair().validate().is_ok());
        assert!(SchedPolicy::deadline_aware().validate().is_ok());
        assert!(SchedPolicy::margin_aware().validate().is_ok());
        assert!(
            SchedPolicy::ProportionalFair(ProportionalFair { ewma_alpha: 0.0 })
                .validate()
                .is_err()
        );
        assert!(
            SchedPolicy::ProportionalFair(ProportionalFair { ewma_alpha: 1.5 })
                .validate()
                .is_err()
        );
        assert!(
            SchedPolicy::DeadlineAware(DeadlineAware { deadline_s: 0.0 })
                .validate()
                .is_err()
        );
        assert!(SchedPolicy::MarginAware(MarginAware {
            min_margin_db: f64::NAN,
            max_skip_slots: 4,
        })
        .validate()
        .is_err());
        assert!(SchedPolicy::MarginAware(MarginAware {
            min_margin_db: 3.0,
            max_skip_slots: 0,
        })
        .validate()
        .is_err());
        assert_eq!(SchedPolicy::default(), SchedPolicy::RoundRobin);
        assert_eq!(SchedPolicy::margin_aware().slug(), "margin-aware");
    }

    #[test]
    fn round_robin_cursor_rotates_and_survives_defers() {
        let (_, links) = fixture();
        let view = SlotView {
            now: Time(0),
            links: &links,
            occupancy: 0.0,
        };
        let mut sched = CarrierSched::new(SchedPolicy::RoundRobin, vec![0, 1, 2, 3], 0);
        let all = backlog_at(&[0, 1, 2, 3], 0);
        // Grants rotate through the members in order.
        for expect in [0usize, 1, 2, 3, 0] {
            let t = sched.pick(&all, &view).unwrap();
            assert_eq!(t, expect);
            sched.granted(t, Time(0), &view);
        }
        // A deferred slot (pick without grant) leaves the cursor alone.
        let t = sched.pick(&all, &view).unwrap();
        assert_eq!(t, 1);
        let t2 = sched.pick(&all, &view).unwrap();
        assert_eq!(t2, 1, "defer must not advance the cursor");
        // Idle members are skipped from the cursor on.
        let only3 = backlog_at(&[3], 0);
        assert_eq!(sched.pick(&only3, &view), Some(3));
        let none = backlog_at(&[], 0);
        assert_eq!(sched.pick(&none, &view), None);
    }

    #[test]
    fn proportional_fair_prefers_the_starved_member() {
        let (_, links) = fixture();
        let view = SlotView {
            now: Time(0),
            links: &links,
            occupancy: 0.0,
        };
        let mut sched = CarrierSched::new(SchedPolicy::proportional_fair(), vec![0, 1], 0);
        let all = backlog_at(&[0, 1], 0);
        // Tag 0 keeps getting served and credited; its EWMA grows until
        // tag 1's untouched average wins the slot.
        let first = sched.pick(&all, &view).unwrap();
        sched.granted(first, Time(0), &view);
        let other = 1 - first;
        for _ in 0..50 {
            sched.delivered(first, 248);
            let t = sched.pick(&all, &view).unwrap();
            sched.granted(t, Time(0), &view);
            if t == other {
                return; // fairness kicked in
            }
        }
        panic!("PF never rotated to the starved member");
    }

    #[test]
    fn deadline_aware_orders_by_head_arrival_and_counts_misses() {
        let (_, links) = fixture();
        let view = SlotView {
            now: Time(1_000_000_000),
            links: &links,
            occupancy: 0.0,
        };
        let mut sched = CarrierSched::new(
            SchedPolicy::DeadlineAware(DeadlineAware { deadline_s: 0.1 }),
            vec![0, 1, 2],
            0,
        );
        // Tag 2's packet is the oldest → earliest deadline → picked first.
        let backlog = |t: usize| -> Option<Time> {
            match t {
                0 => Some(Time(900_000_000)),
                1 => None,
                2 => Some(Time(800_000_000)),
                _ => None,
            }
        };
        assert_eq!(sched.pick(&backlog, &view), Some(2));
        // 1.0 s − 0.8 s = 200 ms > the 100 ms deadline: a miss.
        assert!(sched.granted(2, Time(800_000_000), &view));
        // 1.0 s − 0.95 s = 50 ms: within deadline.
        assert!(!sched.granted(0, Time(950_000_000), &view));
    }

    #[test]
    fn margin_aware_skips_fades_but_honours_the_starvation_bound() {
        let (_, links) = fixture();
        let view = SlotView {
            now: Time(0),
            links: &links,
            occupancy: 0.0,
        };
        // The ward's real margins are all comfortably positive, so a
        // threshold above them blanks every member…
        let huge = links.uplink_margin_db(0).max(links.uplink_margin_db(1)) + 10.0;
        let mut sched = CarrierSched::new(
            SchedPolicy::MarginAware(MarginAware {
                min_margin_db: huge,
                max_skip_slots: 3,
            }),
            vec![0, 1],
            0,
        );
        let all = backlog_at(&[0, 1], 0);
        // …for the first two slots; on the third the starvation bound
        // opens the gate.
        assert_eq!(sched.pick(&all, &view), None);
        assert_eq!(sched.pick(&all, &view), None);
        let t = sched.pick(&all, &view).unwrap();
        assert_eq!(t, 0, "starved members reopen in member order");
        sched.granted(t, Time(0), &view);
        // Tag 0's counter reset; tag 1 is still starved and now first.
        assert_eq!(sched.pick(&all, &view), Some(1));

        // With a permissive threshold the policy degenerates to round
        // robin over the backlogged members.
        let mut open = CarrierSched::new(
            SchedPolicy::MarginAware(MarginAware {
                min_margin_db: -1000.0,
                max_skip_slots: 8,
            }),
            vec![0, 1],
            0,
        );
        for expect in [0usize, 1, 0] {
            let t = open.pick(&all, &view).unwrap();
            assert_eq!(t, expect);
            open.granted(t, Time(0), &view);
        }
    }

    #[test]
    fn carrier_sched_exposes_members_and_subband() {
        let sched = CarrierSched::new(SchedPolicy::RoundRobin, vec![4, 7], 2);
        assert_eq!(sched.members(), &[4, 7]);
        assert_eq!(sched.subband(), 2);
    }
}
